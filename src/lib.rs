//! # op2-hpx — umbrella crate
//!
//! Re-exports the whole reproduction of *"Redesigning OP2 Compiler to Use
//! HPX Runtime Asynchronous Techniques"* (Khatami, Kaiser, Ramanujam;
//! IPDPSW 2017) under one roof:
//!
//! * [`hpx`] — the HPX-style task runtime (futures, dataflow, execution
//!   policies, chunkers, parallel algorithms, prefetching iterator);
//! * [`op2`] — the OP2 loop framework (sets/maps/dats, plans & coloring,
//!   fork-join and dataflow backends);
//! * [`mesh`] — unstructured-mesh generators and utilities;
//! * [`app`] — the app-agnostic harness (the [`app::App`] /
//!   [`app::AppInstance`] traits, the generic time loop with
//!   convergence-driven exit, the shard planner) plus the
//!   translator-generated heat and Jacobi applications;
//! * [`airfoil`] — the Airfoil CFD evaluation application;
//! * [`translator`] — the `op2c` source-to-source translator.
//!
//! See `README.md` for a guided tour: the crate map, the block-granular
//! dependency-engine design, and how to run the Airfoil application and
//! the figure benches.

#![warn(missing_docs)]

pub use airfoil_cfd as airfoil;
pub use hpx_rt as hpx;
pub use op2_app as app;
pub use op2_core as op2;
pub use op2_mesh as mesh;
pub use op2_translator as translator;
