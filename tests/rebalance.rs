//! Feedback-driven dynamic load balancing, end to end: the row-migration
//! substrate preserves values bitwise under random repartitions, a forced
//! mid-solve repartition of the Airfoil run preserves the physics, a
//! balanced run provably never migrates (and stays bitwise identical to
//! the never-checked path), migration retires exactly the affected
//! loop-schedule cache entries, and the whole protocol survives real
//! socket transports.

use std::sync::Arc;

use op2_hpx::airfoil::shard::{run_sharded, ShardedProblem};
use op2_hpx::airfoil::verify::{max_rel_diff, max_scaled_diff};
use op2_hpx::airfoil::SolverConfig;
use op2_hpx::mesh::channel_with_bump;
use op2_hpx::op2::args::rw;
use op2_hpx::op2::locality::{ExchangeOpts, LocalityGroup};
use op2_hpx::op2::rebalance::{agree_rank_busy, migrate_rows, MigrationSpec};
use op2_hpx::op2::transport::{ProcessTransport, Transport};
use op2_hpx::op2::{Dat, Layout, Op2Config};

/// Tiny deterministic PRNG (xorshift64*) so the randomized property runs
/// the same cases everywhere without a proptest dependency.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Random ownership of `n` elements over `nranks` ranks; every rank gets
/// at least one element (round-robin base, random rest).
fn random_ownership(rng: &mut Rng, n: usize, nranks: usize) -> Vec<Vec<u32>> {
    let mut owned: Vec<Vec<u32>> = vec![Vec::new(); nranks];
    for e in 0..n {
        let r = if e < nranks { e } else { rng.below(nranks) };
        owned[r].push(e as u32);
    }
    owned
}

/// The property at the heart of live repartitioning: for random element
/// counts, dims, layouts, rank counts and random old→new ownership, a
/// migration scheduled *between* loop submissions — no fence anywhere —
/// yields bitwise the values of a scalar model. Epoch tables must gate
/// the gathers behind the old shards' in-flight writers and the new
/// shards' first loops behind the landings; any ordering hole shows up as
/// a wrong value.
#[test]
fn migration_substrate_preserves_values_bitwise_randomized() {
    let mut rng = Rng(0x9E3779B97F4A7C15);
    for case in 0..12 {
        let n = 16 + rng.below(120);
        let dim = [1, 3, 4][rng.below(3)];
        let nranks = 2 + rng.below(3);
        let layout = if rng.below(2) == 0 {
            Layout::AoS
        } else {
            Layout::SoA
        };
        let config = if case % 2 == 0 {
            Op2Config::seq().with_layout(layout)
        } else {
            Op2Config::dataflow(2)
                .with_layout(layout)
                .with_block_size(8)
        };
        let k1 = 1 + rng.below(3);
        let k2 = 1 + rng.below(3);

        let old_owned = random_ownership(&mut rng, n, nranks);
        let new_owned = random_ownership(&mut rng, n, nranks);

        let group = LocalityGroup::new(config, nranks);
        let declare = |owned: &[Vec<u32>], init: bool| -> Vec<Dat<f64>> {
            (0..nranks)
                .map(|r| {
                    let op2 = group.rank(r);
                    let set = op2.decl_set(owned[r].len(), "elems");
                    let vals: Vec<f64> = owned[r]
                        .iter()
                        .flat_map(|&g| {
                            (0..dim).map(move |c| {
                                if init {
                                    (g as usize * dim + c) as f64
                                } else {
                                    f64::NAN
                                }
                            })
                        })
                        .collect();
                    op2.decl_dat(&set, dim, "x", vals)
                })
                .collect()
        };
        let old = declare(&old_owned, true);
        let new = declare(&new_owned, false);

        let step = |dats: &[Dat<f64>], mul: f64, add: f64| {
            for (r, d) in dats.iter().enumerate() {
                group
                    .rank(r)
                    .loop_("step", d.set())
                    .arg(rw(d))
                    .run(move |x: &mut [f64]| {
                        for v in x {
                            *v = *v * mul + add;
                        }
                    });
            }
        };
        for _ in 0..k1 {
            step(&old, 0.5, 1.0);
        }
        // Migrate with loops still in flight — no fence, no barrier.
        let spec = MigrationSpec::diff(&old_owned, &new_owned);
        migrate_rows(&group, &old, &new, &spec, &ExchangeOpts::default());
        for _ in 0..k2 {
            step(&new, 0.25, 2.0);
        }
        group.fence();

        for (r, d) in new.iter().enumerate() {
            let got = d.snapshot();
            for (i, &g) in new_owned[r].iter().enumerate() {
                for c in 0..dim {
                    let mut want = (g as usize * dim + c) as f64;
                    for _ in 0..k1 {
                        want = want * 0.5 + 1.0;
                    }
                    for _ in 0..k2 {
                        want = want * 0.25 + 2.0;
                    }
                    let have = got[i * dim + c];
                    assert!(
                        have == want,
                        "case {case}: element {g} component {c} on rank {r}: \
                         got {have}, want {want} (bitwise)"
                    );
                }
            }
        }
    }
}

fn cfg(niter: usize) -> SolverConfig {
    SolverConfig {
        niter,
        window: 2,
        print_every: 0,
        ..SolverConfig::default()
    }
}

/// A forced mid-solve repartition (skewed busy times injected) preserves
/// the Airfoil physics within the sharding tolerances, and actually
/// migrates.
#[test]
fn forced_mid_solve_repartition_preserves_airfoil_physics() {
    let mesh = channel_with_bump(16, 8);
    let niter = 8;

    let mut reference = ShardedProblem::declare(Op2Config::seq(), &mesh, 3);
    let r_ref = run_sharded(&mut reference, &cfg(niter));
    let q_ref = reference.gather_q();

    let mut shp = ShardedProblem::declare(Op2Config::seq(), &mesh, 3);
    let r1 = run_sharded(&mut shp, &cfg(niter / 2));
    // Rank 0 claims to be 4x as expensive per element: well outside the
    // dead zone, so this must repartition.
    let before = shp.owned_cells.clone();
    let rep = shp
        .rebalance_with_busy(&[4_000_000, 1_000_000, 1_000_000])
        .expect("a 4x skew must trigger migration");
    assert!(rep.rows_crossing > 0, "some cells must change rank");
    assert!(rep.levels[0] > rep.levels[1], "rank 0 measured costlier");
    assert_ne!(before, shp.owned_cells, "ownership must actually change");
    assert!(
        shp.owned_cells[0].len() < before[0].len(),
        "the costly rank must shed cells ({} -> {})",
        before[0].len(),
        shp.owned_cells[0].len()
    );
    let r2 = run_sharded(&mut shp, &cfg(niter - niter / 2));

    let rms: Vec<f64> = r1
        .rms_history
        .iter()
        .chain(&r2.rms_history)
        .copied()
        .collect();
    let d_rms = max_rel_diff(&r_ref.rms_history, &rms);
    let d_q = max_scaled_diff(&q_ref, &shp.gather_q(), 1.0);
    assert!(d_rms < 1e-7, "rebalanced rms deviates by {d_rms:e}");
    assert!(d_q < 1e-9, "rebalanced q deviates by {d_q:e}");
}

/// Balanced busy times (inside the dead zone) must migrate nothing, and
/// the interrupted run must stay **bitwise** identical to one that never
/// checked — the structural guarantee that never-skewed runs cannot be
/// perturbed by enabling the rebalance machinery.
#[test]
fn balanced_load_never_migrates_and_stays_bitwise() {
    let mesh = channel_with_bump(14, 7);
    let niter = 6;

    let mut reference = ShardedProblem::declare(Op2Config::seq(), &mesh, 3);
    let r_ref = run_sharded(&mut reference, &cfg(niter));

    let mut shp = ShardedProblem::declare(Op2Config::seq(), &mesh, 3);
    let r1 = run_sharded(&mut shp, &cfg(niter / 2));
    // Within the 1.5x dead zone (owned counts are near-equal): no-op.
    assert!(
        shp.rebalance_with_busy(&[1_000_000, 1_200_000, 1_100_000])
            .is_none(),
        "near-balanced busy times must not migrate"
    );
    let r2 = run_sharded(&mut shp, &cfg(niter - niter / 2));

    let rms: Vec<f64> = r1
        .rms_history
        .iter()
        .chain(&r2.rms_history)
        .copied()
        .collect();
    assert_eq!(r_ref.rms_history, rms, "bitwise-equal residual history");
    assert_eq!(reference.gather_q(), shp.gather_q(), "bitwise-equal state");
}

/// One rank can never be imbalanced against itself.
#[test]
fn single_rank_rebalance_is_refused() {
    let mesh = channel_with_bump(10, 5);
    let mut shp = ShardedProblem::declare(Op2Config::seq(), &mesh, 1);
    run_sharded(&mut shp, &cfg(2));
    assert!(shp.rebalance_with_busy(&[u64::MAX / 2]).is_none());
    assert!(shp.rebalance().is_none());
}

/// Migration retires exactly the affected loop-schedule cache entries:
/// every schedule keyed on the migrated sets' signatures is dropped
/// (counted by the per-cache invalidation counter), while schedules for
/// unrelated sets survive.
#[test]
fn migration_retires_exactly_the_affected_spec_entries() {
    let mesh = channel_with_bump(16, 8);
    let mut shp = ShardedProblem::declare(Op2Config::dataflow(2), &mesh, 2);
    run_sharded(&mut shp, &cfg(4));

    // An unrelated set on rank 0's world: its schedule must survive.
    let aux_op2 = shp.group.rank(0);
    let aux_set = aux_op2.decl_set(777, "aux");
    let aux = aux_op2.decl_dat(&aux_set, 1, "aux_dat", vec![0.0f64; 777]);
    aux_op2
        .loop_("aux_kernel", &aux_set)
        .arg(rw(&aux))
        .run(|x: &mut [f64]| x[0] += 1.0)
        .wait();

    let shares: Vec<_> = (0..2)
        .map(|r| shp.group.rank(r).spec_share().clone())
        .collect();
    let built_before: Vec<usize> = shares.iter().map(|s| s.built()).collect();
    let inval_before: Vec<u64> = shares.iter().map(|s| s.invalidations()).collect();
    assert!(
        built_before.iter().all(|&b| b > 0),
        "the dataflow run must have populated every rank's spec cache"
    );

    let rep = shp
        .rebalance_with_busy(&[5_000_000, 1_000_000])
        .expect("5x skew must migrate");
    assert!(rep.specs_dropped > 0, "stale schedules must be retired");

    let mut dropped = 0;
    for (i, share) in shares.iter().enumerate() {
        let inval = share.invalidations() - inval_before[i];
        dropped += inval as usize;
        // Everything cached for this world belonged to the migrated sets,
        // except rank 0's aux loop — exactly that one survives.
        let survivors = if i == 0 { 1 } else { 0 };
        assert_eq!(
            share.built(),
            survivors,
            "rank {i}: only non-migrated schedules may survive"
        );
        assert_eq!(
            inval as usize,
            built_before[i] - survivors,
            "rank {i}: exactly the affected entries are invalidated"
        );
    }
    assert_eq!(dropped, rep.specs_dropped, "report matches the counters");

    // The run continues correctly on the new shards (fresh schedules).
    let r = run_sharded(&mut shp, &cfg(2));
    assert!(r.rms_history.iter().all(|v| v.is_finite()));
}

/// The LRU residency bound: a shared spec cache capped at 2 schedules
/// never holds more, and evicts as distinct loop shapes stream through.
#[test]
fn spec_cache_lru_bound_caps_resident_schedules() {
    use op2_hpx::op2::{Op2, SpecShare};

    let share = SpecShare::with_capacity(2);
    let op2 = Op2::new(Op2Config::dataflow(1).with_shared_specs(share.clone()));
    for (i, n) in [100usize, 200, 300, 400].iter().enumerate() {
        let set = op2.decl_set(*n, &format!("s{i}"));
        let d = op2.decl_dat(&set, 1, "d", vec![0.0f64; *n]);
        op2.loop_("k", &set)
            .arg(rw(&d))
            .run(|x: &mut [f64]| x[0] += 1.0)
            .wait();
    }
    assert!(
        share.built() <= 2,
        "resident schedules exceed the bound: {}",
        share.built()
    );
    assert_eq!(share.evictions(), 2, "two of four shapes were evicted");
}

/// The full protocol over real socket transports, SPMD-style: per-rank
/// busy agreement returns the identical vector in every process, a forced
/// repartition moves rows as `Migrate` messages over the wire, and the
/// continued solve matches the in-process run.
#[test]
fn rebalance_over_sockets_matches_in_process() {
    const NRANKS: usize = 3;
    const BUSY: [u64; NRANKS] = [4_000_000, 1_000_000, 1_000_000];
    let niter = 6;

    let reference = {
        let mesh = channel_with_bump(12, 6);
        let mut shp = ShardedProblem::declare(Op2Config::dataflow(2), &mesh, NRANKS);
        let r1 = run_sharded(&mut shp, &cfg(niter / 2));
        shp.rebalance_with_busy(&BUSY).expect("4x skew migrates");
        let r2 = run_sharded(&mut shp, &cfg(niter - niter / 2));
        let mut rms = r1.rms_history;
        rms.extend(r2.rms_history);
        rms
    };

    let dir = std::env::temp_dir().join(format!("op2-rebalance-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("rendezvous dir");
    let history = std::thread::scope(|s| {
        let handles: Vec<_> = (0..NRANKS)
            .map(|r| {
                let dir = dir.clone();
                s.spawn(move || {
                    let t: Arc<dyn Transport> = Arc::new(
                        ProcessTransport::connect_unix(&dir, r, NRANKS).expect("socket rendezvous"),
                    );
                    let mesh = channel_with_bump(12, 6);
                    let mut shp =
                        ShardedProblem::declare_with_transport(Op2Config::dataflow(2), &mesh, t);

                    // Deterministic per-rank busy, then cross-process
                    // agreement must reassemble the exact global vector.
                    let fb = shp.group.ranks()[0].granularity_feedback();
                    fb.record(&Arc::from("probe"), 1, 10, (r as u64 + 1) * 1_000);
                    let agreed = agree_rank_busy(&shp.group);
                    assert_eq!(
                        agreed,
                        vec![1_000, 2_000, 3_000],
                        "rank {r}: agreement must be global and exact"
                    );
                    fb.reset_rank_busy();

                    let r1 = run_sharded(&mut shp, &cfg(niter / 2));
                    shp.rebalance_with_busy(&BUSY)
                        .expect("same decision everywhere");
                    let r2 = run_sharded(&mut shp, &cfg(niter - niter / 2));
                    shp.group.barrier();
                    let mut rms = r1.rms_history;
                    rms.extend(r2.rms_history);
                    rms
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .next()
            .expect("at least one rank")
    });
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(history.len(), reference.len());
    let d = max_rel_diff(&reference, &history);
    assert!(d < 1e-12, "socket run deviates from in-process by {d:e}");
}
