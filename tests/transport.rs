//! The out-of-process transport through the public API: socket-backed
//! locality groups must reproduce the in-process results (halo exchange,
//! implicit rings, full sharded Airfoil, allreduce), and a sender that
//! dies mid-exchange must surface its *original* panic — the receive half
//! degrades to a diagnostic no-op instead of double-panicking.

use std::path::PathBuf;
use std::sync::Arc;

use op2_hpx::airfoil::shard::{run_sharded, ShardedProblem};
use op2_hpx::airfoil::SolverConfig;
use op2_hpx::mesh::channel_with_bump;
use op2_hpx::op2::args::{gbl_inc, write};
use op2_hpx::op2::locality::{exchange, HaloSpec, LocalityGroup};
use op2_hpx::op2::transport::{ProcessTransport, Transport};
use op2_hpx::op2::{Global, Op2Config};

/// A fresh rendezvous directory under the system temp dir, unique per
/// test (sockets are created inside and removed with it).
fn rendezvous_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("op2-transport-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `f(rank)` on one thread per rank, each over its own socket-backed
/// transport — the threads stand in for the rank processes (the real
/// multi-process path is exercised by the airfoil binary's integration
/// test); the wire protocol is identical. Returns rank 0's result.
fn spmd<T: Send>(tag: &str, nranks: usize, f: impl Fn(usize, Arc<dyn Transport>) -> T + Sync) -> T {
    let dir = rendezvous_dir(tag);
    let out = std::thread::scope(|s| {
        let handles: Vec<_> = (0..nranks)
            .map(|r| {
                let dir = dir.clone();
                let f = &f;
                s.spawn(move || {
                    let t: Arc<dyn Transport> = Arc::new(
                        ProcessTransport::connect_unix(&dir, r, nranks).expect("socket rendezvous"),
                    );
                    f(r, t)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .next()
            .expect("at least one rank")
    });
    let _ = std::fs::remove_dir_all(&dir);
    out
}

/// An explicit `exchange` between socket-backed single-rank groups moves
/// exactly the bytes the in-process transport moves, and the futures
/// behave identically (ready for no-traffic pairs, owned rows untouched).
#[test]
fn explicit_exchange_over_sockets_matches_in_process() {
    let mut spec = HaloSpec::empty(2);
    spec.export_rows[1][0] = vec![0, 2];
    spec.import_range[0][1] = 6..8;
    spec.validate().expect("spec");

    // In-process reference.
    let expected = {
        let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
        let c0 = group.rank(0).decl_set(6, "cells");
        let c1 = group.rank(1).decl_set(4, "cells");
        let q0 = group
            .rank(0)
            .decl_dat_halo(&c0, 3, "q", vec![0.0f64; 24], 2);
        let q1 = group
            .rank(1)
            .decl_dat(&c1, 3, "q", (0..12).map(f64::from).collect());
        let recvs = exchange(&group, &[q0.clone(), q1], &spec);
        recvs[0][1].wait();
        group.fence();
        q0.snapshot()
    };

    let spec2 = spec.clone();
    let got = spmd("exchange", 2, move |rank, t| {
        let group = LocalityGroup::with_transport(Op2Config::dataflow(2), t);
        let out = if rank == 0 {
            let c0 = group.rank(0).decl_set(6, "cells");
            let q0 = group
                .rank(0)
                .decl_dat_halo(&c0, 3, "q", vec![0.0f64; 24], 2);
            let recvs = exchange(&group, std::slice::from_ref(&q0), &spec2);
            recvs[0][1].wait();
            Some(q0.snapshot())
        } else {
            let c1 = group.rank(1).decl_set(4, "cells");
            let q1 = group
                .rank(1)
                .decl_dat(&c1, 3, "q", (0..12).map(f64::from).collect());
            let recvs = exchange(&group, &[q1], &spec2);
            assert!(recvs[0].iter().all(|r| r.is_ready()));
            None
        };
        group.fence();
        group.barrier();
        out
    });
    assert_eq!(got.expect("rank 0 returns its dat"), expected);
}

/// The whole sharded Airfoil solve — implicit halo rings, dirty bits,
/// distributed allreduce — over socket-backed single-rank groups matches
/// the in-process run's residual history within the sharding tolerance.
#[test]
fn sharded_airfoil_over_sockets_matches_in_process() {
    const NRANKS: usize = 3;
    let cfg = SolverConfig {
        niter: 4,
        window: 2,
        print_every: 0,
        ..SolverConfig::default()
    };
    let mesh = channel_with_bump(12, 6);
    let reference = {
        let mut shp = ShardedProblem::declare(Op2Config::dataflow(2), &mesh, NRANKS);
        run_sharded(&mut shp, &cfg)
    };

    let history = spmd("airfoil", NRANKS, |_rank, t| {
        let mesh = channel_with_bump(12, 6);
        let mut shp = ShardedProblem::declare_with_transport(Op2Config::dataflow(2), &mesh, t);
        let result = run_sharded(&mut shp, &cfg);
        shp.group.barrier();
        result.rms_history
    });

    assert_eq!(history.len(), reference.rms_history.len());
    for (i, (a, b)) in history.iter().zip(&reference.rms_history).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "iteration {i}: socket rms {a} vs in-process {b}"
        );
    }
}

/// The distributed allreduce (partial → rank 0 → tree combine → broadcast)
/// is bitwise identical to the in-process collect tree: `tree_combine`
/// reproduces the pairing shape exactly.
#[test]
fn allreduce_over_sockets_is_bitwise_the_in_process_tree() {
    const NRANKS: usize = 5;
    let contribution = |r: usize| 0.1 + r as f64 * 0.017;
    let expected = {
        let group = LocalityGroup::new(Op2Config::dataflow(2), NRANKS);
        let globals: Vec<Global<f64>> = (0..NRANKS).map(|_| Global::<f64>::sum(1, "rms")).collect();
        for (r, g) in globals.iter().enumerate() {
            let cells = group.rank(r).decl_set(64 + r, "cells");
            let w = contribution(r);
            group
                .rank(r)
                .loop_("update", &cells)
                .arg(gbl_inc(g))
                .run(move |acc: &mut [f64]| acc[0] += w);
        }
        let red = group.allreduce(&globals);
        group.fence();
        red.get_scalar()
    };

    let got = spmd("allreduce", NRANKS, move |r, t| {
        let group = LocalityGroup::with_transport(Op2Config::dataflow(2), t);
        let g = Global::<f64>::sum(1, "rms");
        let cells = group.rank(r).decl_set(64 + r, "cells");
        let w = contribution(r);
        group
            .rank(r)
            .loop_("update", &cells)
            .arg(gbl_inc(&g))
            .run(move |acc: &mut [f64]| acc[0] += w);
        let red = group.allreduce(&[g]);
        let total = red.get_scalar();
        group.fence();
        group.barrier();
        total
    });
    assert_eq!(got, expected, "star combine must reproduce the tree shape");
}

/// Satellite regression: a halo sender whose gather is skipped by an
/// upstream kernel panic must *abandon* the exchange — the receive half
/// completes as a diagnostic no-op (counted, not panicking) and the
/// **first** panic, the kernel's own, is what the fence surfaces. The old
/// implementation's receive node called `try_recv().expect(...)`, burying
/// the root cause under a secondary panic while the process aborted.
#[test]
fn abandoned_exchange_surfaces_the_original_panic() {
    let before = op2_hpx::hpx::stats::snapshot();
    let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
    let c0 = group.rank(0).decl_set(4, "cells");
    let c1 = group.rank(1).decl_set(4, "cells");
    let q0 = group.rank(0).decl_dat_halo(&c0, 1, "q", vec![0.0f64; 8], 4);
    let q1 = group.rank(1).decl_dat(&c1, 1, "q", vec![1.0f64; 4]);

    // The exporter's pending writer dies; the exchange's gather node
    // dep-panics and is skipped.
    group
        .rank(1)
        .loop_("boom", &c1)
        .arg(write(&q1))
        .run(|_q: &mut [f64]| panic!("kernel exploded: synthetic failure"));

    let mut spec = HaloSpec::empty(2);
    spec.export_rows[1][0] = vec![0, 1, 2, 3];
    spec.import_range[0][1] = 4..8;
    let recvs = exchange(&group, &[q0.clone(), q1], &spec);

    // The receive COMPLETES (abandonment, not a hang) without panicking.
    recvs[0][1].wait();
    assert!(
        before.delta("op2.transport.sends_abandoned") >= 1,
        "the skipped gather must abandon its send"
    );
    assert!(
        before.delta("op2.transport.recvs_abandoned") >= 1,
        "the receive must degrade to a counted no-op"
    );
    assert!(
        q0.snapshot()[4..8].iter().all(|&v| v == 0.0),
        "abandoned halo rows stay stale"
    );

    // The fence surfaces the ORIGINAL kernel panic.
    let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| group.fence()))
        .expect_err("fence must propagate the kernel panic");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("kernel exploded"),
        "fence panicked with a secondary error instead of the root cause: {msg:?}"
    );
}

/// Injected link delay is honored by the in-process transport without
/// blocking a runtime worker: with a single worker thread, a delayed
/// exchange still completes (the old implementation slept *inside* the
/// send node, wedging the lone worker for the duration and serializing
/// every delayed pair).
#[test]
fn injected_delay_does_not_occupy_the_single_worker() {
    use op2_hpx::op2::locality::{exchange_with, ExchangeOpts};
    use std::time::{Duration, Instant};

    let group = LocalityGroup::new(Op2Config::dataflow(1), 4);
    let mut dats = Vec::new();
    let mut spec = HaloSpec::empty(4);
    for r in 0..4 {
        let cells = group.rank(r).decl_set(4, "cells");
        let d = group
            .rank(r)
            .decl_dat_halo(&cells, 1, "q", vec![r as f64; 7], 3);
        dats.push(d);
    }
    // All-to-all: every rank exports row 0 to every other rank; each
    // rank's three halo rows (4..7) are fed in exporter order.
    for dst in 0..4 {
        let mut off = 4;
        for src in 0..4 {
            if src == dst {
                continue;
            }
            spec.export_rows[src][dst] = vec![0];
            spec.import_range[dst][src] = off..off + 1;
            off += 1;
        }
    }
    spec.validate().expect("spec");

    let delay = Duration::from_millis(40);
    let t0 = Instant::now();
    let recvs = exchange_with(
        &group,
        &dats,
        &spec,
        &ExchangeOpts {
            link_delay: Some(delay),
        },
    );
    for per_rank in &recvs {
        for f in per_rank {
            f.wait();
        }
    }
    let elapsed = t0.elapsed();
    // 12 delayed pairs on ONE worker: worker-blocking sleeps would need
    // ≥ 12 × 40ms serialized; timer-deferred delivery needs ~one delay.
    assert!(
        elapsed < delay * 6,
        "12 pairs took {elapsed:?} — delay is blocking the worker"
    );
    for (i, d) in dats.iter().enumerate() {
        let snap = d.snapshot();
        let mut mirrored: Vec<f64> = snap[4..7].to_vec();
        mirrored.sort_by(f64::total_cmp);
        let expected: Vec<f64> = (0..4).filter(|&r| r != i).map(|r| r as f64).collect();
        assert_eq!(mirrored, expected, "rank {i} halo rows");
    }
}
