//! Implicit communication (the v2 loop API): the dirty-bit state machine
//! that turns access descriptors into automatic halo exchange, through
//! the public API.
//!
//! * a deterministic property test drives random owned-write / halo-read
//!   sequences across 2–4 ranks and asserts exchanges fire **exactly**
//!   when a stale import is read — no redundant exchanges, no stale
//!   reads, and skipped exchanges are actually skipped;
//! * an instrumented schedule comparison proves the implicit per-step
//!   exchange count is ≤ a manual every-step schedule, and **strictly
//!   fewer** when the producer does not write every step;
//! * the full Airfoil run under implicit communication issues exactly the
//!   pair exchanges the hand-scheduled PR 2 time loop issued;
//! * the PR 2 overlap property survives: interior blocks of a consumer
//!   loop execute while the implicitly scheduled receive is provably
//!   still pending.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use op2_hpx::airfoil::shard::{run_sharded, ShardedProblem};
use op2_hpx::airfoil::SolverConfig;
use op2_hpx::hpx::lco::Event;
use op2_hpx::mesh::channel_with_bump;
use op2_hpx::op2::args::{read_via, write};
use op2_hpx::op2::locality::{exchange, implicit_halo_stats, HaloSpec, LocalityGroup};
use op2_hpx::op2::{Dat, Map, Op2Config, Set};

/// xorshift64* — deterministic cases, reproducible from the printed seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// One rank's toy problem: `owned` cells plus `halo` mirror rows fed by
/// the next rank around the ring, and an identity gather over all rows.
struct RankState {
    cells: Set,
    q: Dat<f64>,
    edges: Set,
    ident: Map,
    out: Dat<f64>,
}

/// Builds an `nranks`-ring where rank `r` imports the first `halo` owned
/// rows of rank `(r+1) % nranks`, links the `q` shards into a halo ring,
/// and returns the per-rank states.
fn build_ring(group: &LocalityGroup, owned: usize, halo: usize) -> (Vec<RankState>, HaloSpec) {
    let n = group.nranks();
    let mut spec = HaloSpec::empty(n);
    for r in 0..n {
        let peer = (r + 1) % n;
        spec.import_range[r][peer] = owned..owned + halo;
        spec.export_rows[peer][r] = (0..halo as u32).collect();
    }
    spec.validate().unwrap();
    let states: Vec<RankState> = (0..n)
        .map(|r| {
            let op2 = group.rank(r);
            let cells = op2.decl_set(owned, "cells");
            let mut init = vec![1000.0 * r as f64; owned];
            init.extend(std::iter::repeat_n(-1.0, halo));
            let q = op2.decl_dat_halo(&cells, 1, "q", init, halo);
            let edges = op2.decl_set(owned + halo, "edges");
            let ident = op2.decl_map_halo(
                &edges,
                &cells,
                1,
                (0..(owned + halo) as u32).collect(),
                "ident",
                halo,
            );
            let out = op2.decl_dat(&edges, 1, "out", vec![f64::NAN; owned + halo]);
            RankState {
                cells,
                q,
                edges,
                ident,
                out,
            }
        })
        .collect();
    let qs: Vec<Dat<f64>> = states.iter().map(|s| s.q.clone()).collect();
    group.link_halo(&qs, &spec);
    (states, spec)
}

/// The dirty-bit state machine, property-tested: across random sequences
/// of owned-writes and halo-reads on 2–4 ranks, an exchange fires exactly
/// when (and only when) a stale import is read, the reader always sees
/// the exporter's latest committed values (no stale reads), and clean
/// reads schedule nothing (no redundant exchanges).
#[test]
fn dirty_bit_state_machine_fires_exactly_on_stale_reads() {
    for case in 0..16u64 {
        let mut rng = Rng::new(0xD112_7B17_5EED ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let nranks = rng.in_range(2, 5);
        let owned = rng.in_range(3, 12);
        let halo = rng.in_range(1, owned.min(4) + 1);
        let config = match case % 3 {
            0 => Op2Config::seq(),
            1 => Op2Config::fork_join(2),
            _ => Op2Config::dataflow(2),
        };
        let group = LocalityGroup::new(config, nranks);
        let (states, _spec) = build_ring(&group, owned, halo);

        // Model state, in lockstep with the runtime's dirty bits.
        let mut last_written: Vec<f64> = (0..nranks).map(|r| 1000.0 * r as f64).collect();
        let mut halo_value: Vec<f64> = vec![-1.0; nranks]; // declared init
        let mut dirty = vec![true; nranks]; // imports start stale
        let (mut fired, mut skipped, mut refreshes) = (0u64, 0u64, 0u64);

        let mut next_value = 1.0;
        for _op in 0..24 {
            let r = rng.in_range(0, nranks);
            if rng.next().is_multiple_of(2) {
                // Owned write on rank r: all its owned rows get a fresh
                // value; the importer's mirror goes stale.
                let v = next_value;
                next_value += 1.0;
                group
                    .rank(r)
                    .loop_("w", &states[r].cells)
                    .arg(write(&states[r].q))
                    .run(move |q: &mut [f64]| q[0] = v);
                last_written[r] = v;
                let importer = (r + nranks - 1) % nranks;
                dirty[importer] = true;
            } else {
                // Halo read on rank r (identity gather over owned + halo).
                let s = &states[r];
                group
                    .rank(r)
                    .loop_("gather", &s.edges)
                    .arg(read_via(&s.q, &s.ident, 0))
                    .arg(write(&s.out))
                    .run(|q: &[f64], o: &mut [f64]| o[0] = q[0]);
                refreshes += 1;
                let peer = (r + 1) % nranks;
                if dirty[r] {
                    fired += 1;
                    halo_value[r] = last_written[peer];
                    dirty[r] = false;
                } else {
                    skipped += 1;
                }
                group.rank(r).fence();
                let snap = s.out.snapshot();
                assert!(
                    snap[..owned].iter().all(|&v| v == last_written[r]),
                    "case {case}: owned rows stale on rank {r}"
                );
                assert!(
                    snap[owned..].iter().all(|&v| v == halo_value[r]),
                    "case {case}: rank {r} read halo {:?}, model says {}",
                    &snap[owned..],
                    halo_value[r]
                );
            }
        }
        group.fence();
        let stats = implicit_halo_stats(&states[0].q).expect("linked dat reports stats");
        assert_eq!(
            stats.pair_exchanges, fired,
            "case {case}: exchanges must fire exactly once per stale read"
        );
        assert_eq!(
            stats.skipped_clean, skipped,
            "case {case}: clean reads must be skipped (and counted)"
        );
        assert_eq!(stats.refresh_calls, refreshes, "case {case}");
    }
}

/// Instrumented schedule comparison. A producer writes only every other
/// step while a consumer reads the halo every step. The manual PR 2 style
/// schedule exchanges unconditionally per step; the dirty bits skip the
/// steps with nothing new — strictly fewer exchanges, identical values.
#[test]
fn implicit_schedule_issues_strictly_fewer_exchanges_on_redundant_writes() {
    let steps = 6usize;
    let owned = 8usize;
    let halo = 4usize;

    // --- Implicit: linked ring, no communication calls.
    let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
    let (states, _) = build_ring(&group, owned, halo);
    let mut implicit_reads = Vec::new();
    for step in 0..steps {
        if step.is_multiple_of(2) {
            let v = step as f64 + 100.0;
            group
                .rank(1)
                .loop_("produce", &states[1].cells)
                .arg(write(&states[1].q))
                .run(move |q: &mut [f64]| q[0] = v);
        }
        let s = &states[0];
        group
            .rank(0)
            .loop_("consume", &s.edges)
            .arg(read_via(&s.q, &s.ident, 0))
            .arg(write(&s.out))
            .run(|q: &[f64], o: &mut [f64]| o[0] = q[0]);
        group.rank(0).fence();
        implicit_reads.push(s.out.snapshot());
    }
    group.fence();
    let implicit_fired = implicit_halo_stats(&states[0].q).unwrap().pair_exchanges;

    // --- Manual: same program, un-linked dats, one exchange per step
    // (the PR 2 hand schedule, which cannot know the producer idled).
    let group_m = LocalityGroup::new(Op2Config::dataflow(2), 2);
    let mut spec = HaloSpec::empty(2);
    spec.import_range[0][1] = owned..owned + halo;
    spec.export_rows[1][0] = (0..halo as u32).collect();
    #[allow(clippy::type_complexity)] // one-off test fixture tuple
    let states_m: Vec<(Set, Dat<f64>, Set, Map, Dat<f64>)> = (0..2)
        .map(|r| {
            let op2 = group_m.rank(r);
            let cells = op2.decl_set(owned, "cells");
            let h = if r == 0 { halo } else { 0 };
            let mut init = vec![1000.0 * r as f64; owned];
            init.extend(std::iter::repeat_n(-1.0, h));
            let q = op2.decl_dat_halo(&cells, 1, "q", init, h);
            let edges = op2.decl_set(owned + h, "edges");
            let ident = op2.decl_map_halo(
                &edges,
                &cells,
                1,
                (0..(owned + h) as u32).collect(),
                "ident",
                h,
            );
            let out = op2.decl_dat(&edges, 1, "out", vec![f64::NAN; owned + h]);
            (cells, q, edges, ident, out)
        })
        .collect();
    let qs_m: Vec<Dat<f64>> = states_m.iter().map(|s| s.1.clone()).collect();
    let mut manual_fired = 0u64;
    for (step, implicit_read) in implicit_reads.iter().enumerate() {
        if step.is_multiple_of(2) {
            let v = step as f64 + 100.0;
            group_m
                .rank(1)
                .loop_("produce", &states_m[1].0)
                .arg(write(&states_m[1].1))
                .run(move |q: &mut [f64]| q[0] = v);
        }
        exchange(&group_m, &qs_m, &spec);
        manual_fired += 1; // one nonempty pair per exchange call
        let (_, q, edges, ident, out) = &states_m[0];
        group_m
            .rank(0)
            .loop_("consume", edges)
            .arg(read_via(q, ident, 0))
            .arg(write(out))
            .run(|q: &[f64], o: &mut [f64]| o[0] = q[0]);
        group_m.rank(0).fence();
        assert_eq!(
            &out.snapshot(),
            implicit_read,
            "step {step}: implicit and manual schedules must read the same values"
        );
    }
    group_m.fence();

    assert!(
        implicit_fired <= manual_fired,
        "implicit ({implicit_fired}) must never exceed the manual schedule ({manual_fired})"
    );
    assert!(
        implicit_fired < manual_fired,
        "redundant-write case must be strictly fewer: {implicit_fired} vs {manual_fired}"
    );
    // 3 producing steps (initial staleness is consumed by step 0's read).
    assert_eq!(implicit_fired, 3);
}

/// The full Airfoil run under implicit communication issues exactly the
/// per-step pair exchanges the manual PR 2 schedule issued: two dats
/// (q, adt) × every nonempty (src,dst) pair × 2 inner steps × niter —
/// never more.
#[test]
fn airfoil_implicit_exchange_count_matches_the_manual_schedule() {
    let mesh = channel_with_bump(24, 12);
    let niter = 3;
    let nranks = 4;
    let mut shp = ShardedProblem::declare(Op2Config::dataflow(2), &mesh, nranks);
    let nonempty_pairs: u64 = (0..nranks)
        .flat_map(|src| (0..nranks).map(move |dst| (src, dst)))
        .filter(|&(src, dst)| src != dst && !shp.cell_spec.export_rows[src][dst].is_empty())
        .count() as u64;
    assert!(nonempty_pairs > 0, "4-rank decomposition must communicate");

    let r = run_sharded(
        &mut shp,
        &SolverConfig {
            niter,
            window: 2,
            print_every: 0,
            ..SolverConfig::default()
        },
    );
    assert!(r.rms_history.iter().all(|v| v.is_finite()));

    let q_stats = implicit_halo_stats(&shp.parts[0].p_q).unwrap();
    let adt_stats = implicit_halo_stats(&shp.parts[0].p_adt).unwrap();
    // The manual PR 2 schedule: exchange(q) + exchange(adt) per inner
    // step, each firing every nonempty pair.
    let manual_per_dat = niter as u64 * 2 * nonempty_pairs;
    assert!(
        q_stats.pair_exchanges <= manual_per_dat,
        "q: implicit {} > manual {manual_per_dat}",
        q_stats.pair_exchanges
    );
    assert!(
        adt_stats.pair_exchanges <= manual_per_dat,
        "adt: implicit {} > manual {manual_per_dat}",
        adt_stats.pair_exchanges
    );
    // q and adt are rewritten every inner step, so the counts are exactly
    // equal — the dirty bits reconstruct the hand schedule.
    assert_eq!(q_stats.pair_exchanges, manual_per_dat);
    assert_eq!(adt_stats.pair_exchanges, manual_per_dat);
    // res is deliberately unlinked: its halo increments are dead values.
    assert!(implicit_halo_stats(&shp.parts[0].p_res).is_none());
}

/// PR 2's overlap property under *implicit* scheduling: the consumer's
/// interior blocks execute while the implicitly scheduled halo receive is
/// provably still pending (the exporter's writer is hostage on an event).
#[test]
fn interior_blocks_overlap_implicitly_scheduled_receives() {
    let group = LocalityGroup::new(Op2Config::dataflow(2).with_block_size(64), 2);
    let owned = 256;
    let halo = 64;
    let (states, _) = build_ring(&group, owned, halo);

    // Hostage writer on rank 1 (rank 0's exporter): marks q dirty, then
    // blocks until the gate opens — so the implicit exchange triggered by
    // rank 0's consumer cannot complete early.
    let gate = Arc::new(Event::new());
    let g = Arc::clone(&gate);
    group
        .rank(1)
        .loop_("produce", &states[1].cells)
        .arg(write(&states[1].q))
        .run(move |q: &mut [f64]| {
            g.wait();
            q[0] = 42.0;
        });

    let s = &states[0];
    let executed = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&executed);
    let h = group
        .rank(0)
        .loop_("consume", &s.edges)
        .arg(read_via(&s.q, &s.ident, 0))
        .arg(write(&s.out))
        .run(move |q: &[f64], o: &mut [f64]| {
            o[0] = q[0];
            counter.fetch_add(1, Ordering::Relaxed);
        });

    // Interior blocks must make progress while the receive is hostage.
    let deadline = Instant::now() + Duration::from_secs(30);
    while executed.load(Ordering::Acquire) == 0 {
        assert!(Instant::now() < deadline, "no interior block ever executed");
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(!h.is_done(), "the boundary block cannot have run yet");
    gate.set();
    h.wait();
    let snap = s.out.snapshot();
    assert!(
        snap[..owned].iter().all(|&v| v == 0.0),
        "interior reads rank 0's owned values"
    );
    assert!(
        snap[owned..].iter().all(|&v| v == 42.0),
        "boundary reads the implicitly exchanged halo"
    );
    assert_eq!(
        implicit_halo_stats(&s.q).unwrap().pair_exchanges,
        1,
        "exactly one implicit pair exchange"
    );
}

/// The loop-spec cache and halo engine surface their counters through the
/// `hpx_rt::stats` named-counter registry (reported by the
/// `pipeline_chain` bench).
#[test]
fn named_counters_expose_spec_cache_and_halo_activity() {
    // Deltas, not absolutes: the registry is process-wide and sibling
    // tests bump the same counters.
    let before = op2_hpx::hpx::stats::snapshot();
    let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
    let (states, _) = build_ring(&group, 8, 2);
    let s = &states[0];
    for _ in 0..3 {
        group
            .rank(0)
            .loop_("gather", &s.edges)
            .arg(read_via(&s.q, &s.ident, 0))
            .arg(write(&s.out))
            .run(|q: &[f64], o: &mut [f64]| o[0] = q[0]);
    }
    group.fence();
    let names: Vec<&str> = op2_hpx::hpx::stats::counters()
        .into_iter()
        .map(|(n, _)| n)
        .collect();
    assert!(names.contains(&"op2.spec_cache.hits"));
    assert!(names.contains(&"op2.spec_cache.misses"));
    assert!(names.contains(&"op2.halo.pairs_fired"));
    assert!(before.delta("op2.spec_cache.hits") + before.delta("op2.spec_cache.replans") >= 2);
    assert!(before.delta("op2.halo.pairs_fired") >= 1);
    let (built, hits) = group.rank(0).spec_cache_stats();
    assert_eq!(built, 1, "one shape");
    // The default (Auto) policy measures: a re-submission is a hit unless
    // real-clock feedback moved the resolved granularity in between, which
    // re-plans instead.
    assert_eq!(
        hits + group.rank(0).spec_cache_replans(),
        2,
        "two re-submissions"
    );
}
