//! Cross-backend equivalence of the full Airfoil application through the
//! umbrella crate's public API: every execution strategy must produce the
//! same physics (up to summation-order rounding).

use op2_hpx::airfoil::shard::{run_sharded, ShardedProblem};
use op2_hpx::airfoil::verify::{all_finite, max_rel_diff, max_scaled_diff};
use op2_hpx::airfoil::{solver, Problem, SolverConfig};
use op2_hpx::hpx::{ChunkPolicy, PersistentChunker};
use op2_hpx::mesh::channel_with_bump;
use op2_hpx::op2::{Backend, Layout, Op2, Op2Config};

fn simulate(config: Op2Config) -> (Vec<f64>, Vec<f64>) {
    let op2 = Op2::new(config);
    let mesh = channel_with_bump(32, 16);
    let p = Problem::declare(&op2, &mesh);
    let r = solver::run(
        &op2,
        &p,
        &SolverConfig {
            niter: 12,
            window: 4,
            print_every: 0,
            ..SolverConfig::default()
        },
    );
    (r.rms_history, p.p_q.snapshot())
}

/// One representative of every chunk-policy family, freshly constructed
/// per use (a `PersistentAuto` handle must not leak calibration between
/// configs).
fn policy_matrix() -> Vec<(&'static str, ChunkPolicy)> {
    vec![
        ("static64", ChunkPolicy::Static { size: 64 }),
        ("numchunks4", ChunkPolicy::NumChunks { chunks: 4 }),
        ("guided16", ChunkPolicy::Guided { min: 16 }),
        ("auto", ChunkPolicy::default()),
        (
            "persistent_auto",
            ChunkPolicy::PersistentAuto(PersistentChunker::new()),
        ),
    ]
}

fn backend_config(backend: Backend) -> Op2Config {
    match backend {
        Backend::Seq => Op2Config::seq(),
        Backend::ForkJoin => Op2Config::fork_join(2),
        Backend::Dataflow => Op2Config::dataflow(2),
    }
}

#[test]
fn all_backends_and_optimizations_agree() {
    let (rms_ref, q_ref) = simulate(Op2Config::seq());
    assert!(all_finite(&rms_ref) && all_finite(&q_ref));

    let mut candidates: Vec<(String, Op2Config)> = vec![
        ("fork_join(4)".into(), Op2Config::fork_join(4)),
        (
            "dataflow+persistent_auto()".into(),
            Op2Config::persistent_auto(2),
        ),
        (
            "dataflow+prefetch".into(),
            Op2Config::dataflow(2).with_prefetch(15),
        ),
        (
            "dataflow+block128".into(),
            Op2Config::dataflow(2).with_block_size(128),
        ),
    ];
    // The full Backend x ChunkPolicy matrix: adaptive (feedback-resolved)
    // granularity must never change the physics on any backend.
    for backend in [Backend::Seq, Backend::ForkJoin, Backend::Dataflow] {
        for (pname, policy) in policy_matrix() {
            candidates.push((
                format!("{backend}+{pname}"),
                backend_config(backend).with_chunk(policy),
            ));
        }
    }
    for (name, config) in candidates {
        let (rms, q) = simulate(config);
        let d_rms = max_rel_diff(&rms_ref, &rms);
        let d_q = max_scaled_diff(&q_ref, &q, 1.0);
        assert!(d_rms < 1e-7, "{name}: rms deviates by {d_rms:e}");
        assert!(d_q < 1e-9, "{name}: q deviates by {d_q:e}");
    }
}

/// The multi-rank extension of the harness above: the sharded execution
/// path must reproduce the single-locality physics under every backend —
/// the sequential reference, the fork-join baseline and the dataflow
/// engine with its overlapped halo exchange all within the same rounding
/// budget, and 1-rank sharding under Seq *bitwise* (identical renumbering,
/// identical execution order).
#[test]
fn sharded_ranks_agree_with_single_locality_across_backends() {
    let (rms_ref, q_ref) = simulate(Op2Config::seq());
    let mesh = channel_with_bump(32, 16);
    let cfg = SolverConfig {
        niter: 12,
        window: 4,
        print_every: 0,
        ..SolverConfig::default()
    };
    let candidates: Vec<(&str, Op2Config, usize)> = vec![
        ("seq x1", Op2Config::seq(), 1),
        ("seq x4", Op2Config::seq(), 4),
        ("fork_join(2) x4", Op2Config::fork_join(2), 4),
        ("dataflow(2) x4", Op2Config::dataflow(2), 4),
        ("dataflow(4) x3", Op2Config::dataflow(4), 3),
        (
            "dataflow(2) x4 block128",
            Op2Config::dataflow(2).with_block_size(128),
            4,
        ),
        // Adaptive granularity across an implicit-halo exchange boundary:
        // ranks share one persistent chunker (the config clone carries
        // it), so feedback from every rank feeds one cost table — and the
        // physics still matches the single-locality reference.
        (
            "dataflow(2) x4 persistent_auto",
            Op2Config::persistent_auto(2),
            4,
        ),
        (
            "dataflow(2) x1 persistent_auto",
            Op2Config::persistent_auto(2),
            1,
        ),
        (
            "dataflow(2) x4 guided16",
            Op2Config::dataflow(2).with_chunk(ChunkPolicy::Guided { min: 16 }),
            4,
        ),
        (
            "fork_join(2) x4 static64",
            Op2Config::fork_join(2).with_chunk(ChunkPolicy::Static { size: 64 }),
            4,
        ),
    ];
    for (name, config, nranks) in candidates {
        let mut shp = ShardedProblem::declare(config, &mesh, nranks);
        let r = run_sharded(&mut shp, &cfg);
        let q = shp.gather_q();
        if name == "seq x1" {
            assert_eq!(r.rms_history, rms_ref, "1-rank Seq sharding is bitwise");
            assert_eq!(q, q_ref, "1-rank Seq sharding is bitwise");
            continue;
        }
        let d_rms = max_rel_diff(&rms_ref, &r.rms_history);
        let d_q = max_scaled_diff(&q_ref, &q, 1.0);
        assert!(d_rms < 1e-7, "{name}: rms deviates by {d_rms:e}");
        assert!(d_q < 1e-9, "{name}: q deviates by {d_q:e}");
    }
}

/// The data layout is a pure storage policy: switching every `Dat` to SoA
/// component planes must not change the physics. Under Seq the element
/// order and the arithmetic are identical — staging rows through scratch
/// views must not perturb a single bit — so the results are bitwise-equal.
/// The threaded backends and the sharded path stay within the usual
/// summation-order rounding budget.
#[test]
fn soa_layout_matches_aos_across_backends() {
    let (rms_ref, q_ref) = simulate(Op2Config::seq());
    let (rms_soa, q_soa) = simulate(Op2Config::seq().with_layout(Layout::SoA));
    assert_eq!(rms_soa, rms_ref, "Seq SoA is bitwise-equal to AoS");
    assert_eq!(q_soa, q_ref, "Seq SoA is bitwise-equal to AoS");

    let candidates: Vec<(&str, Op2Config)> = vec![
        (
            "fork_join(4)+soa",
            Op2Config::fork_join(4).with_layout(Layout::SoA),
        ),
        (
            "dataflow(2)+soa",
            Op2Config::dataflow(2).with_layout(Layout::SoA),
        ),
        (
            "dataflow(2)+soa+prefetch",
            Op2Config::dataflow(2)
                .with_prefetch(15)
                .with_layout(Layout::SoA),
        ),
        (
            "dataflow+persistent_auto+soa",
            Op2Config::persistent_auto(2).with_layout(Layout::SoA),
        ),
    ];
    for (name, config) in candidates {
        let (rms, q) = simulate(config);
        let d_rms = max_rel_diff(&rms_ref, &rms);
        let d_q = max_scaled_diff(&q_ref, &q, 1.0);
        assert!(d_rms < 1e-7, "{name}: rms deviates by {d_rms:e}");
        assert!(d_q < 1e-9, "{name}: q deviates by {d_q:e}");
    }

    // Sharded: the halo exchange gathers and scatters through the
    // canonical row-major wire format, so SoA-resident ranks interoperate
    // with the same cross-rank schedule the AoS ranks use.
    let mesh = channel_with_bump(32, 16);
    let cfg = SolverConfig {
        niter: 12,
        window: 4,
        print_every: 0,
        ..SolverConfig::default()
    };
    for (name, config, nranks) in [
        ("seq x1 soa", Op2Config::seq().with_layout(Layout::SoA), 1),
        (
            "dataflow(2) x4 soa",
            Op2Config::dataflow(2).with_layout(Layout::SoA),
            4,
        ),
        (
            "fork_join(2) x3 soa",
            Op2Config::fork_join(2).with_layout(Layout::SoA),
            3,
        ),
    ] {
        let mut shp = ShardedProblem::declare(config, &mesh, nranks);
        let r = run_sharded(&mut shp, &cfg);
        let q = shp.gather_q();
        if name == "seq x1 soa" {
            assert_eq!(r.rms_history, rms_ref, "1-rank Seq SoA is bitwise");
            assert_eq!(q, q_ref, "1-rank Seq SoA sharding is bitwise");
            continue;
        }
        let d_rms = max_rel_diff(&rms_ref, &r.rms_history);
        let d_q = max_scaled_diff(&q_ref, &q, 1.0);
        assert!(d_rms < 1e-7, "{name}: rms deviates by {d_rms:e}");
        assert!(d_q < 1e-9, "{name}: q deviates by {d_q:e}");
    }
}

/// The app-generic matrix: every [`App`] (airfoil, heat, jac) × every
/// backend × plain and ≥2-rank sharded localities reproduces its own Seq
/// single-world reference through the one shared harness — nothing in
/// the application layer is airfoil-specific.
#[test]
fn every_app_agrees_across_backends_and_shardings() {
    use op2_hpx::airfoil::AirfoilApp;
    use op2_hpx::app::{run, App, HeatApp, JacApp, RunConfig};

    let apps: Vec<Box<dyn App>> = vec![
        Box::new(AirfoilApp::new(16, 8)),
        Box::new(HeatApp::new(12)),
        Box::new(JacApp::new(12)),
    ];
    // Fixed iterations (not the spec's convergence exit) so every
    // backend runs the same step count and histories are comparable.
    let cfg = || RunConfig::iterations(12, 4);

    for app in &apps {
        let name = app.name();
        let op2 = Op2::new(Op2Config::seq());
        let mut reference = app.declare(&op2);
        let out_ref = run(reference.as_mut(), cfg());
        let state_ref = reference.state();
        assert!(all_finite(&out_ref.residuals) && all_finite(&state_ref));

        // Plain worlds on the threaded backends (and the SoA layout).
        for (cname, config) in [
            ("fork_join(2)", Op2Config::fork_join(2)),
            ("dataflow(2)", Op2Config::dataflow(2)),
            (
                "dataflow(2)+soa",
                Op2Config::dataflow(2).with_layout(Layout::SoA),
            ),
        ] {
            let op2 = Op2::new(config);
            let mut inst = app.declare(&op2);
            let out = run(inst.as_mut(), cfg());
            let d_res = max_rel_diff(&out_ref.residuals, &out.residuals);
            let d_state = max_scaled_diff(&state_ref, &inst.state(), 1.0);
            assert!(d_res < 1e-7, "{name}/{cname}: residuals deviate {d_res:e}");
            assert!(d_state < 1e-9, "{name}/{cname}: state deviates {d_state:e}");
        }

        // Sharded localities, two and three ranks.
        for (cname, config, nranks) in [
            ("seq x2", Op2Config::seq(), 2),
            ("fork_join(2) x2", Op2Config::fork_join(2), 2),
            ("dataflow(2) x3", Op2Config::dataflow(2), 3),
        ] {
            let mut inst = app.declare_sharded(config, nranks);
            let out = run(inst.as_mut(), cfg());
            let d_res = max_rel_diff(&out_ref.residuals, &out.residuals);
            let d_state = max_scaled_diff(&state_ref, &inst.state(), 1.0);
            assert!(d_res < 1e-7, "{name}/{cname}: residuals deviate {d_res:e}");
            assert!(d_state < 1e-9, "{name}/{cname}: state deviates {d_state:e}");
        }
    }
}

#[test]
fn repeated_runs_on_one_context_continue_the_flow() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let mesh = channel_with_bump(24, 12);
    let p = Problem::declare(&op2, &mesh);
    let cfg = SolverConfig {
        niter: 4,
        window: 2,
        print_every: 0,
        ..SolverConfig::default()
    };
    let r1 = solver::run(&op2, &p, &cfg);
    let r2 = solver::run(&op2, &p, &cfg);
    // The flow keeps evolving — histories are different but all finite.
    assert!(all_finite(&r1.rms_history) && all_finite(&r2.rms_history));
    assert_ne!(r1.rms_history, r2.rms_history);
    // Plans are cached across calls: 2 colored shapes (res, bres), each at
    // the probe-default granularity plus the granularities the measured
    // feedback later resolved (adaptive chunking builds a plan per
    // distinct coloring granularity; a converged chunker stops adding).
    let (built, _) = op2.plan_cache_stats();
    assert!(
        (2..=8).contains(&built),
        "colored plans per (shape x granularity), got {built}"
    );
    // Reuse now happens one level up: the loop-spec cache returns the
    // whole schedule (blocks + color rounds) for repeated submissions, so
    // the plan cache is only consulted on spec misses and re-plans. 5 loop
    // shapes, two runs of 4 iterations: (1 save + 2*(adt+res+bres+update))
    // * 4 = 36 submissions each. Every submission is a miss (first of
    // shape), a re-plan (the measured feedback moved that shape's resolved
    // granularity — at least one shape must move off the probe default
    // under the default Auto policy) or a hit.
    let (spec_built, spec_hits) = op2.spec_cache_stats();
    let replans = op2.spec_cache_replans();
    assert_eq!(spec_built, 5, "one live schedule per Airfoil loop shape");
    assert_eq!(
        spec_hits + replans,
        2 * 36 - 5,
        "submissions = misses + re-plans + hits"
    );
    assert!(replans >= 1, "feedback must move off the probe default");
    assert!(
        replans <= 15,
        "a converged chunker must stop re-planning, got {replans}"
    );
}
