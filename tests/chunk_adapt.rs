//! Measured-convergence harness for feedback-driven adaptive chunking on
//! the Dataflow backend (ISSUE 4 tentpole).
//!
//! Every test injects a **fake clock** (`hpx_rt::timing::Clock::fake`)
//! into the granularity feedback and has the "kernel" advance it by a
//! synthetic per-element cost, so the feedback loop observes exactly the
//! costs the test scripted — convergence, the converged value, and the
//! loop-spec cache's re-plan accounting are all asserted deterministically
//! on a single-worker runtime.
//!
//! The known-optimal granularity of a uniform workload is
//! `pow2_round(target / per_element_cost)` (power-of-two quantization is
//! the chunker's hysteresis), subject to the load-balance cap — the test
//! parameters are chosen so the cap never binds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use op2_hpx::hpx::timing::Clock;
use op2_hpx::hpx::{ChunkPolicy, PersistentChunker};
use op2_hpx::op2::args::{inc_via, write};
use op2_hpx::op2::{__dataflow_resolved_block_size as resolved, Op2, Op2Config};

/// A dataflow context on one worker with a fake clock and a 128µs `Auto`
/// target: 1µs/element cost resolves to 128-element nodes.
fn fake_clock_world(clock: &Clock) -> Op2 {
    Op2::new(
        Op2Config::dataflow(1)
            .with_clock(clock.clone())
            .with_chunk(ChunkPolicy::Auto {
                target: Duration::from_micros(128),
            }),
    )
}

/// Uniform synthetic cost: the chunker must converge to the known-optimal
/// granularity after ONE measured iteration and then stop re-planning —
/// exactly one re-plan total, every later submission a spec-cache hit.
#[test]
fn converges_to_known_optimal_for_uniform_cost() {
    let clock = Clock::fake();
    let op2 = fake_clock_world(&clock);
    let cells = op2.decl_set(16_384, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 16_384]);

    // Probe default before any measurement: the mini-partition block size.
    assert_eq!(resolved(&op2, "uniform", &cells), 256);

    let mut history = Vec::new();
    for _ in 0..6 {
        let c = clock.clone();
        op2.loop_("uniform", &cells)
            .arg(write(&x))
            .run(move |x: &mut [f64]| {
                c.advance(Duration::from_micros(1)); // 1µs per element
                x[0] += 1.0;
            })
            .wait();
        history.push(resolved(&op2, "uniform", &cells));
    }
    // Known optimal: 128µs target / 1µs per element = 128, already a power
    // of two; converged after the first measured iteration, stable after.
    assert_eq!(history, vec![128; 6], "converged after one iteration");

    let (built, hits) = op2.spec_cache_stats();
    assert_eq!(built, 1, "one live schedule for the shape");
    assert_eq!(
        op2.spec_cache_replans(),
        1,
        "one granularity change = one re-plan"
    );
    assert_eq!(hits, 4, "6 submissions = 1 miss + 1 re-plan + 4 hits");
    assert!(x.snapshot().iter().all(|&v| v == 6.0), "results unchanged");
}

/// Skewed per-element cost (alternating cheap/expensive elements): the
/// EWMA sees each node's *mean* cost, and the chunker converges to the
/// optimum for that mean — same guarantee, same single re-plan.
#[test]
fn converges_to_mean_cost_optimum_for_skewed_cost() {
    let clock = Clock::fake();
    let op2 = fake_clock_world(&clock);
    let cells = op2.decl_set(16_384, "cells");
    // Seed each element with its index: adding 2 per iteration preserves
    // parity, so element costs stay skewed the same way every iteration.
    let x = op2.decl_dat(&cells, 1, "x", (0..16_384).map(|i| i as f64).collect());

    for _ in 0..5 {
        let c = clock.clone();
        op2.loop_("skewed", &cells)
            .arg(write(&x))
            .run(move |x: &mut [f64]| {
                // Elements alternate 500ns / 1500ns -> every (even-sized)
                // node measures a 1µs mean.
                let cost = if (x[0] as usize).is_multiple_of(2) {
                    500
                } else {
                    1500
                };
                c.advance(Duration::from_nanos(cost));
                x[0] += 2.0;
            })
            .wait();
    }
    // Mean cost 1µs -> same 128-element optimum as the uniform workload.
    assert_eq!(resolved(&op2, "skewed", &cells), 128);
    assert_eq!(op2.spec_cache_replans(), 1, "skew must not cause churn");
    let snapshot = op2.granularity_feedback().snapshot();
    assert_eq!(snapshot.len(), 1, "one (kernel, set) entry");
    let (ref kernel, _, cost) = snapshot[0];
    assert_eq!(kernel, "skewed");
    assert!(
        (cost.ewma_ns_per_elem - 1000.0).abs() < 1.0,
        "EWMA holds the mean cost, got {}",
        cost.ewma_ns_per_elem
    );
}

/// A workload **phase change mid-solve** (per-element cost jumps 4x): the
/// feedback snaps to the new cost, the resolved granularity moves once,
/// and the loop-spec cache re-plans **exactly once** for the change —
/// asserted through both the per-context counters and the process-wide
/// `op2.spec_cache.*` named counters.
#[test]
fn granularity_change_mid_solve_replans_exactly_once() {
    let clock = Clock::fake();
    let op2 = fake_clock_world(&clock);
    let cells = op2.decl_set(16_384, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 16_384]);
    let cost_ns = Arc::new(AtomicU64::new(1000));

    let run_iter = || {
        let c = clock.clone();
        let cost = Arc::clone(&cost_ns);
        op2.loop_("phased", &cells)
            .arg(write(&x))
            .run(move |x: &mut [f64]| {
                c.advance(Duration::from_nanos(cost.load(Ordering::Relaxed)));
                x[0] += 1.0;
            })
            .wait();
    };

    // Phase 1: converge at 1µs/element -> 128.
    for _ in 0..3 {
        run_iter();
    }
    assert_eq!(resolved(&op2, "phased", &cells), 128);
    let replans_before = op2.spec_cache_replans();
    let global_before = op2_hpx::hpx::stats::snapshot();
    assert_eq!(
        replans_before, 1,
        "initial convergence off the probe default"
    );

    // Phase 2: the kernel gets 4x heavier mid-solve. The snap-on-phase-
    // change EWMA moves the estimate in one measured iteration, so the
    // next submissions re-plan once to 128µs/4µs = 32 and then hit.
    cost_ns.store(4000, Ordering::Relaxed);
    for _ in 0..4 {
        run_iter();
    }
    assert_eq!(
        resolved(&op2, "phased", &cells),
        32,
        "new optimum after the change"
    );
    assert_eq!(
        op2.spec_cache_replans() - replans_before,
        1,
        "one granularity change = exactly one re-plan"
    );
    assert_eq!(
        global_before.delta("op2.spec_cache.replans"),
        op2.spec_cache_replans() - replans_before,
        "process-wide op2.spec_cache.replans mirrors the context counter"
    );
    assert!(x.snapshot().iter().all(|&v| v == 7.0), "results unchanged");
}

/// Adaptive granularity on a **colored (indirect) loop**: the resolved
/// granularity is the coloring block size, a granularity change rebuilds
/// the plan once, and the increments stay exact across the change.
#[test]
fn colored_loops_adapt_and_stay_exact_across_a_change() {
    let clock = Clock::fake();
    let op2 = fake_clock_world(&clock);
    let n = 4096;
    let edges = op2.decl_set(n, "edges");
    let nodes = op2.decl_set(n, "nodes");
    let mut idx = Vec::with_capacity(2 * n);
    for e in 0..n {
        idx.push(e as u32);
        idx.push(((e + 1) % n) as u32);
    }
    let ring = op2.decl_map(&edges, &nodes, 2, idx, "ring");
    let acc = op2.decl_dat(&nodes, 1, "acc", vec![0.0f64; n]);
    let cost_ns = Arc::new(AtomicU64::new(500));

    let iters = 6usize;
    for i in 0..iters {
        if i == 3 {
            cost_ns.store(2000, Ordering::Relaxed); // phase change
        }
        let c = clock.clone();
        let cost = Arc::clone(&cost_ns);
        op2.loop_("ring_inc", &edges)
            .arg(inc_via(&acc, &ring, 0))
            .arg(inc_via(&acc, &ring, 1))
            .run(move |a: &mut [f64], b: &mut [f64]| {
                c.advance(Duration::from_nanos(cost.load(Ordering::Relaxed)));
                a[0] += 1.0;
                b[0] += 1.0;
            })
            .wait();
    }
    // 500ns -> 128µs/500ns = 256 (= probe default, no re-plan!); then
    // 2µs -> 64: exactly one granularity change in the whole run.
    assert_eq!(resolved(&op2, "ring_inc", &edges), 64);
    assert_eq!(op2.spec_cache_replans(), 1);
    // Plans exist for both coloring granularities; the partition+coloring
    // invariant held across the change: every node got 2 increments per
    // iteration.
    let (plans_built, _) = op2.plan_cache_stats();
    assert_eq!(plans_built, 2, "one colored plan per granularity");
    assert!(acc.snapshot().iter().all(|&v| v == 2.0 * iters as f64));
}

/// `Guided` resolves from feedback too, with its `min` as a hard floor.
#[test]
fn guided_floor_bounds_the_feedback_resolution() {
    let clock = Clock::fake();
    let op2 = Op2::new(
        Op2Config::dataflow(1)
            .with_clock(clock.clone())
            .with_chunk(ChunkPolicy::Guided { min: 64 }),
    );
    let cells = op2.decl_set(16_384, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 16_384]);
    let c = clock.clone();
    // 100µs per element dwarfs the 200µs default target: the unbounded
    // resolution would be 2 elements per node; the floor holds it at 64.
    op2.loop_("heavy", &cells)
        .arg(write(&x))
        .run(move |_: &mut [f64]| c.advance(Duration::from_micros(100)))
        .wait();
    assert_eq!(resolved(&op2, "heavy", &cells), 64, "min is the floor");
}

/// `PersistentAuto` shares one calibrated duration across *kernels*: after
/// the first kernel calibrates, a later kernel with a different cost gets
/// a different size but the same node duration — and each kernel's
/// granularity change re-plans its own schedule exactly once.
#[test]
fn persistent_auto_calibrates_once_and_replans_once_per_kernel() {
    let clock = Clock::fake();
    let chunker =
        PersistentChunker::with_target_and_clock(Duration::from_micros(256), clock.clone());
    let op2 = Op2::new(Op2Config::dataflow_persistent(1, chunker.clone()));
    let cells = op2.decl_set(16_384, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 16_384]);

    for _ in 0..2 {
        let c = clock.clone();
        op2.loop_("light", &cells)
            .arg(write(&x))
            .run(move |_: &mut [f64]| c.advance(Duration::from_micros(1)))
            .wait();
    }
    for _ in 0..2 {
        let c = clock.clone();
        op2.loop_("heavy", &cells)
            .arg(write(&x))
            .run(move |_: &mut [f64]| c.advance(Duration::from_micros(8)))
            .wait();
    }
    let light = resolved(&op2, "light", &cells);
    let heavy = resolved(&op2, "heavy", &cells);
    assert_eq!(light, 256, "256µs / 1µs");
    assert_eq!(heavy, 32, "256µs / 8µs — equal duration, 8x smaller nodes");
    // Fig 12b: same node *time* (size x per-element cost), different sizes.
    assert_eq!(light * 1_000, heavy * 8_000);
    assert!(chunker.calibrated_target().is_some());
    // light converged *at* the probe default (no re-plan); heavy probed at
    // 256 then moved to 32 (one re-plan).
    assert_eq!(op2.spec_cache_replans(), 1);
}
