//! Compile-and-run parity for the translator: the checked-in `op2c`
//! output for the Airfoil programme (HPX backend) is included verbatim,
//! driven with the real kernels, and must reproduce the hand-written
//! solver bit-for-bit under the Seq backend.

use airfoil_cfd::{kernels, solver, Problem, SolverConfig};
use op2_core::{Global, Op2, Op2Config};
use op2_mesh::channel_with_bump;

/// The generated module — exactly what `op2c --backend hpx airfoil.op2`
/// emitted (golden-tested in the translator crate).
mod generated {
    include!("../crates/translator/tests/golden/airfoil_hpx.rs");
}

/// Runs `niter` Airfoil iterations through the *generated* wrappers.
fn run_generated(op2: &Op2, p: &Problem, niter: usize) -> Vec<f64> {
    let ncell = p.cells.size();
    let qinf = p.qinf;
    let mut history = Vec::new();
    for _ in 0..niter {
        generated::op_par_loop_save_soln(op2, &p.cells, &p.p_q, &p.p_qold, |q, qold| {
            kernels::save_soln(q, qold)
        });
        let mut rms_val = 0.0;
        for _ in 0..2 {
            generated::op_par_loop_adt_calc(
                op2,
                &p.cells,
                &p.p_x,
                &p.p_q,
                &p.p_adt,
                &p.pcell,
                kernels::adt_calc,
            );
            generated::op_par_loop_res_calc(
                op2,
                &p.edges,
                &p.p_x,
                &p.p_q,
                &p.p_adt,
                &p.p_res,
                &p.pedge,
                &p.pecell,
                |x1, x2, q1, q2, adt1, adt2, res1, res2| {
                    kernels::res_calc(x1, x2, q1, q2, adt1, adt2, res1, res2)
                },
            );
            generated::op_par_loop_bres_calc(
                op2,
                &p.bedges,
                &p.p_x,
                &p.p_q,
                &p.p_adt,
                &p.p_res,
                &p.p_bound,
                &p.pbedge,
                &p.pbecell,
                move |x1, x2, q1, adt1, res1, bound| {
                    kernels::bres_calc(x1, x2, q1, adt1, res1, bound, &qinf)
                },
            );
            let rms = Global::<f64>::sum(1, "rms");
            let h = generated::op_par_loop_update(
                op2,
                &p.cells,
                &p.p_qold,
                &p.p_q,
                &p.p_res,
                &p.p_adt,
                &rms,
                kernels::update,
            );
            h.wait();
            rms_val = (rms.get_scalar() / ncell as f64).sqrt();
        }
        history.push(rms_val);
    }
    history
}

#[test]
fn generated_code_matches_handwritten_solver_bitwise_under_seq() {
    let mesh = channel_with_bump(24, 12);

    // Hand-written solver, Seq backend.
    let op2_a = Op2::new(Op2Config::seq());
    let p_a = Problem::declare(&op2_a, &mesh);
    let r_ref = solver::run(
        &op2_a,
        &p_a,
        &SolverConfig {
            niter: 6,
            window: 0,
            print_every: 0,
            ..SolverConfig::default()
        },
    );

    // Generated wrappers, Seq backend: identical operation order ->
    // bitwise-identical results.
    let op2_b = Op2::new(Op2Config::seq());
    let p_b = Problem::declare(&op2_b, &mesh);
    let r_gen = run_generated(&op2_b, &p_b, 6);

    assert_eq!(r_ref.rms_history.len(), r_gen.len());
    for (a, b) in r_ref.rms_history.iter().zip(&r_gen) {
        assert_eq!(a.to_bits(), b.to_bits(), "rms must match bitwise");
    }
    let qa = p_a.p_q.snapshot();
    let qb = p_b.p_q.snapshot();
    assert!(qa.iter().zip(&qb).all(|(x, y)| x.to_bits() == y.to_bits()));
}

#[test]
fn generated_code_runs_under_dataflow_backend() {
    let mesh = channel_with_bump(24, 12);
    let op2 = Op2::new(Op2Config::dataflow(2));
    let p = Problem::declare(&op2, &mesh);
    let history = run_generated(&op2, &p, 4);
    op2.fence();
    assert_eq!(history.len(), 4);
    assert!(history.iter().all(|r| r.is_finite() && *r > 0.0));
}
