//! The multi-locality layer through the public API: communication/compute
//! overlap (an interior block provably executes before the same loop's
//! halo receives complete), halo-exchange correctness under dependency
//! pressure, and sharded-vs-plain equivalence of the full Airfoil run.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use op2_hpx::airfoil::shard::{run_sharded, ShardedProblem};
use op2_hpx::airfoil::verify::{max_rel_diff, max_scaled_diff};
use op2_hpx::airfoil::{solver, Problem, SolverConfig};
use op2_hpx::hpx::lco::Event;
use op2_hpx::mesh::channel_with_bump;
use op2_hpx::op2::args::{read_via, write};
use op2_hpx::op2::locality::{exchange, HaloSpec, LocalityGroup};
use op2_hpx::op2::Op2Config;

/// The tentpole overlap property, deterministically: a consumer loop's
/// *interior* blocks execute while the same loop's halo receive is
/// provably still pending (the exporter's writer is held hostage on an
/// event the test controls), and its *boundary* blocks still see the
/// exchanged values afterwards.
#[test]
fn interior_blocks_execute_before_halo_receives_complete() {
    let group = LocalityGroup::new(Op2Config::dataflow(2).with_block_size(64), 2);
    let r0 = group.rank(0);
    let r1 = group.rank(1);

    // Rank 0: 256 owned cells + 64 halo rows mirrored from rank 1.
    let cells0 = r0.decl_set(256, "cells");
    let mut q0_init: Vec<f64> = (0..256).map(|i| i as f64).collect();
    q0_init.extend(std::iter::repeat_n(-1.0, 64));
    let q0 = r0.decl_dat_halo(&cells0, 1, "q", q0_init, 64);

    // Rank 1: the exporter, its writer loop held hostage on `gate`.
    let cells1 = r1.decl_set(64, "cells");
    let q1 = r1.decl_dat(&cells1, 1, "q", vec![0.0f64; 64]);
    let gate = Arc::new(Event::new());
    let g = Arc::clone(&gate);
    r1.loop_("produce", &cells1)
        .arg(write(&q1))
        .run(move |q: &mut [f64]| {
            g.wait();
            q[0] = 42.0;
        });

    let mut spec = HaloSpec::empty(2);
    spec.export_rows[1][0] = (0..64).collect();
    spec.import_range[0][1] = 256..320;
    spec.validate().unwrap();
    let recvs = exchange(&group, &[q0.clone(), q1], &spec);

    // Consumer on rank 0: reads q through an identity map whose last block
    // reaches the halo rows. Blocks 0..4 are interior (owned reach only),
    // block 4 is the boundary block gated on the receive.
    let edges = r0.decl_set(320, "edges");
    let ident = r0.decl_map_halo(&edges, &cells0, 1, (0..320).collect(), "ident", 64);
    let out = r0.decl_dat(&edges, 1, "out", vec![f64::NAN; 320]);
    let executed = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&executed);
    let h = r0
        .loop_("consume", &edges)
        .arg(read_via(&q0, &ident, 0))
        .arg(write(&out))
        .run(move |q: &[f64], o: &mut [f64]| {
            o[0] = q[0];
            counter.fetch_add(1, Ordering::Relaxed);
        });

    // Interior blocks must make progress while the receive is hostage.
    let deadline = Instant::now() + Duration::from_secs(30);
    while executed.load(Ordering::Acquire) == 0 {
        assert!(Instant::now() < deadline, "no interior block ever executed");
        std::thread::sleep(Duration::from_millis(1));
    }
    // The receive cannot have completed: its sender still waits on `gate`.
    assert!(
        !recvs[0][1].is_ready(),
        "halo receive completed while the exporter was hostage"
    );
    assert!(!h.is_done(), "the boundary block cannot have run yet");

    gate.set();
    h.wait();
    recvs[0][1].wait();
    let snap = out.snapshot();
    assert!(
        (0..256).all(|i| snap[i] == i as f64),
        "interior reads owned values"
    );
    assert!(
        snap[256..].iter().all(|&v| v == 42.0),
        "boundary reads the exchanged halo"
    );
}

/// Receives must respect write-after-read: a halo refresh submitted while
/// a reader of the old halo values is still pending may not clobber them
/// early. The reader is hostage, the refresh is submitted, and the values
/// the reader saw are checked afterwards.
#[test]
fn halo_refresh_waits_for_pending_halo_readers() {
    let group = LocalityGroup::new(Op2Config::dataflow(2).with_block_size(32), 2);
    let r0 = group.rank(0);
    let r1 = group.rank(1);
    let cells0 = r0.decl_set(32, "cells");
    let mut init = vec![1.0f64; 32];
    init.extend_from_slice(&[7.0; 32]); // current halo values
    let q0 = r0.decl_dat_halo(&cells0, 1, "q", init, 32);
    let cells1 = r1.decl_set(32, "cells");
    let q1 = r1.decl_dat(&cells1, 1, "q", vec![9.0f64; 32]);

    // Hostage reader of the old halo (identity gather over all 64 rows).
    let edges = r0.decl_set(64, "edges");
    let ident = r0.decl_map_halo(&edges, &cells0, 1, (0..64).collect(), "ident", 32);
    let seen = r0.decl_dat(&edges, 1, "seen", vec![0.0f64; 64]);
    let gate = Arc::new(Event::new());
    let g = Arc::clone(&gate);
    let h = r0
        .loop_("reader", &edges)
        .arg(read_via(&q0, &ident, 0))
        .arg(write(&seen))
        .run(move |q: &[f64], o: &mut [f64]| {
            g.wait();
            o[0] = q[0];
        });

    let mut spec = HaloSpec::empty(2);
    spec.export_rows[1][0] = (0..32).collect();
    spec.import_range[0][1] = 32..64;
    let recvs = exchange(&group, &[q0.clone(), q1], &spec);
    assert!(!recvs[0][1].is_ready(), "refresh must wait for the reader");

    gate.set();
    h.wait();
    recvs[0][1].wait();
    assert!(
        seen.snapshot()[32..].iter().all(|&v| v == 7.0),
        "reader saw the pre-refresh halo"
    );
    assert!(
        q0.snapshot()[32..].iter().all(|&v| v == 9.0),
        "halo refreshed"
    );
}

fn plain_golden(niter: usize) -> (Vec<f64>, Vec<f64>) {
    let op2 = op2_hpx::op2::Op2::new(Op2Config::seq());
    let mesh = channel_with_bump(32, 16);
    let p = Problem::declare(&op2, &mesh);
    let r = solver::run(
        &op2,
        &p,
        &SolverConfig {
            niter,
            window: 4,
            print_every: 0,
            ..SolverConfig::default()
        },
    );
    (r.rms_history, p.p_q.snapshot())
}

/// A 4-rank sharded run reproduces the single-locality physics within
/// reduction tolerance (edge execution order differs per shard, so sums
/// round differently — same budget as the colored backends).
#[test]
fn sharded_airfoil_matches_single_locality_golden() {
    let niter = 12;
    let (rms_ref, q_ref) = plain_golden(niter);
    let mesh = channel_with_bump(32, 16);
    let mut shp = ShardedProblem::declare(Op2Config::dataflow(2), &mesh, 4);
    let r = run_sharded(
        &mut shp,
        &SolverConfig {
            niter,
            window: 4,
            print_every: 0,
            ..SolverConfig::default()
        },
    );
    let d_rms = max_rel_diff(&rms_ref, &r.rms_history);
    let d_q = max_scaled_diff(&q_ref, &shp.gather_q(), 1.0);
    assert!(d_rms < 1e-7, "sharded rms deviates by {d_rms:e}");
    assert!(d_q < 1e-9, "sharded q deviates by {d_q:e}");
}

/// Adaptive (feedback-resolved) node granularity across the halo
/// boundary: a 4-rank sharded run under `persistent_auto` — every rank's
/// executed nodes feed one shared cost table, granularity re-resolves
/// mid-solve as measurements arrive, boundary blocks keep gating on halo
/// receives — must reproduce the single-locality physics within the same
/// budget as every other backend, and must actually have *measured* (the
/// feedback table is populated: adaptivity was live, not a Static
/// fallback).
#[test]
fn adaptive_granularity_preserves_sharded_physics_across_halo_boundary() {
    use op2_hpx::hpx::{ChunkPolicy, PersistentChunker};

    let niter = 12;
    let (rms_ref, q_ref) = plain_golden(niter);
    let mesh = channel_with_bump(32, 16);
    let chunker = PersistentChunker::new();
    for (name, config) in [
        (
            "persistent_auto x4",
            Op2Config::dataflow_persistent(2, chunker.clone()),
        ),
        (
            "guided16 x4",
            Op2Config::dataflow(2).with_chunk(ChunkPolicy::Guided { min: 16 }),
        ),
    ] {
        let mut shp = ShardedProblem::declare(config, &mesh, 4);
        let r = run_sharded(
            &mut shp,
            &SolverConfig {
                niter,
                window: 4,
                print_every: 0,
                ..SolverConfig::default()
            },
        );
        let d_rms = max_rel_diff(&rms_ref, &r.rms_history);
        let d_q = max_scaled_diff(&q_ref, &shp.gather_q(), 1.0);
        assert!(d_rms < 1e-7, "{name}: rms deviates by {d_rms:e}");
        assert!(d_q < 1e-9, "{name}: q deviates by {d_q:e}");
    }
    // The persistent chunker measured across all 4 ranks. The table is
    // keyed by (kernel, set *signature*) — same-shaped rank sets share an
    // entry — but the five airfoil kernels span several sets, so the
    // shared table still holds at least a handful of entries.
    let measured = chunker.feedback().snapshot();
    assert!(
        measured.len() >= 4,
        "feedback must hold measurements from several ranks, got {}",
        measured.len()
    );
    assert!(
        measured.iter().all(|(_, _, c)| c.samples > 0),
        "every entry carries real samples"
    );
}

/// Partition invariants of the real Airfoil decomposition, via the shard's
/// public bookkeeping: owned cells partition the mesh, every halo row is
/// importable from exactly one peer, and the exec-halo edge split is
/// consistent with ownership.
#[test]
fn sharded_decomposition_invariants() {
    let mesh = channel_with_bump(20, 10);
    for nranks in [2usize, 3, 5] {
        let shp = ShardedProblem::declare(Op2Config::seq(), &mesh, nranks);
        let mut owners = vec![0usize; mesh.ncell];
        for owned in &shp.owned_cells {
            for &c in owned {
                owners[c as usize] += 1;
            }
        }
        assert!(
            owners.iter().all(|&n| n == 1),
            "{nranks} ranks: every cell owned exactly once"
        );
        assert_eq!(shp.cell_owner.len(), mesh.ncell);
        for (r, part) in shp.parts.iter().enumerate() {
            assert_eq!(part.cells.size(), shp.owned_cells[r].len());
            let halo: usize = (0..nranks)
                .map(|s| shp.cell_spec.import_range[r][s].len())
                .sum();
            assert_eq!(halo, part.n_halo_cells, "rank {r} halo bookkeeping");
            // Export rows are owned rows; import ranges live in the halo.
            for s in 0..nranks {
                assert!(shp.cell_spec.export_rows[r][s]
                    .iter()
                    .all(|&row| (row as usize) < part.cells.size()));
                let rng = &shp.cell_spec.import_range[r][s];
                assert!(rng.start >= part.cells.size() || rng.is_empty());
            }
        }
        shp.cell_spec.validate().unwrap();
    }
}
