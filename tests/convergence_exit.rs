//! The data-dependent loop exit never blocks the time loop.
//!
//! The `jac` spec declares `converge resid : tol 1e-12, every 1, max 500;`
//! which the translator lowers onto the PR 5 `ReducedFuture` async-reduction
//! path: every residual is read through `reduce_async`, the harness's exit
//! check consults only futures that are already resolved, and the scaled
//! residual values are collected after the final fence (when every future
//! is trivially ready). The reduction counters prove it: a full
//! convergence-driven run performs **zero** blocking reduction reads.
//!
//! This test owns its binary because the `op2.reduce.*` counters are
//! process-global — any other test doing a not-yet-ready `get_scalar`
//! in the same process would pollute the delta.

use op2_hpx::app::{run, App, JacApp};
use op2_hpx::hpx::stats;
use op2_hpx::op2::{Op2, Op2Config};

#[test]
fn jac_convergence_exit_never_blocks_on_the_residual() {
    let before = stats::snapshot();

    let app = JacApp::new(12);
    let op2 = Op2::new(Op2Config::dataflow(2));
    let mut inst = app.declare(&op2);
    // The spec's own policy: tol 1e-12, checked every iteration, cap 500.
    let out = run(inst.as_mut(), app.default_run());

    let (at, resid) = out
        .converged
        .expect("Jacobi on a diagonally-dominant system must converge");
    assert!(at < 500, "convergence should beat the iteration cap");
    assert!(resid < 1e-12, "converged residual {resid:e} above tol");
    assert!(inst.state().iter().all(|v| v.is_finite()));

    // The acceptance criterion: the convergence-driven loop exit rode the
    // async-reduction path end to end. Residuals observed before the fence
    // and collected after it are all `reduce_async` reads; none of them
    // ever parked the submitting thread on an unresolved future.
    assert_eq!(
        before.delta("op2.reduce.blocking_reads"),
        0,
        "convergence exit must not block the time loop on the residual"
    );
    assert!(
        before.delta("op2.reduce.async_reads") >= out.iterations as u64,
        "every iteration's residual should be an async read ({} reads, {} iters)",
        before.delta("op2.reduce.async_reads"),
        out.iterations
    );
}
