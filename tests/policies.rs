//! Table I semantics, asserted through the public API: `seq` preserves
//! order, `par` completes exactly, task policies return futures that are
//! genuinely asynchronous, every policy computes the same result — and
//! the chunk policy's wiring into Dataflow node granularity.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use std::time::Duration;

use op2_hpx::hpx::timing::Clock;
use op2_hpx::hpx::{
    for_each, for_each_async, par, par_task, par_vec, reduce, seq, seq_task, ChunkPolicy,
    PersistentChunker, Runtime,
};
use op2_hpx::op2::args::{read, write};
use op2_hpx::op2::{Op2, Op2Config};

#[test]
fn seq_runs_in_index_order() {
    let rt = Runtime::new(4);
    let order = Mutex::new(Vec::new());
    for_each(&rt, &seq(), 0..500, |i| order.lock().unwrap().push(i));
    assert_eq!(order.into_inner().unwrap(), (0..500).collect::<Vec<_>>());
}

#[test]
fn par_visits_exactly_once() {
    let rt = Runtime::new(4);
    let hits: Vec<AtomicUsize> = (0..10_000).map(|_| AtomicUsize::new(0)).collect();
    for_each(&rt, &par(), 0..hits.len(), |i| {
        hits[i].fetch_add(1, Ordering::Relaxed);
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn par_vec_is_par() {
    // par_vec falls back to parallel execution (vectorization delegated
    // to the compiler) — Table I's "Parallelism TS" row.
    assert_eq!(par_vec().name(), "par");
    assert!(par_vec().is_parallel());
    assert!(!par_vec().is_async());
}

#[test]
fn task_policies_return_pending_futures() {
    let rt = Runtime::new(2);
    // A deliberately slow loop: the future must come back before the work
    // can plausibly have finished, then complete correctly.
    let counter = Arc::new(AtomicUsize::new(0));
    let c = Arc::clone(&counter);
    let fut = for_each_async(&rt, par_task(), 0..200_000, move |_| {
        std::hint::black_box((0..20).sum::<u64>());
        c.fetch_add(1, Ordering::Relaxed);
    });
    // (is_ready may race on a fast machine; the strong assertion is that
    // get() joins and the count is exact.)
    fut.get();
    assert_eq!(counter.load(Ordering::Relaxed), 200_000);

    let c2 = Arc::new(AtomicUsize::new(0));
    let c2c = Arc::clone(&c2);
    let fut2 = for_each_async(&rt, seq_task(), 0..1000, move |_| {
        c2c.fetch_add(1, Ordering::Relaxed);
    });
    fut2.get();
    assert_eq!(c2.load(Ordering::Relaxed), 1000);
}

#[test]
fn every_policy_computes_the_same_reduction() {
    let rt = Runtime::new(3);
    let data: Vec<f64> = (0..40_000).map(|i| ((i * 37) % 1000) as f64).collect();
    let reference = data.iter().sum::<f64>();
    for policy in [seq(), par(), par_vec()] {
        // Deterministic fixed chunks so float sums are exactly comparable
        // chunk-wise; the chunk partials are merged in index order.
        let policy = policy.with_chunk(ChunkPolicy::Static { size: 1000 });
        let v = reduce(&rt, &policy, 0..data.len(), 0.0, |i| data[i], |a, b| a + b);
        assert_eq!(v, reference, "policy {} deviates", policy.name());
    }
}

#[test]
fn chunk_policies_compose_with_any_policy() {
    let rt = Runtime::new(2);
    for chunk in [
        ChunkPolicy::Static { size: 7 },
        ChunkPolicy::NumChunks { chunks: 5 },
        ChunkPolicy::Guided { min: 3 },
        ChunkPolicy::default(),
    ] {
        let counter = AtomicUsize::new(0);
        for_each(&rt, &par().with_chunk(chunk), 0..12_345, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.into_inner(), 12_345);
    }
}

/// The chunk policy governs Dataflow node granularity across the whole
/// policy spectrum: the probe-free uniform policies set it directly, and
/// the measuring policies (`Auto`, `PersistentAuto`) plus `Guided`
/// resolve it from *measured feedback* — the conservative block-size
/// default before the first measurement, duration-targeted sizes after.
#[test]
fn chunk_policy_sets_dataflow_direct_node_granularity() {
    use op2_hpx::op2::__dataflow_direct_blocks as blocks_of;

    let static_cfg = Op2::new(Op2Config::dataflow(2).with_chunk(ChunkPolicy::Static { size: 100 }));
    let cells = static_cfg.decl_set(1000, "cells");
    let b = blocks_of(&static_cfg, "k", &cells);
    assert_eq!(b.len(), 10);
    assert!(b.iter().all(|r| r.len() == 100), "Static{{100}} nodes");

    let numchunks_cfg =
        Op2::new(Op2Config::dataflow(2).with_chunk(ChunkPolicy::NumChunks { chunks: 4 }));
    let cells = numchunks_cfg.decl_set(1000, "cells");
    let b = blocks_of(&numchunks_cfg, "k", &cells);
    assert_eq!(b.len(), 4, "NumChunks{{4}} yields 4 nodes");
    assert_eq!(b[0].len(), 250);

    // Auto (the default) and Guided use the configured block size only
    // until feedback exists — it is the probe default, not a fallback.
    let auto_cfg = Op2::new(Op2Config::dataflow(2).with_block_size(128));
    let cells = auto_cfg.decl_set(1000, "cells");
    let b = blocks_of(&auto_cfg, "k", &cells);
    assert!(b.iter().take(b.len() - 1).all(|r| r.len() == 128));
    let guided_cfg = Op2::new(
        Op2Config::dataflow(2)
            .with_block_size(64)
            .with_chunk(ChunkPolicy::Guided { min: 8 }),
    );
    let cells = guided_cfg.decl_set(640, "cells");
    assert_eq!(blocks_of(&guided_cfg, "k", &cells).len(), 10);
}

/// `Auto` no longer falls back to `block_size` on Dataflow: once a loop
/// has executed, its measured per-element cost resolves the node
/// granularity to hit the configured target duration. Proven with a fake
/// clock so the "cost" is exact.
#[test]
fn auto_granularity_is_feedback_resolved_on_dataflow() {
    use op2_hpx::op2::__dataflow_resolved_block_size as resolved;

    let clock = Clock::fake();
    let op2 = Op2::new(Op2Config::dataflow(1).with_clock(clock.clone()).with_chunk(
        ChunkPolicy::Auto {
            target: Duration::from_micros(128),
        },
    ));
    let cells = op2.decl_set(4096, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![0.0f64; 4096]);
    // Probe default before any feedback: the mini-partition block size.
    assert_eq!(resolved(&op2, "work", &cells), 256);

    let c = clock.clone();
    op2.loop_("work", &cells)
        .arg(write(&x))
        .run(move |_: &mut [f64]| c.advance(Duration::from_micros(1)))
        .wait();
    // 1µs/element measured, 128µs target -> 128-element nodes.
    assert_eq!(resolved(&op2, "work", &cells), 128);
    // Other kernels and sets are unaffected (feedback is per kernel+set).
    assert_eq!(resolved(&op2, "other", &cells), 256);
}

/// `PersistentAuto` on Dataflow implements the paper's Fig 12b semantics
/// through feedback: the first measured kernel calibrates the shared
/// per-node duration; a later, heavier kernel gets proportionally smaller
/// nodes so every node takes the *same time*.
#[test]
fn persistent_auto_equalizes_node_durations_across_kernels() {
    use op2_hpx::op2::__dataflow_resolved_block_size as resolved;

    let clock = Clock::fake();
    let chunker =
        PersistentChunker::with_target_and_clock(Duration::from_micros(100), clock.clone());
    let op2 = Op2::new(Op2Config::dataflow_persistent(1, chunker.clone()));
    let cells = op2.decl_set(8192, "cells");
    let a = op2.decl_dat(&cells, 1, "a", vec![0.0f64; 8192]);

    let c = clock.clone();
    op2.loop_("light", &cells)
        .arg(write(&a))
        .run(move |_: &mut [f64]| c.advance(Duration::from_micros(1)))
        .wait();
    let light = resolved(&op2, "light", &cells);
    assert_eq!(light, 128, "100µs / 1µs, power-of-two quantized");

    let c = clock.clone();
    op2.loop_("heavy", &cells)
        .arg(write(&a))
        .run(move |_: &mut [f64]| c.advance(Duration::from_micros(4)))
        .wait();
    let heavy = resolved(&op2, "heavy", &cells);
    assert_eq!(heavy, 32, "4x the cost -> 1/4 the elements per node");
    // Same node *time* (size x per-element cost), different sizes — the
    // Fig 12b property.
    assert_eq!(light * 1_000, heavy * 4_000);
    assert!(
        chunker.calibrated_target().is_some(),
        "first loop calibrated"
    );
}

/// Dataflow results are identical regardless of the chunk-driven node
/// granularity, including dependent-loop chains — now across the *entire*
/// policy set, measuring policies included.
#[test]
fn dataflow_chunked_granularity_preserves_results() {
    for chunk in [
        ChunkPolicy::Static { size: 37 },
        ChunkPolicy::NumChunks { chunks: 3 },
        ChunkPolicy::Guided { min: 16 },
        ChunkPolicy::PersistentAuto(PersistentChunker::new()),
        ChunkPolicy::default(),
    ] {
        let op2 = Op2::new(Op2Config::dataflow(2).with_chunk(chunk));
        let cells = op2.decl_set(1000, "cells");
        let a = op2.decl_dat(&cells, 1, "a", vec![1.0f64; 1000]);
        let b = op2.decl_dat(&cells, 1, "b", vec![0.0f64; 1000]);
        for _ in 0..5 {
            op2.loop_("fwd", &cells)
                .arg(read(&a))
                .arg(write(&b))
                .run(|a: &[f64], b: &mut [f64]| b[0] = a[0] * 2.0);
            op2.loop_("bwd", &cells)
                .arg(read(&b))
                .arg(write(&a))
                .run(|b: &[f64], a: &mut [f64]| a[0] = b[0] + 1.0);
        }
        op2.fence();
        // x -> 2x+1 five times from 1.0 = 63.
        assert!(a.snapshot().iter().all(|&v| v == 63.0));
    }
}
