//! Asynchronous reductions through the public API: the shared-`Global`
//! wait-set semantics, the cross-rank reduction tree
//! (`LocalityGroup::allreduce`), and the future-chained residual path —
//! proving the solve pipeline never meets a host-side reduction barrier.

use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

use op2_hpx::airfoil::shard::{run_sharded, ShardedProblem};
use op2_hpx::airfoil::SolverConfig;
use op2_hpx::hpx::lco::Event;
use op2_hpx::mesh::channel_with_bump;
use op2_hpx::op2::args::gbl_inc;
use op2_hpx::op2::locality::LocalityGroup;
use op2_hpx::op2::{Global, Op2, Op2Config, ReducedFuture};

/// Spin-wait helper with a generous deadline.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The allreduce sums every rank's fully finalized contribution, the
/// result is bitwise deterministic across runs (fixed rank-order tree),
/// and the `op2.reduce.*` counters tick.
#[test]
fn allreduce_sums_per_rank_globals_deterministically() {
    let run_once = || -> Vec<f64> {
        let group = LocalityGroup::new(Op2Config::dataflow(2), 4);
        let globals: Vec<Global<f64>> = (0..4).map(|_| Global::<f64>::sum(1, "rms")).collect();
        for (r, g) in globals.iter().enumerate() {
            let cells = group.rank(r).decl_set(100 + 17 * r, "cells");
            // An irrational-ish per-element contribution so float rounding
            // would expose any combination-order wobble.
            let w = 0.1 + r as f64 * 0.01;
            group
                .rank(r)
                .loop_("update", &cells)
                .arg(gbl_inc(g))
                .run(move |acc: &mut [f64]| acc[0] += w);
        }
        let red = group.allreduce(&globals);
        group.fence();
        red.get()
    };
    // Delta assertions via the snapshot helper: the named counters are
    // process-wide, so absolute values depend on sibling tests.
    let before = op2_hpx::hpx::stats::snapshot();
    let a = run_once();
    let b = run_once();
    assert_eq!(a, b, "fixed-shape tree must be bitwise deterministic");
    let expected: f64 = (0..4)
        .map(|r| (100 + 17 * r) as f64 * (0.1 + r as f64 * 0.01))
        .sum();
    assert!(
        (a[0] - expected).abs() < 1e-9,
        "allreduce total {} vs expected {expected}",
        a[0]
    );
    assert!(
        before.delta("op2.reduce.allreduces") >= 2,
        "op2.reduce.allreduces did not tick"
    );
    assert!(before.delta("op2.reduce.contributions") >= 8);
    assert!(before.delta("op2.reduce.combines") >= 6);
}

/// The tentpole overlap property: while one rank's contribution is
/// provably hostage (its update kernel waits on an event the test holds),
/// the allreduce future stays pending, the *other* rank keeps executing
/// freshly submitted work — the reduce never drains the pipeline — and
/// releasing the hostage completes the tree with the full sum.
#[test]
fn allreduce_overlaps_while_one_contributor_is_hostage() {
    let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
    let g0 = Global::<f64>::sum(1, "rms");
    let g1 = Global::<f64>::sum(1, "rms");
    let cells0 = group.rank(0).decl_set(8, "cells");
    let cells1 = group.rank(1).decl_set(8, "cells");

    let gate = Arc::new(Event::new());
    let hostage_gate = Arc::clone(&gate);
    group
        .rank(0)
        .loop_("update", &cells0)
        .arg(gbl_inc(&g0))
        .run(move |acc: &mut [f64]| {
            hostage_gate.wait();
            acc[0] += 1.0;
        });
    group
        .rank(1)
        .loop_("update", &cells1)
        .arg(gbl_inc(&g1))
        .run(|acc: &mut [f64]| acc[0] += 2.0);

    let red = group.allreduce(&[g0, g1]);

    // Rank 1 keeps making progress on work submitted *after* the reduce.
    let later = group
        .rank(1)
        .loop_("later", &cells1)
        .arg(gbl_inc(&Global::<f64>::sum(1, "probe")))
        .run(|acc: &mut [f64]| acc[0] += 1.0);
    later.wait();
    assert!(
        !red.is_ready(),
        "allreduce completed although a contributor is still hostage"
    );

    gate.set();
    red.wait();
    assert_eq!(red.get_scalar(), 8.0 + 16.0);
}

/// One `Global` cloned into incrementing loops on every rank — the
/// shared-accumulator pattern the old single-slot `pending` corrupted.
/// Sequential submission and fully concurrent submission (one submitter
/// thread per rank, released together) must both observe the exact sum.
#[test]
fn shared_global_across_ranks_sums_exactly() {
    // Sequential submission across ranks.
    let group = LocalityGroup::new(Op2Config::dataflow(2), 3);
    let g = Global::<i64>::sum(1, "shared");
    for r in 0..3 {
        let cells = group.rank(r).decl_set(50 + r, "cells");
        let k = (r + 1) as i64;
        group
            .rank(r)
            .loop_("inc", &cells)
            .arg(gbl_inc(&g))
            .run(move |acc: &mut [i64]| acc[0] += k);
    }
    let expected: i64 = (0..3).map(|r| (50 + r) as i64 * (r + 1) as i64).sum();
    assert_eq!(g.get_scalar(), expected);

    // Concurrent submission: one thread per rank, all released at once —
    // the interleaving that raced the single-slot registration.
    for round in 0..20 {
        let group = Arc::new(LocalityGroup::new(Op2Config::dataflow(2), 3));
        let g = Global::<i64>::sum(1, "shared");
        let start = Arc::new(Barrier::new(3));
        let threads: Vec<_> = (0..3)
            .map(|r| {
                let group = Arc::clone(&group);
                let g = g.clone();
                let start = Arc::clone(&start);
                std::thread::spawn(move || {
                    let cells = group.rank(r).decl_set(64, "cells");
                    start.wait();
                    let k = (r + 1) as i64;
                    group
                        .rank(r)
                        .loop_("inc", &cells)
                        .arg(gbl_inc(&g))
                        .run(move |acc: &mut [i64]| acc[0] += k);
                })
            })
            .collect();
        for t in threads {
            t.join().expect("submitter thread");
        }
        assert_eq!(
            g.get_scalar(),
            64 * (1 + 2 + 3),
            "round {round}: get() missed a concurrently-registered loop"
        );
    }
}

/// `reduce_across` turns a shared-Global read into a future gated on the
/// whole wait-set: non-blocking at submission, complete sum at `get`.
#[test]
fn reduce_across_reads_shared_global_without_blocking() {
    let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
    let g = Global::<f64>::sum(1, "shared");
    let gate = Arc::new(Event::new());
    let cells0 = group.rank(0).decl_set(16, "cells");
    let cells1 = group.rank(1).decl_set(16, "cells");
    let hostage_gate = Arc::clone(&gate);
    group
        .rank(0)
        .loop_("inc", &cells0)
        .arg(gbl_inc(&g))
        .run(move |acc: &mut [f64]| {
            hostage_gate.wait();
            acc[0] += 1.0;
        });
    group
        .rank(1)
        .loop_("inc", &cells1)
        .arg(gbl_inc(&g))
        .run(|acc: &mut [f64]| acc[0] += 1.0);

    let red = g.reduce_across(&group);
    assert!(!red.is_ready(), "snapshot must wait the hostage loop");
    gate.set();
    assert_eq!(red.get_scalar(), 32.0);
}

/// An empty-set `gbl_inc` loop finalizes with zero partials: the handle
/// completes, the value stays at the identity, and the global remains
/// usable by later (non-empty) loops and async reads.
#[test]
fn empty_set_gbl_inc_loop_finalizes_cleanly() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let empty = op2.decl_set(0, "empty");
    let g = Global::<f64>::sum(1, "rms");
    let h = op2
        .loop_("update", &empty)
        .arg(gbl_inc(&g))
        .run(|acc: &mut [f64]| acc[0] += 1.0);
    h.wait();
    assert_eq!(g.get_scalar(), 0.0, "identity after zero partials");

    let cells = op2.decl_set(10, "cells");
    op2.loop_("update", &cells)
        .arg(gbl_inc(&g))
        .run(|acc: &mut [f64]| acc[0] += 1.0);
    let red = g.reduce_async(&op2);
    op2.fence();
    assert_eq!(red.get_scalar(), 10.0);
}

/// An in-flight asynchronous read is part of the global's wait-set:
/// `reset()` (and any later incrementing loop) orders *after* the pending
/// snapshot, so the future observes exactly the value at read-submission
/// time — never the cleared value, never a later loop's increments.
#[test]
fn reset_and_later_loops_order_after_pending_async_reads() {
    // Single-context reduce_async: step protocol with a reset per step.
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(16, "cells");
    let g = Global::<f64>::sum(1, "rms");
    op2.loop_("step1", &cells)
        .arg(gbl_inc(&g))
        .run(|acc: &mut [f64]| acc[0] += 1.0);
    let red1 = g.reduce_async(&op2);
    // A later incrementing loop must not leak into red1's snapshot …
    op2.loop_("step2", &cells)
        .arg(gbl_inc(&g))
        .run(|acc: &mut [f64]| acc[0] += 1.0);
    let red2 = g.reduce_async(&op2);
    // … and reset must not clobber either pending snapshot.
    g.reset();
    assert_eq!(red1.get_scalar(), 16.0, "red1 saw step2 or the reset");
    assert_eq!(red2.get_scalar(), 32.0, "red2 saw the reset");
    assert_eq!(g.get_scalar(), 0.0);

    // The allreduce contribution nodes follow the same discipline.
    let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
    let globals: Vec<Global<f64>> = (0..2).map(|_| Global::<f64>::sum(1, "rms")).collect();
    for (r, g) in globals.iter().enumerate() {
        let cells = group.rank(r).decl_set(8, "cells");
        group
            .rank(r)
            .loop_("update", &cells)
            .arg(gbl_inc(g))
            .run(|acc: &mut [f64]| acc[0] += 1.0);
    }
    let red = group.allreduce(&globals);
    for g in &globals {
        g.reset();
    }
    assert_eq!(red.get_scalar(), 16.0, "reset clobbered a contribution");
}

/// Satellite 3: printing every iteration must not stall submission. The
/// first iteration's update is hostage, yet every later iteration —
/// including its allreduce and chained "print" node — is submitted and
/// later iterations' reduces *complete* while iteration 0 is still
/// hostage (the pipelining the blocking `get_scalar` sum destroyed).
/// Releasing the hostage flushes the chained prints in order.
#[test]
fn per_iteration_reduction_prints_do_not_stall_the_pipeline() {
    const ITERS: usize = 6;
    let group = LocalityGroup::new(Op2Config::dataflow(2), 2);
    let cells: Vec<_> = (0..2)
        .map(|r| group.rank(r).decl_set(32, "cells"))
        .collect();
    let gate = Arc::new(Event::new());
    let lines: Arc<Mutex<Vec<(usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));

    let mut reds: Vec<ReducedFuture<f64>> = Vec::new();
    let mut last_print = None;
    for iter in 0..ITERS {
        let globals: Vec<Global<f64>> = (0..2).map(|_| Global::<f64>::sum(1, "rms")).collect();
        for r in 0..2 {
            let hostage = (iter == 0 && r == 0).then(|| Arc::clone(&gate));
            let v = (iter * 2 + r) as f64;
            group
                .rank(r)
                .loop_("update", &cells[r])
                .arg(gbl_inc(&globals[r]))
                .run(move |acc: &mut [f64]| {
                    if let Some(g) = &hostage {
                        g.wait();
                    }
                    acc[0] += v;
                });
        }
        let red = group.allreduce(&globals);
        // The "residual print": ordered behind the previous line, never a
        // blocking read on the submitting thread.
        let after: Vec<_> = last_print.iter().cloned().collect();
        let sink = Arc::clone(&lines);
        last_print = Some(red.then_after(&after, move |v| {
            sink.lock().expect("lines lock").push((iter, v[0]));
        }));
        reds.push(red);
    }

    // Submission of all ITERS iterations finished (we are here) while
    // iteration 0 is still hostage; later iterations' reduces complete.
    wait_until("later reduces complete while iter 0 is hostage", || {
        reds[1..].iter().all(ReducedFuture::is_ready)
    });
    assert!(!reds[0].is_ready(), "iteration 0 must still be hostage");
    assert!(
        lines.lock().expect("lines lock").is_empty(),
        "print chain must hold every line behind the hostage iteration"
    );

    gate.set();
    group.fence();
    let printed = lines.lock().expect("lines lock").clone();
    let expected: Vec<(usize, f64)> = (0..ITERS)
        .map(|i| (i, 32.0 * (i * 2) as f64 + 32.0 * (i * 2 + 1) as f64))
        .collect();
    assert_eq!(printed, expected, "lines must flush ordered and complete");
}

/// `run_sharded` with `print_every: 1` (a reduction consumed every
/// iteration) produces exactly the history of a silent run — the
/// future-chained print path changes no physics and never deadlocks.
/// A fixed Static chunk policy pins the node granularity: the default
/// `Auto` policy sizes nodes from measured timings, which legitimately
/// varies the chunk plan (and thus the last ULP of float partial
/// grouping) between runs — that wobble is adaptive-chunking behavior,
/// not the print path under test.
#[test]
fn run_sharded_printing_every_iteration_matches_silent_run() {
    use op2_hpx::hpx::ChunkPolicy;
    let config = || Op2Config::dataflow(2).with_chunk(ChunkPolicy::Static { size: 64 });
    let mesh = channel_with_bump(12, 6);
    let silent = {
        let mut shp = ShardedProblem::declare(config(), &mesh, 3);
        run_sharded(
            &mut shp,
            &SolverConfig {
                niter: 4,
                window: 2,
                print_every: 0,
                ..SolverConfig::default()
            },
        )
    };
    let printing = {
        let mut shp = ShardedProblem::declare(config(), &mesh, 3);
        run_sharded(
            &mut shp,
            &SolverConfig {
                niter: 4,
                window: 2,
                print_every: 1,
                ..SolverConfig::default()
            },
        )
    };
    assert_eq!(silent.rms_history, printing.rms_history);
}
