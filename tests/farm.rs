//! The solver farm through the public API: backpressure windows actually
//! bound in-flight work, weighted-fair scheduling bounds a low-priority
//! tenant's wait under a saturating high-priority tenant, quotas cap lane
//! occupancy, and warm state (spec cache + granularity feedback) is
//! shared across same-shaped tenants without colliding across shapes.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use op2_hpx::airfoil::SolverConfig;
use op2_hpx::hpx::lco::Event;
use op2_hpx::mesh::QuadMesh;
use op2_hpx::op2::farm::{FarmConfig, Priority, SolverFarm, TenantSpec};
use op2_hpx::op2::{Op2, Op2Config, SpecShare};

/// Spin-wait helper with a generous deadline.
fn wait_until(what: &str, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting: {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn small_cfg() -> SolverConfig {
    SolverConfig {
        niter: 2,
        window: 4,
        print_every: 0,
        ..SolverConfig::default()
    }
}

/// A tenant with window `W` never has more than `W` jobs in flight: the
/// `W+1`-th `submit` parks the submitter on the oldest job's future and
/// only returns once that job completes.
#[test]
fn backpressure_window_bounds_inflight() {
    const W: usize = 2;
    const JOBS: usize = 6;
    let farm = SolverFarm::new(
        FarmConfig::with_threads(2)
            .with_lanes(2)
            .with_window(W)
            .with_queue_capacity(64),
    );
    let tenant = farm.register("bp_tenant", Priority::Normal);

    let gate = Arc::new(Event::new());
    let started = Arc::new(AtomicUsize::new(0));
    let accepted = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..JOBS {
                let gate = Arc::clone(&gate);
                let started = Arc::clone(&started);
                farm.submit(&tenant, move |_op2| {
                    started.fetch_add(1, Ordering::SeqCst);
                    gate.wait();
                });
                accepted.fetch_add(1, Ordering::SeqCst);
            }
        });

        // The first W submissions are accepted; the W+1-th parks.
        wait_until("window fills", || accepted.load(Ordering::SeqCst) == W);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            W,
            "submitter must park at the window, not run ahead"
        );
        assert!(
            farm.tenant_inflight(&tenant) <= W,
            "in-flight jobs exceed the window"
        );

        gate.set();
    });
    farm.drain();
    assert_eq!(farm.tenant_completed(&tenant), JOBS as u64);
    assert_eq!(started.load(Ordering::SeqCst), JOBS);
}

/// With one lane and a saturating high-priority tenant, stride scheduling
/// still dispatches the low-priority tenant within a bounded number of
/// completions (weights 4:1 → at worst a handful of high jobs first).
#[test]
fn fairness_low_priority_tenant_is_not_starved() {
    let farm = SolverFarm::new(
        FarmConfig::with_threads(2)
            .with_lanes(1)
            .with_window(0) // disable windows: the test floods the queue
            .with_queue_capacity(64),
    );
    let high = farm.register("fair_high", Priority::High);
    let low = farm.register("fair_low", Priority::Low);

    // Hold the single lane hostage so every subsequent submission queues
    // and the scheduler chooses among a full backlog.
    let gate = Arc::new(Event::new());
    {
        let gate = Arc::clone(&gate);
        farm.submit(&high, move |_| gate.wait());
    }
    wait_until("hostage running", || farm.tenant_running(&high) == 1);

    let order: Arc<Mutex<Vec<&'static str>>> = Arc::new(Mutex::new(Vec::new()));
    for _ in 0..12 {
        let order = Arc::clone(&order);
        farm.submit(&high, move |_| order.lock().unwrap().push("H"));
    }
    for _ in 0..3 {
        let order = Arc::clone(&order);
        farm.submit(&low, move |_| order.lock().unwrap().push("L"));
    }

    gate.set();
    farm.drain();

    let order = order.lock().unwrap();
    assert_eq!(order.len(), 15);
    let first_low = order
        .iter()
        .position(|&t| t == "L")
        .expect("low tenant ran");
    // Stride weights 4:1: after at most 4-5 high dispatches the low
    // tenant's virtual time is the minimum. Allow slack for lane jitter.
    assert!(
        first_low <= 6,
        "low-priority tenant waited {first_low} completions (order {order:?})"
    );
    // And the high tenant still gets the lion's share early on: the
    // first 10 completions cannot be majority-low.
    let early_low = order[..10].iter().filter(|&&t| t == "L").count();
    assert!(early_low <= 3, "low overtook high: {order:?}");
}

/// A tenant with quota 1 occupies at most one lane even when the farm has
/// idle lanes and the tenant has a backlog.
#[test]
fn quota_caps_tenant_lane_occupancy() {
    let farm = SolverFarm::new(
        FarmConfig::with_threads(2)
            .with_lanes(2)
            .with_queue_capacity(64),
    );
    let tenant = farm.register_with(
        "quota_tenant",
        TenantSpec {
            priority: Priority::Normal,
            window: Some(0),
            quota: Some(1),
        },
    );

    let gate = Arc::new(Event::new());
    for _ in 0..4 {
        let gate = Arc::clone(&gate);
        farm.submit(&tenant, move |_| gate.wait());
    }

    wait_until("one job running", || farm.tenant_running(&tenant) == 1);
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(
        farm.tenant_running(&tenant),
        1,
        "quota 1 must keep the second lane free"
    );
    assert!(farm.queued() >= 3, "backlog should still be queued");

    gate.set();
    farm.drain();
    assert_eq!(farm.tenant_completed(&tenant), 4);
}

/// A full submission queue blocks submitters until a lane drains it.
#[test]
fn queue_capacity_backpressures_submitters() {
    let farm = SolverFarm::new(
        FarmConfig::with_threads(2)
            .with_lanes(1)
            .with_window(0)
            .with_queue_capacity(1),
    );
    let tenant = farm.register("qcap_tenant", Priority::Normal);

    let gate = Arc::new(Event::new());
    {
        let gate = Arc::clone(&gate);
        farm.submit(&tenant, move |_| gate.wait()); // occupies the lane
    }
    wait_until("hostage running", || farm.tenant_running(&tenant) == 1);

    let accepted = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..3 {
                farm.submit(&tenant, |_| {});
                accepted.fetch_add(1, Ordering::SeqCst);
            }
        });

        // One job fits in the queue; the next submission must block.
        wait_until("queue fills", || accepted.load(Ordering::SeqCst) == 1);
        std::thread::sleep(Duration::from_millis(50));
        assert_eq!(
            accepted.load(Ordering::SeqCst),
            1,
            "submitter must block on the bounded queue"
        );

        gate.set();
    });
    farm.drain();
    assert_eq!(farm.tenant_completed(&tenant), 4);
}

/// Two tenants solving the same mesh shape share warm state: the second
/// tenant's first solve hits the farm-wide spec cache instead of
/// rebuilding plans, and the granularity-feedback table already has cost
/// entries for the airfoil kernels.
#[test]
fn warm_state_is_shared_across_same_shaped_tenants() {
    let farm = SolverFarm::new(FarmConfig::with_threads(2).with_lanes(2));
    let a = farm.register("warm_a", Priority::Normal);
    let b = farm.register("warm_b", Priority::Normal);
    let mesh = Arc::new(QuadMesh::with_cells(200));

    {
        let mesh = Arc::clone(&mesh);
        farm.submit(&a, move |op2| {
            let r = op2_hpx::airfoil::solve(op2, &mesh, &small_cfg());
            assert!(r.final_rms().is_finite());
        });
    }
    farm.drain();
    let built_after_a = farm.spec_share().built();
    let hits_after_a = farm.spec_share().hits();
    assert!(built_after_a > 0, "tenant A should have built specs");
    assert!(
        farm.feedback()
            .cost("update", mesh_set_signature(&mesh))
            .is_some(),
        "granularity feedback should be warm after tenant A"
    );

    {
        let mesh = Arc::clone(&mesh);
        farm.submit(&b, move |op2| {
            let r = op2_hpx::airfoil::solve(op2, &mesh, &small_cfg());
            assert!(r.final_rms().is_finite());
        });
    }
    farm.drain();
    assert_eq!(
        farm.spec_share().built(),
        built_after_a,
        "tenant B (same shape) must not rebuild any spec"
    );
    assert!(
        farm.spec_share().hits() > hits_after_a,
        "tenant B's solve should hit tenant A's warm specs"
    );
}

/// The `cells` set signature of a mesh-shaped world, derived the same way
/// the solver's worlds derive it: by declaring the set and asking it.
fn mesh_set_signature(mesh: &QuadMesh) -> u64 {
    let op2 = Op2::new(Op2Config::fork_join(1));
    op2.decl_set(mesh.ncell, "cells").signature()
}

/// Different mesh shapes key different cache entries: a second tenant on
/// a different-sized mesh builds fresh specs rather than hitting (and
/// corrupting) the first tenant's plans.
#[test]
fn different_shapes_do_not_collide() {
    let farm = SolverFarm::new(FarmConfig::with_threads(2).with_lanes(2));
    let a = farm.register("shape_a", Priority::Normal);
    let b = farm.register("shape_b", Priority::Normal);

    let mesh_a = Arc::new(QuadMesh::with_cells(200));
    {
        let mesh = Arc::clone(&mesh_a);
        farm.submit(&a, move |op2| {
            let r = op2_hpx::airfoil::solve(op2, &mesh, &small_cfg());
            assert!(r.final_rms().is_finite());
        });
    }
    farm.drain();
    let built_after_a = farm.spec_share().built();

    let mesh_b = Arc::new(QuadMesh::with_cells(800));
    {
        let mesh = Arc::clone(&mesh_b);
        farm.submit(&b, move |op2| {
            let r = op2_hpx::airfoil::solve(op2, &mesh, &small_cfg());
            assert!(r.final_rms().is_finite());
        });
    }
    farm.drain();
    assert!(
        farm.spec_share().built() > built_after_a,
        "a different shape must build its own specs, not reuse tenant A's"
    );
}

/// Two different *applications* on one farm: an airfoil tenant (quad
/// mesh, five CFD loops) and a heat tenant (triangulated square, two
/// generated loops) interleave jobs through the same shared spec cache.
/// The cache keys are shape-based, so the apps neither collide nor evict
/// each other: each app's first job builds its own specs, and each app's
/// rerun hits its own warm entries without building anything new.
#[test]
fn mixed_app_tenants_share_the_farm_without_colliding() {
    use op2_hpx::airfoil::AirfoilApp;
    use op2_hpx::app::{run, App, HeatApp, RunConfig};

    let farm = SolverFarm::new(FarmConfig::with_threads(2).with_lanes(2));
    let cfd = farm.register("mixed_cfd", Priority::Normal);
    let heat = farm.register("mixed_heat", Priority::Normal);
    let airfoil_app = Arc::new(AirfoilApp::new(16, 8));
    let heat_app = Arc::new(HeatApp::new(12));

    let submit_airfoil = |farm: &SolverFarm| {
        let app = Arc::clone(&airfoil_app);
        farm.submit(&cfd, move |op2| {
            let mut inst = app.declare(op2);
            let out = run(inst.as_mut(), RunConfig::iterations(2, 4));
            assert!(out.final_residual().is_finite());
        });
    };
    let submit_heat = |farm: &SolverFarm| {
        let app = Arc::clone(&heat_app);
        farm.submit(&heat, move |op2| {
            let mut inst = app.declare(op2);
            let out = run(inst.as_mut(), RunConfig::iterations(3, 4));
            assert!(out.final_residual() >= 0.0);
        });
    };

    submit_airfoil(&farm);
    farm.drain();
    let built_after_airfoil = farm.spec_share().built();
    assert!(built_after_airfoil > 0, "airfoil must build its specs");

    submit_heat(&farm);
    farm.drain();
    let built_after_heat = farm.spec_share().built();
    assert!(
        built_after_heat > built_after_airfoil,
        "heat's triangle loops must key their own entries, not reuse airfoil's"
    );

    // Reruns of both apps, interleaved: all warm, nothing rebuilt.
    let hits_before_rerun = farm.spec_share().hits();
    submit_heat(&farm);
    submit_airfoil(&farm);
    farm.drain();
    assert_eq!(
        farm.spec_share().built(),
        built_after_heat,
        "reruns of either app must not rebuild specs"
    );
    assert!(
        farm.spec_share().hits() > hits_before_rerun,
        "reruns must hit the warm shape-keyed entries"
    );
}

/// The same warm sharing works without a farm: two hand-built worlds
/// given the same `SpecShare` + feedback handles hit each other's specs.
/// (Both must be shared — granularity is resolved from the feedback
/// table, and a cold table would re-plan instead of hit.)
#[test]
fn spec_share_handle_works_across_plain_worlds() {
    let specs = SpecShare::new();
    let feedback = op2_hpx::hpx::GranularityFeedback::new();
    let run = |iterations: usize| {
        let op2 = Op2::new(
            Op2Config::dataflow(2)
                .with_shared_specs(specs.clone())
                .with_shared_feedback(feedback.clone()),
        );
        let cells = op2.decl_set(300, "cells");
        let x = op2.decl_dat(&cells, 1, "x", vec![1.0f64; 300]);
        for _ in 0..iterations {
            op2.loop_("scale", &cells)
                .arg(op2_hpx::op2::args::rw(&x))
                .run(|x: &mut [f64]| x[0] *= 1.0)
                .wait();
        }
        op2.fence();
    };
    run(2);
    let built = specs.built();
    assert!(built > 0);
    run(2);
    assert_eq!(specs.built(), built, "second world must reuse warm specs");
    assert!(specs.hits() > 0);
}

/// Per-tenant counters (`op2.tenant.<name>.*`) tick with submissions and
/// completions, and farm-wide counters aggregate across tenants.
#[test]
fn tenant_counters_tick() {
    let before = op2_hpx::hpx::stats::snapshot();
    let farm = SolverFarm::new(FarmConfig::with_threads(2).with_lanes(2));
    // Unique name: counter namespaces are process-global.
    let tenant = farm.register("ctr_tenant_x9", Priority::Normal);
    for _ in 0..3 {
        farm.submit(&tenant, |_| {});
    }
    farm.drain();
    assert_eq!(before.delta("op2.tenant.ctr_tenant_x9.submitted"), 3);
    assert_eq!(before.delta("op2.tenant.ctr_tenant_x9.completed"), 3);
    assert_eq!(before.delta("op2.tenant.ctr_tenant_x9.panics"), 0);
    assert!(before.delta("op2.farm.submitted") >= 3);
    assert!(before.delta("op2.farm.completed") >= 3);
}

/// A panicking job reports through its handle (`outcome()` is `Err`,
/// `wait()` re-panics) without poisoning the farm: the same tenant's next
/// job still runs.
#[test]
fn job_panic_is_contained() {
    let before = op2_hpx::hpx::stats::snapshot();
    let farm = SolverFarm::new(FarmConfig::with_threads(2).with_lanes(2));
    let tenant = farm.register("panic_tenant_x9", Priority::Normal);

    let bad = farm.submit(&tenant, |_| panic!("boom in tenant job"));
    let err = bad.outcome().expect_err("panic must surface as Err");
    assert!(err.contains("boom in tenant job"), "got: {err}");
    assert!(
        std::panic::catch_unwind(|| bad.wait()).is_err(),
        "wait() must re-panic"
    );

    let ok = farm.submit(&tenant, |_| {});
    assert!(ok.outcome().is_ok(), "farm must survive a tenant panic");
    farm.drain();
    assert_eq!(before.delta("op2.tenant.panic_tenant_x9.panics"), 1);
    assert!(before.delta("op2.farm.panics") >= 1);
}
