//! Property-based tests of the core invariants, through the public API:
//! plan coloring on arbitrary connectivity, exactly-once loop execution
//! under arbitrary chunkers, dataflow graphs vs sequential evaluation,
//! and mesh-generator structural invariants.

use proptest::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

use op2_hpx::hpx::{dataflow, ready, ChunkPolicy, Future, Runtime};
use op2_hpx::mesh::{channel_with_bump, quad_stats, validate_quad};
use op2_hpx::op2::{
    arg_inc_via, par_loop1, par_loop2, plan_for, validate_coloring, ArgSpec, Op2, Op2Config,
};

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case spins up pools; keep CI-speed sane
        .. ProptestConfig::default()
    })]

    /// Any random edge->node connectivity yields a valid colored plan
    /// whose colors partition the blocks and never share a target within
    /// a color, and the executed increments are exact.
    #[test]
    fn coloring_is_valid_and_increments_exact(
        nfrom in 1usize..400,
        nto in 1usize..120,
        dim in 1usize..3,
        block_size in 1usize..64,
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random map.
        let mut state = seed | 1;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % nto as u64) as u32
        };
        let indices: Vec<u32> = (0..nfrom * dim).map(|_| next()).collect();

        let op2 = Op2::new(Op2Config::fork_join(2).with_block_size(block_size));
        let from = op2.decl_set(nfrom, "from");
        let to = op2.decl_set(nto, "to");
        let map = op2.decl_map(&from, &to, dim, indices.clone(), "m");
        let acc = op2.decl_dat(&to, 1, "acc", vec![0.0f64; nto]);

        // Execute: every source element increments each of its targets.
        // (Slot 0 only when dim==1 to keep the kernel arity simple.)
        let infos = match dim {
            1 => {
                let a0 = arg_inc_via(&acc, &map, 0);
                let infos = vec![ArgSpec::info(&a0)];
                par_loop1(&op2, "inc", &from, (a0,), |t0: &mut [f64]| {
                    t0[0] += 1.0;
                }).wait();
                infos
            }
            _ => {
                let a0 = arg_inc_via(&acc, &map, 0);
                let a1 = arg_inc_via(&acc, &map, 1);
                let infos = vec![ArgSpec::info(&a0), ArgSpec::info(&a1)];
                // Same target twice in one element would alias two mutable
                // views; the framework's debug check would (correctly)
                // panic, so route via a tolerant kernel only when safe:
                // skip elements where slots collide by pre-checking.
                let collides = (0..nfrom).any(|e| map.at(e, 0) == map.at(e, 1));
                if collides {
                    // Still validate the plan below, just skip execution.
                    let plan = plan_for(&op2, &from, &infos).expect("colored plan");
                    let pairs = vec![(map.clone(), 0usize), (map.clone(), 1usize)];
                    prop_assert!(validate_coloring(&plan, &pairs).is_ok());
                    return Ok(());
                }
                par_loop2(&op2, "inc2", &from, (a0, a1), |t0: &mut [f64], t1: &mut [f64]| {
                    t0[0] += 1.0;
                    t1[0] += 1.0;
                }).wait();
                infos
            }
        };

        // Plan invariant.
        if let Some(plan) = plan_for(&op2, &from, &infos) {
            let pairs: Vec<_> = (0..dim.min(2)).map(|k| (map.clone(), k)).collect();
            prop_assert!(validate_coloring(&plan, &pairs).is_ok());
            let blocks_in_colors: usize = plan.color_blocks.iter().map(|c| c.len()).sum();
            prop_assert_eq!(blocks_in_colors, plan.nblocks());
        }

        // Exactness: target t received one increment per incoming slot.
        let mut expected = vec![0.0f64; nto];
        for e in 0..nfrom {
            for k in 0..dim.min(2) {
                expected[map.at(e, k)] += 1.0;
            }
        }
        let got = acc.snapshot();
        prop_assert_eq!(got, expected);
    }

    /// Every chunk policy visits every index exactly once, for arbitrary
    /// range sizes.
    #[test]
    fn chunkers_tile_ranges_exactly(
        n in 0usize..6000,
        policy_pick in 0usize..4,
        size in 1usize..600,
    ) {
        let rt = Runtime::new(2);
        let chunk = match policy_pick {
            0 => ChunkPolicy::Static { size },
            1 => ChunkPolicy::NumChunks { chunks: size },
            2 => ChunkPolicy::Guided { min: size },
            _ => ChunkPolicy::default(),
        };
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        op2_hpx::hpx::for_each(
            &rt,
            &op2_hpx::hpx::par().with_chunk(chunk),
            0..n,
            |i| { hits[i].fetch_add(1, Ordering::Relaxed); },
        );
        prop_assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    /// Random dataflow expression trees evaluate to the same value as
    /// direct sequential evaluation.
    #[test]
    fn dataflow_trees_match_sequential(ops in prop::collection::vec((0u8..3, 1u64..100), 1..40)) {
        let rt = Runtime::new(2);
        let mut expect = 1u64;
        let mut fut: Future<u64> = ready(1);
        for (op, v) in ops {
            match op {
                0 => {
                    expect = expect.wrapping_add(v);
                    fut = dataflow(&rt, move |(x,)| x.wrapping_add(v), (fut,));
                }
                1 => {
                    expect = expect.wrapping_mul(v);
                    let extra = rt.spawn_future(move || v);
                    fut = dataflow(&rt, |(x, y)| x.wrapping_mul(y), (fut, extra));
                }
                _ => {
                    expect ^= v;
                    let shared = fut.share();
                    // Diamond: two readers of the same value re-joined.
                    let l = shared.then(&rt, move |x| x ^ v);
                    let r = shared.then(&rt, |x| x);
                    fut = dataflow(&rt, |(l, r)| { let _ = r; l }, (l, r));
                }
            }
        }
        prop_assert_eq!(fut.get(), expect);
    }

    /// Mesh generator invariants hold for arbitrary dimensions.
    #[test]
    fn quad_meshes_always_validate(imax in 3usize..48, jmax in 1usize..32) {
        let mesh = channel_with_bump(imax, jmax);
        let errors = validate_quad(&mesh);
        prop_assert!(errors.is_empty(), "{errors:?}");
        let stats = quad_stats(&mesh);
        prop_assert_eq!(stats.ncell, imax * jmax);
        // Euler characteristic of the planar mesh.
        let v = mesh.nnode as i64;
        let e = (mesh.nedge + mesh.nbedge) as i64;
        let f = mesh.ncell as i64 + 1;
        prop_assert_eq!(v - e + f, 2);
    }
}
