//! Property-based tests of the core invariants, through the public API:
//! plan coloring on arbitrary connectivity, exactly-once loop execution
//! under arbitrary chunkers, dataflow graphs vs sequential evaluation,
//! and mesh-generator structural invariants.
//!
//! The properties are driven by a deterministic xorshift PRNG rather than
//! an external property-testing framework (the build environment is
//! offline): every case is reproducible from the printed seed.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use op2_hpx::hpx::timing::Clock;
use op2_hpx::hpx::{dataflow, ready, ChunkPolicy, Future, PersistentChunker, Runtime};
use op2_hpx::mesh::{
    build_halo, channel_with_bump, neighbors_from_pairs, partition_greedy_bfs, quad_stats,
    validate_quad,
};
use op2_hpx::op2::args::{inc_via, read, rw, write};
use op2_hpx::op2::{arg_inc_via, plan_for, validate_coloring, ArgSpec, Op2, Op2Config};

/// Cases per property; each case spins up pools, keep CI-speed sane.
const CASES: u64 = 24;

/// xorshift64* — the same generator the seed's tests used for map data.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    /// Uniform-ish value in `lo..hi` (`hi > lo`).
    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// Any random edge->node connectivity yields a valid colored plan whose
/// colors partition the blocks and never share a target within a color,
/// and the executed increments are exact.
#[test]
fn coloring_is_valid_and_increments_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xC010_25ED ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let nfrom = rng.in_range(1, 400);
        let nto = rng.in_range(1, 120);
        let dim = rng.in_range(1, 3);
        let block_size = rng.in_range(1, 64);
        let indices: Vec<u32> = (0..nfrom * dim)
            .map(|_| (rng.next() % nto as u64) as u32)
            .collect();

        let op2 = Op2::new(Op2Config::fork_join(2).with_block_size(block_size));
        let from = op2.decl_set(nfrom, "from");
        let to = op2.decl_set(nto, "to");
        let map = op2.decl_map(&from, &to, dim, indices.clone(), "m");
        let acc = op2.decl_dat(&to, 1, "acc", vec![0.0f64; nto]);

        // Execute: every source element increments each of its targets.
        // (Slot 0 only when dim==1 to keep the kernel arity simple.)
        let infos = match dim {
            1 => {
                let a0 = arg_inc_via(&acc, &map, 0);
                let infos = vec![ArgSpec::info(&a0)];
                op2.loop_("inc", &from)
                    .arg(a0)
                    .run(|t0: &mut [f64]| {
                        t0[0] += 1.0;
                    })
                    .wait();
                infos
            }
            _ => {
                let a0 = arg_inc_via(&acc, &map, 0);
                let a1 = arg_inc_via(&acc, &map, 1);
                let infos = vec![ArgSpec::info(&a0), ArgSpec::info(&a1)];
                // Same target twice in one element would alias two mutable
                // views; the framework's debug check would (correctly)
                // panic, so only execute when no element's slots collide.
                let collides = (0..nfrom).any(|e| map.at(e, 0) == map.at(e, 1));
                if collides {
                    // Still validate the plan below, just skip execution.
                    let plan = plan_for(&op2, &from, &infos).expect("colored plan");
                    let pairs = vec![(map.clone(), 0usize), (map.clone(), 1usize)];
                    assert!(
                        validate_coloring(&plan, &pairs).is_ok(),
                        "case {case}: invalid coloring"
                    );
                    continue;
                }
                op2.loop_("inc2", &from)
                    .arg(a0)
                    .arg(a1)
                    .run(|t0: &mut [f64], t1: &mut [f64]| {
                        t0[0] += 1.0;
                        t1[0] += 1.0;
                    })
                    .wait();
                infos
            }
        };

        // Plan invariant.
        if let Some(plan) = plan_for(&op2, &from, &infos) {
            let pairs: Vec<_> = (0..dim.min(2)).map(|k| (map.clone(), k)).collect();
            assert!(
                validate_coloring(&plan, &pairs).is_ok(),
                "case {case}: invalid coloring"
            );
            let blocks_in_colors: usize = plan.color_blocks.iter().map(|c| c.len()).sum();
            assert_eq!(blocks_in_colors, plan.nblocks(), "case {case}");
        }

        // Exactness: target t received one increment per incoming slot.
        let mut expected = vec![0.0f64; nto];
        for e in 0..nfrom {
            for k in 0..dim.min(2) {
                expected[map.at(e, k)] += 1.0;
            }
        }
        assert_eq!(acc.snapshot(), expected, "case {case}");
    }
}

/// Every chunk policy visits every index exactly once, for arbitrary
/// range sizes.
#[test]
fn chunkers_tile_ranges_exactly() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0C44_2BD5 ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        let n = rng.in_range(0, 6000);
        let size = rng.in_range(1, 600);
        let chunk = match rng.in_range(0, 4) {
            0 => ChunkPolicy::Static { size },
            1 => ChunkPolicy::NumChunks { chunks: size },
            2 => ChunkPolicy::Guided { min: size },
            _ => ChunkPolicy::default(),
        };
        let rt = Runtime::new(2);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        op2_hpx::hpx::for_each(&rt, &op2_hpx::hpx::par().with_chunk(chunk), 0..n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "case {case}: some index not visited exactly once (n={n}, size={size})"
        );
    }
}

/// Random dataflow expression trees evaluate to the same value as direct
/// sequential evaluation.
#[test]
fn dataflow_trees_match_sequential() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xDA7A_F10F ^ case.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let rt = Runtime::new(2);
        let mut expect = 1u64;
        let mut fut: Future<u64> = ready(1);
        for _ in 0..rng.in_range(1, 40) {
            let v = rng.in_range(1, 100) as u64;
            match rng.in_range(0, 3) {
                0 => {
                    expect = expect.wrapping_add(v);
                    fut = dataflow(&rt, move |(x,)| x.wrapping_add(v), (fut,));
                }
                1 => {
                    expect = expect.wrapping_mul(v);
                    let extra = rt.spawn_future(move || v);
                    fut = dataflow(&rt, |(x, y)| x.wrapping_mul(y), (fut, extra));
                }
                _ => {
                    expect ^= v;
                    let shared = fut.share();
                    // Diamond: two readers of the same value re-joined.
                    let l = shared.then(&rt, move |x| x ^ v);
                    let r = shared.then(&rt, |x| x);
                    fut = dataflow(
                        &rt,
                        |(l, r)| {
                            let _ = r;
                            l
                        },
                        (l, r),
                    );
                }
            }
        }
        assert_eq!(fut.get(), expect, "case {case}");
    }
}

/// Random loop-chain programs under random feedback sequences never
/// violate per-block WAR/RAW ordering when node granularity changes
/// between loops.
///
/// This is the adaptive-chunking extension of the PR 2 seeded
/// scheduler-permutation stress harness (same xorshift seeding, driven
/// through the public API): each case builds a random chain of dependent
/// direct loops plus an indirect increment over a ring map, runs it on the
/// Dataflow backend under a randomly drawn *measuring* chunk policy with a
/// fake clock whose per-loop cost is drawn at random — so the feedback,
/// and with it the resolved node granularity, shifts between dependent
/// loops (and, on multi-worker cases, nodes race on the shared clock,
/// which is precisely a random feedback sequence). All arithmetic is exact
/// in f64, so any RAW violation (a successor block reading rows its
/// predecessor has not written), WAR violation (a writer clobbering rows a
/// pending reader still needs) or lost/duplicated increment changes the
/// result bitwise.
#[test]
fn loop_chains_stay_exact_under_random_granularity_feedback() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xADA9_71C4 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = rng.in_range(64, 2500);
        let threads = rng.in_range(1, 4);
        let clock = Clock::fake();
        let policy = match rng.in_range(0, 3) {
            0 => ChunkPolicy::Auto {
                target: Duration::from_micros(rng.in_range(10, 400) as u64),
            },
            1 => ChunkPolicy::PersistentAuto(PersistentChunker::with_target_and_clock(
                Duration::from_micros(rng.in_range(10, 400) as u64),
                clock.clone(),
            )),
            _ => ChunkPolicy::Guided {
                min: rng.in_range(1, 96),
            },
        };
        let op2 = Op2::new(
            Op2Config::dataflow(threads)
                .with_clock(clock.clone())
                .with_block_size(rng.in_range(16, 512))
                .with_chunk(policy),
        );

        let cells = op2.decl_set(n, "cells");
        let a = op2.decl_dat(&cells, 1, "a", (0..n).map(|i| (i % 17) as f64).collect());
        let b = op2.decl_dat(&cells, 1, "b", vec![0.0f64; n]);
        let mut idx = Vec::with_capacity(2 * n);
        for e in 0..n {
            idx.push(e as u32);
            idx.push(((e + 1) % n) as u32);
        }
        let ring = op2.decl_map(&cells, &cells, 2, idx, "ring");
        let acc = op2.decl_dat(&cells, 1, "acc", vec![0.0f64; n]);

        // Sequential model of the same chain.
        let mut ma: Vec<f64> = (0..n).map(|i| (i % 17) as f64).collect();
        let mut mb = vec![0.0f64; n];
        let mut macc = vec![0.0f64; n];

        let nloops = rng.in_range(4, 14);
        for _ in 0..nloops {
            // The random feedback sequence: each loop body advances the
            // fake clock by a random per-element cost, so each loop's
            // execution moves the EWMA and the next submission may resolve
            // a different node granularity.
            let cost = Duration::from_nanos(rng.in_range(20, 30_000) as u64);
            let c = clock.clone();
            match rng.in_range(0, 4) {
                0 => {
                    // RAW: b = 2a + 1.
                    op2.loop_("fwd", &cells).arg(read(&a)).arg(write(&b)).run(
                        move |a: &[f64], b: &mut [f64]| {
                            c.advance(cost);
                            b[0] = 2.0 * a[0] + 1.0;
                        },
                    );
                    for i in 0..n {
                        mb[i] = 2.0 * ma[i] + 1.0;
                    }
                }
                1 => {
                    // RAW + WAR back-edge: a = b + 3.
                    op2.loop_("bwd", &cells).arg(read(&b)).arg(write(&a)).run(
                        move |b: &[f64], a: &mut [f64]| {
                            c.advance(cost);
                            a[0] = b[0] + 3.0;
                        },
                    );
                    for i in 0..n {
                        ma[i] = mb[i] + 3.0;
                    }
                }
                2 => {
                    // In-place RW: a = a + 2.
                    op2.loop_("bump", &cells)
                        .arg(rw(&a))
                        .run(move |a: &mut [f64]| {
                            c.advance(cost);
                            a[0] += 2.0;
                        });
                    for v in ma.iter_mut() {
                        *v += 2.0;
                    }
                }
                _ => {
                    // Colored indirect increments gated on the reader of
                    // `a`: acc[ring] += 1 (re-plans when granularity
                    // moves — the coloring must stay valid).
                    op2.loop_("scatter", &cells)
                        .arg(read(&a))
                        .arg(inc_via(&acc, &ring, 0))
                        .arg(inc_via(&acc, &ring, 1))
                        .run(move |_a: &[f64], t0: &mut [f64], t1: &mut [f64]| {
                            c.advance(cost);
                            t0[0] += 1.0;
                            t1[0] += 1.0;
                        });
                    for v in macc.iter_mut() {
                        *v += 2.0;
                    }
                }
            }
        }
        op2.fence();
        assert_eq!(a.snapshot(), ma, "case {case}: dat a diverged");
        assert_eq!(b.snapshot(), mb, "case {case}: dat b diverged");
        assert_eq!(acc.snapshot(), macc, "case {case}: indirect acc diverged");
    }
}

/// Partitioning invariants on arbitrary meshes and rank counts: every
/// cell is owned by exactly one rank, part sizes meet their quotas
/// exactly, import/export lists are symmetric across every rank pair
/// (with imports owned by the peer), and the halo covers every indirect
/// reach of the Airfoil loop set — `pecell` imports close over every exec
/// edge's cells, and the single-target `pbecell` shape needs no halo at
/// all.
#[test]
fn partition_and_halo_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5A4D_ED00 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let imax = rng.in_range(3, 40);
        let jmax = rng.in_range(1, 24);
        let nranks = rng.in_range(1, 9).min(imax * jmax);
        let mesh = channel_with_bump(imax, jmax);
        let adj = neighbors_from_pairs(&mesh.edge_cells, mesh.ncell);
        let part = partition_greedy_bfs(&adj, nranks);

        // Exactly-one-owner plus exact quotas.
        part.validate()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let sizes = part.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), mesh.ncell, "case {case}");
        let (base, extra) = (mesh.ncell / nranks, mesh.ncell % nranks);
        for (r, &s) in sizes.iter().enumerate() {
            assert_eq!(s, base + usize::from(r < extra), "case {case} rank {r}");
        }
        // Determinism.
        assert_eq!(part, partition_greedy_bfs(&adj, nranks), "case {case}");

        // Halo symmetry + coverage over the edge→cells indirection (the
        // validate method checks import/export mirroring, peer ownership
        // and reach coverage).
        let halo = build_halo(&part, &mesh.edge_cells, 2);
        halo.validate(&part, &mesh.edge_cells, 2)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        // Every edge is executed by the owners of its cells and only them.
        for (e, cells) in mesh.edge_cells.chunks_exact(2).enumerate() {
            for &c in cells {
                let owner = part.part_of[c as usize] as usize;
                assert!(
                    halo.exec[owner].binary_search(&(e as u32)).is_ok(),
                    "case {case}: edge {e} missing from owner {owner}'s exec set"
                );
            }
        }
        // The boundary-edge map shape (one target, executed by its owner)
        // closes without any halo.
        let bhalo = build_halo(&part, &mesh.bedge_cells, 1);
        for r in 0..nranks {
            assert_eq!(bhalo.halo_size(r), 0, "case {case}: pbecell needs no halo");
        }
    }
}

/// SoA storage is a pure layout transform for arbitrary `dim`, set size
/// and halo size: declaring the same canonical row-major data under AoS
/// and SoA, mutating both through the public write guard with the same
/// program, and reading back through guards/snapshots round-trips to
/// bitwise-identical canonical rows — including the halo mirror rows,
/// which under SoA extend every component plane (stride = size + halo).
#[test]
fn soa_layout_round_trips_bitwise_for_arbitrary_dims_and_halos() {
    use op2_hpx::op2::Layout;
    for case in 0..CASES {
        let mut rng = Rng::new(0x50A1_A905 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = rng.in_range(1, 300);
        let dim = rng.in_range(1, 6);
        let halo = rng.in_range(0, 40);
        let total = n + halo;
        let data: Vec<f64> = (0..total * dim)
            .map(|_| (rng.next() % 100_000) as f64 / 7.0 - 7000.0)
            .collect();

        let op2 = Op2::new(Op2Config::seq());
        let cells = op2.decl_set(n, "cells");
        let aos = op2.decl_dat_halo_layout(&cells, dim, "d_aos", data.clone(), halo, Layout::AoS);
        let soa = op2.decl_dat_halo_layout(&cells, dim, "d_soa", data.clone(), halo, Layout::SoA);
        assert_eq!(aos.component_stride(), 1, "case {case}");
        assert_eq!(
            soa.component_stride(),
            total,
            "case {case}: plane stride covers halo rows"
        );

        // Declaration round-trip: the transposed planes read back as the
        // canonical rows that went in.
        assert_eq!(soa.snapshot(), data, "case {case}: declared rows");
        assert_eq!(aos.snapshot(), soa.snapshot(), "case {case}");

        // Guard round-trip: the same mutation program applied through the
        // canonical write view of both layouts (touching owned and halo
        // rows alike) must land identically.
        let edits: Vec<(usize, f64)> = (0..rng.in_range(1, 64))
            .map(|_| {
                let i = rng.in_range(0, total * dim);
                let v = (rng.next() % 1000) as f64 * 0.125;
                (i, v)
            })
            .collect();
        for dat in [&aos, &soa] {
            let mut w = dat.write();
            for &(i, v) in &edits {
                w[i] = v * w[i] + 1.0;
            }
        }
        let a = aos.snapshot();
        let s = soa.snapshot();
        assert_eq!(a, s, "case {case}: post-edit rows diverged");
        // Per-row view agrees with the flat view.
        let r = soa.read();
        for e in 0..n {
            assert_eq!(r.row(e), &a[e * dim..(e + 1) * dim], "case {case} row {e}");
        }
    }
}

/// Mesh generator invariants hold for arbitrary dimensions.
#[test]
fn quad_meshes_always_validate() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x4E5D ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let imax = rng.in_range(3, 48);
        let jmax = rng.in_range(1, 32);
        let mesh = channel_with_bump(imax, jmax);
        let errors = validate_quad(&mesh);
        assert!(errors.is_empty(), "case {case}: {errors:?}");
        let stats = quad_stats(&mesh);
        assert_eq!(stats.ncell, imax * jmax, "case {case}");
        // Euler characteristic of the planar mesh.
        let v = mesh.nnode as i64;
        let e = (mesh.nedge + mesh.nbedge) as i64;
        let f = mesh.ncell as i64 + 1;
        assert_eq!(v - e + f, 2, "case {case} ({imax}x{jmax})");
    }
}

/// Random loop chains over **one shared `Global`** across 2–4 ranks,
/// submitted concurrently (one submitter thread per rank), must match the
/// sequential model exactly — the wait-set regression surface: with a
/// single-slot `pending`, a concurrently-registered loop's completion
/// future could be overwritten and `get()`/`reset()` would observe a
/// partially-finalized value. Integer sums keep the check exact under
/// every interleaving.
#[test]
fn shared_global_loop_chains_match_sequential_model() {
    use op2_hpx::op2::args::gbl_inc;
    use op2_hpx::op2::locality::LocalityGroup;
    use op2_hpx::op2::Global;
    use std::sync::{Arc, Barrier};

    for case in 0..CASES {
        let mut rng = Rng::new(0x5AD0_61B1 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let nranks = rng.in_range(2, 5);
        let group = Arc::new(LocalityGroup::new(Op2Config::dataflow(2), nranks));
        // Per rank: a set (possibly empty — the zero-partials finalize
        // path) and a random chain of incrementing loops.
        let plan: Vec<(usize, Vec<i64>)> = (0..nranks)
            .map(|_| {
                let size = rng.in_range(0, 120);
                let coeffs: Vec<i64> = (0..rng.in_range(1, 4))
                    .map(|_| rng.in_range(1, 9) as i64)
                    .collect();
                (size, coeffs)
            })
            .collect();

        let g = Global::<i64>::sum(1, "shared");
        for round in 0..2 {
            let start = Arc::new(Barrier::new(nranks));
            let threads: Vec<_> = (0..nranks)
                .map(|r| {
                    let group = Arc::clone(&group);
                    let g = g.clone();
                    let start = Arc::clone(&start);
                    let (size, coeffs) = plan[r].clone();
                    std::thread::spawn(move || {
                        let cells = group.rank(r).decl_set(size, "cells");
                        start.wait();
                        for k in coeffs {
                            group
                                .rank(r)
                                .loop_("inc", &cells)
                                .arg(gbl_inc(&g))
                                .run(move |acc: &mut [i64]| acc[0] += k);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().expect("submitter thread");
            }
            let model: i64 = plan
                .iter()
                .map(|(size, coeffs)| *size as i64 * coeffs.iter().sum::<i64>())
                .sum();
            assert_eq!(
                g.get_scalar(),
                model,
                "case {case} round {round}: shared-global sum diverged from the model"
            );
            // reset() must likewise wait the whole wait-set before
            // clobbering state for the next round.
            g.reset();
            assert_eq!(g.get_scalar(), 0, "case {case} round {round}: reset");
        }
    }
}
