//! Property-based tests of the core invariants, through the public API:
//! plan coloring on arbitrary connectivity, exactly-once loop execution
//! under arbitrary chunkers, dataflow graphs vs sequential evaluation,
//! and mesh-generator structural invariants.
//!
//! The properties are driven by a deterministic xorshift PRNG rather than
//! an external property-testing framework (the build environment is
//! offline): every case is reproducible from the printed seed.

use std::sync::atomic::{AtomicUsize, Ordering};

use op2_hpx::hpx::{dataflow, ready, ChunkPolicy, Future, Runtime};
use op2_hpx::mesh::{
    build_halo, channel_with_bump, neighbors_from_pairs, partition_greedy_bfs, quad_stats,
    validate_quad,
};
use op2_hpx::op2::{arg_inc_via, plan_for, validate_coloring, ArgSpec, Op2, Op2Config};

/// Cases per property; each case spins up pools, keep CI-speed sane.
const CASES: u64 = 24;

/// xorshift64* — the same generator the seed's tests used for map data.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    /// Uniform-ish value in `lo..hi` (`hi > lo`).
    fn in_range(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo) as u64) as usize
    }
}

/// Any random edge->node connectivity yields a valid colored plan whose
/// colors partition the blocks and never share a target within a color,
/// and the executed increments are exact.
#[test]
fn coloring_is_valid_and_increments_exact() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xC010_25ED ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        let nfrom = rng.in_range(1, 400);
        let nto = rng.in_range(1, 120);
        let dim = rng.in_range(1, 3);
        let block_size = rng.in_range(1, 64);
        let indices: Vec<u32> = (0..nfrom * dim)
            .map(|_| (rng.next() % nto as u64) as u32)
            .collect();

        let op2 = Op2::new(Op2Config::fork_join(2).with_block_size(block_size));
        let from = op2.decl_set(nfrom, "from");
        let to = op2.decl_set(nto, "to");
        let map = op2.decl_map(&from, &to, dim, indices.clone(), "m");
        let acc = op2.decl_dat(&to, 1, "acc", vec![0.0f64; nto]);

        // Execute: every source element increments each of its targets.
        // (Slot 0 only when dim==1 to keep the kernel arity simple.)
        let infos = match dim {
            1 => {
                let a0 = arg_inc_via(&acc, &map, 0);
                let infos = vec![ArgSpec::info(&a0)];
                op2.loop_("inc", &from)
                    .arg(a0)
                    .run(|t0: &mut [f64]| {
                        t0[0] += 1.0;
                    })
                    .wait();
                infos
            }
            _ => {
                let a0 = arg_inc_via(&acc, &map, 0);
                let a1 = arg_inc_via(&acc, &map, 1);
                let infos = vec![ArgSpec::info(&a0), ArgSpec::info(&a1)];
                // Same target twice in one element would alias two mutable
                // views; the framework's debug check would (correctly)
                // panic, so only execute when no element's slots collide.
                let collides = (0..nfrom).any(|e| map.at(e, 0) == map.at(e, 1));
                if collides {
                    // Still validate the plan below, just skip execution.
                    let plan = plan_for(&op2, &from, &infos).expect("colored plan");
                    let pairs = vec![(map.clone(), 0usize), (map.clone(), 1usize)];
                    assert!(
                        validate_coloring(&plan, &pairs).is_ok(),
                        "case {case}: invalid coloring"
                    );
                    continue;
                }
                op2.loop_("inc2", &from)
                    .arg(a0)
                    .arg(a1)
                    .run(|t0: &mut [f64], t1: &mut [f64]| {
                        t0[0] += 1.0;
                        t1[0] += 1.0;
                    })
                    .wait();
                infos
            }
        };

        // Plan invariant.
        if let Some(plan) = plan_for(&op2, &from, &infos) {
            let pairs: Vec<_> = (0..dim.min(2)).map(|k| (map.clone(), k)).collect();
            assert!(
                validate_coloring(&plan, &pairs).is_ok(),
                "case {case}: invalid coloring"
            );
            let blocks_in_colors: usize = plan.color_blocks.iter().map(|c| c.len()).sum();
            assert_eq!(blocks_in_colors, plan.nblocks(), "case {case}");
        }

        // Exactness: target t received one increment per incoming slot.
        let mut expected = vec![0.0f64; nto];
        for e in 0..nfrom {
            for k in 0..dim.min(2) {
                expected[map.at(e, k)] += 1.0;
            }
        }
        assert_eq!(acc.snapshot(), expected, "case {case}");
    }
}

/// Every chunk policy visits every index exactly once, for arbitrary
/// range sizes.
#[test]
fn chunkers_tile_ranges_exactly() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x0C44_2BD5 ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
        let n = rng.in_range(0, 6000);
        let size = rng.in_range(1, 600);
        let chunk = match rng.in_range(0, 4) {
            0 => ChunkPolicy::Static { size },
            1 => ChunkPolicy::NumChunks { chunks: size },
            2 => ChunkPolicy::Guided { min: size },
            _ => ChunkPolicy::default(),
        };
        let rt = Runtime::new(2);
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        op2_hpx::hpx::for_each(&rt, &op2_hpx::hpx::par().with_chunk(chunk), 0..n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(
            hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
            "case {case}: some index not visited exactly once (n={n}, size={size})"
        );
    }
}

/// Random dataflow expression trees evaluate to the same value as direct
/// sequential evaluation.
#[test]
fn dataflow_trees_match_sequential() {
    for case in 0..CASES {
        let mut rng = Rng::new(0xDA7A_F10F ^ case.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let rt = Runtime::new(2);
        let mut expect = 1u64;
        let mut fut: Future<u64> = ready(1);
        for _ in 0..rng.in_range(1, 40) {
            let v = rng.in_range(1, 100) as u64;
            match rng.in_range(0, 3) {
                0 => {
                    expect = expect.wrapping_add(v);
                    fut = dataflow(&rt, move |(x,)| x.wrapping_add(v), (fut,));
                }
                1 => {
                    expect = expect.wrapping_mul(v);
                    let extra = rt.spawn_future(move || v);
                    fut = dataflow(&rt, |(x, y)| x.wrapping_mul(y), (fut, extra));
                }
                _ => {
                    expect ^= v;
                    let shared = fut.share();
                    // Diamond: two readers of the same value re-joined.
                    let l = shared.then(&rt, move |x| x ^ v);
                    let r = shared.then(&rt, |x| x);
                    fut = dataflow(
                        &rt,
                        |(l, r)| {
                            let _ = r;
                            l
                        },
                        (l, r),
                    );
                }
            }
        }
        assert_eq!(fut.get(), expect, "case {case}");
    }
}

/// Partitioning invariants on arbitrary meshes and rank counts: every
/// cell is owned by exactly one rank, part sizes meet their quotas
/// exactly, import/export lists are symmetric across every rank pair
/// (with imports owned by the peer), and the halo covers every indirect
/// reach of the Airfoil loop set — `pecell` imports close over every exec
/// edge's cells, and the single-target `pbecell` shape needs no halo at
/// all.
#[test]
fn partition_and_halo_invariants() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x5A4D_ED00 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let imax = rng.in_range(3, 40);
        let jmax = rng.in_range(1, 24);
        let nranks = rng.in_range(1, 9).min(imax * jmax);
        let mesh = channel_with_bump(imax, jmax);
        let adj = neighbors_from_pairs(&mesh.edge_cells, mesh.ncell);
        let part = partition_greedy_bfs(&adj, nranks);

        // Exactly-one-owner plus exact quotas.
        part.validate()
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        let sizes = part.sizes();
        assert_eq!(sizes.iter().sum::<usize>(), mesh.ncell, "case {case}");
        let (base, extra) = (mesh.ncell / nranks, mesh.ncell % nranks);
        for (r, &s) in sizes.iter().enumerate() {
            assert_eq!(s, base + usize::from(r < extra), "case {case} rank {r}");
        }
        // Determinism.
        assert_eq!(part, partition_greedy_bfs(&adj, nranks), "case {case}");

        // Halo symmetry + coverage over the edge→cells indirection (the
        // validate method checks import/export mirroring, peer ownership
        // and reach coverage).
        let halo = build_halo(&part, &mesh.edge_cells, 2);
        halo.validate(&part, &mesh.edge_cells, 2)
            .unwrap_or_else(|e| panic!("case {case}: {e}"));
        // Every edge is executed by the owners of its cells and only them.
        for (e, cells) in mesh.edge_cells.chunks_exact(2).enumerate() {
            for &c in cells {
                let owner = part.part_of[c as usize] as usize;
                assert!(
                    halo.exec[owner].binary_search(&(e as u32)).is_ok(),
                    "case {case}: edge {e} missing from owner {owner}'s exec set"
                );
            }
        }
        // The boundary-edge map shape (one target, executed by its owner)
        // closes without any halo.
        let bhalo = build_halo(&part, &mesh.bedge_cells, 1);
        for r in 0..nranks {
            assert_eq!(bhalo.halo_size(r), 0, "case {case}: pbecell needs no halo");
        }
    }
}

/// Mesh generator invariants hold for arbitrary dimensions.
#[test]
fn quad_meshes_always_validate() {
    for case in 0..CASES {
        let mut rng = Rng::new(0x4E5D ^ case.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let imax = rng.in_range(3, 48);
        let jmax = rng.in_range(1, 32);
        let mesh = channel_with_bump(imax, jmax);
        let errors = validate_quad(&mesh);
        assert!(errors.is_empty(), "case {case}: {errors:?}");
        let stats = quad_stats(&mesh);
        assert_eq!(stats.ncell, imax * jmax, "case {case}");
        // Euler characteristic of the planar mesh.
        let v = mesh.nnode as i64;
        let e = (mesh.nedge + mesh.nbedge) as i64;
        let f = mesh.ncell as i64 + 1;
        assert_eq!(v - e + f, 2, "case {case} ({imax}x{jmax})");
    }
}
