//! Evidence for the paper's headline mechanisms through the public API:
//! asynchronous loop submission (no blocking on the main thread) and
//! dependency-correct interleaving.

use std::time::{Duration, Instant};

use op2_hpx::op2::args::{read, rw, write};
use op2_hpx::op2::{Backend, Op2, Op2Config};

/// Under the dataflow backend, submitting heavy loops must return almost
/// immediately; under fork-join every submission blocks for the loop's
/// duration. This is the observable difference between paper Fig 4 and
/// Fig 8.
#[test]
fn dataflow_submission_does_not_block() {
    let n = 400_000;
    let heavy = |x: &mut [f64]| {
        // ~40 flops per element.
        let mut acc = x[0];
        for _ in 0..10 {
            acc = (acc * 1.000001 + 1.0).sqrt();
        }
        x[0] = acc;
    };

    let time_with = |backend: Backend| -> (Duration, Duration) {
        let config = match backend {
            Backend::ForkJoin => Op2Config::fork_join(2),
            _ => Op2Config::dataflow(2),
        };
        let op2 = Op2::new(config);
        let cells = op2.decl_set(n, "cells");
        let x = op2.decl_dat(&cells, 1, "x", vec![1.0f64; n]);
        let t_submit = Instant::now();
        for _ in 0..6 {
            op2.loop_("heavy", &cells).arg(rw(&x)).run(heavy);
        }
        let submit = t_submit.elapsed();
        op2.fence();
        let total = t_submit.elapsed();
        (submit, total)
    };

    let (df_submit, df_total) = time_with(Backend::Dataflow);
    let (fj_submit, fj_total) = time_with(Backend::ForkJoin);

    // Fork-join: submission *is* execution (within timing noise).
    assert!(
        fj_submit.as_secs_f64() > 0.8 * fj_total.as_secs_f64(),
        "fork-join submission should block: {fj_submit:?} of {fj_total:?}"
    );
    // Dataflow: submission must be a small fraction of execution.
    assert!(
        df_submit.as_secs_f64() < 0.5 * df_total.as_secs_f64(),
        "dataflow submission should not block: {df_submit:?} of {df_total:?}"
    );
}

/// Dependent loops submitted asynchronously must still execute in
/// dependency order: a read-after-write chain yields exact values.
#[test]
fn dependency_chains_execute_in_order() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(10_000, "cells");
    let a = op2.decl_dat(&cells, 1, "a", vec![0.0f64; 10_000]);
    let b = op2.decl_dat(&cells, 1, "b", vec![0.0f64; 10_000]);

    // 50 alternating dependent loops; all submitted without waiting.
    for step in 0..50u64 {
        let s = step as f64;
        op2.loop_("a_to_b", &cells)
            .arg(read(&a))
            .arg(write(&b))
            .run(move |a: &[f64], b: &mut [f64]| b[0] = a[0] + s);
        op2.loop_("b_to_a", &cells)
            .arg(read(&b))
            .arg(write(&a))
            .run(|b: &[f64], a: &mut [f64]| a[0] = b[0] + 1.0);
    }
    op2.fence();
    // a = sum over steps of (s + 1) = 49*50/2 + 50.
    let expected = 49.0 * 50.0 / 2.0 + 50.0;
    assert!(a.snapshot().iter().all(|&v| v == expected));
}

/// Two loop chains on disjoint data share the pool without corrupting
/// each other (the interleaving case of paper Fig 11).
#[test]
fn independent_chains_interleave_safely() {
    let op2 = Op2::new(Op2Config::dataflow(2));
    let cells = op2.decl_set(50_000, "cells");
    let dats: Vec<_> = (0..4)
        .map(|k| op2.decl_dat(&cells, 1, &format!("d{k}"), vec![1.0f64; 50_000]))
        .collect();
    for _ in 0..10 {
        for d in &dats {
            op2.loop_("scale", &cells).arg(rw(d)).run(|x: &mut [f64]| {
                x[0] *= 1.1;
            });
        }
    }
    op2.fence();
    let expected = 1.1f64.powi(10);
    for d in &dats {
        let snap = d.snapshot();
        assert!(snap.iter().all(|&v| (v - expected).abs() < 1e-12));
    }
}
