//! Evidence that the dependency engine is *block-granular*: across a
//! read-after-write loop chain, a successor loop's block starts executing
//! before the predecessor's last block has finished — the pipelining that
//! whole-loop future chaining (a barrier in disguise) cannot do.
//!
//! The kernels are instrumented through the data itself: every dat row is
//! seeded with its element index, so a kernel can recover "which block am
//! I" from the value it reads and log a sequenced event.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use op2_hpx::op2::args::{inc_via, read, rw, write};
use op2_hpx::op2::{Op2, Op2Config};

const BS: usize = 64;
const NBLOCKS: usize = 24;
const N: usize = BS * NBLOCKS;

/// One instrumentation record: which loop, which block, global sequence.
#[derive(Debug, Clone, Copy)]
struct Event {
    loop_id: u8,
    block: usize,
    seq: u64,
}

#[derive(Clone, Default)]
struct EventLog {
    seq: Arc<AtomicU64>,
    events: Arc<Mutex<Vec<Event>>>,
}

impl EventLog {
    fn record(&self, loop_id: u8, block: usize) {
        let seq = self.seq.fetch_add(1, Ordering::AcqRel);
        self.events.lock().unwrap().push(Event {
            loop_id,
            block,
            seq,
        });
    }
    fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap())
    }
}

fn spin(units: usize) {
    let mut acc = 1.0f64;
    for _ in 0..units {
        acc = (acc * 1.000001 + 1.0).sqrt();
    }
    std::hint::black_box(acc);
}

/// Runs predecessor (writes `b` from `a`) then successor (writes `c` from
/// `b`) once and returns the event log. The predecessor's **last** block
/// carries heavy extra work, so under block-granular dataflow the second
/// worker must pick up ready successor blocks long before the predecessor
/// finishes.
fn run_chain_once() -> (Vec<Event>, Vec<f64>) {
    let op2 = Op2::new(Op2Config::dataflow(2).with_block_size(BS));
    let cells = op2.decl_set(N, "cells");
    let idx: Vec<f64> = (0..N).map(|i| i as f64).collect();
    let a = op2.decl_dat(&cells, 1, "a", idx.clone());
    let b = op2.decl_dat(&cells, 1, "b", vec![0.0; N]);
    let c = op2.decl_dat(&cells, 1, "c", vec![0.0; N]);
    let log = EventLog::default();

    let log_a = log.clone();
    op2.loop_("pred", &cells)
        .arg(read(&a))
        .arg(write(&b))
        .run(move |a: &[f64], b: &mut [f64]| {
            let e = a[0] as usize;
            if e.is_multiple_of(BS) {
                log_a.record(0, e / BS);
            }
            // The last block is a deliberate straggler.
            if e / BS == NBLOCKS - 1 {
                spin(40_000);
            }
            b[0] = a[0] + 1.0;
        });
    let log_b = log.clone();
    op2.loop_("succ", &cells)
        .arg(read(&b))
        .arg(write(&c))
        .run(move |b: &[f64], c: &mut [f64]| {
            let e = (b[0] - 1.0) as usize;
            if e.is_multiple_of(BS) {
                log_b.record(1, e / BS);
            }
            c[0] = b[0] * 2.0;
        });
    op2.fence();
    (log.take(), c.snapshot())
}

/// Core pipelining assertion: at least one successor block starts before
/// the predecessor's last block has started its heavy tail... more
/// precisely, before the predecessor's *final* event in the log.
#[test]
fn successor_blocks_start_before_predecessor_finishes() {
    // The overlap is a property of the scheduler under load; retry a few
    // times so an unlucky OS-scheduling run cannot flake the suite.
    let mut overlapped = false;
    let mut last_events = Vec::new();
    for _attempt in 0..5 {
        let (events, c) = run_chain_once();
        // Correctness first: c = (e + 1) * 2 exactly, every element.
        assert!(
            c.iter()
                .enumerate()
                .all(|(e, &v)| v == (e as f64 + 1.0) * 2.0),
            "pipelined chain corrupted the data"
        );
        let pred_last = events
            .iter()
            .filter(|ev| ev.loop_id == 0)
            .map(|ev| ev.seq)
            .max()
            .expect("predecessor ran");
        let succ_first = events
            .iter()
            .filter(|ev| ev.loop_id == 1)
            .map(|ev| ev.seq)
            .min()
            .expect("successor ran");
        last_events = events;
        if succ_first < pred_last {
            overlapped = true;
            break;
        }
    }
    let succ_started = last_events.iter().filter(|e| e.loop_id == 1).count();
    assert!(
        overlapped,
        "no successor block started before the predecessor's last block \
         finished — the engine is chaining whole loops, not blocks \
         (successor blocks seen: {succ_started}/{NBLOCKS})"
    );
}

/// Every block the successor ran must respect its *own* RAW dependency:
/// successor block i logs after predecessor block i (the per-block order
/// the epoch tables enforce), for every i.
#[test]
fn per_block_raw_order_is_respected() {
    let (events, _) = run_chain_once();
    for i in 0..NBLOCKS {
        let pred = events
            .iter()
            .find(|e| e.loop_id == 0 && e.block == i)
            .unwrap_or_else(|| panic!("predecessor block {i} missing"));
        let succ = events
            .iter()
            .find(|e| e.loop_id == 1 && e.block == i)
            .unwrap_or_else(|| panic!("successor block {i} missing"));
        assert!(
            pred.seq < succ.seq,
            "block {i}: successor (seq {}) ran before its RAW predecessor (seq {})",
            succ.seq,
            pred.seq
        );
    }
}

/// The epoch tables advance per block: after one writing loop every block
/// of the written dat is at epoch 1, and a second writing loop moves every
/// block to epoch 2.
#[test]
fn epoch_tables_advance_per_block() {
    let op2 = Op2::new(Op2Config::dataflow(2).with_block_size(BS));
    let cells = op2.decl_set(N, "cells");
    let x = op2.decl_dat(&cells, 1, "x", vec![0.0; N]);
    assert_eq!(x.__dep_epochs(), vec![0; NBLOCKS]);
    op2.loop_("w1", &cells)
        .arg(write(&x))
        .run(|x: &mut [f64]| {
            x[0] = 1.0;
        })
        .wait();
    assert_eq!(x.__dep_epochs(), vec![1; NBLOCKS]);
    op2.loop_("w2", &cells)
        .arg(write(&x))
        .run(|x: &mut [f64]| {
            x[0] = 2.0;
        })
        .wait();
    assert_eq!(x.__dep_epochs(), vec![2; NBLOCKS]);
}

/// A reduction into a *shared* global must not re-introduce a whole-loop
/// barrier: block nodes commit generation-tagged partials without waiting
/// for the previous loop's finalize, so a RAW chain whose loops both
/// increment the same global still pipelines — and both reductions stay
/// exact.
#[test]
fn shared_global_reduction_does_not_block_pipelining() {
    use op2_hpx::op2::{arg_gbl_inc, Global};
    let mut overlapped = false;
    for _attempt in 0..5 {
        let op2 = Op2::new(Op2Config::dataflow(2).with_block_size(BS));
        let cells = op2.decl_set(N, "cells");
        let idx: Vec<f64> = (0..N).map(|i| i as f64).collect();
        let a = op2.decl_dat(&cells, 1, "a", idx);
        let b = op2.decl_dat(&cells, 1, "b", vec![0.0; N]);
        let c = op2.decl_dat(&cells, 1, "c", vec![0.0; N]);
        let g = Global::<f64>::sum(1, "g");
        let log = EventLog::default();

        let log_a = log.clone();
        op2.loop_("pred", &cells)
            .arg(read(&a))
            .arg(write(&b))
            .arg(arg_gbl_inc(&g))
            .run(move |a: &[f64], b: &mut [f64], g: &mut [f64]| {
                let e = a[0] as usize;
                if e.is_multiple_of(BS) {
                    log_a.record(0, e / BS);
                }
                if e / BS == NBLOCKS - 1 {
                    spin(40_000);
                }
                b[0] = a[0] + 1.0;
                g[0] += 1.0;
            });
        let log_b = log.clone();
        op2.loop_("succ", &cells)
            .arg(read(&b))
            .arg(write(&c))
            .arg(arg_gbl_inc(&g))
            .run(move |b: &[f64], c: &mut [f64], g: &mut [f64]| {
                let e = (b[0] - 1.0) as usize;
                if e.is_multiple_of(BS) {
                    log_b.record(1, e / BS);
                }
                c[0] = b[0] * 2.0;
                g[0] += 1.0;
            });
        op2.fence();
        // Both loops' increments must land exactly once per element.
        assert_eq!(g.get_scalar(), 2.0 * N as f64, "shared reduction corrupted");
        assert!(c
            .snapshot()
            .iter()
            .enumerate()
            .all(|(e, &v)| v == (e as f64 + 1.0) * 2.0));

        let events = log.take();
        let pred_last = events
            .iter()
            .filter(|e| e.loop_id == 0)
            .map(|e| e.seq)
            .max()
            .unwrap();
        let succ_first = events
            .iter()
            .filter(|e| e.loop_id == 1)
            .map(|e| e.seq)
            .min()
            .unwrap();
        if succ_first < pred_last {
            overlapped = true;
            break;
        }
    }
    assert!(
        overlapped,
        "a shared global reduction serialized the RAW chain — the \
         finalize-to-finalize edge leaked onto the block nodes"
    );
}

/// Backend equivalence of a long dependent chain mixing direct RAW/WAR
/// loops and an indirect increment: the block-granular engine must
/// produce bit-identical integer-valued results across all backends.
#[test]
fn backends_agree_on_dependent_chain_with_indirection() {
    let run = |config: Op2Config| -> (Vec<f64>, Vec<f64>) {
        let op2 = Op2::new(config);
        let n = 4000;
        let edges = op2.decl_set(n, "edges");
        let nodes = op2.decl_set(n, "nodes");
        let mut idx = Vec::with_capacity(2 * n);
        for e in 0..n {
            idx.push(e as u32);
            idx.push(((e * 7 + 1) % n) as u32);
        }
        let pedge = op2.decl_map(&edges, &nodes, 2, idx, "pedge");
        let val = op2.decl_dat(&nodes, 1, "val", vec![1.0f64; n]);
        let acc = op2.decl_dat(&nodes, 1, "acc", vec![0.0f64; n]);
        for _ in 0..8 {
            // Direct RAW: val -> val.
            op2.loop_("bump", &nodes)
                .arg(rw(&val))
                .run(|v: &mut [f64]| {
                    v[0] += 1.0;
                });
            // Indirect increments over both endpoints read nothing, so the
            // chain is val(W) -> acc(W) -> val(W) across iterations.
            op2.loop_("scatter", &edges)
                .arg(inc_via(&acc, &pedge, 0))
                .arg(inc_via(&acc, &pedge, 1))
                .run(|a: &mut [f64], b: &mut [f64]| {
                    a[0] += 1.0;
                    b[0] += 2.0;
                });
        }
        op2.fence();
        (val.snapshot(), acc.snapshot())
    };
    let (val_seq, acc_seq) = run(Op2Config::seq());
    for config in [
        Op2Config::fork_join(2),
        Op2Config::dataflow(2),
        Op2Config::dataflow(4).with_block_size(128),
        Op2Config::dataflow(2).with_block_size(17),
    ] {
        let label = format!("{config:?}");
        let (val, acc) = run(config);
        assert_eq!(val, val_seq, "{label}: val diverged");
        assert_eq!(acc, acc_seq, "{label}: acc diverged");
    }
}
