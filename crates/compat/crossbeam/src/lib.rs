//! Offline stand-in for the `crossbeam` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate provides the API subset the scheduler uses:
//! `deque::{Worker, Stealer, Injector, Steal}` and
//! `utils::{Backoff, CachePadded}`. The deques are mutex-backed rather than
//! lock-free — semantically identical (LIFO owner pop, FIFO steal, batched
//! steals), slower under extreme contention. Swap the path dependency back
//! to the real crate when a registry is available; no call sites change.

#![warn(missing_docs)]

/// Work-stealing double-ended queues (mutex-backed stand-in).
pub mod deque {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex, PoisonError};

    /// How many extra items a batched steal moves to the thief's deque.
    const STEAL_BATCH: usize = 16;

    /// The result of a steal attempt.
    #[derive(Debug)]
    pub enum Steal<T> {
        /// The source was empty.
        Empty,
        /// One task was stolen (possibly with a batch moved alongside).
        Success(T),
        /// The attempt lost a race; retrying may succeed.
        Retry,
    }

    fn lock<T>(q: &Mutex<VecDeque<T>>) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        q.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The owner's end of a work-stealing deque: LIFO push/pop.
    pub struct Worker<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Worker<T> {
        /// Creates a deque whose owner pops in LIFO order.
        pub fn new_lifo() -> Self {
            Worker {
                queue: Arc::new(Mutex::new(VecDeque::new())),
            }
        }

        /// Pushes a task onto the owner's end.
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// Pops the most recently pushed task (LIFO).
        pub fn pop(&self) -> Option<T> {
            lock(&self.queue).pop_back()
        }

        /// True when the deque holds no tasks.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// A handle other threads use to steal from this deque.
        pub fn stealer(&self) -> Stealer<T> {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    /// A thief's handle onto some [`Worker`]'s deque: FIFO steals.
    pub struct Stealer<T> {
        queue: Arc<Mutex<VecDeque<T>>>,
    }

    impl<T> Clone for Stealer<T> {
        fn clone(&self) -> Self {
            Stealer {
                queue: Arc::clone(&self.queue),
            }
        }
    }

    fn steal_into<T>(src: &Mutex<VecDeque<T>>, dest: &Worker<T>) -> Steal<T> {
        // Take the batch out under the source lock only, then release it
        // before touching the destination: two threads stealing from each
        // other must never hold both locks at once (lock-order deadlock).
        let (first, batch) = {
            let mut src = lock(src);
            let Some(first) = src.pop_front() else {
                return Steal::Empty;
            };
            let extra = (src.len() / 2).min(STEAL_BATCH);
            let batch: Vec<T> = src.drain(..extra).collect();
            (first, batch)
        };
        if !batch.is_empty() {
            let mut dest_q = lock(&dest.queue);
            // Keep FIFO order: oldest of the batch lands deepest.
            for t in batch.into_iter().rev() {
                dest_q.push_front(t);
            }
        }
        Steal::Success(first)
    }

    impl<T> Stealer<T> {
        /// Steals one task, moving a batch of follow-up tasks into `dest`.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            steal_into(&self.queue, dest)
        }
    }

    /// A shared FIFO queue for task submission from outside the pool.
    pub struct Injector<T> {
        queue: Mutex<VecDeque<T>>,
    }

    impl<T> Default for Injector<T> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<T> Injector<T> {
        /// An empty injector.
        pub fn new() -> Self {
            Injector {
                queue: Mutex::new(VecDeque::new()),
            }
        }

        /// Enqueues a task (FIFO).
        pub fn push(&self, task: T) {
            lock(&self.queue).push_back(task);
        }

        /// True when no tasks are queued.
        pub fn is_empty(&self) -> bool {
            lock(&self.queue).is_empty()
        }

        /// Steals one task, moving a batch of follow-up tasks into `dest`.
        pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
            steal_into(&self.queue, dest)
        }
    }
}

/// Miscellaneous concurrency utilities.
pub mod utils {
    /// Exponential backoff for spin loops.
    #[derive(Debug, Default)]
    pub struct Backoff {
        step: std::cell::Cell<u32>,
    }

    /// Spin this many doubling rounds before starting to yield the thread.
    const SPIN_LIMIT: u32 = 6;

    impl Backoff {
        /// A fresh backoff state.
        pub fn new() -> Self {
            Backoff::default()
        }

        /// Backs off: short spins first, thread yields once contended.
        pub fn snooze(&self) {
            let step = self.step.get();
            if step <= SPIN_LIMIT {
                for _ in 0..(1u32 << step) {
                    std::hint::spin_loop();
                }
                self.step.set(step + 1);
            } else {
                std::thread::yield_now();
            }
        }
    }

    /// Pads and aligns a value to 128 bytes to avoid false sharing.
    #[derive(Debug, Default)]
    #[repr(align(128))]
    pub struct CachePadded<T> {
        value: T,
    }

    impl<T> CachePadded<T> {
        /// Wraps `value` in cache-line padding.
        pub const fn new(value: T) -> Self {
            CachePadded { value }
        }
    }

    impl<T> std::ops::Deref for CachePadded<T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.value
        }
    }

    impl<T> std::ops::DerefMut for CachePadded<T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.value
        }
    }
}

#[cfg(test)]
mod tests {
    use super::deque::{Injector, Steal, Worker};
    use super::utils::{Backoff, CachePadded};

    #[test]
    fn owner_pops_lifo() {
        let w = Worker::new_lifo();
        w.push(1);
        w.push(2);
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_fifo_with_batch() {
        let victim = Worker::new_lifo();
        for i in 0..10 {
            victim.push(i);
        }
        let thief = Worker::new_lifo();
        match victim.stealer().steal_batch_and_pop(&thief) {
            Steal::Success(v) => assert_eq!(v, 0, "steals from the cold end"),
            other => panic!("expected success, got {other:?}"),
        }
        assert!(!thief.is_empty(), "a batch must ride along");
    }

    #[test]
    fn injector_is_fifo() {
        let inj = Injector::new();
        inj.push("a");
        inj.push("b");
        let w = Worker::new_lifo();
        assert!(matches!(inj.steal_batch_and_pop(&w), Steal::Success("a")));
    }

    #[test]
    fn utils_smoke() {
        let b = Backoff::new();
        for _ in 0..10 {
            b.snooze();
        }
        let padded = CachePadded::new(7u64);
        assert_eq!(*padded, 7);
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
    }
}
