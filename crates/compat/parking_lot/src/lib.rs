//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace-local crate provides the (small) `parking_lot` API surface the
//! rest of the workspace uses — `Mutex`, `MutexGuard`, `Condvar` — backed by
//! `std::sync`. Semantics match `parking_lot` where they differ from `std`:
//!
//! * `Mutex::lock` returns the guard directly (no `Result`);
//! * poisoning is ignored — a panic while holding the lock does not poison
//!   it for later users;
//! * `Condvar::wait`/`wait_for` take `&mut MutexGuard` instead of consuming
//!   the guard.
//!
//! Swap the path dependency back to the real crate when a registry is
//! available; no call sites need to change.

#![warn(missing_docs)]

use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion primitive (see module docs for semantics).
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard of a [`Mutex`]; unlocks on drop.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar` can temporarily take the std guard out while
    // waiting and put the re-acquired one back.
    guard: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            guard: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Acquires the lock only if it is free right now.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { guard: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                guard: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_deref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_deref_mut().expect("guard taken during wait")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait returned because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable usable with [`Mutex`] (parking_lot-style API).
#[derive(Default, Debug)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and re-acquiring the
    /// guard's mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.guard.take().expect("guard taken during wait");
        let g = self.inner.wait(g).unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
    }

    /// Like [`Condvar::wait`], with a timeout.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.guard.take().expect("guard taken during wait");
        let (g, r) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.guard = Some(g);
        WaitTimeoutResult {
            timed_out: r.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0, "lock must stay usable after a panic");
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(10));
        }
        drop(g);
        t.join().unwrap();
    }
}
