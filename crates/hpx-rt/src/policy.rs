//! Execution policies (paper Table I).
//!
//! | Policy       | Description                           | Constructor  |
//! |--------------|---------------------------------------|--------------|
//! | `seq`        | sequential execution                  | [`seq`]      |
//! | `par`        | parallel execution                    | [`par`]      |
//! | `par_vec`    | parallel + vectorized (Parallelism TS)| [`par_vec`]  |
//! | `seq(task)`  | sequential, asynchronous              | [`seq_task`] |
//! | `par(task)`  | parallel, asynchronous                | [`par_task`] |
//!
//! A policy combines an execution mode ([`Exec`]), a launch mode
//! ([`Launch`], sync algorithms block, task algorithms return futures) and a
//! [`ChunkPolicy`] controlling how much work each task receives (paper
//! §IV-B). `par_vec` maps to `par`: explicit vectorization is left to LLVM's
//! auto-vectorizer, which the tight per-chunk loops are written to enable —
//! the Parallelism TS semantics ("may run vectorized") are preserved.

use crate::chunk::ChunkPolicy;

/// Sequential or parallel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Exec {
    /// Run on the calling task in index order.
    Seq,
    /// Split into chunks executed by the pool.
    #[default]
    Par,
}

/// Synchronous (block until done) or asynchronous (return a future).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Launch {
    /// The algorithm returns when the loop has completed.
    #[default]
    Sync,
    /// The algorithm returns immediately with a completion future.
    Task,
}

/// A complete execution policy for the parallel algorithms.
#[derive(Debug, Clone, Default)]
pub struct ExecutionPolicy {
    /// Sequential vs parallel.
    pub exec: Exec,
    /// Blocking vs future-returning.
    pub launch: Launch,
    /// Work-division strategy.
    pub chunk: ChunkPolicy,
}

impl ExecutionPolicy {
    /// Replaces the chunking strategy (paper: `policy.with(chunker)`).
    #[must_use]
    pub fn with_chunk(mut self, chunk: ChunkPolicy) -> Self {
        self.chunk = chunk;
        self
    }

    /// True for `par` / `par(task)`.
    #[inline]
    pub fn is_parallel(&self) -> bool {
        self.exec == Exec::Par
    }

    /// True for `seq(task)` / `par(task)`.
    #[inline]
    pub fn is_async(&self) -> bool {
        self.launch == Launch::Task
    }

    /// Short human-readable name matching Table I.
    pub fn name(&self) -> &'static str {
        match (self.exec, self.launch) {
            (Exec::Seq, Launch::Sync) => "seq",
            (Exec::Par, Launch::Sync) => "par",
            (Exec::Seq, Launch::Task) => "seq(task)",
            (Exec::Par, Launch::Task) => "par(task)",
        }
    }
}

/// Sequential execution (Table I: `seq`).
pub fn seq() -> ExecutionPolicy {
    ExecutionPolicy {
        exec: Exec::Seq,
        launch: Launch::Sync,
        chunk: ChunkPolicy::default(),
    }
}

/// Parallel execution (Table I: `par`).
pub fn par() -> ExecutionPolicy {
    ExecutionPolicy {
        exec: Exec::Par,
        launch: Launch::Sync,
        chunk: ChunkPolicy::default(),
    }
}

/// Parallel and vectorized execution (Table I: `par_vec`). See the module
/// docs: equivalent to [`par`], with vectorization delegated to the
/// compiler.
pub fn par_vec() -> ExecutionPolicy {
    par()
}

/// Sequential asynchronous execution (Table I: `seq(task)`).
pub fn seq_task() -> ExecutionPolicy {
    ExecutionPolicy {
        exec: Exec::Seq,
        launch: Launch::Task,
        chunk: ChunkPolicy::default(),
    }
}

/// Parallel asynchronous execution (Table I: `par(task)`).
pub fn par_task() -> ExecutionPolicy {
    ExecutionPolicy {
        exec: Exec::Par,
        launch: Launch::Task,
        chunk: ChunkPolicy::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_table_one() {
        assert_eq!(seq().name(), "seq");
        assert_eq!(par().name(), "par");
        assert_eq!(par_vec().name(), "par");
        assert_eq!(seq_task().name(), "seq(task)");
        assert_eq!(par_task().name(), "par(task)");
    }

    #[test]
    fn flags() {
        assert!(!seq().is_parallel());
        assert!(par().is_parallel());
        assert!(par_task().is_async());
        assert!(!par().is_async());
    }

    #[test]
    fn with_chunk_replaces_chunker() {
        let p = par().with_chunk(ChunkPolicy::Static { size: 17 });
        match p.chunk {
            ChunkPolicy::Static { size } => assert_eq!(size, 17),
            _ => panic!("chunker not replaced"),
        }
    }
}
