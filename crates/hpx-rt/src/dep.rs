//! Lightweight dependency-counting LCOs for fine-grained task graphs.
//!
//! The block-granular dataflow engine in `op2-core` schedules one node per
//! mini-partition block, so a single loop can produce thousands of small
//! nodes. Building each node out of `when_all` + `Promise` + `Future` +
//! `share()` costs four allocations and two continuation hops per node;
//! this module provides the flat, batched alternative:
//!
//! * [`DepCounter`] — an atomic countdown LCO that fires a stored action
//!   exactly once when the count reaches zero (HPX's
//!   `hpx::lcos::local::counting_semaphore` flavor of dependency join);
//! * [`schedule_after`] — "run this closure on the runtime once all these
//!   shared futures are ready", returning the node's completion as a
//!   [`SharedFuture`] so it can be stored directly in per-block dependency
//!   tables. One allocation for the result, one registration per input, no
//!   intermediate futures. Panics in any input (or the body) propagate to
//!   the returned future.
//! * [`when_any_shared`] — a when-any-of-range join: resolves to the index
//!   of the first ready input.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::future::{channel, Future, SharedFuture, SharedOutcome, SharedPanic};
use crate::runtime::Runtime;
use crate::task::Task;

/// An atomic countdown LCO: created with a count and an action, it runs the
/// action exactly once — on the thread that performs the final
/// [`DepCounter::count_down`] — when the count reaches zero. A counter
/// created with count 0 fires immediately on construction.
///
/// This is the join primitive behind [`schedule_after`]; it is exposed on
/// its own for callers that batch completions by hand.
///
/// ```
/// use std::sync::Arc;
/// use std::sync::atomic::{AtomicBool, Ordering};
/// use hpx_rt::DepCounter;
///
/// let fired = Arc::new(AtomicBool::new(false));
/// let f2 = Arc::clone(&fired);
/// let c = DepCounter::new(2, move || f2.store(true, Ordering::Release));
/// c.count_down();
/// assert!(!fired.load(Ordering::Acquire));
/// c.count_down();
/// assert!(fired.load(Ordering::Acquire));
/// ```
pub struct DepCounter {
    remaining: AtomicUsize,
    action: Mutex<Option<Box<dyn FnOnce() + Send>>>,
}

impl DepCounter {
    /// A counter that runs `action` after `count` countdowns.
    pub fn new<F>(count: usize, action: F) -> Arc<Self>
    where
        F: FnOnce() + Send + 'static,
    {
        let counter = Arc::new(DepCounter {
            remaining: AtomicUsize::new(count),
            action: Mutex::new(Some(Box::new(action))),
        });
        if count == 0 {
            counter.fire();
        }
        counter
    }

    /// Records one completion; the final call runs the action inline.
    pub fn count_down(&self) {
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "DepCounter counted down below zero");
        if prev == 1 {
            self.fire();
        }
    }

    /// Remaining countdowns (diagnostic; racy by nature).
    pub fn pending(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }

    fn fire(&self) {
        if let Some(action) = self.action.lock().take() {
            action();
        }
    }
}

impl std::fmt::Debug for DepCounter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DepCounter")
            .field("pending", &self.pending())
            .finish()
    }
}

/// Shared state of one [`schedule_after`] node.
struct NodeState {
    /// First panic observed among the dependencies, if any.
    dep_panic: Mutex<Option<SharedPanic>>,
    /// Completion future handed to consumers.
    done: SharedFuture<()>,
}

/// Schedules `body` on `rt` as soon as every future in `deps` is ready,
/// returning the node's completion. If any dependency panicked, `body` is
/// skipped and the completion re-panics with the first observed panic; a
/// panic inside `body` is captured likewise.
///
/// Ready dependencies are counted immediately (their callback runs inline
/// at registration), so a node whose inputs already resolved costs one
/// task spawn and no waiting. Duplicate inputs (clones of one future —
/// common when several arguments of a loop reach the same predecessor
/// node) are registered once.
pub fn schedule_after<F>(rt: &Runtime, deps: &[SharedFuture<()>], body: F) -> SharedFuture<()>
where
    F: FnOnce() + Send + 'static,
{
    // Dedup by future identity: each duplicate would cost a boxed
    // callback and a countdown for no semantic effect. Dependency lists
    // are short, so the quadratic scan beats hashing.
    let mut unique: Vec<&SharedFuture<()>> = Vec::with_capacity(deps.len());
    for dep in deps {
        if !unique.iter().any(|u| SharedFuture::ptr_eq(u, dep)) {
            unique.push(dep);
        }
    }
    let deps = unique;

    let state = Arc::new(NodeState {
        dep_panic: Mutex::new(None),
        done: SharedFuture::pending(),
    });
    let result = state.done.clone();

    let inner_rt = Arc::clone(rt.inner());
    let fire_state = Arc::clone(&state);
    let counter = DepCounter::new(deps.len(), move || {
        let panic = fire_state.dep_panic.lock().take();
        match panic {
            // Propagate through a task, never inline: fulfilling here would
            // run the downstream node's countdown on this same stack, and a
            // panic at the head of a long submitted chain would then recurse
            // through every poisoned node and overflow the stack.
            Some(p) => inner_rt.spawn_task(Task::new(move || {
                fire_state.done.fulfill(SharedOutcome::Panic(p));
            })),
            None => inner_rt.spawn_task(Task::new(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(body));
                let outcome = match r {
                    Ok(()) => SharedOutcome::Value(()),
                    Err(p) => SharedOutcome::Panic(SharedPanic::from_payload(&p)),
                };
                fire_state.done.fulfill(outcome);
            })),
        }
    });

    for dep in deps {
        let counter = Arc::clone(&counter);
        let state = Arc::clone(&state);
        dep.attach_callback(Box::new(move |outcome| {
            if let SharedOutcome::Panic(p) = outcome {
                state.dep_panic.lock().get_or_insert_with(|| p.clone());
            }
            counter.count_down();
        }));
    }
    result
}

/// Resolves to the index of the first input to become ready (HPX
/// `when_any` over a range of shared futures). Inputs that panic still
/// count as "ready" — the winner's panic is *not* propagated, only its
/// index reported, so callers can inspect the winner themselves.
///
/// # Panics
///
/// If `deps` is empty (there is nothing to wait for).
pub fn when_any_shared(deps: &[SharedFuture<()>]) -> Future<usize> {
    assert!(!deps.is_empty(), "when_any_shared on an empty set");
    struct AnyState {
        promise: Mutex<Option<crate::future::Promise<usize>>>,
    }
    let (promise, future) = channel();
    let state = Arc::new(AnyState {
        promise: Mutex::new(Some(promise)),
    });
    for (i, dep) in deps.iter().enumerate() {
        let state = Arc::clone(&state);
        dep.attach_callback(Box::new(move |_outcome| {
            if let Some(p) = state.promise.lock().take() {
                p.set_value(i);
            }
        }));
    }
    future
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::ready;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_count_fires_immediately() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let _c = DepCounter::new(0, move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fires_exactly_once() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let c = DepCounter::new(64, move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let c = Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..16 {
                        c.count_down();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(hits.load(Ordering::Relaxed), 1);
        assert_eq!(c.pending(), 0);
    }

    #[test]
    fn schedule_after_empty_deps_runs() {
        let rt = Runtime::new(2);
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let done = schedule_after(&rt, &[], move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        done.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn schedule_after_waits_for_all() {
        let rt = Runtime::new(2);
        let deps: Vec<SharedFuture<()>> = (0..32).map(|_| rt.spawn_future(|| ()).share()).collect();
        let order = Arc::new(AtomicU64::new(0));
        let o = Arc::clone(&order);
        let done = schedule_after(&rt, &deps, move || {
            o.store(1, Ordering::Release);
        });
        done.wait();
        assert_eq!(order.load(Ordering::Acquire), 1);
        assert!(deps.iter().all(|d| d.is_ready()));
    }

    #[test]
    fn schedule_after_dedups_cloned_inputs() {
        let rt = Runtime::new(2);
        let dep = rt.spawn_future(|| ()).share();
        // The same future passed five times must count as one dependency
        // (a duplicate-counting bug would fire the body early or never).
        let deps = vec![dep.clone(), dep.clone(), dep.clone(), dep.clone(), dep];
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let done = schedule_after(&rt, &deps, move || {
            h.fetch_add(1, Ordering::Relaxed);
        });
        done.wait();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn schedule_after_chains() {
        // A linear chain of 100 nodes through shared futures.
        let rt = Runtime::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        let mut prev = schedule_after(&rt, &[], || ());
        for _ in 0..100 {
            let c = Arc::clone(&counter);
            prev = schedule_after(&rt, std::slice::from_ref(&prev), move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        prev.wait();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panic_traverses_long_chain_without_recursion() {
        // A panic at the head of a deep submitted chain must poison every
        // downstream node through the task queue, not by recursing down
        // one call stack (which would overflow for solver-scale chains).
        let rt = Runtime::new(2);
        let mut prev = schedule_after(&rt, &[], || panic!("head died"));
        for _ in 0..50_000 {
            prev = schedule_after(&rt, std::slice::from_ref(&prev), || {
                unreachable!("poisoned node must not run")
            });
        }
        prev.wait();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| prev.get()));
        let msg = *r
            .expect_err("tail must re-panic")
            .downcast::<String>()
            .unwrap();
        assert!(msg.contains("head died"), "panic message lost: {msg}");
    }

    #[test]
    #[should_panic(expected = "node dependency died")]
    fn schedule_after_propagates_dep_panic() {
        let rt = Runtime::new(2);
        let bad: SharedFuture<()> = rt.spawn_future(|| panic!("node dependency died")).share();
        let done = schedule_after(&rt, &[bad], || unreachable!("must be skipped"));
        done.get();
    }

    #[test]
    #[should_panic(expected = "body exploded")]
    fn schedule_after_propagates_body_panic() {
        let rt = Runtime::new(2);
        let done = schedule_after(&rt, &[], || panic!("body exploded"));
        done.get();
    }

    #[test]
    fn when_any_reports_first_ready() {
        let rt = Runtime::new(2);
        let slow: SharedFuture<()> = rt
            .spawn_future(|| std::thread::sleep(std::time::Duration::from_millis(50)))
            .share();
        let fast = ready(()).share();
        let idx = when_any_shared(&[slow, fast]).get();
        assert_eq!(idx, 1);
    }

    #[test]
    #[should_panic(expected = "empty set")]
    fn when_any_rejects_empty() {
        let _ = when_any_shared(&[]);
    }
}
