//! The work-stealing task scheduler.
//!
//! This is the substrate that stands in for the HPX thread manager: a fixed
//! pool of OS worker threads, each owning a lock-free LIFO deque
//! (crossbeam), a shared FIFO injector for external submissions, and a
//! sleep/wake protocol on a condvar. Two properties matter for the paper's
//! experiments:
//!
//! * **Asynchronous tasking** — [`Runtime::spawn`] never blocks; futures and
//!   dataflow nodes (see [`crate::future`], [`crate::dataflow`]) schedule
//!   continuations as plain tasks.
//! * **Help-first blocking** — a worker that blocks on a future or latch
//!   does not sleep; it executes other ready tasks ([`try_help`]). This is
//!   the Rust substitute for HPX's suspendable user-level threads and it is
//!   what keeps nested waits deadlock-free.

use crossbeam::deque::{Injector, Steal, Stealer, Worker as Deque};
use parking_lot::{Condvar, Mutex};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::stats::{PaddedWorkerStats, RuntimeStats, WorkerStats};
use crate::task::Task;

thread_local! {
    /// Pointer to the worker context of the current thread, if it is a pool
    /// worker. Set for the duration of `worker_main`.
    static CURRENT_WORKER: Cell<*const WorkerCtx> = const { Cell::new(std::ptr::null()) };
}

/// How long an idle worker sleeps before re-checking the queues. The timeout
/// bounds the staleness of the (benign) race between "queue looked empty" and
/// "a task was pushed just before we registered as a sleeper".
const PARK_TIMEOUT: Duration = Duration::from_millis(2);

/// How long a *waiting* thread (blocked in a future/latch with nothing to
/// help with) sleeps before re-polling its wait condition and the queues.
pub(crate) const WAIT_POLL: Duration = Duration::from_micros(200);

pub(crate) struct RuntimeInner {
    injector: Injector<Task>,
    stealers: Box<[Stealer<Task>]>,
    sleep_lock: Mutex<()>,
    sleep_cv: Condvar,
    sleepers: AtomicUsize,
    shutdown: AtomicBool,
    /// Tasks spawned but not yet finished running; used by `wait_idle`.
    pending: AtomicUsize,
    pub(crate) stats: Box<[PaddedWorkerStats]>,
    nthreads: usize,
}

struct WorkerCtx {
    inner: Arc<RuntimeInner>,
    index: usize,
    local: Deque<Task>,
    /// xorshift state for steal-victim rotation.
    rng: Cell<u64>,
}

/// Outcome of a single help attempt while blocked (see [`try_help`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Help {
    /// A task was found and executed; re-check the wait condition.
    Helped,
    /// This is a pool worker but no task was runnable.
    Idle,
    /// The current thread is not a worker of any runtime.
    NotWorker,
}

/// A fixed-size work-stealing thread pool.
///
/// Dropping the runtime drains all outstanding tasks, then joins the worker
/// threads. Benchmarks create one `Runtime` per thread-count configuration.
///
/// ```
/// let rt = hpx_rt::Runtime::new(4);
/// let fut = rt.spawn_future(|| 21 * 2);
/// assert_eq!(fut.get(), 42);
/// ```
pub struct Runtime {
    inner: Arc<RuntimeInner>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Runtime {
    /// Creates a pool with `nthreads` workers (clamped to at least 1).
    pub fn new(nthreads: usize) -> Self {
        Self::with_name(nthreads, "hpx-worker")
    }

    /// Creates a pool whose worker threads are named `{prefix}-{index}`.
    pub fn with_name(nthreads: usize, prefix: &str) -> Self {
        let nthreads = nthreads.max(1);
        let deques: Vec<Deque<Task>> = (0..nthreads).map(|_| Deque::new_lifo()).collect();
        let stealers: Box<[Stealer<Task>]> = deques.iter().map(|d| d.stealer()).collect();
        let stats: Box<[PaddedWorkerStats]> = (0..nthreads)
            .map(|_| PaddedWorkerStats::new(WorkerStats::default()))
            .collect();
        let inner = Arc::new(RuntimeInner {
            injector: Injector::new(),
            stealers,
            sleep_lock: Mutex::new(()),
            sleep_cv: Condvar::new(),
            sleepers: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            pending: AtomicUsize::new(0),
            stats,
            nthreads,
        });
        let mut threads = Vec::with_capacity(nthreads);
        for (index, local) in deques.into_iter().enumerate() {
            let inner = Arc::clone(&inner);
            let name = format!("{prefix}-{index}");
            threads.push(
                std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_main(inner, index, local))
                    .expect("failed to spawn worker thread"),
            );
        }
        Runtime { inner, threads }
    }

    /// Number of worker threads in the pool.
    #[inline]
    pub fn num_threads(&self) -> usize {
        self.inner.nthreads
    }

    /// Schedules `f` to run on the pool. Never blocks.
    ///
    /// Panics inside `f` are caught and counted in [`RuntimeStats`]; use
    /// [`Runtime::spawn_future`] when the caller needs the result or the
    /// panic propagated.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'static,
    {
        self.inner.spawn_task(Task::new(f));
    }

    /// Schedules `f` and returns a [`Future`](crate::Future) for its result.
    /// A panic in `f` is captured and re-thrown by `Future::get`.
    pub fn spawn_future<R, F>(&self, f: F) -> crate::Future<R>
    where
        R: Send + 'static,
        F: FnOnce() -> R + Send + 'static,
    {
        let (promise, future) = crate::future::channel();
        self.spawn(
            move || match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
                Ok(v) => promise.set_value(v),
                Err(p) => promise.set_panic(p),
            },
        );
        future
    }

    /// Blocks until every spawned task has finished. Intended for tests and
    /// stats collection, not as a synchronization primitive (use futures or
    /// latches for that).
    pub fn wait_idle(&self) {
        while self.inner.pending.load(Ordering::Acquire) != 0 {
            if try_help() != Help::Helped {
                std::thread::sleep(WAIT_POLL);
            }
        }
    }

    /// Snapshot of scheduler counters.
    pub fn stats(&self) -> RuntimeStats {
        RuntimeStats::aggregate(&self.inner.stats)
    }

    #[inline]
    pub(crate) fn inner(&self) -> &Arc<RuntimeInner> {
        &self.inner
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Wake everyone until all workers observed the flag and exited.
        for handle in self.threads.drain(..) {
            loop {
                {
                    let _g = self.inner.sleep_lock.lock();
                    self.inner.sleep_cv.notify_all();
                }
                if handle.is_finished() {
                    break;
                }
                std::thread::sleep(Duration::from_micros(50));
            }
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("threads", &self.inner.nthreads)
            .finish()
    }
}

impl RuntimeInner {
    #[inline]
    pub(crate) fn num_threads(&self) -> usize {
        self.nthreads
    }

    /// Pushes a task: onto the local deque when called from a worker of this
    /// pool (cheap, no contention), otherwise onto the shared injector.
    pub(crate) fn spawn_task(&self, task: Task) {
        self.pending.fetch_add(1, Ordering::AcqRel);
        let leftover = CURRENT_WORKER.with(|c| {
            let p = c.get();
            if !p.is_null() {
                // SAFETY: the pointer is valid for the duration of
                // worker_main on this thread.
                let ctx = unsafe { &*p };
                if std::ptr::eq(&*ctx.inner, self) {
                    ctx.local.push(task);
                    return None;
                }
            }
            Some(task)
        });
        if let Some(task) = leftover {
            self.injector.push(task);
        }
        self.notify_one();
    }

    fn notify_one(&self) {
        if self.sleepers.load(Ordering::Relaxed) > 0 {
            let _g = self.sleep_lock.lock();
            self.sleep_cv.notify_one();
        }
    }

    fn task_finished(&self) {
        self.pending.fetch_sub(1, Ordering::AcqRel);
    }
}

impl WorkerCtx {
    #[inline]
    fn next_victim(&self, n: usize) -> usize {
        // xorshift64*
        let mut x = self.rng.get();
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng.set(x);
        (x % n as u64) as usize
    }

    fn find_task(&self) -> Option<Task> {
        if let Some(t) = self.local.pop() {
            return Some(t);
        }
        // Shared injector next: FIFO order keeps external submissions fair.
        loop {
            match self.inner.injector.steal_batch_and_pop(&self.local) {
                Steal::Success(t) => return Some(t),
                Steal::Empty => break,
                Steal::Retry => continue,
            }
        }
        // Steal from a sibling, starting at a random victim.
        let n = self.inner.stealers.len();
        if n <= 1 {
            return None;
        }
        let start = self.next_victim(n);
        let mut retry = true;
        while retry {
            retry = false;
            for k in 0..n {
                let i = (start + k) % n;
                if i == self.index {
                    continue;
                }
                match self.inner.stealers[i].steal_batch_and_pop(&self.local) {
                    Steal::Success(t) => {
                        self.inner.stats[self.index]
                            .steals
                            .fetch_add(1, Ordering::Relaxed);
                        return Some(t);
                    }
                    Steal::Empty => {}
                    Steal::Retry => retry = true,
                }
            }
        }
        None
    }

    fn run(&self, task: Task, helped: bool) {
        let stats = &self.inner.stats[self.index];
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task.run())).is_err() {
            stats.panics.fetch_add(1, Ordering::Relaxed);
        }
        if helped {
            stats.helped.fetch_add(1, Ordering::Relaxed);
        } else {
            stats.executed.fetch_add(1, Ordering::Relaxed);
        }
        self.inner.task_finished();
    }

    fn park(&self) {
        let mut guard = self.inner.sleep_lock.lock();
        // Re-check under the lock: a notify that raced with us would
        // otherwise be lost.
        if !self.inner.injector.is_empty() || self.inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        self.inner.sleepers.fetch_add(1, Ordering::SeqCst);
        self.inner.stats[self.index]
            .parks
            .fetch_add(1, Ordering::Relaxed);
        self.inner.sleep_cv.wait_for(&mut guard, PARK_TIMEOUT);
        self.inner.sleepers.fetch_sub(1, Ordering::SeqCst);
    }
}

fn worker_main(inner: Arc<RuntimeInner>, index: usize, local: Deque<Task>) {
    let ctx = WorkerCtx {
        inner,
        index,
        local,
        rng: Cell::new(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1) | 1),
    };
    CURRENT_WORKER.with(|c| c.set(&ctx as *const _));
    loop {
        if let Some(task) = ctx.find_task() {
            ctx.run(task, false);
            continue;
        }
        if ctx.inner.shutdown.load(Ordering::Acquire) {
            // Queues were empty when we looked; siblings drain their own
            // local deques, so it is safe to leave.
            break;
        }
        ctx.park();
    }
    CURRENT_WORKER.with(|c| c.set(std::ptr::null()));
}

/// Attempts to run one ready task on the current thread. Used by every
/// blocking primitive (futures, latches, barriers) so that a blocked worker
/// keeps the pool saturated instead of sleeping — the stand-in for HPX's
/// suspended user-threads.
pub(crate) fn try_help() -> Help {
    CURRENT_WORKER.with(|c| {
        let p = c.get();
        if p.is_null() {
            return Help::NotWorker;
        }
        // SAFETY: set/cleared by worker_main on this thread.
        let ctx = unsafe { &*p };
        match ctx.find_task() {
            Some(t) => {
                ctx.run(t, true);
                Help::Helped
            }
            None => Help::Idle,
        }
    })
}

/// True when the current thread is a pool worker (of any runtime).
pub fn on_worker_thread() -> bool {
    CURRENT_WORKER.with(|c| !c.get().is_null())
}

/// Spawns `f` onto the runtime owning the current worker thread. Returns
/// `false` (without running `f`) when the caller is not a pool worker.
/// The analogue of calling `hpx::async` from inside an HPX thread.
pub fn spawn_on_current<F>(f: F) -> bool
where
    F: FnOnce() + Send + 'static,
{
    CURRENT_WORKER.with(|c| {
        let p = c.get();
        if p.is_null() {
            return false;
        }
        // SAFETY: set/cleared by worker_main on this thread.
        let ctx = unsafe { &*p };
        ctx.inner.spawn_task(Task::new(f));
        true
    })
}

/// Spawn a task that borrows stack data.
///
/// # Safety
///
/// Caller must join (e.g. via a latch) before the borrowed data dies; see
/// [`Task::new_unchecked`].
pub(crate) unsafe fn spawn_unchecked<'a, F>(inner: &RuntimeInner, f: F)
where
    F: FnOnce() + Send + 'a,
{
    // SAFETY: forwarded contract.
    let task = unsafe { Task::new_unchecked(f) };
    inner.spawn_task(task);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn spawn_runs_tasks() {
        let rt = Runtime::new(3);
        let counter = Arc::new(AtomicU64::new(0));
        for _ in 0..1000 {
            let c = Arc::clone(&counter);
            rt.spawn(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        rt.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn nested_spawn_from_worker() {
        let rt = Runtime::new(2);
        let counter = Arc::new(AtomicU64::new(0));
        let fut = {
            let c = Arc::clone(&counter);
            rt.spawn_future(move || {
                // Spawning from a worker goes through the local deque path.
                for _ in 0..100 {
                    let c2 = Arc::clone(&c);
                    crate::runtime::CURRENT_WORKER.with(|cur| {
                        assert!(!cur.get().is_null(), "must run on a worker");
                    });
                    // Use try_help to exercise the help path too.
                    let _ = try_help();
                    c2.fetch_add(1, Ordering::Relaxed);
                }
                7u32
            })
        };
        assert_eq!(fut.get(), 7);
        rt.wait_idle();
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panicking_task_is_counted_and_pool_survives() {
        let rt = Runtime::new(2);
        rt.spawn(|| panic!("boom"));
        rt.wait_idle();
        assert_eq!(rt.stats().task_panics, 1);
        // Pool still works.
        let fut = rt.spawn_future(|| 5);
        assert_eq!(fut.get(), 5);
    }

    #[test]
    fn single_thread_pool() {
        let rt = Runtime::new(1);
        let fut = rt.spawn_future(|| (0..100u64).sum::<u64>());
        assert_eq!(fut.get(), 4950);
    }

    #[test]
    fn zero_thread_request_clamps_to_one() {
        let rt = Runtime::new(0);
        assert_eq!(rt.num_threads(), 1);
    }

    #[test]
    fn drop_drains_outstanding_tasks() {
        let counter = Arc::new(AtomicU64::new(0));
        {
            let rt = Runtime::new(2);
            for _ in 0..500 {
                let c = Arc::clone(&counter);
                rt.spawn(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // Drop immediately: workers must drain before joining.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 500);
    }

    #[test]
    fn stats_display() {
        let rt = Runtime::new(2);
        rt.spawn(|| {});
        rt.wait_idle();
        let s = rt.stats();
        let text = s.to_string();
        assert!(text.contains("workers=2"), "{text}");
    }
}
