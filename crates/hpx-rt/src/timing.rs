//! Small timing helpers shared by the benchmarks and the measuring
//! chunkers — plus the injectable [`Clock`] the feedback-driven
//! granularity machinery measures through, so tests can replace wall time
//! with a deterministic fake.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// A monotonic nanosecond clock: either the process wall clock or an
/// injected test clock that only moves when the test advances it.
///
/// The measuring chunk policies ([`crate::GranularityFeedback`], and the
/// OP2 dataflow driver built on it) read time exclusively through a
/// `Clock`, so convergence behaviour can be proven deterministically: a
/// test installs [`Clock::fake`], has the "kernel" advance it by a
/// synthetic per-element cost, and the feedback loop observes exactly
/// those costs.
///
/// Cloning is cheap; clones of a fake clock share the same time source.
///
/// ```
/// use hpx_rt::timing::Clock;
/// use std::time::Duration;
///
/// let fake = Clock::fake();
/// let t0 = fake.now_ns();
/// fake.advance(Duration::from_micros(3));
/// assert_eq!(fake.now_ns() - t0, 3_000);
///
/// let real = Clock::real();
/// assert!(!real.is_fake());
/// ```
#[derive(Clone, Debug)]
pub struct Clock {
    /// `None` = real monotonic time; `Some` = shared fake nanoseconds.
    fake: Option<Arc<AtomicU64>>,
}

/// Anchor for the real clock's nanosecond readings (monotonic since first
/// use; only differences are meaningful).
fn real_anchor() -> Instant {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    *ANCHOR.get_or_init(Instant::now)
}

impl Clock {
    /// The process monotonic clock.
    pub fn real() -> Self {
        Clock { fake: None }
    }

    /// A fake clock starting at 0 ns; it advances only via
    /// [`Clock::advance`]. Clones share the same time source.
    pub fn fake() -> Self {
        Clock {
            fake: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    /// True for a test clock created by [`Clock::fake`].
    pub fn is_fake(&self) -> bool {
        self.fake.is_some()
    }

    /// Monotonic nanoseconds; only differences are meaningful.
    pub fn now_ns(&self) -> u64 {
        match &self.fake {
            Some(ns) => ns.load(Ordering::Acquire),
            None => real_anchor().elapsed().as_nanos() as u64,
        }
    }

    /// Advances a fake clock by `d`.
    ///
    /// # Panics
    ///
    /// On a real clock — wall time cannot be steered.
    pub fn advance(&self, d: Duration) {
        let ns = self
            .fake
            .as_ref()
            .expect("Clock::advance on the real clock");
        ns.fetch_add(d.as_nanos() as u64, Ordering::AcqRel);
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::real()
    }
}

/// A started stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as f64 (bench-friendly).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts and returns the lap time.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

/// Runs `f`, returning its result and the wall time taken.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Runs `f` `reps` times and returns the *minimum* wall time — the usual
/// low-noise estimator for short benches.
pub fn time_min(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

// ---------------------------------------------------------------------------
// Deferred actions: a shared deadline-timer thread
// ---------------------------------------------------------------------------

/// An action queued on the timer thread.
struct Deferred {
    at: Instant,
    /// Tie-breaker so equal deadlines fire in submission order.
    seq: u64,
    action: Box<dyn FnOnce() + Send>,
}

impl PartialEq for Deferred {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Deferred {}
impl PartialOrd for Deferred {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Deferred {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: `BinaryHeap` is a max-heap, the earliest deadline must
        // surface first.
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

struct TimerQueue {
    heap: parking_lot::Mutex<std::collections::BinaryHeap<Deferred>>,
    cv: parking_lot::Condvar,
    next_seq: AtomicU64,
}

fn timer() -> &'static TimerQueue {
    static TIMER: OnceLock<&'static TimerQueue> = OnceLock::new();
    TIMER.get_or_init(|| {
        let q: &'static TimerQueue = Box::leak(Box::new(TimerQueue {
            heap: parking_lot::Mutex::new(std::collections::BinaryHeap::new()),
            cv: parking_lot::Condvar::new(),
            next_seq: AtomicU64::new(0),
        }));
        std::thread::Builder::new()
            .name("hpx-timer".into())
            .spawn(move || loop {
                let mut heap = q.heap.lock();
                match heap.peek().map(|d| d.at) {
                    None => q.cv.wait(&mut heap),
                    Some(at) => {
                        let now = Instant::now();
                        if at <= now {
                            let d = heap.pop().unwrap();
                            drop(heap);
                            (d.action)();
                        } else {
                            q.cv.wait_for(&mut heap, at - now);
                        }
                    }
                }
            })
            .expect("spawn hpx-timer thread");
        q
    })
}

/// Runs `action` on a shared timer thread after `delay`, without occupying
/// any runtime worker in the meantime — the deferred-delivery primitive the
/// in-process transport uses to model link latency (a node that must fire
/// late *reschedules* instead of sleeping on a worker). Actions with equal
/// deadlines fire in submission order; the timer thread is lazily created
/// on first use and shared process-wide.
///
/// The action runs on the timer thread itself, so it must be short — push a
/// value, fulfill a promise, spawn a task — or it delays later deadlines.
///
/// ```
/// use std::sync::mpsc::channel;
/// use std::time::Duration;
///
/// let (tx, rx) = channel();
/// hpx_rt::timing::defer(Duration::from_millis(5), move || {
///     let _ = tx.send(42);
/// });
/// assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(42));
/// ```
pub fn defer(delay: Duration, action: impl FnOnce() + Send + 'static) {
    let q = timer();
    let d = Deferred {
        at: Instant::now() + delay,
        seq: q.next_seq.fetch_add(1, Ordering::Relaxed),
        action: Box::new(action),
    };
    q.heap.lock().push(d);
    q.cv.notify_one();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(2));
        assert!(sw.elapsed_ms() >= 2.0);
    }

    #[test]
    fn time_returns_value() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn time_min_takes_minimum() {
        let mut calls = 0;
        let d = time_min(5, || calls += 1);
        assert_eq!(calls, 5);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn fake_clock_is_deterministic_and_shared() {
        let c = Clock::fake();
        assert!(c.is_fake());
        assert_eq!(c.now_ns(), 0);
        let clone = c.clone();
        c.advance(Duration::from_nanos(250));
        assert_eq!(clone.now_ns(), 250, "clones share the time source");
        clone.advance(Duration::from_micros(1));
        assert_eq!(c.now_ns(), 1_250);
    }

    #[test]
    fn real_clock_advances_monotonically() {
        let c = Clock::real();
        let a = c.now_ns();
        std::thread::sleep(Duration::from_millis(1));
        assert!(c.now_ns() > a);
    }

    #[test]
    #[should_panic(expected = "Clock::advance on the real clock")]
    fn real_clock_cannot_be_steered() {
        Clock::default().advance(Duration::from_nanos(1));
    }

    #[test]
    fn defer_fires_after_the_delay() {
        let (tx, rx) = std::sync::mpsc::channel();
        let t0 = Instant::now();
        defer(Duration::from_millis(10), move || {
            let _ = tx.send(());
        });
        rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(10));
    }

    #[test]
    fn defer_orders_equal_deadlines_by_submission() {
        let log = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let (tx, rx) = std::sync::mpsc::channel();
        // A long-deadline entry first, then several equal short deadlines:
        // the heap must surface the earliest deadline, not insertion order.
        let delay = Duration::from_millis(20);
        for i in 0..4u32 {
            let log = Arc::clone(&log);
            let tx = tx.clone();
            defer(delay, move || {
                log.lock().push(i);
                let _ = tx.send(());
            });
        }
        for _ in 0..4 {
            rx.recv_timeout(Duration::from_secs(5)).unwrap();
        }
        assert_eq!(&*log.lock(), &[0, 1, 2, 3]);
    }
}
