//! Small timing helpers shared by the benchmarks and the measuring
//! chunkers.

use std::time::{Duration, Instant};

/// A started stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        Stopwatch {
            start: Instant::now(),
        }
    }

    /// Elapsed time since start.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as f64 (bench-friendly).
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Restarts and returns the lap time.
    pub fn lap(&mut self) -> Duration {
        let e = self.start.elapsed();
        self.start = Instant::now();
        e
    }
}

/// Runs `f`, returning its result and the wall time taken.
pub fn time<R>(f: impl FnOnce() -> R) -> (R, Duration) {
    let t = Instant::now();
    let r = f();
    (r, t.elapsed())
}

/// Runs `f` `reps` times and returns the *minimum* wall time — the usual
/// low-noise estimator for short benches.
pub fn time_min(reps: usize, mut f: impl FnMut()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed());
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_advances() {
        let sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        assert!(sw.elapsed() >= Duration::from_millis(2));
        assert!(sw.elapsed_ms() >= 2.0);
    }

    #[test]
    fn time_returns_value() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn time_min_takes_minimum() {
        let mut calls = 0;
        let d = time_min(5, || calls += 1);
        assert_eq!(calls, 5);
        assert!(d < Duration::from_secs(1));
    }
}
