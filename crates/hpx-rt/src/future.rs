//! Futures and promises (paper §III-A, Fig 5).
//!
//! A [`Future`] is "a computational result that is initially unknown but
//! becomes available at a later time". The design mirrors HPX:
//!
//! * [`Future::get`] blocks, but a *worker* blocked in `get` executes other
//!   ready tasks (help-first), so the pool never starves — the substitute
//!   for HPX suspending its user-level threads.
//! * [`Future::then`] attaches a continuation that is scheduled as a task
//!   when the value arrives, building execution graphs without barriers.
//! * [`SharedFuture`] is clonable and supports many consumers; it is what
//!   `op2-core` threads through dats to chain dependent loops.
//! * Panics travel through the graph: a panicking producer re-panics every
//!   consumer (`get`), like `std::future` exceptions in HPX.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::runtime::{try_help, Help, Runtime, WAIT_POLL};
use crate::task::Task;

/// The payload of a caught panic.
pub(crate) type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

/// Result of a producer: a value or a captured panic.
pub(crate) type Outcome<T> = Result<T, PanicPayload>;

type Callback<T> = Box<dyn FnOnce(Outcome<T>) + Send>;

enum State<T> {
    /// Not yet fulfilled; at most one continuation may be registered
    /// (uniqueness is enforced by move semantics on `Future`).
    Pending(Option<Callback<T>>),
    /// Fulfilled; `None` once the value has been consumed.
    Done(Option<Outcome<T>>),
}

struct Inner<T> {
    state: Mutex<State<T>>,
    cv: Condvar,
}

/// Write end of a future. Dropping a `Promise` without fulfilling it breaks
/// the future: consumers observe a panic instead of hanging forever.
pub struct Promise<T> {
    inner: Option<Arc<Inner<T>>>,
}

/// A single-consumer future (see module docs).
#[must_use = "futures do nothing unless waited on"]
pub struct Future<T> {
    inner: Arc<Inner<T>>,
}

/// Creates a connected promise/future pair.
pub fn channel<T>() -> (Promise<T>, Future<T>) {
    let inner = Arc::new(Inner {
        state: Mutex::new(State::Pending(None)),
        cv: Condvar::new(),
    });
    (
        Promise {
            inner: Some(Arc::clone(&inner)),
        },
        Future { inner },
    )
}

/// A future that is already fulfilled (HPX `make_ready_future`).
pub fn ready<T>(value: T) -> Future<T> {
    Future {
        inner: Arc::new(Inner {
            state: Mutex::new(State::Done(Some(Ok(value)))),
            cv: Condvar::new(),
        }),
    }
}

fn fulfill<T>(inner: &Inner<T>, outcome: Outcome<T>) {
    let callback = {
        let mut guard = inner.state.lock();
        match std::mem::replace(&mut *guard, State::Done(None)) {
            State::Pending(Some(cb)) => Some(cb),
            State::Pending(None) => {
                *guard = State::Done(Some(outcome));
                inner.cv.notify_all();
                return;
            }
            State::Done(_) => panic!("promise fulfilled twice"),
        }
    };
    inner.cv.notify_all();
    if let Some(cb) = callback {
        cb(outcome);
    }
}

impl<T> Promise<T> {
    /// Fulfills the future with a value, waking and/or scheduling consumers.
    pub fn set_value(mut self, value: T) {
        let inner = self.inner.take().expect("promise already consumed");
        fulfill(&inner, Ok(value));
    }

    /// Propagates a captured panic to all consumers.
    pub(crate) fn set_panic(mut self, payload: PanicPayload) {
        let inner = self.inner.take().expect("promise already consumed");
        fulfill(&inner, Err(payload));
    }

    /// Fulfills from a `catch_unwind` result.
    pub(crate) fn set_outcome(mut self, outcome: Outcome<T>) {
        let inner = self.inner.take().expect("promise already consumed");
        fulfill(&inner, outcome);
    }
}

impl<T> Drop for Promise<T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            // A String payload so `get()` re-panics with a readable message.
            fulfill(&inner, Err(Box::new(BrokenPromise.to_string())));
        }
    }
}

/// Panic payload used when a promise is dropped unfulfilled.
#[derive(Debug, Clone, Copy)]
pub struct BrokenPromise;

impl std::fmt::Display for BrokenPromise {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("broken promise: the producing task was dropped before fulfilling its future")
    }
}

impl<T> Future<T> {
    /// True once the value (or a panic) is available.
    pub fn is_ready(&self) -> bool {
        matches!(*self.inner.state.lock(), State::Done(_))
    }

    /// Blocks until ready without consuming the value. Workers help-execute
    /// while waiting.
    pub fn wait(&self) {
        loop {
            if self.is_ready() {
                return;
            }
            match try_help() {
                Help::Helped => continue,
                Help::Idle => {
                    let mut guard = self.inner.state.lock();
                    if matches!(*guard, State::Done(_)) {
                        return;
                    }
                    self.inner.cv.wait_for(&mut guard, WAIT_POLL);
                }
                Help::NotWorker => {
                    let mut guard = self.inner.state.lock();
                    while matches!(*guard, State::Pending(_)) {
                        self.inner.cv.wait(&mut guard);
                    }
                    return;
                }
            }
        }
    }

    /// Blocks until the value is available and returns it, re-panicking if
    /// the producer panicked.
    pub fn get(self) -> T {
        self.wait();
        let outcome = {
            let mut guard = self.inner.state.lock();
            match &mut *guard {
                State::Done(slot) => slot.take().expect("future value consumed twice"),
                State::Pending(_) => unreachable!("wait() returned while pending"),
            }
        };
        match outcome {
            Ok(v) => v,
            Err(p) => std::panic::resume_unwind(p),
        }
    }

    /// Registers the (single) continuation. Runs inline if already ready.
    pub(crate) fn attach_callback(self, cb: Callback<T>) {
        let run_now = {
            let mut guard = self.inner.state.lock();
            match &mut *guard {
                State::Pending(slot) => {
                    assert!(slot.is_none(), "future continuation attached twice");
                    *slot = Some(cb);
                    None
                }
                State::Done(slot) => {
                    let out = slot.take().expect("future value consumed twice");
                    Some((cb, out))
                }
            }
        };
        if let Some((cb, out)) = run_now {
            cb(out);
        }
    }

    /// Attaches a continuation scheduled on `rt` when the value arrives
    /// (HPX `future::then(launch::async, f)`). Panics propagate: if `self`
    /// panicked, `f` is skipped and the returned future re-panics.
    pub fn then<U, F>(self, rt: &Runtime, f: F) -> Future<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        let (promise, future) = channel();
        let inner_rt = Arc::clone(rt.inner());
        self.attach_callback(Box::new(move |outcome| match outcome {
            Ok(v) => inner_rt.spawn_task(Task::new(move || {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(v)));
                promise.set_outcome(r);
            })),
            Err(p) => promise.set_panic(p),
        }));
        future
    }

    /// Like [`Future::then`] but runs `f` synchronously on whichever thread
    /// fulfills the future (HPX `launch::sync`). Use for cheap transforms
    /// only — `f` executes inside the producer's completion path.
    pub fn then_inline<U, F>(self, f: F) -> Future<U>
    where
        T: Send + 'static,
        U: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        let (promise, future) = channel();
        self.attach_callback(Box::new(move |outcome| match outcome {
            Ok(v) => {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(v)));
                promise.set_outcome(r);
            }
            Err(p) => promise.set_panic(p),
        }));
        future
    }

    /// Converts into a multi-consumer [`SharedFuture`].
    pub fn share(self) -> SharedFuture<T>
    where
        T: Send + Sync + 'static,
    {
        let shared = SharedFuture::pending();
        let inner = Arc::clone(&shared.inner);
        self.attach_callback(Box::new(move |outcome| {
            SharedFuture::fulfill_inner(&inner, SharedOutcome::from_outcome(outcome));
        }));
        shared
    }
}

impl<T> std::fmt::Debug for Future<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Future")
            .field("ready", &self.is_ready())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// SharedFuture
// ---------------------------------------------------------------------------

/// A clonable description of a panic, usable by many consumers.
#[derive(Clone, Debug)]
pub struct SharedPanic(Arc<String>);

impl SharedPanic {
    pub(crate) fn from_payload(p: &PanicPayload) -> Self {
        let msg = if let Some(s) = p.downcast_ref::<&'static str>() {
            (*s).to_owned()
        } else if let Some(s) = p.downcast_ref::<String>() {
            s.clone()
        } else if p.downcast_ref::<BrokenPromise>().is_some() {
            BrokenPromise.to_string()
        } else {
            "task panicked".to_owned()
        };
        SharedPanic(Arc::new(msg))
    }

    pub(crate) fn message(&self) -> &str {
        &self.0
    }
}

pub(crate) enum SharedOutcome<T> {
    Value(T),
    Panic(SharedPanic),
}

impl<T> SharedOutcome<T> {
    fn from_outcome(outcome: Outcome<T>) -> Self {
        match outcome {
            Ok(v) => SharedOutcome::Value(v),
            Err(p) => SharedOutcome::Panic(SharedPanic::from_payload(&p)),
        }
    }
}

type SharedCallback<T> = Box<dyn FnOnce(&SharedOutcome<T>) + Send>;

enum SharedState<T> {
    Pending(Vec<SharedCallback<T>>),
    // Arc so the outcome can be referenced outside the state lock: callbacks
    // may attach further continuations to this same future and must never
    // run while the lock is held.
    Done(Arc<SharedOutcome<T>>),
}

struct SharedInner<T> {
    state: Mutex<SharedState<T>>,
    cv: Condvar,
}

/// A multi-consumer future. Cloning is cheap (one `Arc`); every clone can
/// `wait`, attach continuations, or (for `T: Clone`) `get` a copy of the
/// value. This is the type `op2-core` stores per dat to chain loops.
#[must_use = "futures do nothing unless waited on"]
pub struct SharedFuture<T> {
    inner: Arc<SharedInner<T>>,
}

impl<T> Clone for SharedFuture<T> {
    fn clone(&self) -> Self {
        SharedFuture {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> SharedFuture<T> {
    pub(crate) fn pending() -> Self {
        SharedFuture {
            inner: Arc::new(SharedInner {
                state: Mutex::new(SharedState::Pending(Vec::new())),
                cv: Condvar::new(),
            }),
        }
    }

    /// An already-fulfilled shared future.
    pub fn ready(value: T) -> Self {
        SharedFuture {
            inner: Arc::new(SharedInner {
                state: Mutex::new(SharedState::Done(Arc::new(SharedOutcome::Value(value)))),
                cv: Condvar::new(),
            }),
        }
    }

    fn fulfill_inner(inner: &SharedInner<T>, outcome: SharedOutcome<T>) {
        let outcome = Arc::new(outcome);
        let callbacks = {
            let mut guard = inner.state.lock();
            match std::mem::replace(&mut *guard, SharedState::Done(Arc::clone(&outcome))) {
                SharedState::Pending(cbs) => cbs,
                SharedState::Done(_) => panic!("shared future fulfilled twice"),
            }
        };
        inner.cv.notify_all();
        // Run continuations outside the lock: they may attach further
        // callbacks to this very future.
        for cb in callbacks {
            cb(&outcome);
        }
    }

    /// Fulfills a pending shared future created with
    /// [`SharedFuture::pending`] (crate-internal producer side).
    pub(crate) fn fulfill(&self, outcome: SharedOutcome<T>) {
        Self::fulfill_inner(&self.inner, outcome);
    }

    /// True when both handles denote the same underlying future (clones
    /// of one `SharedFuture` compare equal; distinct futures never do).
    pub fn ptr_eq(a: &Self, b: &Self) -> bool {
        Arc::ptr_eq(&a.inner, &b.inner)
    }

    /// True once the value (or a panic) is available.
    pub fn is_ready(&self) -> bool {
        matches!(*self.inner.state.lock(), SharedState::Done(_))
    }

    /// Blocks until ready. Workers help-execute while waiting.
    pub fn wait(&self) {
        loop {
            if self.is_ready() {
                return;
            }
            match try_help() {
                Help::Helped => continue,
                Help::Idle => {
                    let mut guard = self.inner.state.lock();
                    if matches!(*guard, SharedState::Done(_)) {
                        return;
                    }
                    self.inner.cv.wait_for(&mut guard, WAIT_POLL);
                }
                Help::NotWorker => {
                    let mut guard = self.inner.state.lock();
                    while matches!(*guard, SharedState::Pending(_)) {
                        self.inner.cv.wait(&mut guard);
                    }
                    return;
                }
            }
        }
    }

    /// Registers a continuation receiving a reference to the outcome.
    pub(crate) fn attach_callback(&self, cb: SharedCallback<T>) {
        let run_now = {
            let mut guard = self.inner.state.lock();
            match &mut *guard {
                SharedState::Pending(cbs) => {
                    cbs.push(cb);
                    None
                }
                SharedState::Done(out) => Some((cb, Arc::clone(out))),
            }
        };
        if let Some((cb, out)) = run_now {
            cb(&out);
        }
    }

    /// Attaches a continuation scheduled on `rt`; receives a clone of the
    /// value.
    pub fn then<U, F>(&self, rt: &Runtime, f: F) -> Future<U>
    where
        T: Clone + Send + Sync + 'static,
        U: Send + 'static,
        F: FnOnce(T) -> U + Send + 'static,
    {
        let (promise, future) = channel();
        let inner_rt = Arc::clone(rt.inner());
        self.attach_callback(Box::new(move |outcome| match outcome {
            SharedOutcome::Value(v) => {
                let v = v.clone();
                inner_rt.spawn_task(Task::new(move || {
                    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(v)));
                    promise.set_outcome(r);
                }));
            }
            SharedOutcome::Panic(p) => {
                promise.set_panic(Box::new(p.message().to_owned()));
            }
        }));
        future
    }
}

impl<T: Clone> SharedFuture<T> {
    /// Blocks until ready and returns a clone of the value, re-panicking if
    /// the producer panicked.
    pub fn get(&self) -> T {
        self.wait();
        let out = {
            let guard = self.inner.state.lock();
            match &*guard {
                SharedState::Done(out) => Arc::clone(out),
                SharedState::Pending(_) => unreachable!("wait() returned while pending"),
            }
        };
        match &*out {
            SharedOutcome::Value(v) => v.clone(),
            SharedOutcome::Panic(p) => panic!("{}", p.message()),
        }
    }
}

impl<T> std::fmt::Debug for SharedFuture<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedFuture")
            .field("ready", &self.is_ready())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// when_all
// ---------------------------------------------------------------------------

/// Combines homogeneous futures into one producing all values (in input
/// order). An empty input yields an immediately-ready empty vector. If any
/// input panics, the combined future re-panics (first panic wins).
pub fn when_all<T: Send + 'static>(futures: Vec<Future<T>>) -> Future<Vec<T>> {
    if futures.is_empty() {
        return ready(Vec::new());
    }
    struct JoinState<T> {
        slots: Mutex<Vec<Option<T>>>,
        promise: Mutex<Option<Promise<Vec<T>>>>,
        remaining: AtomicUsize,
    }
    let n = futures.len();
    let (promise, future) = channel();
    let state = Arc::new(JoinState {
        slots: Mutex::new((0..n).map(|_| None).collect()),
        promise: Mutex::new(Some(promise)),
        remaining: AtomicUsize::new(n),
    });
    for (i, fut) in futures.into_iter().enumerate() {
        let state = Arc::clone(&state);
        fut.attach_callback(Box::new(move |outcome| {
            match outcome {
                Ok(v) => state.slots.lock()[i] = Some(v),
                Err(p) => {
                    if let Some(promise) = state.promise.lock().take() {
                        promise.set_panic(p);
                    }
                }
            }
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                if let Some(promise) = state.promise.lock().take() {
                    let values: Vec<T> = state
                        .slots
                        .lock()
                        .iter_mut()
                        .map(|s| s.take().expect("when_all slot missing"))
                        .collect();
                    promise.set_value(values);
                }
            }
        }));
    }
    future
}

/// Waits for a set of shared `()` futures — the dependency-join used by the
/// dataflow backend of `op2-core`. Panics in any dependency propagate.
pub fn when_all_shared(deps: &[SharedFuture<()>]) -> Future<()> {
    if deps.is_empty() {
        return ready(());
    }
    struct JoinState {
        promise: Mutex<Option<Promise<()>>>,
        remaining: AtomicUsize,
    }
    let (promise, future) = channel();
    let state = Arc::new(JoinState {
        promise: Mutex::new(Some(promise)),
        remaining: AtomicUsize::new(deps.len()),
    });
    for dep in deps {
        let state = Arc::clone(&state);
        dep.attach_callback(Box::new(move |outcome| {
            if let SharedOutcome::Panic(p) = outcome {
                if let Some(promise) = state.promise.lock().take() {
                    promise.set_panic(Box::new(p.message().to_owned()));
                }
            }
            if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                if let Some(promise) = state.promise.lock().take() {
                    promise.set_value(());
                }
            }
        }));
    }
    future
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ready_future_get() {
        assert_eq!(ready(5).get(), 5);
    }

    #[test]
    fn cross_thread_set_value() {
        let (p, f) = channel();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            p.set_value(String::from("hello"));
        });
        assert_eq!(f.get(), "hello");
        t.join().unwrap();
    }

    #[test]
    fn then_chain_on_runtime() {
        let rt = Runtime::new(2);
        let f = rt
            .spawn_future(|| 10)
            .then(&rt, |x| x + 1)
            .then(&rt, |x| x * 2);
        assert_eq!(f.get(), 22);
    }

    #[test]
    fn then_inline_runs_on_completion() {
        let rt = Runtime::new(1);
        let f = rt.spawn_future(|| 3).then_inline(|x| x * 3);
        assert_eq!(f.get(), 9);
    }

    #[test]
    #[should_panic(expected = "kernel exploded")]
    fn panic_propagates_through_get() {
        let rt = Runtime::new(1);
        let f: Future<u32> = rt.spawn_future(|| panic!("kernel exploded"));
        let _ = f.get();
    }

    #[test]
    #[should_panic(expected = "kernel exploded")]
    fn panic_skips_continuation() {
        let rt = Runtime::new(1);
        let f: Future<u32> = rt.spawn_future(|| panic!("kernel exploded"));
        // The continuation must not run.
        let g = f.then(&rt, |_| unreachable!("must be skipped"));
        g.get();
    }

    #[test]
    #[should_panic(expected = "broken promise")]
    fn broken_promise_panics_not_hangs() {
        let (p, f): (Promise<u8>, Future<u8>) = channel();
        drop(p);
        let _ = f.get();
    }

    #[test]
    fn shared_future_multiple_consumers() {
        let rt = Runtime::new(2);
        let shared = rt.spawn_future(|| vec![1, 2, 3]).share();
        let a = shared.clone();
        let b = shared.clone();
        let t = std::thread::spawn(move || a.get());
        assert_eq!(b.get(), vec![1, 2, 3]);
        assert_eq!(t.join().unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn shared_then_gets_clone() {
        let rt = Runtime::new(2);
        let shared = rt.spawn_future(|| 7u64).share();
        let f1 = shared.then(&rt, |x| x + 1);
        let f2 = shared.then(&rt, |x| x + 2);
        assert_eq!(f1.get(), 8);
        assert_eq!(f2.get(), 9);
    }

    #[test]
    fn when_all_preserves_order() {
        let rt = Runtime::new(4);
        let futs: Vec<_> = (0..64u64).map(|i| rt.spawn_future(move || i * i)).collect();
        let all = when_all(futs).get();
        assert_eq!(all, (0..64u64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn when_all_empty_is_ready() {
        let f = when_all::<u8>(Vec::new());
        assert!(f.is_ready());
        assert!(f.get().is_empty());
    }

    #[test]
    #[should_panic(expected = "subtask failed")]
    fn when_all_propagates_panic() {
        let rt = Runtime::new(2);
        let futs = vec![
            rt.spawn_future(|| 1u32),
            rt.spawn_future(|| panic!("subtask failed")),
            rt.spawn_future(|| 3u32),
        ];
        let _ = when_all(futs).get();
    }

    #[test]
    fn when_all_shared_joins() {
        let rt = Runtime::new(2);
        let deps: Vec<SharedFuture<()>> = (0..10).map(|_| rt.spawn_future(|| ()).share()).collect();
        when_all_shared(&deps).get();
    }

    #[test]
    fn get_from_worker_helps() {
        // A worker task blocking on a future must keep executing other tasks
        // rather than deadlocking a small pool.
        let rt = Runtime::new(1);
        let f = rt.spawn_future(|| 1u32);
        let outer = {
            let inner_fut = f.then(&rt, |x| x + 1);
            rt.spawn_future(move || inner_fut.get() + 10)
        };
        assert_eq!(outer.get(), 12);
    }

    #[test]
    fn wait_does_not_consume() {
        let f = ready(41);
        f.wait();
        assert!(f.is_ready());
        assert_eq!(f.get(), 41);
    }
}
