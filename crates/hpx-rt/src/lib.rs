//! # hpx-rt — an HPX-style asynchronous task runtime in Rust
//!
//! This crate is the runtime substrate for the reproduction of *"Redesigning
//! OP2 Compiler to Use HPX Runtime Asynchronous Techniques"* (Khatami,
//! Kaiser, Ramanujam; IPDPSW 2017). It re-implements, from scratch, the HPX
//! facilities the paper builds on:
//!
//! * a **work-stealing scheduler** ([`Runtime`]) with help-first blocking —
//!   a thread blocked on a future executes other ready tasks, the stand-in
//!   for HPX's suspendable user-level threads;
//! * **futures** ([`Future`], [`SharedFuture`], [`Promise`], [`when_all`])
//!   with continuation chaining and panic propagation (§III-A);
//! * the **`dataflow`** LCO ([`dataflow`]) that delays a function until all
//!   future inputs are ready, with `unwrapped` semantics built in (§III-B);
//! * dependency-counting LCOs for fine-grained task graphs
//!   ([`DepCounter`], [`schedule_after`], [`when_any_shared`]): the
//!   batched, allocation-lean node scheduling behind `op2-core`'s
//!   block-granular dataflow backend;
//! * the LCO catalogue ([`lco`]): latch, event, barrier, semaphore,
//!   spinlock, one-shot channel, reduction-tree collective;
//! * **execution policies** of Table I ([`seq`], [`par`], [`par_vec`],
//!   [`seq_task`], [`par_task`]) and **chunk-size control** (§IV-B)
//!   including the paper's new [`PersistentChunker`]
//!   (`persistent_auto_chunk_size`);
//! * chunked **parallel algorithms** ([`for_each`], [`reduce`],
//!   [`transform`], [`inclusive_scan`], …);
//! * the **prefetching iterator** (§V): [`make_prefetcher_context`] +
//!   [`for_each_prefetch`].
//!
//! ## Quick start
//!
//! ```
//! use hpx_rt::{dataflow, par, Runtime};
//!
//! let rt = Runtime::new(4);
//!
//! // Futures + dataflow: an execution graph without global barriers.
//! let a = rt.spawn_future(|| 2 + 2);
//! let b = dataflow(&rt, |(a,)| a * 10, (a,));
//! assert_eq!(b.get(), 40);
//!
//! // A chunked parallel loop.
//! let data: Vec<f64> = (0..10_000).map(|i| i as f64).collect();
//! let total = hpx_rt::reduce(&rt, &par(), 0..data.len(), 0.0, |i| data[i], |x, y| x + y);
//! assert_eq!(total, (0..10_000).map(|i| i as f64).sum::<f64>());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod algo;
mod chunk;
mod dataflow;
mod dep;
mod future;
pub mod lco;
mod policy;
pub mod prefetch;
mod runtime;
pub mod stats;
mod task;
pub mod timing;

pub use algo::{
    copy, count_if, fill, for_each, for_each_async, for_each_chunk, for_each_chunk_async,
    inclusive_scan, max_element, min_element, reduce, reduce_async, sort, sum, transform,
};
pub use chunk::{
    ChunkPolicy, GranularityFeedback, KernelCost, PersistentChunker, DEFAULT_CHUNK_TARGET,
};
pub use dataflow::{dataflow, dataflow_inline, DataflowArg, FutureTuple, Val};
pub use dep::{schedule_after, when_any_shared, DepCounter};
pub use future::{
    channel, ready, when_all, when_all_shared, BrokenPromise, Future, Promise, SharedFuture,
};
pub use policy::{par, par_task, par_vec, seq, seq_task, Exec, ExecutionPolicy, Launch};
pub use prefetch::{
    for_each_prefetch, for_each_prefetch_async, make_prefetcher_context, PrefetchContainers,
    PrefetchSet, PrefetcherContext, CACHE_LINE_BYTES,
};
pub use runtime::{on_worker_thread, spawn_on_current, Runtime};
pub use stats::RuntimeStats;
pub use timing::Clock;

// Internal cross-module plumbing re-exported for sibling crates in this
// workspace (not part of the stable public API).
#[doc(hidden)]
pub use future::when_all_shared as __when_all_shared;
