//! Local Control Objects (paper §III).
//!
//! "LCOs provide traditional concurrency control mechanisms such as various
//! types of mutexes, semaphores, spinlocks, condition variables and
//! barriers [...] they organize the execution flow, omit global barriers,
//! and enable thread execution to proceed as far as possible without
//! waiting."
//!
//! The future and dataflow LCOs live in [`crate::future`] and
//! [`crate::dataflow`]; this module provides the synchronization-flavoured
//! ones. [`Latch`] is the workhorse: it is how the parallel algorithms join
//! their chunk tasks, and its `wait` help-executes pool tasks instead of
//! sleeping. [`collect`] is the collective: a reduction tree over N
//! contributors whose combined result is a future — the building block of
//! `op2-core`'s asynchronous cross-rank allreduce.

mod barrier;
mod channel;
mod collect;
mod event;
mod latch;
mod semaphore;
mod spinlock;

pub use barrier::{Barrier, BarrierWaitResult};
pub use channel::{oneshot, OneshotReceiver, OneshotSender, RecvError, SendError};
pub use collect::{collect, Contribution};
pub use event::Event;
pub use latch::Latch;
pub(crate) use latch::LatchGuard;
pub use semaphore::Semaphore;
pub use spinlock::{SpinLock, SpinLockGuard};
