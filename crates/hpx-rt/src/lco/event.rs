//! Manual-reset event LCO.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};

use crate::runtime::{try_help, Help, WAIT_POLL};

/// A manual-reset event: threads wait until some other thread calls
/// [`Event::set`]; the event stays signalled until [`Event::reset`].
#[derive(Default)]
pub struct Event {
    set: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Event {
    /// A new, unsignalled event.
    pub fn new() -> Self {
        Self::default()
    }

    /// True while signalled.
    #[inline]
    pub fn is_set(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Signals the event, releasing all current and future waiters.
    pub fn set(&self) {
        self.set.store(true, Ordering::Release);
        let _g = self.lock.lock();
        self.cv.notify_all();
    }

    /// Clears the signal; subsequent waiters block again.
    pub fn reset(&self) {
        self.set.store(false, Ordering::Release);
    }

    /// Blocks until signalled; workers help-execute while waiting.
    pub fn wait(&self) {
        loop {
            if self.is_set() {
                return;
            }
            match try_help() {
                Help::Helped => continue,
                Help::Idle => {
                    let mut guard = self.lock.lock();
                    if self.is_set() {
                        return;
                    }
                    self.cv.wait_for(&mut guard, WAIT_POLL);
                }
                Help::NotWorker => {
                    let mut guard = self.lock.lock();
                    while !self.is_set() {
                        self.cv.wait(&mut guard);
                    }
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn set_releases_waiter() {
        let e = Arc::new(Event::new());
        let e2 = Arc::clone(&e);
        let t = std::thread::spawn(move || {
            e2.wait();
            true
        });
        std::thread::sleep(std::time::Duration::from_millis(5));
        e.set();
        assert!(t.join().unwrap());
    }

    #[test]
    fn reset_blocks_again() {
        let e = Event::new();
        e.set();
        assert!(e.is_set());
        e.wait(); // immediate
        e.reset();
        assert!(!e.is_set());
    }

    #[test]
    fn already_set_wait_is_immediate() {
        let e = Event::new();
        e.set();
        e.wait();
    }
}
