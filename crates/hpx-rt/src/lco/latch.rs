//! Countdown latch: the join primitive of the parallel algorithms.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::runtime::{try_help, Help, WAIT_POLL};

/// A single-use countdown latch.
///
/// `wait` returns once `count_down` has been called `n` times. A pool worker
/// blocked in `wait` executes other ready tasks (help-first), which is what
/// allows nested parallel loops without deadlocking a small pool.
///
/// ```
/// use std::sync::Arc;
/// let rt = hpx_rt::Runtime::new(2);
/// let latch = Arc::new(hpx_rt::lco::Latch::new(10));
/// for _ in 0..10 {
///     let l = Arc::clone(&latch);
///     rt.spawn(move || l.count_down());
/// }
/// latch.wait();
/// ```
pub struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    /// A latch that opens after `n` countdowns (`n == 0` is already open).
    pub fn new(n: usize) -> Self {
        Latch {
            remaining: AtomicUsize::new(n),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Records one completion. Panics on underflow.
    pub fn count_down(&self) {
        let prev = self.remaining.fetch_sub(1, Ordering::AcqRel);
        assert!(prev > 0, "latch counted down below zero");
        if prev == 1 {
            // Take the lock so a waiter cannot miss the wake between its
            // check of `remaining` and its condvar wait.
            let _g = self.lock.lock();
            self.cv.notify_all();
        }
    }

    /// True once the latch is open.
    #[inline]
    pub fn try_wait(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }

    /// Blocks until open; workers help-execute while waiting.
    pub fn wait(&self) {
        loop {
            if self.try_wait() {
                return;
            }
            match try_help() {
                Help::Helped => continue,
                Help::Idle => {
                    let mut guard = self.lock.lock();
                    if self.try_wait() {
                        return;
                    }
                    self.cv.wait_for(&mut guard, WAIT_POLL);
                }
                Help::NotWorker => {
                    let mut guard = self.lock.lock();
                    while !self.try_wait() {
                        self.cv.wait(&mut guard);
                    }
                    return;
                }
            }
        }
    }

    /// Remaining countdowns (diagnostic).
    pub fn pending(&self) -> usize {
        self.remaining.load(Ordering::Acquire)
    }
}

/// Counts the latch down when dropped — used by chunk tasks so a panicking
/// chunk still releases its waiter.
pub(crate) struct LatchGuard<'a>(pub &'a Latch);

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.0.count_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn zero_latch_is_open() {
        let l = Latch::new(0);
        assert!(l.try_wait());
        l.wait();
    }

    #[test]
    fn opens_after_n_countdowns() {
        let l = Arc::new(Latch::new(3));
        let threads: Vec<_> = (0..3)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || l.count_down())
            })
            .collect();
        l.wait();
        assert_eq!(l.pending(), 0);
        for t in threads {
            t.join().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "below zero")]
    fn underflow_panics() {
        let l = Latch::new(1);
        l.count_down();
        l.count_down();
    }

    #[test]
    fn guard_counts_down_on_panic() {
        let l = Latch::new(1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = LatchGuard(&l);
            panic!("chunk failed");
        }));
        assert!(r.is_err());
        assert!(l.try_wait());
    }

    #[test]
    fn wait_on_worker_helps() {
        let rt = crate::Runtime::new(1);
        let l = Arc::new(Latch::new(1));
        let l2 = Arc::clone(&l);
        // The outer task waits; the inner task (behind it in the queue)
        // opens the latch. With help-first waiting this cannot deadlock
        // even on a single worker.
        let fut = rt.spawn_future(move || {
            let l3 = Arc::clone(&l2);
            assert!(crate::runtime::spawn_on_current(move || l3.count_down()));
            l2.wait();
            true
        });
        assert!(fut.get());
    }
}
