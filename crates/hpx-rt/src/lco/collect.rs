//! Reduction-tree collective LCO: the many-contributor analogue of the
//! one-shot channel.
//!
//! A [`collect`] call creates `n` single-use [`Contribution`] handles and
//! one [`SharedFuture`] carrying the combined result. Contributions may
//! arrive from any thread in any order; values are folded pairwise up a
//! binary tree whose *shape is fixed by slot index*, so the combination
//! order — and therefore the floating-point rounding — is deterministic
//! regardless of arrival order. Each internal combine runs on the thread
//! that delivered the second child, so sibling subtrees reduce in
//! parallel; the root fulfills the future.
//!
//! This is the LCO the paper's reduction redesign needs (Fig 9: reduction
//! results become futures) lifted to collectives: HPX's distributed
//! `all_reduce` is "an LCO whose result is a future" (Heller et al.,
//! arXiv:2401.03353 §LCOs); here each simulated rank holds one
//! contribution and dependent work chains off the shared result future
//! instead of meeting at a host-side barrier.
//!
//! Dropping a contribution without setting it *breaks* the collective:
//! the result future observes a panic ("broken collective"), mirroring
//! the broken-promise semantics of [`crate::Promise`] — consumers never
//! hang on a contributor that died.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::future::{SharedFuture, SharedOutcome, SharedPanic};

type Combine<T> = Box<dyn Fn(T, T) -> T + Send + Sync>;

struct CollectInner<T> {
    /// Leaf count per level: `sizes[0] = n`, halving (rounded up) to 1.
    sizes: Vec<usize>,
    /// `slots[l][i]`: pending child value of node `i` at level `l + 1` —
    /// the first-arriving child parks its value here; the second combines.
    slots: Vec<Vec<Mutex<Option<T>>>>,
    combine: Combine<T>,
    result: SharedFuture<T>,
    /// Guards against a late contribution racing a broken-collective
    /// fulfillment (first outcome wins, like a shared future).
    fulfilled: AtomicBool,
}

impl<T: Send + Sync + 'static> CollectInner<T> {
    fn fulfill(&self, outcome: SharedOutcome<T>) {
        if !self.fulfilled.swap(true, Ordering::AcqRel) {
            self.result.fulfill(outcome);
        }
    }

    /// Walks `value` up the tree from leaf `slot`, combining with parked
    /// siblings in left-to-right order; the value reaching the root
    /// fulfills the result future.
    fn contribute(&self, slot: usize, value: T) {
        let mut level = 0;
        let mut idx = slot;
        let mut val = value;
        loop {
            if self.sizes[level] == 1 {
                self.fulfill(SharedOutcome::Value(val));
                return;
            }
            let parent = idx / 2;
            if (idx ^ 1) >= self.sizes[level] {
                // Unpaired last node of an odd level: passes through.
                level += 1;
                idx = parent;
                continue;
            }
            let parked = {
                let mut guard = self.slots[level][parent].lock();
                match guard.take() {
                    None => {
                        // First child to arrive parks and stops; the
                        // sibling will pick the value up and combine.
                        *guard = Some(val);
                        return;
                    }
                    Some(other) => other,
                }
            };
            // Second child combines (outside the lock), in fixed
            // left-right order. A panicking combine breaks the collective
            // — consumers observe the panic instead of hanging on a result
            // that can never be produced — and then propagates to the
            // combining thread.
            let combined = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                if idx & 1 == 0 {
                    (self.combine)(val, parked)
                } else {
                    (self.combine)(parked, val)
                }
            }));
            val = match combined {
                Ok(v) => v,
                Err(p) => {
                    self.fulfill(SharedOutcome::Panic(SharedPanic::from_payload(&p)));
                    std::panic::resume_unwind(p);
                }
            };
            level += 1;
            idx = parent;
        }
    }
}

/// One contributor's single-use handle into a [`collect`] tree.
pub struct Contribution<T: Send + Sync + 'static> {
    inner: Arc<CollectInner<T>>,
    slot: usize,
    spent: bool,
}

impl<T: Send + Sync + 'static> Contribution<T> {
    /// This contribution's leaf index — the position its value takes in
    /// the deterministic combination order.
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Delivers this contributor's value; the final delivery fulfills the
    /// collective's result future (combining on the way up the tree).
    pub fn set(mut self, value: T) {
        self.spent = true;
        self.inner.contribute(self.slot, value);
    }
}

impl<T: Send + Sync + 'static> Drop for Contribution<T> {
    fn drop(&mut self) {
        if !self.spent {
            // A contributor died without delivering: break the collective
            // so consumers panic instead of hanging forever.
            let payload: Box<dyn std::any::Any + Send> = Box::new(format!(
                "broken collective: contribution {} dropped without a value",
                self.slot
            ));
            self.inner
                .fulfill(SharedOutcome::Panic(SharedPanic::from_payload(&payload)));
        }
    }
}

impl<T: Send + Sync + 'static> std::fmt::Debug for Contribution<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Contribution")
            .field("slot", &self.slot)
            .field("spent", &self.spent)
            .finish()
    }
}

/// Creates a reduction-tree collective over `n` contributors: returns one
/// [`Contribution`] handle per slot and the [`SharedFuture`] of the
/// combined result (see module docs for ordering and breakage semantics).
///
/// ```
/// let (contribs, total) = hpx_rt::lco::collect(4, |a: u64, b: u64| a + b);
/// for (i, c) in contribs.into_iter().enumerate() {
///     c.set(i as u64 + 1);
/// }
/// assert_eq!(total.get(), 10);
/// ```
pub fn collect<T, F>(n: usize, combine: F) -> (Vec<Contribution<T>>, SharedFuture<T>)
where
    T: Send + Sync + 'static,
    F: Fn(T, T) -> T + Send + Sync + 'static,
{
    assert!(n >= 1, "a collective needs at least one contributor");
    let mut sizes = vec![n];
    while *sizes.last().unwrap() > 1 {
        sizes.push(sizes.last().unwrap().div_ceil(2));
    }
    let slots = sizes[1..]
        .iter()
        .map(|&s| (0..s).map(|_| Mutex::new(None)).collect())
        .collect();
    let inner = Arc::new(CollectInner {
        sizes,
        slots,
        combine: Box::new(combine),
        result: SharedFuture::pending(),
        fulfilled: AtomicBool::new(false),
    });
    let result = inner.result.clone();
    let contribs = (0..n)
        .map(|slot| Contribution {
            inner: Arc::clone(&inner),
            slot,
            spent: false,
        })
        .collect();
    (contribs, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_contributor_passes_through() {
        let (mut c, fut) = collect(1, |a: i32, b: i32| a + b);
        assert!(!fut.is_ready());
        c.pop().unwrap().set(7);
        assert_eq!(fut.get(), 7);
    }

    #[test]
    fn sums_all_contributions() {
        let (contribs, fut) = collect(16, |a: u64, b: u64| a + b);
        for (i, c) in contribs.into_iter().enumerate() {
            c.set(i as u64);
        }
        assert_eq!(fut.get(), (0..16).sum());
    }

    #[test]
    fn combination_order_is_slot_deterministic() {
        // A non-commutative combine exposes the tree shape: it must be the
        // same for every arrival order, including odd widths.
        for n in [2usize, 3, 5, 7, 8] {
            let shape = |order: Vec<usize>| {
                let (mut contribs, fut) = collect(n, |a: String, b: String| format!("({a}+{b})"));
                // Deliver in the permuted order.
                let mut by_slot: Vec<Option<Contribution<String>>> =
                    contribs.drain(..).map(Some).collect();
                for &slot in &order {
                    by_slot[slot].take().unwrap().set(slot.to_string());
                }
                fut.get()
            };
            let forward = shape((0..n).collect());
            let backward = shape((0..n).rev().collect());
            let rotated = shape((0..n).map(|i| (i + n / 2) % n).collect());
            assert_eq!(forward, backward, "n={n}");
            assert_eq!(forward, rotated, "n={n}");
        }
        // Spot-check the exact shape for n = 5.
        let (mut contribs, fut) = collect(5, |a: String, b: String| format!("({a}+{b})"));
        for (i, c) in contribs.drain(..).enumerate() {
            c.set(i.to_string());
        }
        assert_eq!(fut.get(), "(((0+1)+(2+3))+4)");
    }

    #[test]
    fn concurrent_contributions_from_many_threads() {
        for _ in 0..50 {
            let (contribs, fut) = collect(8, |a: u64, b: u64| a + b);
            let threads: Vec<_> = contribs
                .into_iter()
                .enumerate()
                .map(|(i, c)| std::thread::spawn(move || c.set(1u64 << i)))
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(fut.get(), 0xFF);
        }
    }

    #[test]
    #[should_panic(expected = "broken collective")]
    fn dropped_contribution_breaks_the_collective() {
        let (mut contribs, fut) = collect(3, |a: i32, b: i32| a + b);
        contribs.pop().unwrap().set(1);
        drop(contribs); // slots 0 and 1 never deliver
        let _ = fut.get();
    }

    #[test]
    fn late_contribution_after_breakage_is_ignored() {
        let (mut contribs, fut) = collect(2, |a: i32, b: i32| a + b);
        let keep = contribs.pop().unwrap();
        drop(contribs); // breaks the collective
        keep.set(5); // must not panic or double-fulfill
        assert!(fut.is_ready());
        assert!(std::panic::catch_unwind(|| fut.get()).is_err());
    }

    #[test]
    #[should_panic(expected = "at least one contributor")]
    fn zero_contributors_rejected() {
        let _ = collect(0, |a: i32, b: i32| a + b);
    }

    #[test]
    fn panicking_combine_breaks_the_collective_instead_of_hanging() {
        let (contribs, fut) = collect(2, |_a: i32, _b: i32| -> i32 { panic!("combine exploded") });
        let mut it = contribs.into_iter();
        it.next().unwrap().set(1);
        // The second delivery triggers the combine; its panic must both
        // propagate to the combining thread and break the result future.
        let second = it.next().unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| second.set(2)));
        assert!(r.is_err(), "combining thread must observe the panic");
        assert!(fut.is_ready(), "result must be broken, not pending");
        let g = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.get()));
        assert!(g.is_err(), "consumers must panic, not hang");
    }
}
