//! Test-and-test-and-set spinlock LCO.
//!
//! Built in the style of *Rust Atomics and Locks* ch. 4: an `AtomicBool`
//! with acquire/release ordering, exponential backoff while spinning, and a
//! RAII guard providing access to the protected value.

use crossbeam::utils::Backoff;
use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

/// A spinlock protecting a value of type `T`. Prefer a blocking mutex for
/// long critical sections; this is for short, hot ones (e.g. per-block
/// reduction commits).
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock provides the needed exclusion; `T: Send` suffices
// because only one thread touches the value at a time.
unsafe impl<T: Send> Sync for SpinLock<T> {}
unsafe impl<T: Send> Send for SpinLock<T> {}

/// RAII guard for [`SpinLock`]; releases on drop.
pub struct SpinLockGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> SpinLock<T> {
    /// Wraps `value` in a new, unlocked spinlock.
    pub const fn new(value: T) -> Self {
        SpinLock {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Spins (with backoff) until the lock is acquired.
    pub fn lock(&self) -> SpinLockGuard<'_, T> {
        let backoff = Backoff::new();
        loop {
            // Test-and-test-and-set: spin on a plain load first so the
            // cacheline is only invalidated when the swap can succeed.
            while self.locked.load(Ordering::Relaxed) {
                backoff.snooze();
            }
            if self
                .locked
                .compare_exchange_weak(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return SpinLockGuard { lock: self };
            }
        }
    }

    /// Acquires the lock only if free right now.
    pub fn try_lock(&self) -> Option<SpinLockGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T> Deref for SpinLockGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: the guard witnesses exclusive ownership of the lock.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinLockGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinLockGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_under_contention() {
        let lock = Arc::new(SpinLock::new(0u64));
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *lock.lock() += 1;
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(*lock.lock(), 40_000);
        let lock = Arc::into_inner(lock).expect("sole owner");
        assert_eq!(lock.into_inner(), 40_000);
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = SpinLock::new(());
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }
}
