//! One-shot channel LCO: a future with channel-flavoured error handling
//! (dropping the sender yields `Err(RecvError)` instead of a panic).

use parking_lot::{Condvar, Mutex};
use std::sync::Arc;

use crate::runtime::{try_help, Help, WAIT_POLL};

enum Slot<T> {
    Empty,
    Value(T),
    SenderDropped,
    Taken,
}

struct Shared<T> {
    slot: Mutex<Slot<T>>,
    cv: Condvar,
}

/// Sending half of a [`oneshot`] channel.
pub struct OneshotSender<T> {
    shared: Option<Arc<Shared<T>>>,
}

/// Receiving half of a [`oneshot`] channel.
pub struct OneshotReceiver<T> {
    shared: Arc<Shared<T>>,
}

/// The receiver was dropped before the value was sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// The sender was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Creates a one-shot SPSC channel.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let shared = Arc::new(Shared {
        slot: Mutex::new(Slot::Empty),
        cv: Condvar::new(),
    });
    (
        OneshotSender {
            shared: Some(Arc::clone(&shared)),
        },
        OneshotReceiver { shared },
    )
}

impl<T> OneshotSender<T> {
    /// Sends the value; fails if the receiver is gone.
    pub fn send(mut self, value: T) -> Result<(), SendError<T>> {
        let shared = self.shared.take().expect("oneshot sender reused");
        // Receiver gone: Arc count is 1 (only us).
        if Arc::strong_count(&shared) == 1 {
            return Err(SendError(value));
        }
        *shared.slot.lock() = Slot::Value(value);
        shared.cv.notify_all();
        Ok(())
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        if let Some(shared) = self.shared.take() {
            *shared.slot.lock() = Slot::SenderDropped;
            shared.cv.notify_all();
        }
    }
}

impl<T> OneshotReceiver<T> {
    /// Non-blocking poll.
    pub fn try_recv(&self) -> Option<Result<T, RecvError>> {
        let mut slot = self.shared.slot.lock();
        match std::mem::replace(&mut *slot, Slot::Taken) {
            Slot::Value(v) => Some(Ok(v)),
            Slot::SenderDropped => Some(Err(RecvError)),
            other => {
                *slot = other;
                None
            }
        }
    }

    /// Blocks until a value (or sender drop) arrives; workers help-execute.
    pub fn recv(self) -> Result<T, RecvError> {
        loop {
            if let Some(r) = self.try_recv() {
                return r;
            }
            match try_help() {
                Help::Helped => continue,
                Help::Idle => {
                    let mut slot = self.shared.slot.lock();
                    if matches!(*slot, Slot::Empty) {
                        self.shared.cv.wait_for(&mut slot, WAIT_POLL);
                    }
                }
                Help::NotWorker => {
                    let mut slot = self.shared.slot.lock();
                    while matches!(*slot, Slot::Empty) {
                        self.shared.cv.wait(&mut slot);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv() {
        let (tx, rx) = oneshot();
        std::thread::spawn(move || tx.send(42).unwrap());
        assert_eq!(rx.recv(), Ok(42));
    }

    #[test]
    fn sender_drop_is_recv_error() {
        let (tx, rx) = oneshot::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn receiver_drop_is_send_error() {
        let (tx, rx) = oneshot::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn try_recv_polls() {
        let (tx, rx) = oneshot();
        assert!(rx.try_recv().is_none());
        tx.send("x").unwrap();
        assert_eq!(rx.try_recv(), Some(Ok("x")));
    }
}
