//! Counting semaphore LCO.

use parking_lot::{Condvar, Mutex};

/// A counting semaphore. `acquire` blocks while the count is zero;
/// `release` wakes one waiter. Used e.g. to throttle the number of
/// simultaneously in-flight loop generations.
pub struct Semaphore {
    count: Mutex<usize>,
    cv: Condvar,
}

impl Semaphore {
    /// A semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            count: Mutex::new(permits),
            cv: Condvar::new(),
        }
    }

    /// Takes a permit, blocking until one is available.
    pub fn acquire(&self) {
        let mut count = self.count.lock();
        while *count == 0 {
            self.cv.wait(&mut count);
        }
        *count -= 1;
    }

    /// Takes a permit if immediately available.
    pub fn try_acquire(&self) -> bool {
        let mut count = self.count.lock();
        if *count == 0 {
            return false;
        }
        *count -= 1;
        true
    }

    /// Returns a permit, waking one waiter.
    pub fn release(&self) {
        let mut count = self.count.lock();
        *count += 1;
        self.cv.notify_one();
    }

    /// Current number of available permits (racy; diagnostic only).
    pub fn permits(&self) -> usize {
        *self.count.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn try_acquire_exhausts() {
        let s = Semaphore::new(2);
        assert!(s.try_acquire());
        assert!(s.try_acquire());
        assert!(!s.try_acquire());
        s.release();
        assert!(s.try_acquire());
    }

    #[test]
    fn bounds_concurrency() {
        let s = Arc::new(Semaphore::new(3));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..16)
            .map(|_| {
                let s = Arc::clone(&s);
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    s.acquire();
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    live.fetch_sub(1, Ordering::SeqCst);
                    s.release();
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 3);
        assert_eq!(s.permits(), 3);
    }
}
