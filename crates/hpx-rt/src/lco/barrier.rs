//! Cyclic thread barrier LCO.
//!
//! Provided for completeness of the LCO catalogue (the fork-join OP2
//! backend expresses its global barriers with [`super::Latch`]es, which can
//! help-execute; this `Barrier` is a classic generation-counting barrier
//! for coordinating *distinct OS threads* and does **not** help-execute —
//! a worker parked on a barrier inside a task would otherwise be able to
//! steal another barrier participant's task and self-deadlock).

use parking_lot::{Condvar, Mutex};

struct BarrierState {
    waiting: usize,
    generation: u64,
}

/// A reusable barrier for `n` participants.
pub struct Barrier {
    n: usize,
    state: Mutex<BarrierState>,
    cv: Condvar,
}

/// Returned by [`Barrier::wait`]; exactly one participant per generation is
/// the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierWaitResult {
    is_leader: bool,
}

impl BarrierWaitResult {
    /// True for exactly one participant of each barrier generation.
    pub fn is_leader(&self) -> bool {
        self.is_leader
    }
}

impl Barrier {
    /// A barrier for `n` participants (`n` is clamped to at least 1).
    pub fn new(n: usize) -> Self {
        Barrier {
            n: n.max(1),
            state: Mutex::new(BarrierState {
                waiting: 0,
                generation: 0,
            }),
            cv: Condvar::new(),
        }
    }

    /// Blocks until `n` participants have arrived, then releases them all.
    pub fn wait(&self) -> BarrierWaitResult {
        let mut guard = self.state.lock();
        let generation = guard.generation;
        guard.waiting += 1;
        if guard.waiting == self.n {
            guard.waiting = 0;
            guard.generation += 1;
            self.cv.notify_all();
            return BarrierWaitResult { is_leader: true };
        }
        while guard.generation == generation {
            self.cv.wait(&mut guard);
        }
        BarrierWaitResult { is_leader: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn all_release_together_one_leader() {
        let n = 4;
        let barrier = Arc::new(Barrier::new(n));
        let leaders = Arc::new(AtomicUsize::new(0));
        let before = Arc::new(AtomicUsize::new(0));
        let threads: Vec<_> = (0..n)
            .map(|_| {
                let b = Arc::clone(&barrier);
                let l = Arc::clone(&leaders);
                let c = Arc::clone(&before);
                std::thread::spawn(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                    let r = b.wait();
                    // Everyone arrived before anyone passed.
                    assert_eq!(c.load(Ordering::SeqCst), n);
                    if r.is_leader() {
                        l.fetch_add(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(leaders.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn barrier_is_reusable() {
        let barrier = Arc::new(Barrier::new(2));
        let b = Arc::clone(&barrier);
        let t = std::thread::spawn(move || {
            for _ in 0..100 {
                b.wait();
            }
        });
        for _ in 0..100 {
            barrier.wait();
        }
        t.join().unwrap();
    }

    #[test]
    fn single_participant_never_blocks() {
        let b = Barrier::new(1);
        assert!(b.wait().is_leader());
        assert!(b.wait().is_leader());
    }
}
