//! `for_each`: the algorithm the OP2 code generator emits (paper Fig 8).

use std::ops::Range;
use std::sync::Arc;

use super::{run_chunked, run_chunked_async};
use crate::future::Future;
use crate::policy::ExecutionPolicy;
use crate::runtime::Runtime;

/// Applies `f` to every index in `range`, dividing the work into chunks per
/// the policy. Blocks until the loop completes; pool workers help-execute
/// while blocked.
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// let rt = hpx_rt::Runtime::new(4);
/// let sum = AtomicU64::new(0);
/// hpx_rt::for_each(&rt, &hpx_rt::par(), 0..1000, |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 499_500);
/// ```
pub fn for_each<F>(rt: &Runtime, policy: &ExecutionPolicy, range: Range<usize>, f: F)
where
    F: Fn(usize) + Sync,
{
    let base = range.start;
    let n = range.end.saturating_sub(range.start);
    run_chunked(rt, policy, n, &|r: Range<usize>| {
        for i in r {
            f(base + i);
        }
    });
}

/// Asynchronous `for_each` (Table I task policies): returns immediately
/// with a completion future. The body must be `'static` because the caller
/// may drop its frame before the loop runs.
pub fn for_each_async<F>(
    rt: &Runtime,
    policy: ExecutionPolicy,
    range: Range<usize>,
    f: F,
) -> Future<()>
where
    F: Fn(usize) + Send + Sync + 'static,
{
    let base = range.start;
    let n = range.end.saturating_sub(range.start);
    let body = Arc::new(move |r: Range<usize>| {
        for i in r {
            f(base + i);
        }
    });
    run_chunked_async(rt, policy, n, body).then_inline(|_| ())
}

/// Chunk-granular `for_each`: `f` receives whole index ranges instead of
/// single indices. This is what `op2-core` builds its block executors on —
/// the chunk boundaries are exactly the policy's chunks, so measuring
/// chunkers ([`crate::PersistentChunker`]) see true per-chunk costs.
pub fn for_each_chunk<F>(rt: &Runtime, policy: &ExecutionPolicy, range: Range<usize>, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    let base = range.start;
    let n = range.end.saturating_sub(range.start);
    run_chunked(rt, policy, n, &|r: Range<usize>| {
        f(base + r.start..base + r.end);
    });
}

/// Asynchronous chunk-granular `for_each`.
pub fn for_each_chunk_async<F>(
    rt: &Runtime,
    policy: ExecutionPolicy,
    range: Range<usize>,
    f: F,
) -> Future<()>
where
    F: Fn(Range<usize>) + Send + Sync + 'static,
{
    let base = range.start;
    let n = range.end.saturating_sub(range.start);
    let body = Arc::new(move |r: Range<usize>| {
        f(base + r.start..base + r.end);
    });
    run_chunked_async(rt, policy, n, body).then_inline(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{par, par_task, seq};
    use crate::ChunkPolicy;
    use parking_lot::Mutex;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn visits_every_index_exactly_once() {
        let rt = Runtime::new(4);
        let n = 10_000;
        let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        for_each(&rt, &par(), 0..n, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn respects_non_zero_base() {
        let rt = Runtime::new(2);
        let seen = Mutex::new(Vec::new());
        for_each(
            &rt,
            &par().with_chunk(ChunkPolicy::Static { size: 3 }),
            10..25,
            |i| {
                seen.lock().push(i);
            },
        );
        let mut v = seen.into_inner();
        v.sort_unstable();
        assert_eq!(v, (10..25).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_policy_runs_in_order() {
        let rt = Runtime::new(4);
        let seen = Mutex::new(Vec::new());
        for_each(&rt, &seq(), 0..100, |i| seen.lock().push(i));
        assert_eq!(seen.into_inner(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn empty_range_is_noop() {
        let rt = Runtime::new(2);
        for_each(&rt, &par(), 5..5, |_| panic!("must not run"));
    }

    #[test]
    fn async_for_each_returns_future() {
        let rt = Runtime::new(2);
        let counter = std::sync::Arc::new(AtomicUsize::new(0));
        let c = std::sync::Arc::clone(&counter);
        let fut = for_each_async(&rt, par_task(), 0..1000, move |_| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        fut.get();
        assert_eq!(counter.load(Ordering::Relaxed), 1000);
    }

    #[test]
    #[should_panic(expected = "iteration 7 failed")]
    fn body_panic_propagates_after_join() {
        let rt = Runtime::new(2);
        for_each(
            &rt,
            &par().with_chunk(ChunkPolicy::Static { size: 2 }),
            0..64,
            |i| {
                if i == 7 {
                    panic!("iteration 7 failed");
                }
            },
        );
    }

    #[test]
    fn chunk_variant_tiles_range() {
        let rt = Runtime::new(3);
        let seen = Mutex::new(Vec::new());
        for_each_chunk(
            &rt,
            &par().with_chunk(ChunkPolicy::Static { size: 7 }),
            100..200,
            |r| seen.lock().push(r),
        );
        let mut v = seen.into_inner();
        v.sort_unstable_by_key(|r| r.start);
        let mut next = 100;
        for r in &v {
            assert_eq!(r.start, next);
            next = r.end;
        }
        assert_eq!(next, 200);
    }

    #[test]
    fn works_with_guided_chunks() {
        let rt = Runtime::new(2);
        let counter = AtomicUsize::new(0);
        for_each(
            &rt,
            &par().with_chunk(ChunkPolicy::Guided { min: 4 }),
            0..5000,
            |_| {
                counter.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(counter.into_inner(), 5000);
    }

    #[test]
    fn works_with_persistent_auto_chunker() {
        let rt = Runtime::new(2);
        let handle = crate::PersistentChunker::new();
        let policy = par().with_chunk(ChunkPolicy::PersistentAuto(handle.clone()));
        let counter = AtomicUsize::new(0);
        for_each(&rt, &policy, 0..50_000, |_| {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.into_inner(), 50_000);
        assert!(handle.calibrated_target().is_some());
    }
}
