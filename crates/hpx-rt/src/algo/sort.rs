//! Parallel sort: chunk-local sorts fanned out as tasks, followed by a
//! tournament of pairwise parallel merges. Exercises nested fork-join on
//! the help-first scheduler.

use crate::lco::Latch;
use crate::policy::{Exec, ExecutionPolicy};
use crate::runtime::{spawn_unchecked, Runtime};

/// Sorts `data` in place (unstable) using the pool: the slice is split
/// into one run per worker (×2), runs are sorted concurrently, then
/// merged pairwise level by level, with both halves of every level
/// merging in parallel.
///
/// ```
/// let rt = hpx_rt::Runtime::new(4);
/// let mut v: Vec<i64> = (0..10_000).map(|i| (i * 2_654_435_761u64 % 1_000) as i64).collect();
/// hpx_rt::sort(&rt, &hpx_rt::par(), &mut v);
/// assert!(v.is_sorted());
/// ```
pub fn sort<T>(rt: &Runtime, policy: &ExecutionPolicy, data: &mut [T])
where
    T: Ord + Send,
{
    if policy.exec == Exec::Seq || data.len() < 2048 {
        data.sort_unstable();
        return;
    }
    let runs = (rt.num_threads() * 2).next_power_of_two();
    let run_len = data.len().div_ceil(runs).max(1);

    // Phase 1: sort each run concurrently (scoped borrow via latch-join).
    {
        let chunks: Vec<&mut [T]> = data.chunks_mut(run_len).collect();
        let latch = Latch::new(chunks.len());
        for chunk in chunks {
            let latch_ref = &latch;
            // SAFETY: `latch.wait()` below outlives every task; chunks are
            // disjoint `&mut` borrows produced by `chunks_mut`.
            unsafe {
                spawn_unchecked(rt.inner(), move || {
                    chunk.sort_unstable();
                    latch_ref.count_down();
                });
            }
        }
        latch.wait();
    }

    // Phase 2: pairwise merge tournament; the two merges of each level
    // run as parallel tasks (recursively halving until one merge remains).
    let mut width = run_len;
    let mut buf: Vec<T> = Vec::with_capacity(data.len());
    // SAFETY: `buf` is used strictly as uninitialized scratch via raw
    // pointers inside `merge_level`; elements are moved (not cloned) in
    // and out, and `set_len` is never called.
    while width < data.len() {
        merge_level(rt, data, buf.spare_capacity_mut(), width);
        width *= 2;
    }
}

/// Merges every adjacent pair of sorted `width`-runs of `data` through
/// the scratch buffer, in parallel across pairs.
fn merge_level<T: Ord + Send>(
    rt: &Runtime,
    data: &mut [T],
    scratch: &mut [std::mem::MaybeUninit<T>],
    width: usize,
) {
    let n = data.len();
    let pair = 2 * width;
    let npairs = n.div_ceil(pair);
    let latch = Latch::new(npairs);
    // Disjoint pair windows of data + scratch.
    let data_ptr = data.as_mut_ptr() as usize;
    let scratch_ptr = scratch.as_mut_ptr() as usize;
    for p in 0..npairs {
        let start = p * pair;
        let mid = (start + width).min(n);
        let end = (start + pair).min(n);
        let latch_ref = &latch;
        // SAFETY: windows [start, end) are disjoint across pairs; the
        // latch keeps this frame (and both buffers) alive until all merge
        // tasks finish.
        unsafe {
            spawn_unchecked(rt.inner(), move || {
                let d = data_ptr as *mut T;
                let s = scratch_ptr as *mut T;
                merge_into(d, s, start, mid, end);
                latch_ref.count_down();
            });
        }
    }
    latch.wait();
}

/// Classic two-run merge of `data[start..mid]` and `data[mid..end]` via
/// the scratch window, moving elements back in sorted order.
///
/// # Safety
///
/// Caller guarantees exclusive access to both windows and validity of the
/// pointers for `end` elements.
unsafe fn merge_into<T: Ord>(data: *mut T, scratch: *mut T, start: usize, mid: usize, end: usize) {
    if mid >= end {
        return;
    }
    // SAFETY: forwarded contract; all reads/writes stay within
    // [start, end) of their respective buffers and every element is moved
    // exactly once in each direction.
    unsafe {
        std::ptr::copy_nonoverlapping(data.add(start), scratch.add(start), end - start);
        let (mut i, mut j, mut k) = (start, mid, start);
        while i < mid && j < end {
            if (*scratch.add(i)) <= (*scratch.add(j)) {
                std::ptr::copy_nonoverlapping(scratch.add(i), data.add(k), 1);
                i += 1;
            } else {
                std::ptr::copy_nonoverlapping(scratch.add(j), data.add(k), 1);
                j += 1;
            }
            k += 1;
        }
        if i < mid {
            std::ptr::copy_nonoverlapping(scratch.add(i), data.add(k), mid - i);
        }
        if j < end {
            std::ptr::copy_nonoverlapping(scratch.add(j), data.add(k), end - j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{par, seq};

    fn scrambled(n: usize) -> Vec<u64> {
        (0..n as u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect()
    }

    #[test]
    fn sorts_large_scrambled_input() {
        let rt = Runtime::new(3);
        let mut v = scrambled(100_000);
        let mut expect = v.clone();
        expect.sort_unstable();
        sort(&rt, &par(), &mut v);
        assert_eq!(v, expect);
    }

    #[test]
    fn small_inputs_fall_back_to_sequential() {
        let rt = Runtime::new(2);
        let mut v = vec![3u32, 1, 2];
        sort(&rt, &par(), &mut v);
        assert_eq!(v, [1, 2, 3]);
    }

    #[test]
    fn already_sorted_and_reverse_sorted() {
        let rt = Runtime::new(2);
        let mut asc: Vec<i32> = (0..50_000).collect();
        let mut desc: Vec<i32> = (0..50_000).rev().collect();
        sort(&rt, &par(), &mut asc);
        sort(&rt, &par(), &mut desc);
        assert!(asc.is_sorted());
        assert!(desc.is_sorted());
    }

    #[test]
    fn duplicates_preserved() {
        let rt = Runtime::new(2);
        let mut v: Vec<u8> = (0..60_000).map(|i| (i % 7) as u8).collect();
        let expected_threes = v.iter().filter(|&&x| x == 3).count();
        sort(&rt, &par(), &mut v);
        assert!(v.is_sorted());
        assert_eq!(v.iter().filter(|&&x| x == 3).count(), expected_threes);
    }

    #[test]
    fn seq_policy_sorts_too() {
        let rt = Runtime::new(2);
        let mut v = scrambled(10_000);
        sort(&rt, &seq(), &mut v);
        assert!(v.is_sorted());
    }

    #[test]
    fn empty_and_single() {
        let rt = Runtime::new(1);
        let mut empty: Vec<u64> = Vec::new();
        sort(&rt, &par(), &mut empty);
        let mut one = vec![42u64];
        sort(&rt, &par(), &mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn strings_sort_lexicographically() {
        let rt = Runtime::new(2);
        let mut v: Vec<String> = (0..30_000)
            .map(|i| format!("{:06}", (i * 7919) % 30_000))
            .collect();
        sort(&rt, &par(), &mut v);
        assert!(v.is_sorted());
    }
}
