//! Chunked parallel algorithms (paper §IV-A).
//!
//! All algorithms share one engine, [`run_chunked`]: the iteration space is
//! divided according to the policy's [`ChunkPolicy`](crate::ChunkPolicy)
//! (possibly after a timing probe that executes real iterations), each chunk
//! becomes a stealable task, and the caller joins on a help-executing latch
//! — so a worker that "blocks" on its own loop actually executes that
//! loop's chunks.
//!
//! Synchronous algorithms may borrow stack data (`Fn(..) + Sync`);
//! asynchronous (`_async`, returning [`Future`]) variants require `'static`
//! bodies because the caller may return before the loop finishes.

mod for_each;
mod misc;
mod reduce;
mod scan;
mod sort;
mod transform;

pub use for_each::{for_each, for_each_async, for_each_chunk, for_each_chunk_async};
pub use misc::{copy, count_if, fill, max_element, min_element, sum};
pub use reduce::{reduce, reduce_async};
pub use scan::inclusive_scan;
pub use sort::sort;
pub use transform::transform;

use parking_lot::Mutex;
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;

use crate::future::Future;
use crate::lco::{Latch, LatchGuard};
use crate::policy::{Exec, ExecutionPolicy};
use crate::runtime::{spawn_unchecked, Runtime, RuntimeInner};

/// Runs `body` over `0..n` in policy-controlled chunks and returns the
/// per-chunk results tagged with their start index, sorted by start.
///
/// This is the synchronous engine: it returns only after every chunk has
/// finished (or re-panics the first chunk panic after all chunks finished).
pub(crate) fn run_chunked<R: Send>(
    rt: &Runtime,
    policy: &ExecutionPolicy,
    n: usize,
    body: &(dyn Fn(Range<usize>) -> R + Sync),
) -> Vec<(usize, R)> {
    run_chunked_inner(rt.inner(), policy, n, body)
}

pub(crate) fn run_chunked_inner<R: Send>(
    inner: &RuntimeInner,
    policy: &ExecutionPolicy,
    n: usize,
    body: &(dyn Fn(Range<usize>) -> R + Sync),
) -> Vec<(usize, R)> {
    if n == 0 {
        return Vec::new();
    }
    if policy.exec == Exec::Seq {
        return vec![(0, body(0..n))];
    }

    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::new());
    // The timing probe executes real iterations; its result is chunk 0.
    let plan = policy
        .chunk
        .plan(n, inner.num_threads(), &mut |r: Range<usize>| {
            let t = Instant::now();
            let v = body(r.clone());
            let elapsed = t.elapsed();
            results.lock().push((r.start, v));
            elapsed
        });

    match plan.chunks.len() {
        0 => {}
        1 if plan.prefix_done == 0 => {
            // Nothing to parallelize; run inline.
            let c = plan.chunks[0].clone();
            let v = body(c.clone());
            results.lock().push((c.start, v));
        }
        _ => {
            let latch = Latch::new(plan.chunks.len());
            let panic_slot: Mutex<Option<crate::future::PanicPayload>> = Mutex::new(None);
            for c in plan.chunks {
                let latch_ref = &latch;
                let results_ref = &results;
                let panic_ref = &panic_slot;
                // SAFETY: `latch.wait()` below keeps this frame alive until
                // every chunk task has dropped its guard, so the borrows of
                // `body`, `results`, `panic_slot` and `latch` outlive the
                // tasks. A panicking chunk still counts down via the guard.
                unsafe {
                    spawn_unchecked(inner, move || {
                        let _guard = LatchGuard(latch_ref);
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            body(c.clone())
                        })) {
                            Ok(v) => results_ref.lock().push((c.start, v)),
                            Err(p) => {
                                let mut slot = panic_ref.lock();
                                slot.get_or_insert(p);
                            }
                        }
                    });
                }
            }
            latch.wait();
            if let Some(p) = panic_slot.into_inner() {
                std::panic::resume_unwind(p);
            }
        }
    }

    let mut out = results.into_inner();
    out.sort_unstable_by_key(|(start, _)| *start);
    out
}

/// Asynchronous engine: immediately returns a future of the per-chunk
/// results. Internally a prologue task runs the synchronous engine (and
/// help-executes its own chunks while joining them).
pub(crate) fn run_chunked_async<R, F>(
    rt: &Runtime,
    policy: ExecutionPolicy,
    n: usize,
    body: Arc<F>,
) -> Future<Vec<(usize, R)>>
where
    R: Send + 'static,
    F: Fn(Range<usize>) -> R + Send + Sync + 'static,
{
    let inner = Arc::clone(rt.inner());
    rt.spawn_future(move || run_chunked_inner(&inner, &policy, n, &*body))
}
