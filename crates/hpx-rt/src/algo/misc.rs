//! Small parallel algorithms built on the chunked engine.

use std::ops::Range;

use super::run_chunked;
use super::transform::SendMutPtr;
use crate::policy::ExecutionPolicy;
use crate::runtime::Runtime;

/// Sets every element of `dst` to a clone of `value`.
pub fn fill<T>(rt: &Runtime, policy: &ExecutionPolicy, dst: &mut [T], value: T)
where
    T: Clone + Send + Sync,
{
    let dst_ptr = SendMutPtr(dst.as_mut_ptr());
    run_chunked(rt, policy, dst.len(), &|r: Range<usize>| {
        for i in r {
            // SAFETY: chunks are disjoint and within bounds.
            unsafe {
                *dst_ptr.at(i) = value.clone();
            }
        }
    });
}

/// Copies `src` into `dst` element-wise (the parallel `std::copy` of the
/// paper's loop bodies, e.g. `save_soln`).
///
/// # Panics
///
/// If lengths differ.
pub fn copy<T>(rt: &Runtime, policy: &ExecutionPolicy, src: &[T], dst: &mut [T])
where
    T: Copy + Send + Sync,
{
    assert_eq!(src.len(), dst.len(), "copy: length mismatch");
    let dst_ptr = SendMutPtr(dst.as_mut_ptr());
    run_chunked(rt, policy, src.len(), &|r: Range<usize>| {
        // Per-chunk memcpy: the compiler lowers this to memcpy.
        let src_chunk = &src[r.clone()];
        // SAFETY: disjoint chunk, same bounds as src.
        unsafe {
            std::ptr::copy_nonoverlapping(src_chunk.as_ptr(), dst_ptr.at(r.start), src_chunk.len());
        }
    });
}

/// Counts indices for which `pred` holds.
pub fn count_if<F>(rt: &Runtime, policy: &ExecutionPolicy, range: Range<usize>, pred: F) -> usize
where
    F: Fn(usize) -> bool + Sync,
{
    crate::algo::reduce(
        rt,
        policy,
        range,
        0usize,
        |i| usize::from(pred(i)),
        |a, b| a + b,
    )
}

/// Sums `map(i)` over the range (convenience over [`crate::reduce`]).
pub fn sum<T, F>(rt: &Runtime, policy: &ExecutionPolicy, range: Range<usize>, map: F) -> T
where
    T: Send + Sync + Clone + std::ops::Add<Output = T> + Default,
    F: Fn(usize) -> T + Sync,
{
    crate::algo::reduce(rt, policy, range, T::default(), map, |a, b| a + b)
}

/// Index and value of the minimum of `map(i)` (first occurrence on ties),
/// or `None` for an empty range.
pub fn min_element<T, F>(
    rt: &Runtime,
    policy: &ExecutionPolicy,
    range: Range<usize>,
    map: F,
) -> Option<(usize, T)>
where
    T: Send + Sync + Clone + PartialOrd,
    F: Fn(usize) -> T + Sync,
{
    crate::algo::reduce(
        rt,
        policy,
        range,
        None,
        |i| Some((i, map(i))),
        |a: Option<(usize, T)>, b| match (a, b) {
            (None, x) | (x, None) => x,
            (Some((ia, va)), Some((ib, vb))) => {
                if vb < va || (vb == va && ib < ia) {
                    Some((ib, vb))
                } else {
                    Some((ia, va))
                }
            }
        },
    )
}

/// Index and value of the maximum of `map(i)` (first occurrence on ties),
/// or `None` for an empty range.
pub fn max_element<T, F>(
    rt: &Runtime,
    policy: &ExecutionPolicy,
    range: Range<usize>,
    map: F,
) -> Option<(usize, T)>
where
    T: Send + Sync + Clone + PartialOrd,
    F: Fn(usize) -> T + Sync,
{
    crate::algo::reduce(
        rt,
        policy,
        range,
        None,
        |i| Some((i, map(i))),
        |a: Option<(usize, T)>, b| match (a, b) {
            (None, x) | (x, None) => x,
            (Some((ia, va)), Some((ib, vb))) => {
                if vb > va || (vb == va && ib < ia) {
                    Some((ib, vb))
                } else {
                    Some((ia, va))
                }
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::par;

    #[test]
    fn fill_sets_all() {
        let rt = Runtime::new(3);
        let mut v = vec![0u32; 10_001];
        fill(&rt, &par(), &mut v, 9);
        assert!(v.iter().all(|&x| x == 9));
    }

    #[test]
    fn copy_roundtrip() {
        let rt = Runtime::new(3);
        let src: Vec<u64> = (0..9999).map(|i| i * 3).collect();
        let mut dst = vec![0u64; src.len()];
        copy(&rt, &par(), &src, &mut dst);
        assert_eq!(src, dst);
    }

    #[test]
    fn count_if_counts() {
        let rt = Runtime::new(2);
        let c = count_if(&rt, &par(), 0..1000, |i| i % 7 == 0);
        assert_eq!(c, 143);
    }

    #[test]
    fn sum_of_squares() {
        let rt = Runtime::new(2);
        let s: u64 = sum(&rt, &par(), 0..100, |i| (i * i) as u64);
        assert_eq!(s, 328_350);
    }

    #[test]
    fn min_max_with_ties_prefers_first() {
        let rt = Runtime::new(4);
        let data = [5, 1, 9, 1, 9, 5];
        let min = min_element(&rt, &par(), 0..data.len(), |i| data[i]).unwrap();
        let max = max_element(&rt, &par(), 0..data.len(), |i| data[i]).unwrap();
        assert_eq!(min, (1, 1));
        assert_eq!(max, (2, 9));
    }

    #[test]
    fn min_of_empty_is_none() {
        let rt = Runtime::new(1);
        assert!(min_element(&rt, &par(), 3..3, |i| i).is_none());
    }
}
