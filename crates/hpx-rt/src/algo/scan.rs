//! Two-phase parallel inclusive scan.

use std::ops::Range;

use super::run_chunked;
use super::transform::SendMutPtr;
use crate::policy::{par, Exec, ExecutionPolicy};
use crate::runtime::Runtime;
use crate::ChunkPolicy;

/// Inclusive prefix "sum" with an arbitrary associative operator:
/// `dst[i] = src[0] ⊕ src[1] ⊕ … ⊕ src[i]`.
///
/// Parallel two-phase algorithm: fixed even chunks fold local partials,
/// carries are combined sequentially, then every chunk re-walks with its
/// carry. Both sweeps are parallel; the carry pass is O(#chunks).
///
/// ```
/// let rt = hpx_rt::Runtime::new(2);
/// let src = [1u64, 2, 3, 4];
/// let mut dst = [0u64; 4];
/// hpx_rt::inclusive_scan(&rt, &hpx_rt::par(), &src, &mut dst, 0, |a, b| a + b);
/// assert_eq!(dst, [1, 3, 6, 10]);
/// ```
pub fn inclusive_scan<T, O>(
    rt: &Runtime,
    policy: &ExecutionPolicy,
    src: &[T],
    dst: &mut [T],
    identity: T,
    op: O,
) where
    T: Clone + Send + Sync,
    O: Fn(&T, &T) -> T + Sync,
{
    assert_eq!(src.len(), dst.len(), "inclusive_scan: length mismatch");
    let n = src.len();
    if n == 0 {
        return;
    }
    if policy.exec == Exec::Seq || n < 2 {
        let mut acc = identity;
        for i in 0..n {
            acc = op(&acc, &src[i]);
            dst[i] = acc.clone();
        }
        return;
    }

    // Both phases must see identical chunk boundaries, so use a fixed even
    // split regardless of the caller's chunker.
    let nchunks = (rt.num_threads() * 4).clamp(1, n);
    let fixed = par().with_chunk(ChunkPolicy::NumChunks { chunks: nchunks });

    // Phase 1: per-chunk fold.
    let partials = run_chunked(rt, &fixed, n, &|r: Range<usize>| {
        let mut acc = identity.clone();
        for i in r {
            acc = op(&acc, &src[i]);
        }
        acc
    });

    // Phase 2: sequential exclusive carries, keyed by chunk start.
    let mut carries: Vec<(usize, T)> = Vec::with_capacity(partials.len());
    let mut acc = identity.clone();
    for (start, p) in &partials {
        carries.push((*start, acc.clone()));
        acc = op(&acc, p);
    }

    // Phase 3: re-walk each chunk with its carry. Chunk boundaries are
    // recovered from consecutive carry keys.
    let dst_ptr = SendMutPtr(dst.as_mut_ptr());
    let bounds: Vec<(usize, usize, T)> = carries
        .iter()
        .enumerate()
        .map(|(k, (start, carry))| {
            let end = carries.get(k + 1).map_or(n, |(s, _)| *s);
            (*start, end, carry.clone())
        })
        .collect();
    #[allow(clippy::needless_range_loop)] // indexes src and dst_ptr in lockstep
    run_chunked(
        rt,
        &par().with_chunk(ChunkPolicy::NumChunks {
            chunks: bounds.len(),
        }),
        bounds.len(),
        &|r: Range<usize>| {
            for k in r {
                let (start, end, ref carry) = bounds[k];
                let mut acc = carry.clone();
                for i in start..end {
                    acc = op(&acc, &src[i]);
                    // SAFETY: chunk index ranges are disjoint across k.
                    unsafe {
                        *dst_ptr.at(i) = acc.clone();
                    }
                }
            }
        },
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::seq;

    #[test]
    fn matches_sequential_scan() {
        let rt = Runtime::new(4);
        let src: Vec<u64> = (1..=10_000).collect();
        let mut par_dst = vec![0u64; src.len()];
        let mut seq_dst = vec![0u64; src.len()];
        inclusive_scan(&rt, &par(), &src, &mut par_dst, 0, |a, b| a + b);
        inclusive_scan(&rt, &seq(), &src, &mut seq_dst, 0, |a, b| a + b);
        assert_eq!(par_dst, seq_dst);
        assert_eq!(par_dst[9_999], 10_000 * 10_001 / 2);
    }

    #[test]
    fn single_element() {
        let rt = Runtime::new(2);
        let src = [7u32];
        let mut dst = [0u32];
        inclusive_scan(&rt, &par(), &src, &mut dst, 0, |a, b| a + b);
        assert_eq!(dst, [7]);
    }

    #[test]
    fn empty() {
        let rt = Runtime::new(2);
        let src: [u32; 0] = [];
        let mut dst: [u32; 0] = [];
        inclusive_scan(&rt, &par(), &src, &mut dst, 0, |a, b| a + b);
    }

    #[test]
    fn non_commutative_operator_string_concat() {
        let rt = Runtime::new(3);
        let src: Vec<String> = ["a", "b", "c", "d", "e", "f", "g", "h"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut dst = vec![String::new(); src.len()];
        inclusive_scan(&rt, &par(), &src, &mut dst, String::new(), |a, b| {
            format!("{a}{b}")
        });
        assert_eq!(dst.last().unwrap(), "abcdefgh");
        assert_eq!(dst[2], "abc");
    }
}
