//! Parallel reduction.

use std::ops::Range;
use std::sync::Arc;

use super::{run_chunked, run_chunked_async};
use crate::future::Future;
use crate::policy::ExecutionPolicy;
use crate::runtime::Runtime;

/// Folds `map(i)` for every index of `range` with the associative operator
/// `op`, starting each partial from a clone of `identity`.
///
/// Per-chunk partials are combined **in index order**, so for a fixed chunk
/// plan the result is deterministic even for non-commutative-in-rounding
/// float addition.
///
/// ```
/// let rt = hpx_rt::Runtime::new(4);
/// let s = hpx_rt::reduce(&rt, &hpx_rt::par(), 0..1001, 0u64, |i| i as u64, |a, b| a + b);
/// assert_eq!(s, 500_500);
/// ```
pub fn reduce<R, M, O>(
    rt: &Runtime,
    policy: &ExecutionPolicy,
    range: Range<usize>,
    identity: R,
    map: M,
    op: O,
) -> R
where
    R: Send + Sync + Clone,
    M: Fn(usize) -> R + Sync,
    O: Fn(R, R) -> R + Sync,
{
    let base = range.start;
    let n = range.end.saturating_sub(range.start);
    let partials = run_chunked(rt, policy, n, &|r: Range<usize>| {
        let mut acc = identity.clone();
        for i in r {
            acc = op(acc, map(base + i));
        }
        acc
    });
    partials
        .into_iter()
        .fold(identity, |acc, (_, p)| op(acc, p))
}

/// Asynchronous [`reduce`]: returns the folded value as a future. Used by
/// the dataflow OP2 backend for global reductions (e.g. the Airfoil
/// residual).
pub fn reduce_async<R, M, O>(
    rt: &Runtime,
    policy: ExecutionPolicy,
    range: Range<usize>,
    identity: R,
    map: M,
    op: O,
) -> Future<R>
where
    R: Send + Sync + Clone + 'static,
    M: Fn(usize) -> R + Send + Sync + 'static,
    O: Fn(R, R) -> R + Send + Sync + 'static,
{
    let base = range.start;
    let n = range.end.saturating_sub(range.start);
    let op = Arc::new(op);
    let op2 = Arc::clone(&op);
    let identity2 = identity.clone();
    let body = {
        let identity = identity.clone();
        Arc::new(move |r: Range<usize>| {
            let mut acc = identity.clone();
            for i in r {
                acc = op(acc, map(base + i));
            }
            acc
        })
    };
    run_chunked_async(rt, policy, n, body).then_inline(move |partials| {
        partials
            .into_iter()
            .fold(identity2, |acc, (_, p)| op2(acc, p))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{par, par_task, seq};
    use crate::ChunkPolicy;

    #[test]
    fn sum_matches_sequential() {
        let rt = Runtime::new(4);
        let par_sum = reduce(&rt, &par(), 0..100_000, 0u64, |i| i as u64, |a, b| a + b);
        let seq_sum = reduce(&rt, &seq(), 0..100_000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(par_sum, seq_sum);
        assert_eq!(par_sum, 4_999_950_000);
    }

    #[test]
    fn deterministic_float_sum_with_fixed_chunks() {
        let rt = Runtime::new(4);
        let policy = par().with_chunk(ChunkPolicy::Static { size: 1000 });
        let data: Vec<f64> = (0..50_000).map(|i| (i as f64).sin()).collect();
        let a = reduce(
            &rt,
            &policy,
            0..data.len(),
            0.0f64,
            |i| data[i],
            |x, y| x + y,
        );
        let b = reduce(
            &rt,
            &policy,
            0..data.len(),
            0.0f64,
            |i| data[i],
            |x, y| x + y,
        );
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "fixed plan must be bit-deterministic"
        );
    }

    #[test]
    fn empty_range_yields_identity() {
        let rt = Runtime::new(2);
        let v = reduce(&rt, &par(), 10..10, 42u32, |_| 0, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn async_reduce() {
        let rt = Runtime::new(2);
        let fut = reduce_async(&rt, par_task(), 0..1000, 0u64, |i| i as u64, |a, b| a + b);
        assert_eq!(fut.get(), 499_500);
    }

    #[test]
    fn max_via_reduce() {
        let rt = Runtime::new(3);
        let data: Vec<i64> = (0..10_000u64)
            .map(|i| ((i * 2654435761) % 10_007) as i64)
            .collect();
        let m = reduce(&rt, &par(), 0..data.len(), i64::MIN, |i| data[i], i64::max);
        assert_eq!(m, *data.iter().max().unwrap());
    }
}
