//! Parallel element-wise transform into a destination slice.

use std::ops::Range;

use super::run_chunked;
use crate::policy::ExecutionPolicy;
use crate::runtime::Runtime;

/// Raw pointer wrapper asserting that disjoint chunks never alias.
pub(crate) struct SendMutPtr<T>(pub *mut T);

// Manual Copy/Clone: the derives would demand `T: Copy`.
impl<T> Clone for SendMutPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for SendMutPtr<T> {}
// SAFETY: the algorithms only hand each chunk task a disjoint index range,
// so concurrent writes never alias.
unsafe impl<T: Send> Send for SendMutPtr<T> {}
unsafe impl<T: Send> Sync for SendMutPtr<T> {}

impl<T> SendMutPtr<T> {
    /// Pointer to element `i`. Taking `self` by value keeps closures
    /// capturing the whole (Sync) wrapper rather than the raw field.
    ///
    /// # Safety
    ///
    /// `i` must be in bounds of the allocation and the caller must hold
    /// exclusive access to that element.
    #[inline(always)]
    pub(crate) unsafe fn at(self, i: usize) -> *mut T {
        // SAFETY: forwarded contract.
        unsafe { self.0.add(i) }
    }
}

/// Computes `dst[i] = f(&src[i])` for every index, in parallel chunks.
///
/// ```
/// let rt = hpx_rt::Runtime::new(2);
/// let src = vec![1.0f64, 4.0, 9.0];
/// let mut dst = vec![0.0f64; 3];
/// hpx_rt::transform(&rt, &hpx_rt::par(), &src, &mut dst, |x| x.sqrt());
/// assert_eq!(dst, [1.0, 2.0, 3.0]);
/// ```
///
/// # Panics
///
/// If `src.len() != dst.len()`.
pub fn transform<T, U, F>(rt: &Runtime, policy: &ExecutionPolicy, src: &[T], dst: &mut [U], f: F)
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    assert_eq!(src.len(), dst.len(), "transform: length mismatch");
    let dst_ptr = SendMutPtr(dst.as_mut_ptr());
    run_chunked(rt, policy, src.len(), &|r: Range<usize>| {
        for i in r {
            // SAFETY: chunks are disjoint; i < dst.len() by construction.
            unsafe {
                *dst_ptr.at(i) = f(&src[i]);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{par, seq};
    use crate::ChunkPolicy;

    #[test]
    fn matches_sequential_map() {
        let rt = Runtime::new(4);
        let src: Vec<u64> = (0..10_000).collect();
        let mut dst = vec![0u64; src.len()];
        transform(&rt, &par(), &src, &mut dst, |x| x * x + 1);
        assert!(dst
            .iter()
            .enumerate()
            .all(|(i, &v)| v == (i as u64).pow(2) + 1));
    }

    #[test]
    fn drops_previous_values() {
        // Overwriting heap values must not leak or double-free.
        let rt = Runtime::new(2);
        let src: Vec<usize> = (0..100).collect();
        let mut dst: Vec<String> = (0..100).map(|i| format!("old-{i}")).collect();
        transform(
            &rt,
            &par().with_chunk(ChunkPolicy::Static { size: 9 }),
            &src,
            &mut dst,
            |i| format!("new-{i}"),
        );
        assert_eq!(dst[42], "new-42");
    }

    #[test]
    fn seq_policy() {
        let rt = Runtime::new(2);
        let src = [1, 2, 3];
        let mut dst = [0; 3];
        transform(&rt, &seq(), &src, &mut dst, |x| x * 10);
        assert_eq!(dst, [10, 20, 30]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        let rt = Runtime::new(1);
        let src = [1];
        let mut dst = [0; 2];
        transform(&rt, &par(), &src, &mut dst, |x| *x);
    }

    #[test]
    fn empty_slices() {
        let rt = Runtime::new(1);
        let src: [u8; 0] = [];
        let mut dst: [u8; 0] = [];
        transform(&rt, &par(), &src, &mut dst, |x| *x);
    }
}
