//! The prefetching iterator (paper §V, Figs 13-14).
//!
//! "Data of the next iteration step is prefetched into the cache memory
//! with the prefetching iterator called in each iteration within the
//! `for_each`."
//!
//! [`make_prefetcher_context`] captures the base address, element size and
//! length of every container used inside a loop. [`for_each_prefetch`] then
//! runs a chunked parallel loop in which iteration `i` first issues a
//! non-faulting cache prefetch for element `i + distance` of **every**
//! container, then executes the body — combining thread-based prefetching
//! with asynchronous task execution, which is the paper's point of novelty
//! over classic software prefetching.
//!
//! The prefetch distance is `prefetch_distance_factor` *cache lines*
//! converted to elements of the widest container, mirroring the paper's
//! "determined based on the length of the cache line". The hint lowers to
//! `prefetcht0` on x86_64 and `prfm pldl1keep` on aarch64; on other
//! targets it is a no-op and the loop degrades to a plain `for_each`.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use crate::algo::{for_each, for_each_async};
use crate::future::Future;
use crate::policy::ExecutionPolicy;
use crate::runtime::Runtime;

/// Cache-line size assumed for distance calculations.
pub const CACHE_LINE_BYTES: usize = 64;

/// Erased view of one container: base pointer, element size, length.
#[derive(Clone, Copy, Debug)]
struct TableEntry {
    base: *const u8,
    elem_size: usize,
    len: usize,
    /// Cache-line gate: prefetch only when `idx & line_mask == 0`. For
    /// rows that tile a 64-byte line a power-of-two number of times this
    /// skips the redundant prefetches of already-requested lines;
    /// otherwise 0 (prefetch every row).
    line_mask: usize,
}

// SAFETY: the pointers are only ever used to *compute prefetch addresses*;
// the data behind them is never read or written through this struct.
unsafe impl Send for TableEntry {}
unsafe impl Sync for TableEntry {}

/// A gather entry: `target = index_table[idx * index_dim + slot]`, then
/// prefetch `data[target]`. This is the unstructured-mesh payoff of
/// software prefetching — hardware stride prefetchers cannot predict the
/// indirection, but the index table for iteration `i + d` is a cheap
/// (sequential, usually cached) load.
#[derive(Clone, Copy, Debug)]
struct GatherEntry {
    index_base: *const u32,
    index_dim: usize,
    slot: usize,
    index_len: usize,
    data_base: *const u8,
    row_bytes: usize,
    data_rows: usize,
}

// SAFETY: `index_base` rows `< index_len` are valid u32s owned by a Map
// that the loop keeps alive; `data_base` is only used for address
// computation.
unsafe impl Send for GatherEntry {}
unsafe impl Sync for GatherEntry {}

/// The set of containers a loop touches, with lifetime erased for cheap
/// sharing across chunk tasks. Linear tables issue hint-only prefetches;
/// gather tables read one index and prefetch the target row.
#[derive(Clone, Debug, Default)]
pub struct PrefetchSet {
    tables: Vec<TableEntry>,
    gathers: Vec<GatherEntry>,
}

impl PrefetchSet {
    /// Empty set (prefetching disabled).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a container.
    pub fn add<T>(&mut self, slice: &[T]) {
        self.add_raw(
            slice.as_ptr().cast(),
            std::mem::size_of::<T>().max(1),
            slice.len(),
        );
    }

    /// Registers a container by raw layout: `rows` logical elements of
    /// `row_bytes` each starting at `base`. Used by `op2-core`, whose
    /// logical element is a dat *row* of `dim` scalars.
    ///
    /// The pointer is only used to compute prefetch addresses for rows
    /// `< rows`; it is never dereferenced.
    pub fn add_raw(&mut self, base: *const u8, row_bytes: usize, rows: usize) {
        let row_bytes = row_bytes.max(1);
        let per_line = CACHE_LINE_BYTES / row_bytes;
        let line_mask = if per_line.is_power_of_two() && per_line > 1 {
            per_line - 1
        } else {
            0
        };
        self.tables.push(TableEntry {
            base,
            elem_size: row_bytes,
            len: rows,
            line_mask,
        });
    }

    /// Registers a gathered container: element `i` touches row
    /// `index[i * index_dim + slot]` of `data` (`data_rows` rows of
    /// `row_bytes`). This is how `op2-core` prefetches indirect dat
    /// accesses like `res[pecell[e]]`.
    ///
    /// # Safety contract (enforced by the caller)
    ///
    /// `index` must stay alive and valid for the lifetime of the loop; its
    /// values are read (not just address-computed).
    pub fn add_gather<T>(
        &mut self,
        index: &[u32],
        index_dim: usize,
        slot: usize,
        data: &[T],
        rows_dim: usize,
    ) {
        assert!(slot < index_dim.max(1));
        self.gathers.push(GatherEntry {
            index_base: index.as_ptr(),
            index_dim: index_dim.max(1),
            slot,
            index_len: index.len() / index_dim.max(1),
            data_base: data.as_ptr().cast(),
            row_bytes: (std::mem::size_of::<T>() * rows_dim).max(1),
            data_rows: data.len() / rows_dim.max(1),
        });
    }

    /// Raw-pointer variant of [`PrefetchSet::add_gather`] for callers that
    /// already hold erased tables (op2-core).
    pub fn add_gather_raw(
        &mut self,
        index: &[u32],
        index_dim: usize,
        slot: usize,
        data_base: *const u8,
        row_bytes: usize,
        data_rows: usize,
    ) {
        assert!(slot < index_dim.max(1));
        self.gathers.push(GatherEntry {
            index_base: index.as_ptr(),
            index_dim: index_dim.max(1),
            slot,
            index_len: index.len() / index_dim.max(1),
            data_base,
            row_bytes: row_bytes.max(1),
            data_rows,
        });
    }

    /// Number of registered containers (linear + gather).
    pub fn len(&self) -> usize {
        self.tables.len() + self.gathers.len()
    }

    /// True when no container is registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty() && self.gathers.is_empty()
    }

    /// Elements per cache line of the *widest* registered element type
    /// (≥ 1). Distances are expressed in these units.
    pub fn elems_per_line(&self) -> usize {
        let widest = self
            .tables
            .iter()
            .map(|t| t.elem_size)
            .chain(self.gathers.iter().map(|g| g.row_bytes))
            .max()
            .unwrap_or(1);
        (CACHE_LINE_BYTES / widest).max(1)
    }

    /// Issues a read prefetch for element `idx` of every container whose
    /// length covers it. Linear tables are cache-line gated (one request
    /// per line); gather tables read the index entry and prefetch the
    /// target row. Bounds-checked.
    #[inline(always)]
    pub fn prefetch(&self, idx: usize) {
        for t in &self.tables {
            if idx < t.len && idx & t.line_mask == 0 {
                // SAFETY: hint-only; address is within the allocation
                // because idx < len.
                prefetch_read(unsafe { t.base.add(idx * t.elem_size) });
            }
        }
        for g in &self.gathers {
            if idx < g.index_len {
                // SAFETY: idx < index_len rows; Map tables are validated
                // at declaration, so target < data_rows holds — checked
                // again defensively below.
                let target = unsafe { *g.index_base.add(idx * g.index_dim + g.slot) } as usize;
                if target < g.data_rows {
                    // SAFETY: hint-only, in-bounds by the check above.
                    prefetch_read(unsafe { g.data_base.add(target * g.row_bytes) });
                }
            }
        }
    }
}

#[inline(always)]
fn prefetch_read(ptr: *const u8) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _mm_prefetch is a non-faulting hint on any address; SSE is
    // baseline on x86_64.
    unsafe {
        use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
        _mm_prefetch::<_MM_HINT_T0>(ptr.cast());
    }
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is a non-faulting hint on any address; it never
    // dereferences, only requests a cache fill.
    unsafe {
        std::arch::asm!(
            "prfm pldl1keep, [{0}]",
            in(reg) ptr,
            options(nostack, preserves_flags, readonly)
        );
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = ptr;
}

/// A loop range paired with the containers to prefetch and the prefetch
/// distance (in elements). Built by [`make_prefetcher_context`]; consumed
/// by [`for_each_prefetch`].
#[derive(Clone, Debug)]
pub struct PrefetcherContext<'a> {
    range: Range<usize>,
    distance: usize,
    set: PrefetchSet,
    _borrow: PhantomData<&'a ()>,
}

impl<'a> PrefetcherContext<'a> {
    /// The loop range.
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Prefetch distance in elements.
    pub fn distance(&self) -> usize {
        self.distance
    }

    /// The underlying container table (lifetime-erased).
    pub fn prefetch_set(&self) -> &PrefetchSet {
        &self.set
    }

    /// Overrides the distance with an explicit element count.
    #[must_use]
    pub fn with_distance_elements(mut self, elements: usize) -> Self {
        self.distance = elements;
        self
    }
}

/// Tuples of slices acceptable to [`make_prefetcher_context`]
/// (`(&[T],)` up to 8 heterogeneous slices).
pub trait PrefetchContainers<'a> {
    /// Collects the erased container table.
    fn collect(&self, set: &mut PrefetchSet);
}

macro_rules! impl_prefetch_containers {
    ($($T:ident . $idx:tt),+) => {
        impl<'a, $($T),+> PrefetchContainers<'a> for ($(&'a [$T],)+) {
            fn collect(&self, set: &mut PrefetchSet) {
                $( set.add(self.$idx); )+
            }
        }
    };
}

impl_prefetch_containers!(A.0);
impl_prefetch_containers!(A.0, B.1);
impl_prefetch_containers!(A.0, B.1, C.2);
impl_prefetch_containers!(A.0, B.1, C.2, D.3);
impl_prefetch_containers!(A.0, B.1, C.2, D.3, E.4);
impl_prefetch_containers!(A.0, B.1, C.2, D.3, E.4, F.5);
impl_prefetch_containers!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
impl_prefetch_containers!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);

/// Builds a prefetcher context over `range` for the given containers
/// (paper Fig 14: `make_prefetcher_context(begin, end, factor, c1, …, cn)`).
/// `distance_factor` is the look-ahead in cache lines.
pub fn make_prefetcher_context<'a, C>(
    range: Range<usize>,
    distance_factor: usize,
    containers: C,
) -> PrefetcherContext<'a>
where
    C: PrefetchContainers<'a>,
{
    let mut set = PrefetchSet::new();
    containers.collect(&mut set);
    let distance = distance_factor * set.elems_per_line();
    PrefetcherContext {
        range,
        distance,
        set,
        _borrow: PhantomData,
    }
}

/// `for_each` over a prefetcher context: iteration `i` prefetches element
/// `i + distance` of every container, then runs `f(i)` (paper Fig 14).
pub fn for_each_prefetch<F>(
    rt: &Runtime,
    policy: &ExecutionPolicy,
    ctx: &PrefetcherContext<'_>,
    f: F,
) where
    F: Fn(usize) + Sync,
{
    let set = ctx.set.clone();
    let d = ctx.distance;
    if d == 0 || set.is_empty() {
        for_each(rt, policy, ctx.range(), f);
        return;
    }
    for_each(rt, policy, ctx.range(), move |i| {
        set.prefetch(i + d);
        f(i);
    });
}

/// Asynchronous [`for_each_prefetch`], combining prefetching with task
/// execution — the combination the paper highlights in §V.
pub fn for_each_prefetch_async<F>(
    rt: &Runtime,
    policy: ExecutionPolicy,
    ctx: &PrefetcherContext<'_>,
    f: Arc<F>,
) -> Future<()>
where
    F: Fn(usize) + Send + Sync + 'static,
{
    let set = ctx.set.clone();
    let d = ctx.distance;
    for_each_async(rt, policy, ctx.range(), move |i| {
        if d > 0 {
            set.prefetch(i + d);
        }
        f(i);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::par;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn distance_scales_with_cache_lines() {
        let a = vec![0.0f64; 100];
        let b = [0u8; 100];
        // Widest element: f64 (8 bytes) -> 8 elems/line; factor 15 -> 120.
        let ctx = make_prefetcher_context(0..100, 15, (&a[..], &b[..]));
        assert_eq!(ctx.distance(), 15 * 8);
    }

    #[test]
    fn loop_results_identical_with_prefetching() {
        let rt = Runtime::new(2);
        let n = 50_000;
        let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..n).map(|i| (i * 2) as f64).collect();
        let sum = AtomicU64::new(0);
        let ctx = make_prefetcher_context(0..n, 4, (&a[..], &b[..]));
        for_each_prefetch(&rt, &par(), &ctx, |i| {
            sum.fetch_add((a[i] + b[i]) as u64, Ordering::Relaxed);
        });
        let expected: u64 = (0..n as u64).map(|i| i * 3).sum();
        assert_eq!(sum.into_inner(), expected);
    }

    #[test]
    fn prefetch_near_end_is_bounds_safe() {
        // Prefetch indices beyond len must be skipped, not crash.
        let data = [1u32; 10];
        let mut set = PrefetchSet::new();
        set.add(&data[..]);
        for i in 0..10 {
            set.prefetch(i + 1000);
        }
    }

    #[test]
    fn zero_factor_degrades_to_plain_for_each() {
        let rt = Runtime::new(2);
        let data = vec![1u64; 1000];
        let ctx = make_prefetcher_context(0..1000, 0, (&data[..],));
        assert_eq!(ctx.distance(), 0);
        let sum = AtomicU64::new(0);
        for_each_prefetch(&rt, &par(), &ctx, |i| {
            sum.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 1000);
    }

    #[test]
    fn async_prefetch_loop() {
        let rt = Runtime::new(2);
        let n = 10_000;
        let data: Vec<u64> = (0..n as u64).collect();
        let sum = Arc::new(AtomicU64::new(0));
        let ctx = make_prefetcher_context(0..n, 8, (&data[..],));
        let data2 = data.clone();
        let sum2 = Arc::clone(&sum);
        let fut = for_each_prefetch_async(
            &rt,
            crate::policy::par_task(),
            &ctx,
            Arc::new(move |i: usize| {
                sum2.fetch_add(data2[i], Ordering::Relaxed);
            }),
        );
        fut.get();
        assert_eq!(sum.load(Ordering::Relaxed), (n as u64 - 1) * n as u64 / 2);
    }

    #[test]
    fn elems_per_line_defaults_to_one_for_wide_types() {
        #[repr(align(128))]
        struct Wide(#[allow(dead_code)] [u8; 128]);
        let data = [Wide([0; 128])];
        let mut set = PrefetchSet::new();
        set.add(&data[..]);
        assert_eq!(set.elems_per_line(), 1);
    }
}
