//! The `dataflow` LCO (paper §III-B, Figs 6-7).
//!
//! `dataflow(rt, f, (a, b, c))` encapsulates a function with future and
//! non-future inputs. Futures delay the invocation; plain values (wrapped in
//! [`Val`]) are passed through. As soon as the last input is ready, `f` is
//! scheduled on the runtime with the *unwrapped* values (the paper's
//! `hpx::util::unwrapped` helper is built in) and the call itself returns a
//! future for `f`'s result — so dataflow nodes chain into a dependency graph
//! that the scheduler executes without global barriers.
//!
//! ```
//! use hpx_rt::{dataflow, Runtime, Val};
//! let rt = Runtime::new(2);
//! let a = rt.spawn_future(|| 2);
//! let b = rt.spawn_future(|| 3);
//! let sum = dataflow(&rt, |(a, b, c)| a + b + c, (a, b, Val(10)));
//! assert_eq!(sum.get(), 15);
//! ```

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::future::{channel, Future, Outcome, PanicPayload, SharedFuture, SharedOutcome};
use crate::runtime::Runtime;

/// A non-future input to [`dataflow`], passed through unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Val<T>(pub T);

/// An input to a dataflow node: something that eventually delivers a value.
pub trait DataflowArg: Send + 'static {
    /// The unwrapped value type.
    type Output: Send + 'static;
    /// Arranges for `done` to be called exactly once with the outcome.
    fn deliver(self, done: Box<dyn FnOnce(Outcome<Self::Output>) + Send>);
}

impl<T: Send + 'static> DataflowArg for Future<T> {
    type Output = T;
    fn deliver(self, done: Box<dyn FnOnce(Outcome<T>) + Send>) {
        self.attach_callback(done);
    }
}

impl<T: Clone + Send + Sync + 'static> DataflowArg for SharedFuture<T> {
    type Output = T;
    fn deliver(self, done: Box<dyn FnOnce(Outcome<T>) + Send>) {
        self.attach_callback(Box::new(move |outcome| match outcome {
            SharedOutcome::Value(v) => done(Ok(v.clone())),
            SharedOutcome::Panic(p) => done(Err(Box::new(p.message().to_owned()) as PanicPayload)),
        }));
    }
}

impl<T: Send + 'static> DataflowArg for Val<T> {
    type Output = T;
    fn deliver(self, done: Box<dyn FnOnce(Outcome<T>) + Send>) {
        done(Ok(self.0));
    }
}

/// A tuple of [`DataflowArg`]s that can be joined into one future of the
/// unwrapped values. Implemented for tuples of arity 1..=8.
pub trait FutureTuple: Send + 'static {
    /// Tuple of unwrapped values.
    type Values: Send + 'static;
    /// Future completing when every element has delivered.
    fn join(self) -> Future<Self::Values>;
}

macro_rules! impl_future_tuple {
    ($n:literal; $($A:ident . $idx:tt),+) => {
        impl<$($A: DataflowArg),+> FutureTuple for ($($A,)+) {
            type Values = ($($A::Output,)+);

            fn join(self) -> Future<Self::Values> {
                struct JoinState<$($A: DataflowArg),+> {
                    slots: Mutex<($(Option<$A::Output>,)+)>,
                    promise: Mutex<Option<crate::future::Promise<($($A::Output,)+)>>>,
                    remaining: AtomicUsize,
                }
                impl<$($A: DataflowArg),+> JoinState<$($A),+> {
                    /// Countdown; the last arrival assembles the tuple.
                    fn arrived(&self) {
                        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                            if let Some(pr) = self.promise.lock().take() {
                                let mut slots = self.slots.lock();
                                pr.set_value((
                                    $(slots.$idx.take().expect("dataflow slot missing"),)+
                                ));
                            }
                        }
                    }
                }
                let (promise, future) = channel();
                let state = Arc::new(JoinState::<$($A),+> {
                    slots: Mutex::new(($(None::<$A::Output>,)+)),
                    promise: Mutex::new(Some(promise)),
                    remaining: AtomicUsize::new($n),
                });
                $(
                    {
                        let st = Arc::clone(&state);
                        self.$idx.deliver(Box::new(move |outcome| {
                            match outcome {
                                Ok(v) => st.slots.lock().$idx = Some(v),
                                Err(p) => {
                                    if let Some(pr) = st.promise.lock().take() {
                                        pr.set_panic(p);
                                    }
                                }
                            }
                            st.arrived();
                        }));
                    }
                )+
                future
            }
        }
    };
}

impl_future_tuple!(1; A0.0);
impl_future_tuple!(2; A0.0, A1.1);
impl_future_tuple!(3; A0.0, A1.1, A2.2);
impl_future_tuple!(4; A0.0, A1.1, A2.2, A3.3);
impl_future_tuple!(5; A0.0, A1.1, A2.2, A3.3, A4.4);
impl_future_tuple!(6; A0.0, A1.1, A2.2, A3.3, A4.4, A5.5);
impl_future_tuple!(7; A0.0, A1.1, A2.2, A3.3, A4.4, A5.5, A6.6);
impl_future_tuple!(8; A0.0, A1.1, A2.2, A3.3, A4.4, A5.5, A6.6, A7.7);

/// Schedules `f` on `rt` once every input future is ready, passing the
/// unwrapped values as a tuple. Returns the result as a future (see module
/// docs). If any input panicked, `f` is skipped and the result re-panics.
pub fn dataflow<Args, R, F>(rt: &Runtime, f: F, args: Args) -> Future<R>
where
    Args: FutureTuple,
    R: Send + 'static,
    F: FnOnce(Args::Values) -> R + Send + 'static,
{
    args.join().then(rt, f)
}

/// Like [`dataflow`] but runs `f` inline on the thread that satisfies the
/// last dependency (HPX `dataflow(launch::sync, ...)`).
pub fn dataflow_inline<Args, R, F>(f: F, args: Args) -> Future<R>
where
    Args: FutureTuple,
    R: Send + 'static,
    F: FnOnce(Args::Values) -> R + Send + 'static,
{
    args.join().then_inline(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::future::ready;

    #[test]
    fn mixed_inputs() {
        let rt = Runtime::new(2);
        let a = rt.spawn_future(|| 1u64);
        let b = ready(2u64);
        let c = rt.spawn_future(|| 3u64).share();
        let out = dataflow(&rt, |(a, b, c, d)| a + b + c + d, (a, b, c, Val(4u64)));
        assert_eq!(out.get(), 10);
    }

    #[test]
    fn diamond_graph() {
        // a -> (b, c) -> d : the classic dependency diamond.
        let rt = Runtime::new(2);
        let a = rt.spawn_future(|| 5i64).share();
        let b = dataflow(&rt, |(x,)| x * 2, (a.clone(),));
        let c = dataflow(&rt, |(x,)| x + 100, (a,));
        let d = dataflow(&rt, |(b, c)| b + c, (b, c));
        assert_eq!(d.get(), 115);
    }

    #[test]
    fn chain_of_dataflows() {
        let rt = Runtime::new(2);
        let mut f = ready(0u64);
        for _ in 0..100 {
            f = dataflow(&rt, |(x,)| x + 1, (f,));
        }
        assert_eq!(f.get(), 100);
    }

    #[test]
    #[should_panic(expected = "input died")]
    fn panic_in_input_skips_function() {
        let rt = Runtime::new(2);
        let bad: Future<u32> = rt.spawn_future(|| panic!("input died"));
        let out = dataflow(
            &rt,
            |(_x, _y)| unreachable!("must not run"),
            (bad, Val(1u32)),
        );
        let _: u32 = out.get();
    }

    #[test]
    fn inline_dataflow_runs_without_runtime_hop() {
        let a = ready(20u32);
        let out = dataflow_inline(|(x,)| x + 2, (a,));
        assert_eq!(out.get(), 22);
    }

    #[test]
    fn eight_arity() {
        let rt = Runtime::new(2);
        let out = dataflow(
            &rt,
            |(a, b, c, d, e, f, g, h)| a + b + c + d + e + f + g + h,
            (
                Val(1u32),
                Val(2u32),
                Val(3u32),
                Val(4u32),
                Val(5u32),
                Val(6u32),
                Val(7u32),
                Val(8u32),
            ),
        );
        assert_eq!(out.get(), 36);
    }
}
