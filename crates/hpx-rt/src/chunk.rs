//! Chunk-size control (paper §IV-B, Fig 12).
//!
//! "In order to control the overheads introduced by the creation of each
//! task, it is important to control the amount of work performed by each
//! task. This amount of work is known as the chunk size."
//!
//! Besides the classic strategies (static, even split, guided), this module
//! implements the two measurement-driven policies from the paper:
//!
//! * [`ChunkPolicy::Auto`] — HPX's `auto_chunk_size`: time a small probe of
//!   real iterations, then size chunks so each takes approximately a target
//!   duration.
//! * [`PersistentChunker`] — the paper's **new** `persistent_auto_chunk_size`
//!   policy: the *first* loop that runs under a given handle calibrates the
//!   per-chunk duration; every *subsequent* loop (typically a different loop
//!   body with a different per-iteration cost) measures its own probe and
//!   picks a chunk size hitting the *same duration*. Dependent loops thus
//!   get chunks of equal execution time but different sizes (Fig 12b),
//!   minimizing the waiting time between interleaved loops.

use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::timing::Clock;

/// Default per-chunk execution-time target for the measuring chunkers.
pub const DEFAULT_CHUNK_TARGET: Duration = Duration::from_micros(200);

/// Fraction of the iteration space used as the timing probe (1%, like HPX's
/// `auto_chunk_size`), bounded to keep probes cheap.
const PROBE_DIVISOR: usize = 100;
const PROBE_MAX: usize = 4096;

/// Work-division strategy for the parallel algorithms.
#[derive(Debug, Clone)]
pub enum ChunkPolicy {
    /// Fixed chunk size (OpenMP `schedule(dynamic, size)` — scheduling is
    /// always dynamic here because chunks are stealable tasks).
    Static {
        /// Iterations per chunk.
        size: usize,
    },
    /// Split the range into exactly `chunks` nearly-equal pieces (OpenMP
    /// `schedule(static)` when `chunks == nthreads` — the fork-join
    /// baseline's behaviour).
    NumChunks {
        /// Total number of chunks.
        chunks: usize,
    },
    /// Exponentially decreasing chunk sizes, never below `min` (OpenMP
    /// `schedule(guided)`).
    Guided {
        /// Smallest chunk size.
        min: usize,
    },
    /// Measure a probe, then size chunks to take ~`target` each (HPX
    /// `auto_chunk_size`).
    Auto {
        /// Per-chunk execution-time target.
        target: Duration,
    },
    /// The paper's `persistent_auto_chunk_size` (see module docs).
    PersistentAuto(PersistentChunker),
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy::Auto {
            target: DEFAULT_CHUNK_TARGET,
        }
    }
}

// ---------------------------------------------------------------------------
// Granularity feedback (measured per-element cost)
// ---------------------------------------------------------------------------

/// EWMA smoothing factor for steady-state cost updates.
const FEEDBACK_ALPHA: f64 = 0.25;
/// A sample deviating from the EWMA by more than this factor is treated as
/// a workload *phase change* and snaps the estimate to the sample, so the
/// consumer re-plans once instead of drifting through every intermediate
/// granularity.
const FEEDBACK_SNAP_FACTOR: f64 = 2.0;

/// Measured per-element cost of one (kernel, set) pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelCost {
    /// Smoothed per-element cost in nanoseconds (EWMA with phase-change
    /// snapping; see [`GranularityFeedback`]).
    pub ewma_ns_per_elem: f64,
    /// Number of measurements folded in.
    pub samples: u64,
}

/// Measured-cost accumulator behind the feedback-driven chunk policies:
/// per (kernel name, set id), an EWMA of the per-element execution cost
/// reported by executed chunks or dataflow nodes.
///
/// This is the persistent half of the paper's `auto_chunk_size` /
/// `persistent_auto_chunk_size` pair generalized to graph execution: a
/// synchronous parallel-for can run a timing probe before it chunks, but a
/// dataflow node graph is built before anything executes — so the graph
/// builder consults the cost measured on *previous* executions of the same
/// kernel (recorded here by the executed nodes) and sizes the next
/// submission's nodes to hit the target duration.
///
/// All timing flows through the accumulator's [`Clock`], so tests inject
/// [`Clock::fake`] and drive convergence deterministically. Every recorded
/// sample also bumps the process-wide `hpx.feedback.samples` named counter
/// in [`crate::stats`]. Cloning is cheap and shares the underlying state —
/// a [`PersistentChunker`] clone carried into several OP2 ranks shares one
/// cost table.
#[derive(Debug, Clone, Default)]
pub struct GranularityFeedback {
    inner: Arc<FeedbackInner>,
    /// Rank this *handle* attributes samples to. The table stays shared
    /// (clones see each other's costs), but a tagged handle additionally
    /// folds every sample into its rank's private cost table and busy-time
    /// accumulator — the imbalance signal the rebalancer reads. Untagged
    /// handles behave exactly as before.
    rank: Option<u32>,
}

#[derive(Debug, Default)]
struct FeedbackInner {
    clock: Clock,
    /// set id -> kernel name -> smoothed cost.
    costs: Mutex<HashMap<u64, HashMap<Arc<str>, KernelCost>>>,
    /// rank -> per-rank attribution (busy time + rank-local cost table).
    ranks: Mutex<HashMap<u32, RankAttribution>>,
}

/// What a rank-tagged handle accumulates on top of the shared table.
#[derive(Debug, Default)]
struct RankAttribution {
    /// Total measured kernel nanoseconds attributed to this rank since the
    /// last [`GranularityFeedback::reset_rank_busy`].
    busy_ns: u64,
    /// Rank-local cost table: without it a slow rank's samples are
    /// EWMA-mixed with a fast rank's and per-rank imbalance is invisible.
    costs: HashMap<u64, HashMap<Arc<str>, KernelCost>>,
}

/// Folds one per-element cost sample into a cost table (EWMA with
/// phase-change snapping).
fn fold_sample(
    table: &mut HashMap<u64, HashMap<Arc<str>, KernelCost>>,
    kernel: &Arc<str>,
    set: u64,
    sample: f64,
) {
    let by_kernel = table.entry(set).or_default();
    match by_kernel.get_mut(kernel.as_ref()) {
        Some(c) => {
            if sample > c.ewma_ns_per_elem * FEEDBACK_SNAP_FACTOR
                || sample < c.ewma_ns_per_elem / FEEDBACK_SNAP_FACTOR
            {
                c.ewma_ns_per_elem = sample;
            } else {
                c.ewma_ns_per_elem += FEEDBACK_ALPHA * (sample - c.ewma_ns_per_elem);
            }
            c.samples += 1;
        }
        None => {
            by_kernel.insert(
                Arc::clone(kernel),
                KernelCost {
                    ewma_ns_per_elem: sample,
                    samples: 1,
                },
            );
        }
    }
}

impl GranularityFeedback {
    /// A fresh accumulator on the real clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// A fresh accumulator measuring through `clock` (tests inject
    /// [`Clock::fake`]).
    pub fn with_clock(clock: Clock) -> Self {
        GranularityFeedback {
            inner: Arc::new(FeedbackInner {
                clock,
                costs: Mutex::new(HashMap::new()),
                ranks: Mutex::new(HashMap::new()),
            }),
            rank: None,
        }
    }

    /// The clock all measurements for this accumulator are taken on.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// A handle sharing this accumulator's state that attributes every
    /// sample it records to `rank` (busy time + a rank-local cost table)
    /// in addition to the shared table.
    pub fn for_rank(&self, rank: u32) -> GranularityFeedback {
        GranularityFeedback {
            inner: Arc::clone(&self.inner),
            rank: Some(rank),
        }
    }

    /// The rank this handle attributes samples to, if tagged.
    pub fn rank(&self) -> Option<u32> {
        self.rank
    }

    /// Folds in one measurement: `elems` elements of `kernel` over set
    /// `set` took `elapsed_ns`. Zero-element samples are ignored (they
    /// carry no cost information); a zero-duration sample means the chunk
    /// ran below clock resolution and is floored to 1 ns — dropping it
    /// would freeze a stale expensive estimate forever and granularity
    /// could never converge downward.
    pub fn record(&self, kernel: &Arc<str>, set: u64, elems: usize, elapsed_ns: u64) {
        if elems == 0 {
            return;
        }
        let elapsed_ns = elapsed_ns.max(1);
        let sample = elapsed_ns as f64 / elems as f64;
        fold_sample(&mut self.inner.costs.lock(), kernel, set, sample);
        if let Some(rank) = self.rank {
            let mut ranks = self.inner.ranks.lock();
            let attr = ranks.entry(rank).or_default();
            attr.busy_ns += elapsed_ns;
            fold_sample(&mut attr.costs, kernel, set, sample);
        }
        crate::static_counter!("hpx.feedback.samples").fetch_add(1, Ordering::Relaxed);
    }

    /// The smoothed cost of `(kernel, set)`. A rank-tagged handle prefers
    /// its rank's private estimate (falling back to the shared table), so
    /// a slow rank resolves granularity from what *it* measured rather
    /// than the cross-rank mixture.
    pub fn cost(&self, kernel: &str, set: u64) -> Option<KernelCost> {
        if let Some(rank) = self.rank {
            let ranks = self.inner.ranks.lock();
            if let Some(c) = ranks
                .get(&rank)
                .and_then(|a| a.costs.get(&set))
                .and_then(|m| m.get(kernel))
            {
                return Some(*c);
            }
        }
        self.inner
            .costs
            .lock()
            .get(&set)
            .and_then(|m| m.get(kernel))
            .copied()
    }

    /// Total measured kernel nanoseconds attributed to `rank` since the
    /// last [`GranularityFeedback::reset_rank_busy`] — the per-rank
    /// imbalance signal the rebalancer compares across ranks.
    pub fn rank_busy_ns(&self, rank: u32) -> u64 {
        self.inner
            .ranks
            .lock()
            .get(&rank)
            .map(|a| a.busy_ns)
            .unwrap_or(0)
    }

    /// Zeroes every rank's busy accumulator (cost tables are kept), so
    /// the next measurement window starts fresh after a rebalance.
    pub fn reset_rank_busy(&self) {
        for attr in self.inner.ranks.lock().values_mut() {
            attr.busy_ns = 0;
        }
    }

    /// Forgets every measurement for set signature `set` — shared and
    /// per-rank — so estimates for a set retired by migration cannot leak
    /// into a new set that happens to collide.
    pub fn forget_set(&self, set: u64) {
        self.inner.costs.lock().remove(&set);
        for attr in self.inner.ranks.lock().values_mut() {
            attr.costs.remove(&set);
        }
    }

    /// Every measured (kernel, set) cost, sorted by (set, kernel) — the
    /// diagnostics view the benches report next to the
    /// [`crate::stats::counters`] snapshot.
    pub fn snapshot(&self) -> Vec<(String, u64, KernelCost)> {
        let costs = self.inner.costs.lock();
        let mut out: Vec<(String, u64, KernelCost)> = costs
            .iter()
            .flat_map(|(&set, m)| m.iter().map(move |(k, &c)| (k.as_ref().to_owned(), set, c)))
            .collect();
        out.sort_by(|a, b| (a.1, a.0.as_str()).cmp(&(b.1, b.0.as_str())));
        out
    }

    /// Forgets every measurement — shared table, per-rank tables and busy
    /// accumulators (the next resolutions fall back to their probe
    /// defaults).
    pub fn reset(&self) {
        self.inner.costs.lock().clear();
        self.inner.ranks.lock().clear();
    }
}

/// Shared calibration state for [`ChunkPolicy::PersistentAuto`]. Clone the
/// handle into every loop that should share the same per-chunk duration.
#[derive(Debug, Clone)]
pub struct PersistentChunker {
    inner: Arc<PersistentState>,
}

#[derive(Debug)]
struct PersistentState {
    /// Calibrated per-chunk duration in nanoseconds; 0 = not yet calibrated.
    target_ns: AtomicU64,
    /// Target used by the calibrating (first) loop.
    initial_target_ns: u64,
    /// Measured per-element costs persisted across loops — the state the
    /// OP2 dataflow driver resolves node granularity from.
    feedback: GranularityFeedback,
}

impl PersistentChunker {
    /// Creates an uncalibrated handle with the default first-loop target.
    pub fn new() -> Self {
        Self::with_target(DEFAULT_CHUNK_TARGET)
    }

    /// Creates an uncalibrated handle; the first loop aims for `target` per
    /// chunk and locks in whatever duration it actually achieves.
    pub fn with_target(target: Duration) -> Self {
        Self::with_target_and_clock(target, Clock::real())
    }

    /// [`PersistentChunker::with_target`] measuring through `clock` —
    /// tests inject [`Clock::fake`] to drive the feedback loop
    /// deterministically.
    pub fn with_target_and_clock(target: Duration, clock: Clock) -> Self {
        PersistentChunker {
            inner: Arc::new(PersistentState {
                target_ns: AtomicU64::new(0),
                initial_target_ns: target.as_nanos().max(1) as u64,
                feedback: GranularityFeedback::with_clock(clock),
            }),
        }
    }

    /// The per-(kernel, set) cost table persisted in this handle.
    pub fn feedback(&self) -> &GranularityFeedback {
        &self.inner.feedback
    }

    /// The duration the *next* loop under this handle should aim for per
    /// chunk: the calibrated target once the first loop ran, the initial
    /// target before.
    pub fn target_ns(&self) -> u64 {
        match self.inner.target_ns.load(Ordering::Acquire) {
            0 => self.inner.initial_target_ns,
            ns => ns,
        }
    }

    /// Locks in the calibrated per-chunk duration if no loop has
    /// calibrated yet (first-loop-wins, like the paper's
    /// `persistent_auto_chunk_size`).
    pub fn calibrate_once(&self, chunk_ns: u64) {
        self.record_if_first(chunk_ns);
    }

    /// The calibrated per-chunk duration, if the first loop has run.
    pub fn calibrated_target(&self) -> Option<Duration> {
        match self.inner.target_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Forgets the calibration *and* the measured cost table; the next
    /// loop becomes the "first loop" again and later resolutions restart
    /// from their probe defaults. Useful when the workload changes phase.
    pub fn reset(&self) {
        self.inner.target_ns.store(0, Ordering::Release);
        self.inner.feedback.reset();
    }

    fn record_if_first(&self, chunk_ns: u64) {
        let _ = self.inner.target_ns.compare_exchange(
            0,
            chunk_ns.max(1),
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }
}

impl Default for PersistentChunker {
    fn default() -> Self {
        Self::new()
    }
}

/// The outcome of planning: iterations `0..prefix_done` were already
/// executed (by the timing probe); `chunks` tile `prefix_done..n` exactly.
#[derive(Debug)]
pub(crate) struct ChunkPlan {
    pub prefix_done: usize,
    pub chunks: Vec<Range<usize>>,
}

impl ChunkPolicy {
    /// Builds the chunk plan for an `n`-iteration loop on `nthreads`
    /// workers. `probe` runs real loop iterations and returns how long they
    /// took; it is invoked only by the measuring policies.
    pub(crate) fn plan(
        &self,
        n: usize,
        nthreads: usize,
        probe: &mut dyn FnMut(Range<usize>) -> Duration,
    ) -> ChunkPlan {
        let nthreads = nthreads.max(1);
        if n == 0 {
            return ChunkPlan {
                prefix_done: 0,
                chunks: Vec::new(),
            };
        }
        match self {
            ChunkPolicy::Static { size } => fixed_size_plan(0, n, (*size).max(1)),
            ChunkPolicy::NumChunks { chunks } => {
                let chunks = (*chunks).clamp(1, n);
                let size = n.div_ceil(chunks);
                fixed_size_plan(0, n, size)
            }
            ChunkPolicy::Guided { min } => {
                let min = (*min).max(1);
                let mut out = Vec::new();
                let mut start = 0usize;
                while start < n {
                    let remaining = n - start;
                    let size = (remaining / (2 * nthreads)).max(min).min(remaining);
                    out.push(start..start + size);
                    start += size;
                }
                ChunkPlan {
                    prefix_done: 0,
                    chunks: out,
                }
            }
            ChunkPolicy::Auto { target } => {
                let (prefix, per_iter_ns) = run_probe(n, probe);
                let size = size_for_target(target.as_nanos() as u64, per_iter_ns, n, nthreads);
                fixed_size_plan(prefix, n, size)
            }
            ChunkPolicy::PersistentAuto(handle) => {
                let (prefix, per_iter_ns) = run_probe(n, probe);
                let target_ns = handle.target_ns();
                let size = size_for_target(target_ns, per_iter_ns, n, nthreads);
                // First loop under this handle: lock in the duration the
                // auto chunker *aimed for* — i.e. ignore the per-loop
                // load-balance cap, which would otherwise make a small
                // first loop poison every dependent loop with tiny chunks.
                let uncapped = (target_ns / per_iter_ns).max(1).min(n as u64);
                handle.record_if_first(uncapped * per_iter_ns);
                fixed_size_plan(prefix, n, size)
            }
        }
    }

    /// True if this policy runs a timing probe before parallel execution.
    pub fn is_measuring(&self) -> bool {
        matches!(
            self,
            ChunkPolicy::Auto { .. } | ChunkPolicy::PersistentAuto(_)
        )
    }
}

/// Executes the timing probe: ~1% of iterations, at least 1, at most
/// `PROBE_MAX`, never the entire range (unless n == 1). Returns
/// (iterations consumed, smoothed per-iteration nanoseconds ≥ 1).
fn run_probe(n: usize, probe: &mut dyn FnMut(Range<usize>) -> Duration) -> (usize, u64) {
    let len = (n / PROBE_DIVISOR).clamp(1, PROBE_MAX).min(n);
    let dur = probe(0..len);
    let per_iter = (dur.as_nanos() as u64 / len as u64).max(1);
    (len, per_iter)
}

fn size_for_target(target_ns: u64, per_iter_ns: u64, n: usize, nthreads: usize) -> usize {
    let ideal = (target_ns / per_iter_ns).max(1) as usize;
    // Keep at least ~4 chunks per worker for load balance, but never force
    // chunks below 1 iteration.
    let balance_cap = n.div_ceil(4 * nthreads).max(1);
    ideal.min(balance_cap).min(n.max(1))
}

fn fixed_size_plan(prefix: usize, n: usize, size: usize) -> ChunkPlan {
    let size = size.max(1);
    let mut chunks = Vec::with_capacity((n - prefix).div_ceil(size));
    let mut start = prefix;
    while start < n {
        let end = (start + size).min(n);
        chunks.push(start..end);
        start = end;
    }
    ChunkPlan {
        prefix_done: prefix,
        chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_probe(_: Range<usize>) -> Duration {
        panic!("this policy must not probe")
    }

    /// The invariant every plan must satisfy: probe prefix + chunks tile
    /// 0..n exactly, in order, without gaps or overlap.
    fn assert_tiles(plan: &ChunkPlan, n: usize) {
        let mut next = plan.prefix_done;
        for c in &plan.chunks {
            assert_eq!(c.start, next, "gap or overlap at {next}");
            assert!(c.end > c.start, "empty chunk");
            next = c.end;
        }
        assert_eq!(next, n, "range not fully covered");
    }

    #[test]
    fn static_chunks_tile_exactly() {
        for n in [1usize, 7, 64, 1000, 1001] {
            for size in [1usize, 3, 64, 2000] {
                let plan = ChunkPolicy::Static { size }.plan(n, 4, &mut no_probe);
                assert_tiles(&plan, n);
                for c in &plan.chunks {
                    assert!(c.end - c.start <= size);
                }
            }
        }
    }

    #[test]
    fn num_chunks_split_is_even() {
        let plan = ChunkPolicy::NumChunks { chunks: 4 }.plan(100, 4, &mut no_probe);
        assert_tiles(&plan, 100);
        assert_eq!(plan.chunks.len(), 4);
        assert!(plan.chunks.iter().all(|c| c.len() == 25));
    }

    #[test]
    fn num_chunks_never_exceeds_n() {
        let plan = ChunkPolicy::NumChunks { chunks: 16 }.plan(5, 8, &mut no_probe);
        assert_tiles(&plan, 5);
        assert!(plan.chunks.len() <= 5);
    }

    #[test]
    fn guided_decreases_and_tiles() {
        let plan = ChunkPolicy::Guided { min: 8 }.plan(10_000, 4, &mut no_probe);
        assert_tiles(&plan, 10_000);
        let sizes: Vec<usize> = plan.chunks.iter().map(|c| c.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1] || w[1] >= 8));
        assert!(*sizes.last().unwrap() >= 1);
    }

    #[test]
    fn auto_probes_and_sizes_to_target() {
        // Pretend every iteration costs 1µs: a 200µs target should yield
        // chunks of ~200 iterations (subject to the balance cap).
        let mut probed = Vec::new();
        let plan = ChunkPolicy::Auto {
            target: Duration::from_micros(200),
        }
        .plan(100_000, 4, &mut |r| {
            probed.push(r.clone());
            Duration::from_micros(r.len() as u64)
        });
        assert_eq!(probed.len(), 1);
        assert_tiles(&plan, 100_000);
        let first = plan.chunks.first().unwrap().len();
        assert!((100..=400).contains(&first), "chunk size {first}");
    }

    #[test]
    fn auto_never_probes_entire_range_when_large() {
        let plan = ChunkPolicy::Auto {
            target: Duration::from_micros(200),
        }
        .plan(1000, 2, &mut |r| {
            assert!(r.len() < 1000);
            Duration::from_nanos(r.len() as u64)
        });
        assert_tiles(&plan, 1000);
    }

    #[test]
    fn persistent_first_loop_calibrates() {
        let handle = PersistentChunker::new();
        assert!(handle.calibrated_target().is_none());
        let _ = ChunkPolicy::PersistentAuto(handle.clone()).plan(100_000, 4, &mut |r| {
            Duration::from_micros(r.len() as u64) // 1µs/iter
        });
        let target = handle.calibrated_target().expect("calibrated");
        assert!(target > Duration::ZERO);
    }

    #[test]
    fn persistent_dependent_loop_matches_duration_not_size() {
        let handle = PersistentChunker::with_target(Duration::from_micros(100));
        // First loop: 1µs/iter -> ~100-iteration chunks, target ≈ 100µs.
        let plan1 = ChunkPolicy::PersistentAuto(handle.clone())
            .plan(100_000, 2, &mut |r| Duration::from_micros(r.len() as u64));
        // Second loop: 4µs/iter -> chunks should be ~4x smaller so that the
        // *duration* matches (Fig 12b: same time, different sizes).
        let plan2 = ChunkPolicy::PersistentAuto(handle.clone()).plan(100_000, 2, &mut |r| {
            Duration::from_micros(4 * r.len() as u64)
        });
        let s1 = plan1.chunks.first().unwrap().len() as f64;
        let s2 = plan2.chunks.first().unwrap().len() as f64;
        let ratio = s1 / s2;
        assert!(
            (2.0..=8.0).contains(&ratio),
            "expected ~4x smaller chunks, got ratio {ratio} ({s1} vs {s2})"
        );
    }

    #[test]
    fn persistent_reset_recalibrates() {
        let handle = PersistentChunker::new();
        let _ = ChunkPolicy::PersistentAuto(handle.clone())
            .plan(10_000, 2, &mut |r| Duration::from_micros(r.len() as u64));
        assert!(handle.calibrated_target().is_some());
        handle.reset();
        assert!(handle.calibrated_target().is_none());
    }

    #[test]
    fn feedback_ewma_converges_on_uniform_cost() {
        let fb = GranularityFeedback::new();
        let k: Arc<str> = Arc::from("kern");
        assert!(fb.cost("kern", 7).is_none());
        for _ in 0..10 {
            fb.record(&k, 7, 100, 100_000); // 1µs per element
        }
        let c = fb.cost("kern", 7).expect("measured");
        assert_eq!(c.samples, 10);
        assert!((c.ewma_ns_per_elem - 1000.0).abs() < 1e-9);
        // Different set id is a different entry.
        assert!(fb.cost("kern", 8).is_none());
    }

    #[test]
    fn feedback_smooths_noise_but_snaps_on_phase_change() {
        let fb = GranularityFeedback::new();
        let k: Arc<str> = Arc::from("kern");
        fb.record(&k, 1, 1000, 1_000_000); // 1µs
        fb.record(&k, 1, 1000, 1_500_000); // +50% noise: smoothed
        let c = fb.cost("kern", 1).unwrap();
        assert!((c.ewma_ns_per_elem - 1125.0).abs() < 1e-9, "EWMA step");
        // >2x jump: phase change, snap to the sample immediately.
        fb.record(&k, 1, 1000, 8_000_000);
        let c = fb.cost("kern", 1).unwrap();
        assert_eq!(c.ewma_ns_per_elem, 8000.0, "snap on phase change");
        fb.reset();
        assert!(fb.cost("kern", 1).is_none());
    }

    #[test]
    fn feedback_ignores_empty_samples_and_shares_clones() {
        let fb = GranularityFeedback::with_clock(Clock::fake());
        assert!(fb.clock().is_fake());
        let k: Arc<str> = Arc::from("k");
        fb.record(&k, 3, 0, 100);
        assert!(fb.cost("k", 3).is_none(), "zero elements carry no cost");
        let clone = fb.clone();
        clone.record(&k, 3, 10, 10_000);
        assert_eq!(fb.cost("k", 3).unwrap().samples, 1, "clones share state");
        assert_eq!(fb.snapshot().len(), 1);
    }

    /// Regression for the stale-estimate bug: a kernel whose cost collapses
    /// below clock resolution (elapsed_ns == 0 on a coarse fake clock) used
    /// to have its samples silently dropped, freezing the old expensive
    /// EWMA forever. The sample is now floored at 1 ns, so the estimate
    /// snaps down and granularity can converge.
    #[test]
    fn feedback_sub_resolution_samples_pull_the_estimate_down() {
        let fb = GranularityFeedback::with_clock(Clock::fake());
        let k: Arc<str> = Arc::from("kern");
        // Phase 1: an expensive kernel, 1µs per element.
        fb.record(&k, 9, 1000, 1_000_000);
        assert_eq!(fb.cost("kern", 9).unwrap().ewma_ns_per_elem, 1000.0);
        // Phase 2: the kernel becomes so cheap the whole chunk measures
        // 0 ns. Pre-fix this returned early and the estimate stayed 1000.
        fb.record(&k, 9, 1000, 0);
        let c = fb.cost("kern", 9).expect("sample was not dropped");
        assert_eq!(c.samples, 2, "sub-resolution sample must be folded in");
        assert!(
            c.ewma_ns_per_elem < 1.0,
            "estimate must snap down toward the 1 ns floor, got {}",
            c.ewma_ns_per_elem
        );
    }

    #[test]
    fn rank_tagged_handles_attribute_busy_time_and_costs() {
        let fb = GranularityFeedback::with_clock(Clock::fake());
        let k: Arc<str> = Arc::from("kern");
        let r0 = fb.for_rank(0);
        let r1 = fb.for_rank(1);
        assert_eq!(r0.rank(), Some(0));
        assert_eq!(fb.rank(), None);

        // Rank 0 is fast (100 ns/elem), rank 1 slow (900 ns/elem).
        r0.record(&k, 5, 100, 10_000);
        r1.record(&k, 5, 100, 90_000);

        // Busy time is attributed per rank — the imbalance signal.
        assert_eq!(fb.rank_busy_ns(0), 10_000);
        assert_eq!(fb.rank_busy_ns(1), 90_000);
        assert_eq!(fb.rank_busy_ns(2), 0, "unmeasured rank is zero");

        // Each rank's cost view is its own measurement, not the mixture;
        // the untagged view sees the shared (mixed) table.
        assert_eq!(r0.cost("kern", 5).unwrap().ewma_ns_per_elem, 100.0);
        assert_eq!(r1.cost("kern", 5).unwrap().ewma_ns_per_elem, 900.0);
        let mixed = fb.cost("kern", 5).unwrap();
        assert_eq!(mixed.samples, 2, "shared table still folds every sample");

        // A tagged rank with no private entry falls back to the shared one.
        let r2 = fb.for_rank(2);
        assert_eq!(r2.cost("kern", 5).unwrap(), mixed);

        // reset_rank_busy zeroes the window but keeps the cost tables.
        fb.reset_rank_busy();
        assert_eq!(fb.rank_busy_ns(1), 0);
        assert_eq!(r1.cost("kern", 5).unwrap().ewma_ns_per_elem, 900.0);

        // forget_set drops the signature everywhere.
        fb.forget_set(5);
        assert!(fb.cost("kern", 5).is_none());
        assert!(r1.cost("kern", 5).is_none());
    }

    #[test]
    fn persistent_chunker_persists_feedback_and_target() {
        let h = PersistentChunker::with_target(Duration::from_micros(100));
        assert_eq!(h.target_ns(), 100_000, "initial target before calibration");
        h.calibrate_once(250_000);
        assert_eq!(h.target_ns(), 250_000);
        h.calibrate_once(999); // first-loop-wins: ignored
        assert_eq!(h.target_ns(), 250_000);
        let k: Arc<str> = Arc::from("adt");
        h.feedback().record(&k, 3, 10, 20_000);
        // A clone (e.g. the same handle installed in another rank's config)
        // sees the same cost table.
        assert_eq!(
            h.clone()
                .feedback()
                .cost("adt", 3)
                .unwrap()
                .ewma_ns_per_elem,
            2000.0
        );
        h.reset();
        assert_eq!(h.target_ns(), 100_000, "reset forgets the calibration");
        assert!(
            h.feedback().cost("adt", 3).is_none(),
            "reset forgets the measured costs too"
        );
    }

    #[test]
    fn empty_range_yields_no_chunks() {
        let plan = ChunkPolicy::default().plan(0, 4, &mut no_probe);
        assert!(plan.chunks.is_empty());
        assert_eq!(plan.prefix_done, 0);
    }

    #[test]
    fn single_iteration_range() {
        let plan = ChunkPolicy::Auto {
            target: DEFAULT_CHUNK_TARGET,
        }
        .plan(1, 8, &mut |r| {
            assert_eq!(r, 0..1);
            Duration::from_nanos(10)
        });
        // Probe consumed the whole range.
        assert_eq!(plan.prefix_done, 1);
        assert!(plan.chunks.is_empty());
    }
}
