//! Chunk-size control (paper §IV-B, Fig 12).
//!
//! "In order to control the overheads introduced by the creation of each
//! task, it is important to control the amount of work performed by each
//! task. This amount of work is known as the chunk size."
//!
//! Besides the classic strategies (static, even split, guided), this module
//! implements the two measurement-driven policies from the paper:
//!
//! * [`ChunkPolicy::Auto`] — HPX's `auto_chunk_size`: time a small probe of
//!   real iterations, then size chunks so each takes approximately a target
//!   duration.
//! * [`PersistentChunker`] — the paper's **new** `persistent_auto_chunk_size`
//!   policy: the *first* loop that runs under a given handle calibrates the
//!   per-chunk duration; every *subsequent* loop (typically a different loop
//!   body with a different per-iteration cost) measures its own probe and
//!   picks a chunk size hitting the *same duration*. Dependent loops thus
//!   get chunks of equal execution time but different sizes (Fig 12b),
//!   minimizing the waiting time between interleaved loops.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default per-chunk execution-time target for the measuring chunkers.
pub const DEFAULT_CHUNK_TARGET: Duration = Duration::from_micros(200);

/// Fraction of the iteration space used as the timing probe (1%, like HPX's
/// `auto_chunk_size`), bounded to keep probes cheap.
const PROBE_DIVISOR: usize = 100;
const PROBE_MAX: usize = 4096;

/// Work-division strategy for the parallel algorithms.
#[derive(Debug, Clone)]
pub enum ChunkPolicy {
    /// Fixed chunk size (OpenMP `schedule(dynamic, size)` — scheduling is
    /// always dynamic here because chunks are stealable tasks).
    Static {
        /// Iterations per chunk.
        size: usize,
    },
    /// Split the range into exactly `chunks` nearly-equal pieces (OpenMP
    /// `schedule(static)` when `chunks == nthreads` — the fork-join
    /// baseline's behaviour).
    NumChunks {
        /// Total number of chunks.
        chunks: usize,
    },
    /// Exponentially decreasing chunk sizes, never below `min` (OpenMP
    /// `schedule(guided)`).
    Guided {
        /// Smallest chunk size.
        min: usize,
    },
    /// Measure a probe, then size chunks to take ~`target` each (HPX
    /// `auto_chunk_size`).
    Auto {
        /// Per-chunk execution-time target.
        target: Duration,
    },
    /// The paper's `persistent_auto_chunk_size` (see module docs).
    PersistentAuto(PersistentChunker),
}

impl Default for ChunkPolicy {
    fn default() -> Self {
        ChunkPolicy::Auto {
            target: DEFAULT_CHUNK_TARGET,
        }
    }
}

/// Shared calibration state for [`ChunkPolicy::PersistentAuto`]. Clone the
/// handle into every loop that should share the same per-chunk duration.
#[derive(Debug, Clone)]
pub struct PersistentChunker {
    inner: Arc<PersistentState>,
}

#[derive(Debug)]
struct PersistentState {
    /// Calibrated per-chunk duration in nanoseconds; 0 = not yet calibrated.
    target_ns: AtomicU64,
    /// Target used by the calibrating (first) loop.
    initial_target_ns: u64,
}

impl PersistentChunker {
    /// Creates an uncalibrated handle with the default first-loop target.
    pub fn new() -> Self {
        Self::with_target(DEFAULT_CHUNK_TARGET)
    }

    /// Creates an uncalibrated handle; the first loop aims for `target` per
    /// chunk and locks in whatever duration it actually achieves.
    pub fn with_target(target: Duration) -> Self {
        PersistentChunker {
            inner: Arc::new(PersistentState {
                target_ns: AtomicU64::new(0),
                initial_target_ns: target.as_nanos().max(1) as u64,
            }),
        }
    }

    /// The calibrated per-chunk duration, if the first loop has run.
    pub fn calibrated_target(&self) -> Option<Duration> {
        match self.inner.target_ns.load(Ordering::Acquire) {
            0 => None,
            ns => Some(Duration::from_nanos(ns)),
        }
    }

    /// Forgets the calibration; the next loop becomes the "first loop"
    /// again. Useful when the workload changes phase.
    pub fn reset(&self) {
        self.inner.target_ns.store(0, Ordering::Release);
    }

    fn record_if_first(&self, chunk_ns: u64) {
        let _ = self.inner.target_ns.compare_exchange(
            0,
            chunk_ns.max(1),
            Ordering::AcqRel,
            Ordering::Relaxed,
        );
    }
}

impl Default for PersistentChunker {
    fn default() -> Self {
        Self::new()
    }
}

/// The outcome of planning: iterations `0..prefix_done` were already
/// executed (by the timing probe); `chunks` tile `prefix_done..n` exactly.
#[derive(Debug)]
pub(crate) struct ChunkPlan {
    pub prefix_done: usize,
    pub chunks: Vec<Range<usize>>,
}

impl ChunkPolicy {
    /// Builds the chunk plan for an `n`-iteration loop on `nthreads`
    /// workers. `probe` runs real loop iterations and returns how long they
    /// took; it is invoked only by the measuring policies.
    pub(crate) fn plan(
        &self,
        n: usize,
        nthreads: usize,
        probe: &mut dyn FnMut(Range<usize>) -> Duration,
    ) -> ChunkPlan {
        let nthreads = nthreads.max(1);
        if n == 0 {
            return ChunkPlan {
                prefix_done: 0,
                chunks: Vec::new(),
            };
        }
        match self {
            ChunkPolicy::Static { size } => fixed_size_plan(0, n, (*size).max(1)),
            ChunkPolicy::NumChunks { chunks } => {
                let chunks = (*chunks).clamp(1, n);
                let size = n.div_ceil(chunks);
                fixed_size_plan(0, n, size)
            }
            ChunkPolicy::Guided { min } => {
                let min = (*min).max(1);
                let mut out = Vec::new();
                let mut start = 0usize;
                while start < n {
                    let remaining = n - start;
                    let size = (remaining / (2 * nthreads)).max(min).min(remaining);
                    out.push(start..start + size);
                    start += size;
                }
                ChunkPlan {
                    prefix_done: 0,
                    chunks: out,
                }
            }
            ChunkPolicy::Auto { target } => {
                let (prefix, per_iter_ns) = run_probe(n, probe);
                let size = size_for_target(target.as_nanos() as u64, per_iter_ns, n, nthreads);
                fixed_size_plan(prefix, n, size)
            }
            ChunkPolicy::PersistentAuto(handle) => {
                let (prefix, per_iter_ns) = run_probe(n, probe);
                let target_ns = match handle.inner.target_ns.load(Ordering::Acquire) {
                    0 => handle.inner.initial_target_ns,
                    ns => ns,
                };
                let size = size_for_target(target_ns, per_iter_ns, n, nthreads);
                // First loop under this handle: lock in the duration the
                // auto chunker *aimed for* — i.e. ignore the per-loop
                // load-balance cap, which would otherwise make a small
                // first loop poison every dependent loop with tiny chunks.
                let uncapped = (target_ns / per_iter_ns).max(1).min(n as u64);
                handle.record_if_first(uncapped * per_iter_ns);
                fixed_size_plan(prefix, n, size)
            }
        }
    }

    /// True if this policy runs a timing probe before parallel execution.
    pub fn is_measuring(&self) -> bool {
        matches!(
            self,
            ChunkPolicy::Auto { .. } | ChunkPolicy::PersistentAuto(_)
        )
    }
}

/// Executes the timing probe: ~1% of iterations, at least 1, at most
/// `PROBE_MAX`, never the entire range (unless n == 1). Returns
/// (iterations consumed, smoothed per-iteration nanoseconds ≥ 1).
fn run_probe(n: usize, probe: &mut dyn FnMut(Range<usize>) -> Duration) -> (usize, u64) {
    let len = (n / PROBE_DIVISOR).clamp(1, PROBE_MAX).min(n);
    let dur = probe(0..len);
    let per_iter = (dur.as_nanos() as u64 / len as u64).max(1);
    (len, per_iter)
}

fn size_for_target(target_ns: u64, per_iter_ns: u64, n: usize, nthreads: usize) -> usize {
    let ideal = (target_ns / per_iter_ns).max(1) as usize;
    // Keep at least ~4 chunks per worker for load balance, but never force
    // chunks below 1 iteration.
    let balance_cap = n.div_ceil(4 * nthreads).max(1);
    ideal.min(balance_cap).min(n.max(1))
}

fn fixed_size_plan(prefix: usize, n: usize, size: usize) -> ChunkPlan {
    let size = size.max(1);
    let mut chunks = Vec::with_capacity((n - prefix).div_ceil(size));
    let mut start = prefix;
    while start < n {
        let end = (start + size).min(n);
        chunks.push(start..end);
        start = end;
    }
    ChunkPlan {
        prefix_done: prefix,
        chunks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_probe(_: Range<usize>) -> Duration {
        panic!("this policy must not probe")
    }

    /// The invariant every plan must satisfy: probe prefix + chunks tile
    /// 0..n exactly, in order, without gaps or overlap.
    fn assert_tiles(plan: &ChunkPlan, n: usize) {
        let mut next = plan.prefix_done;
        for c in &plan.chunks {
            assert_eq!(c.start, next, "gap or overlap at {next}");
            assert!(c.end > c.start, "empty chunk");
            next = c.end;
        }
        assert_eq!(next, n, "range not fully covered");
    }

    #[test]
    fn static_chunks_tile_exactly() {
        for n in [1usize, 7, 64, 1000, 1001] {
            for size in [1usize, 3, 64, 2000] {
                let plan = ChunkPolicy::Static { size }.plan(n, 4, &mut no_probe);
                assert_tiles(&plan, n);
                for c in &plan.chunks {
                    assert!(c.end - c.start <= size);
                }
            }
        }
    }

    #[test]
    fn num_chunks_split_is_even() {
        let plan = ChunkPolicy::NumChunks { chunks: 4 }.plan(100, 4, &mut no_probe);
        assert_tiles(&plan, 100);
        assert_eq!(plan.chunks.len(), 4);
        assert!(plan.chunks.iter().all(|c| c.len() == 25));
    }

    #[test]
    fn num_chunks_never_exceeds_n() {
        let plan = ChunkPolicy::NumChunks { chunks: 16 }.plan(5, 8, &mut no_probe);
        assert_tiles(&plan, 5);
        assert!(plan.chunks.len() <= 5);
    }

    #[test]
    fn guided_decreases_and_tiles() {
        let plan = ChunkPolicy::Guided { min: 8 }.plan(10_000, 4, &mut no_probe);
        assert_tiles(&plan, 10_000);
        let sizes: Vec<usize> = plan.chunks.iter().map(|c| c.len()).collect();
        assert!(sizes.windows(2).all(|w| w[0] >= w[1] || w[1] >= 8));
        assert!(*sizes.last().unwrap() >= 1);
    }

    #[test]
    fn auto_probes_and_sizes_to_target() {
        // Pretend every iteration costs 1µs: a 200µs target should yield
        // chunks of ~200 iterations (subject to the balance cap).
        let mut probed = Vec::new();
        let plan = ChunkPolicy::Auto {
            target: Duration::from_micros(200),
        }
        .plan(100_000, 4, &mut |r| {
            probed.push(r.clone());
            Duration::from_micros(r.len() as u64)
        });
        assert_eq!(probed.len(), 1);
        assert_tiles(&plan, 100_000);
        let first = plan.chunks.first().unwrap().len();
        assert!((100..=400).contains(&first), "chunk size {first}");
    }

    #[test]
    fn auto_never_probes_entire_range_when_large() {
        let plan = ChunkPolicy::Auto {
            target: Duration::from_micros(200),
        }
        .plan(1000, 2, &mut |r| {
            assert!(r.len() < 1000);
            Duration::from_nanos(r.len() as u64)
        });
        assert_tiles(&plan, 1000);
    }

    #[test]
    fn persistent_first_loop_calibrates() {
        let handle = PersistentChunker::new();
        assert!(handle.calibrated_target().is_none());
        let _ = ChunkPolicy::PersistentAuto(handle.clone()).plan(100_000, 4, &mut |r| {
            Duration::from_micros(r.len() as u64) // 1µs/iter
        });
        let target = handle.calibrated_target().expect("calibrated");
        assert!(target > Duration::ZERO);
    }

    #[test]
    fn persistent_dependent_loop_matches_duration_not_size() {
        let handle = PersistentChunker::with_target(Duration::from_micros(100));
        // First loop: 1µs/iter -> ~100-iteration chunks, target ≈ 100µs.
        let plan1 = ChunkPolicy::PersistentAuto(handle.clone())
            .plan(100_000, 2, &mut |r| Duration::from_micros(r.len() as u64));
        // Second loop: 4µs/iter -> chunks should be ~4x smaller so that the
        // *duration* matches (Fig 12b: same time, different sizes).
        let plan2 = ChunkPolicy::PersistentAuto(handle.clone()).plan(100_000, 2, &mut |r| {
            Duration::from_micros(4 * r.len() as u64)
        });
        let s1 = plan1.chunks.first().unwrap().len() as f64;
        let s2 = plan2.chunks.first().unwrap().len() as f64;
        let ratio = s1 / s2;
        assert!(
            (2.0..=8.0).contains(&ratio),
            "expected ~4x smaller chunks, got ratio {ratio} ({s1} vs {s2})"
        );
    }

    #[test]
    fn persistent_reset_recalibrates() {
        let handle = PersistentChunker::new();
        let _ = ChunkPolicy::PersistentAuto(handle.clone())
            .plan(10_000, 2, &mut |r| Duration::from_micros(r.len() as u64));
        assert!(handle.calibrated_target().is_some());
        handle.reset();
        assert!(handle.calibrated_target().is_none());
    }

    #[test]
    fn empty_range_yields_no_chunks() {
        let plan = ChunkPolicy::default().plan(0, 4, &mut no_probe);
        assert!(plan.chunks.is_empty());
        assert_eq!(plan.prefix_done, 0);
    }

    #[test]
    fn single_iteration_range() {
        let plan = ChunkPolicy::Auto {
            target: DEFAULT_CHUNK_TARGET,
        }
        .plan(1, 8, &mut |r| {
            assert_eq!(r, 0..1);
            Duration::from_nanos(10)
        });
        // Probe consumed the whole range.
        assert_eq!(plan.prefix_done, 1);
        assert!(plan.chunks.is_empty());
    }
}
