//! Scheduler instrumentation.
//!
//! Every worker owns a cache-padded counter block; [`Runtime::stats`]
//! aggregates them into a [`RuntimeStats`] snapshot. The counters are
//! maintained with relaxed atomics — they are diagnostics, not
//! synchronization.
//!
//! The module additionally hosts a process-wide registry of **named
//! counters** ([`counter`], [`counter_value`], [`counters`]): cheap
//! relaxed `AtomicU64`s that higher layers (the OP2 loop-spec cache, the
//! implicit halo-exchange engine) bump and benches report. Names are
//! dot-namespaced by convention (`op2.spec_cache.hits`).
//!
//! [`Runtime::stats`]: crate::Runtime::stats

use crossbeam::utils::CachePadded;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Per-worker counters (cache padded to avoid false sharing).
#[derive(Default)]
pub(crate) struct WorkerStats {
    /// Tasks executed by the worker loop.
    pub executed: AtomicU64,
    /// Tasks executed while helping inside a blocking wait.
    pub helped: AtomicU64,
    /// Successful steals from sibling workers.
    pub steals: AtomicU64,
    /// Times the worker went to sleep on the condvar.
    pub parks: AtomicU64,
    /// Tasks that panicked (panics are caught and counted).
    pub panics: AtomicU64,
}

pub(crate) type PaddedWorkerStats = CachePadded<WorkerStats>;

/// A point-in-time aggregate of scheduler activity.
///
/// ```
/// let rt = hpx_rt::Runtime::new(2);
/// rt.spawn(|| {});
/// rt.wait_idle();
/// let s = rt.stats();
/// assert!(s.tasks_executed >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Total tasks executed (worker loop + help execution).
    pub tasks_executed: u64,
    /// Tasks executed while a thread was blocked waiting (help-first policy).
    pub tasks_helped: u64,
    /// Successful steals from sibling deques.
    pub steals: u64,
    /// Worker parks (sleeps on the idle condvar).
    pub parks: u64,
    /// Tasks whose closure panicked.
    pub task_panics: u64,
}

impl RuntimeStats {
    pub(crate) fn aggregate(workers: &[PaddedWorkerStats]) -> Self {
        let mut out = RuntimeStats {
            workers: workers.len(),
            ..Default::default()
        };
        for w in workers {
            out.tasks_executed += w.executed.load(Ordering::Relaxed);
            out.tasks_helped += w.helped.load(Ordering::Relaxed);
            out.steals += w.steals.load(Ordering::Relaxed);
            out.parks += w.parks.load(Ordering::Relaxed);
            out.task_panics += w.panics.load(Ordering::Relaxed);
        }
        out.tasks_executed += out.tasks_helped;
        out
    }
}

// ---------------------------------------------------------------------------
// Named counters
// ---------------------------------------------------------------------------

fn registry() -> &'static Mutex<BTreeMap<&'static str, Arc<AtomicU64>>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

/// Handle to the process-wide named counter `name`, created on first use.
/// Keep the `Arc` around for hot paths; one registry lookup per call
/// otherwise.
///
/// ```
/// let c = hpx_rt::stats::counter("doc.example");
/// c.fetch_add(2, std::sync::atomic::Ordering::Relaxed);
/// assert!(hpx_rt::stats::counter_value("doc.example") >= 2);
/// ```
pub fn counter(name: &'static str) -> Arc<AtomicU64> {
    Arc::clone(registry().lock().entry(name).or_default())
}

/// Expands to a `&'static Arc<AtomicU64>` handle to the named counter,
/// resolved through the registry once and cached in a call-site static —
/// for hot paths that must not re-lock the registry per bump:
///
/// ```
/// use std::sync::atomic::Ordering;
/// hpx_rt::static_counter!("doc.macro_example").fetch_add(1, Ordering::Relaxed);
/// assert!(hpx_rt::stats::counter_value("doc.macro_example") >= 1);
/// ```
#[macro_export]
macro_rules! static_counter {
    ($name:expr) => {{
        static __COUNTER: ::std::sync::OnceLock<::std::sync::Arc<::std::sync::atomic::AtomicU64>> =
            ::std::sync::OnceLock::new();
        __COUNTER.get_or_init(|| $crate::stats::counter($name))
    }};
}

/// Handle to the process-wide named counter `name`, for names composed at
/// runtime (the per-tenant `op2.tenant.<id>.*` namespaces of the solver
/// farm). The registry keys on `&'static str`, so a name unseen before is
/// leaked **once** to promote it; later calls for the same name reuse the
/// promoted key. Use [`counter`] / [`static_counter!`] for names known at
/// compile time, and keep the returned `Arc` around on hot paths — the
/// set of distinct dynamic names must be small and long-lived (tenants),
/// not per-request.
pub fn counter_named(name: &str) -> Arc<AtomicU64> {
    let mut reg = registry().lock();
    if let Some(c) = reg.get(name) {
        return Arc::clone(c);
    }
    let key: &'static str = Box::leak(name.to_owned().into_boxed_str());
    Arc::clone(reg.entry(key).or_default())
}

/// Current value of the named counter (0 if it was never touched).
pub fn counter_value(name: &str) -> u64 {
    registry()
        .lock()
        .get(name)
        .map_or(0, |c| c.load(Ordering::Relaxed))
}

/// Snapshot of every named counter, sorted by name.
pub fn counters() -> Vec<(&'static str, u64)> {
    registry()
        .lock()
        .iter()
        .map(|(k, v)| (*k, v.load(Ordering::Relaxed)))
        .collect()
}

/// A point-in-time capture of the named-counter registry, for **delta**
/// assertions.
///
/// The named counters are process-wide, so under parallel `cargo test`
/// their absolute values depend on which other tests ran first — an
/// assertion like `counter_value("op2.halo.pairs_fired") == 3` is
/// order-dependent and flaky. Take a snapshot before the work under test
/// and assert on [`CounterSnapshot::delta`] instead: the *increase* caused
/// by this test is isolated from everything that ran before it. (Counters
/// bumped concurrently by tests running *at the same time* still bleed in;
/// keep delta assertions on counters only the test's own workload touches,
/// or use `>=` bounds.)
///
/// ```
/// use std::sync::atomic::Ordering;
///
/// let before = hpx_rt::stats::snapshot();
/// hpx_rt::static_counter!("doc.snapshot_example").fetch_add(3, Ordering::Relaxed);
/// assert_eq!(before.delta("doc.snapshot_example"), 3);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CounterSnapshot {
    at: BTreeMap<&'static str, u64>,
}

/// Captures the current value of every named counter (counters created
/// later count from 0).
pub fn snapshot() -> CounterSnapshot {
    CounterSnapshot {
        at: registry()
            .lock()
            .iter()
            .map(|(k, v)| (*k, v.load(Ordering::Relaxed)))
            .collect(),
    }
}

impl CounterSnapshot {
    /// How much the named counter grew since this snapshot was taken
    /// (saturating at 0; a counter unknown at snapshot time counts from 0).
    pub fn delta(&self, name: &str) -> u64 {
        counter_value(name).saturating_sub(self.at.get(name).copied().unwrap_or(0))
    }

    /// The deltas of every counter that grew since the snapshot, sorted by
    /// name — the per-scope view benches print.
    pub fn deltas(&self) -> Vec<(&'static str, u64)> {
        counters()
            .into_iter()
            .filter_map(|(k, v)| {
                let d = v.saturating_sub(self.at.get(k).copied().unwrap_or(0));
                (d > 0).then_some((k, d))
            })
            .collect()
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workers={} executed={} (helped={}) steals={} parks={} panics={}",
            self.workers,
            self.tasks_executed,
            self.tasks_helped,
            self.steals,
            self.parks,
            self.task_panics
        )
    }
}
