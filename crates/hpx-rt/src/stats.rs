//! Scheduler instrumentation.
//!
//! Every worker owns a cache-padded counter block; [`Runtime::stats`]
//! aggregates them into a [`RuntimeStats`] snapshot. The counters are
//! maintained with relaxed atomics — they are diagnostics, not
//! synchronization.
//!
//! [`Runtime::stats`]: crate::Runtime::stats

use crossbeam::utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-worker counters (cache padded to avoid false sharing).
#[derive(Default)]
pub(crate) struct WorkerStats {
    /// Tasks executed by the worker loop.
    pub executed: AtomicU64,
    /// Tasks executed while helping inside a blocking wait.
    pub helped: AtomicU64,
    /// Successful steals from sibling workers.
    pub steals: AtomicU64,
    /// Times the worker went to sleep on the condvar.
    pub parks: AtomicU64,
    /// Tasks that panicked (panics are caught and counted).
    pub panics: AtomicU64,
}

pub(crate) type PaddedWorkerStats = CachePadded<WorkerStats>;

/// A point-in-time aggregate of scheduler activity.
///
/// ```
/// let rt = hpx_rt::Runtime::new(2);
/// rt.spawn(|| {});
/// rt.wait_idle();
/// let s = rt.stats();
/// assert!(s.tasks_executed >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RuntimeStats {
    /// Number of worker threads.
    pub workers: usize,
    /// Total tasks executed (worker loop + help execution).
    pub tasks_executed: u64,
    /// Tasks executed while a thread was blocked waiting (help-first policy).
    pub tasks_helped: u64,
    /// Successful steals from sibling deques.
    pub steals: u64,
    /// Worker parks (sleeps on the idle condvar).
    pub parks: u64,
    /// Tasks whose closure panicked.
    pub task_panics: u64,
}

impl RuntimeStats {
    pub(crate) fn aggregate(workers: &[PaddedWorkerStats]) -> Self {
        let mut out = RuntimeStats {
            workers: workers.len(),
            ..Default::default()
        };
        for w in workers {
            out.tasks_executed += w.executed.load(Ordering::Relaxed);
            out.tasks_helped += w.helped.load(Ordering::Relaxed);
            out.steals += w.steals.load(Ordering::Relaxed);
            out.parks += w.parks.load(Ordering::Relaxed);
            out.task_panics += w.panics.load(Ordering::Relaxed);
        }
        out.tasks_executed += out.tasks_helped;
        out
    }
}

impl std::fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "workers={} executed={} (helped={}) steals={} parks={} panics={}",
            self.workers,
            self.tasks_executed,
            self.tasks_helped,
            self.steals,
            self.parks,
            self.task_panics
        )
    }
}
