//! The unit of work executed by the scheduler.
//!
//! A [`Task`] is a boxed `FnOnce` closure. Tasks are normally `'static`
//! (created by [`Runtime::spawn`](crate::Runtime::spawn)); the parallel
//! algorithms additionally create *borrowing* tasks through
//! [`Task::new_unchecked`], which is sound because those algorithms join on a
//! latch before any borrowed data goes out of scope (the same technique used
//! by structured-concurrency scopes).

/// A schedulable unit of work.
pub(crate) struct Task {
    f: Box<dyn FnOnce() + Send + 'static>,
}

impl Task {
    /// Creates a task from a `'static` closure.
    pub(crate) fn new<F>(f: F) -> Self
    where
        F: FnOnce() + Send + 'static,
    {
        Task { f: Box::new(f) }
    }

    /// Creates a task from a closure that borrows data with lifetime `'a`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that the task has finished running (or was
    /// dropped) before any data borrowed by `f` is invalidated. The parallel
    /// algorithms uphold this by blocking on a completion latch that is
    /// counted down even when the closure panics.
    pub(crate) unsafe fn new_unchecked<'a, F>(f: F) -> Self
    where
        F: FnOnce() + Send + 'a,
    {
        let boxed: Box<dyn FnOnce() + Send + 'a> = Box::new(f);
        // SAFETY: lifetime erasure; contract documented above.
        let boxed: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        Task { f: boxed }
    }

    /// Consumes and runs the task.
    #[inline]
    pub(crate) fn run(self) {
        (self.f)()
    }
}

impl std::fmt::Debug for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Task {{ .. }}")
    }
}
