//! Stress and failure-injection tests for the runtime: nested
//! parallelism, panic propagation through every construct, runtime
//! lifecycle churn, concurrent chunker calibration, and a seeded
//! scheduler-permutation harness for the halo-exchange task pattern
//! (channels + `DepCounter`-gated nodes) used by the sharded driver.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hpx_rt::{
    channel, dataflow, for_each, for_each_async, lco, par, par_task, ready, reduce, schedule_after,
    when_all, ChunkPolicy, DepCounter, PersistentChunker, Runtime, SharedFuture,
};

#[test]
fn nested_parallel_loops_do_not_deadlock_small_pools() {
    // Outer parallel loop whose body runs an inner parallel loop on the
    // same 1-worker pool: only help-first waiting makes this terminate.
    let rt = Runtime::new(1);
    let counter = AtomicUsize::new(0);
    for_each(
        &rt,
        &par().with_chunk(ChunkPolicy::Static { size: 4 }),
        0..16,
        |_| {
            for_each(
                &rt,
                &par().with_chunk(ChunkPolicy::Static { size: 8 }),
                0..64,
                |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                },
            );
        },
    );
    assert_eq!(counter.into_inner(), 16 * 64);
}

#[test]
fn deeply_nested_futures_resolve() {
    let rt = Runtime::new(2);
    // get() inside tasks, 16 levels deep.
    fn nest(rt: &Runtime, depth: usize) -> u64 {
        if depth == 0 {
            return 1;
        }
        let rt2_inner = rt.spawn_future(|| 1u64);
        rt2_inner.get() + depth as u64
    }
    let total = nest(&rt, 16);
    assert_eq!(total, 17);
}

#[test]
#[should_panic(expected = "reduce chunk died")]
fn reduce_panic_propagates() {
    let rt = Runtime::new(2);
    let _ = reduce(
        &rt,
        &par().with_chunk(ChunkPolicy::Static { size: 10 }),
        0..1000,
        0u64,
        |i| {
            if i == 500 {
                panic!("reduce chunk died");
            }
            i as u64
        },
        |a, b| a + b,
    );
}

#[test]
fn runtime_survives_async_loop_panic() {
    let rt = Runtime::new(2);
    let fut = for_each_async(&rt, par_task(), 0..100, |i| {
        if i == 50 {
            panic!("async body died");
        }
    });
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.get()));
    let payload = caught.expect_err("panic must surface through the future");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("(non-string payload)");
    assert!(msg.contains("async body died"), "got: {msg}");
    // The pool remains fully usable. (Loop-chunk panics are captured into
    // the completion future, not counted as unhandled task panics.)
    let v = rt.spawn_future(|| 7u32).get();
    assert_eq!(v, 7);
    assert_eq!(rt.stats().task_panics, 0);
}

#[test]
fn rapid_runtime_lifecycle() {
    for threads in [1usize, 2, 3] {
        for _ in 0..10 {
            let rt = Runtime::new(threads);
            let futs: Vec<_> = (0..16).map(|i| rt.spawn_future(move || i * i)).collect();
            let vals = when_all(futs).get();
            assert_eq!(vals.len(), 16);
            // Drop joins all workers.
        }
    }
}

#[test]
fn two_runtimes_coexist() {
    let a = Runtime::new(2);
    let b = Runtime::new(2);
    let fa = a.spawn_future(|| "a");
    let fb = b.spawn_future(|| "b");
    // Cross-runtime dataflow: inputs from different pools, scheduled on a.
    let joined = dataflow(&a, |(x, y)| format!("{x}{y}"), (fa, fb));
    assert_eq!(joined.get(), "ab");
}

#[test]
fn persistent_chunker_concurrent_calibration_is_single() {
    // Two pools race to calibrate one shared handle; exactly one wins and
    // both loops complete correctly.
    let handle = PersistentChunker::new();
    let chunk = ChunkPolicy::PersistentAuto(handle.clone());
    let policy = par().with_chunk(chunk);
    let counters: Vec<Arc<AtomicUsize>> = (0..2).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let threads: Vec<_> = counters
        .iter()
        .map(|c| {
            let c = Arc::clone(c);
            let policy = policy.clone();
            std::thread::spawn(move || {
                let rt = Runtime::new(2);
                for_each(&rt, &policy, 0..100_000, |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert!(counters
        .iter()
        .all(|c| c.load(Ordering::Relaxed) == 100_000));
    assert!(handle.calibrated_target().is_some());
}

#[test]
fn when_all_of_mixed_ready_and_pending() {
    let rt = Runtime::new(2);
    let mut futs = vec![ready(0u64)];
    futs.extend((1..50u64).map(|i| rt.spawn_future(move || i)));
    let vals = when_all(futs).get();
    assert_eq!(vals, (0..50).collect::<Vec<u64>>());
}

#[test]
fn heavy_dataflow_fan_out_and_in() {
    let rt = Runtime::new(2);
    let src = rt.spawn_future(|| 1u64).share();
    let mids: Vec<_> = (0..100u64)
        .map(|i| {
            let s = src.clone();
            dataflow(&rt, move |(x,)| x + i, (s,))
        })
        .collect();
    let total: u64 = when_all(mids).get().into_iter().sum();
    assert_eq!(total, 100 + (0..100).sum::<u64>());
}

// ---------------------------------------------------------------------------
// Seeded scheduler-permutation harness (the sharded driver's task shape)
// ---------------------------------------------------------------------------

/// xorshift64* — deterministic shuffles, reproducible from the seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
    fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            items.swap(i, j);
        }
    }
}

/// Waits with a deadline so a deadlock fails the test instead of hanging
/// the whole suite.
fn wait_or_deadlock(futs: &[SharedFuture<()>], context: &str) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(60);
    for (i, f) in futs.iter().enumerate() {
        while !f.is_ready() {
            assert!(
                std::time::Instant::now() < deadline,
                "{context}: node {i} never completed (deadlock or lost wakeup)"
            );
            std::thread::sleep(std::time::Duration::from_micros(200));
        }
        f.wait();
    }
}

/// The sharded driver's halo-exchange pattern under permuted wake orders:
/// R ranks exchange D values per round over one-shot channels for several
/// chained rounds — send nodes gated on the producing rank's previous
/// consumer, receive nodes gated on their send (reactive `try_recv`, the
/// non-blocking discipline `op2-core::locality` uses), consumers joining a
/// rank's receives. Round-0 producers fire in a different seeded
/// permutation each replay, from two racing threads, on pools of 1-3
/// workers. Every replay must drain completely with exact payload sums —
/// no deadlock, no lost wakeup, no double delivery (a one-shot channel
/// would panic).
#[test]
fn halo_exchange_pattern_survives_seeded_wake_permutations() {
    const RANKS: usize = 4;
    const DATS: usize = 2;
    const ROUNDS: usize = 3;
    for seed in 0..24u64 {
        let mut rng = Rng::new(0xEC4A_0DE5 ^ seed.wrapping_mul(0xA076_1D64_78BD_642F));
        let rt = Runtime::new(1 + (seed % 3) as usize);
        let received = Arc::new(AtomicUsize::new(0));
        let payload_sum = Arc::new(AtomicUsize::new(0));

        // Round-0 producers: one manually-fired trigger per (rank, dat).
        let mut triggers = Vec::new();
        let mut producer_futs: Vec<Vec<SharedFuture<()>>> = vec![Vec::new(); RANKS];
        for futs in &mut producer_futs {
            for _ in 0..DATS {
                let (promise, fut) = channel::<()>();
                futs.push(fut.share());
                triggers.push(promise);
            }
        }

        // Chained rounds: every rank sends to every other rank.
        let mut consumer_futs: Vec<SharedFuture<()>> = Vec::new();
        let mut prev: Vec<Vec<SharedFuture<()>>> = producer_futs;
        for round in 0..ROUNDS {
            let mut next: Vec<Vec<SharedFuture<()>>> = vec![Vec::new(); RANKS];
            for (dst, consumers) in next.iter_mut().enumerate() {
                let mut recvs = Vec::new();
                for (src, src_prev) in prev.iter().enumerate() {
                    if src == dst {
                        continue;
                    }
                    for d in 0..DATS {
                        let (tx, rx) = lco::oneshot::<usize>();
                        let value = round * 1000 + src * 10 + d;
                        let send_done =
                            schedule_after(&rt, src_prev, move || tx.send(value).unwrap());
                        let sum = Arc::clone(&payload_sum);
                        let count = Arc::clone(&received);
                        let recv_done =
                            schedule_after(&rt, std::slice::from_ref(&send_done), move || {
                                let v = rx.try_recv().expect("sender done, channel empty").unwrap();
                                sum.fetch_add(v, Ordering::Relaxed);
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        recvs.push(recv_done);
                    }
                }
                let consumer = schedule_after(&rt, &recvs, || ());
                consumers.push(consumer.clone());
                consumer_futs.push(consumer);
            }
            prev = next;
        }

        // Fire the round-0 triggers in a seeded permutation, racing two
        // threads over the halves of the shuffled order.
        rng.shuffle(&mut triggers);
        let mid = triggers.len() / 2;
        let tail: Vec<_> = triggers.split_off(mid);
        let t = std::thread::spawn(move || {
            for p in tail {
                p.set_value(());
                std::thread::yield_now();
            }
        });
        for p in triggers {
            p.set_value(());
        }
        t.join().unwrap();

        wait_or_deadlock(&consumer_futs, &format!("seed {seed}"));
        let expected_msgs = ROUNDS * RANKS * (RANKS - 1) * DATS;
        assert_eq!(
            received.load(Ordering::Relaxed),
            expected_msgs,
            "seed {seed}"
        );
        let expected_sum: usize = (0..ROUNDS)
            .map(|round| {
                (0..RANKS)
                    .flat_map(|src| (0..DATS).map(move |d| round * 1000 + src * 10 + d))
                    .sum::<usize>()
                    * (RANKS - 1)
            })
            .sum();
        assert_eq!(
            payload_sum.load(Ordering::Relaxed),
            expected_sum,
            "seed {seed}"
        );
    }
}

/// `DepCounter` under seeded countdown interleavings: many counters, their
/// countdown operations shuffled together and raced across four threads —
/// every counter must fire exactly once, never early, never twice.
#[test]
fn dep_counter_exact_fire_under_seeded_interleavings() {
    const COUNTERS: usize = 32;
    const COUNT: usize = 8;
    for seed in 0..16u64 {
        let mut rng = Rng::new(0xDEC0_47E5 ^ seed.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        let fired: Arc<Vec<AtomicUsize>> =
            Arc::new((0..COUNTERS).map(|_| AtomicUsize::new(0)).collect());
        let counters: Vec<Arc<DepCounter>> = (0..COUNTERS)
            .map(|i| {
                let f = Arc::clone(&fired);
                DepCounter::new(COUNT, move || {
                    f[i].fetch_add(1, Ordering::Relaxed);
                })
            })
            .collect();
        // All countdown ops, shuffled, dealt round-robin to four threads.
        let mut ops: Vec<usize> = (0..COUNTERS).flat_map(|i| [i; COUNT]).collect();
        rng.shuffle(&mut ops);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let my_ops: Vec<usize> = ops.iter().skip(t).step_by(4).copied().collect();
                let counters = counters.clone();
                std::thread::spawn(move || {
                    for i in my_ops {
                        counters[i].count_down();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        for (i, f) in fired.iter().enumerate() {
            assert_eq!(f.load(Ordering::Relaxed), 1, "seed {seed}: counter {i}");
            assert_eq!(counters[i].pending(), 0, "seed {seed}: counter {i}");
        }
    }
}
