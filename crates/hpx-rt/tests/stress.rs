//! Stress and failure-injection tests for the runtime: nested
//! parallelism, panic propagation through every construct, runtime
//! lifecycle churn, and concurrent chunker calibration.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hpx_rt::{
    dataflow, for_each, for_each_async, par, par_task, ready, reduce, when_all, ChunkPolicy,
    PersistentChunker, Runtime,
};

#[test]
fn nested_parallel_loops_do_not_deadlock_small_pools() {
    // Outer parallel loop whose body runs an inner parallel loop on the
    // same 1-worker pool: only help-first waiting makes this terminate.
    let rt = Runtime::new(1);
    let counter = AtomicUsize::new(0);
    for_each(
        &rt,
        &par().with_chunk(ChunkPolicy::Static { size: 4 }),
        0..16,
        |_| {
            for_each(
                &rt,
                &par().with_chunk(ChunkPolicy::Static { size: 8 }),
                0..64,
                |_| {
                    counter.fetch_add(1, Ordering::Relaxed);
                },
            );
        },
    );
    assert_eq!(counter.into_inner(), 16 * 64);
}

#[test]
fn deeply_nested_futures_resolve() {
    let rt = Runtime::new(2);
    // get() inside tasks, 16 levels deep.
    fn nest(rt: &Runtime, depth: usize) -> u64 {
        if depth == 0 {
            return 1;
        }
        let rt2_inner = rt.spawn_future(|| 1u64);
        rt2_inner.get() + depth as u64
    }
    let total = nest(&rt, 16);
    assert_eq!(total, 17);
}

#[test]
#[should_panic(expected = "reduce chunk died")]
fn reduce_panic_propagates() {
    let rt = Runtime::new(2);
    let _ = reduce(
        &rt,
        &par().with_chunk(ChunkPolicy::Static { size: 10 }),
        0..1000,
        0u64,
        |i| {
            if i == 500 {
                panic!("reduce chunk died");
            }
            i as u64
        },
        |a, b| a + b,
    );
}

#[test]
fn runtime_survives_async_loop_panic() {
    let rt = Runtime::new(2);
    let fut = for_each_async(&rt, par_task(), 0..100, |i| {
        if i == 50 {
            panic!("async body died");
        }
    });
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fut.get()));
    let payload = caught.expect_err("panic must surface through the future");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .unwrap_or("(non-string payload)");
    assert!(msg.contains("async body died"), "got: {msg}");
    // The pool remains fully usable. (Loop-chunk panics are captured into
    // the completion future, not counted as unhandled task panics.)
    let v = rt.spawn_future(|| 7u32).get();
    assert_eq!(v, 7);
    assert_eq!(rt.stats().task_panics, 0);
}

#[test]
fn rapid_runtime_lifecycle() {
    for threads in [1usize, 2, 3] {
        for _ in 0..10 {
            let rt = Runtime::new(threads);
            let futs: Vec<_> = (0..16).map(|i| rt.spawn_future(move || i * i)).collect();
            let vals = when_all(futs).get();
            assert_eq!(vals.len(), 16);
            // Drop joins all workers.
        }
    }
}

#[test]
fn two_runtimes_coexist() {
    let a = Runtime::new(2);
    let b = Runtime::new(2);
    let fa = a.spawn_future(|| "a");
    let fb = b.spawn_future(|| "b");
    // Cross-runtime dataflow: inputs from different pools, scheduled on a.
    let joined = dataflow(&a, |(x, y)| format!("{x}{y}"), (fa, fb));
    assert_eq!(joined.get(), "ab");
}

#[test]
fn persistent_chunker_concurrent_calibration_is_single() {
    // Two pools race to calibrate one shared handle; exactly one wins and
    // both loops complete correctly.
    let handle = PersistentChunker::new();
    let chunk = ChunkPolicy::PersistentAuto(handle.clone());
    let policy = par().with_chunk(chunk);
    let counters: Vec<Arc<AtomicUsize>> = (0..2).map(|_| Arc::new(AtomicUsize::new(0))).collect();
    let threads: Vec<_> = counters
        .iter()
        .map(|c| {
            let c = Arc::clone(c);
            let policy = policy.clone();
            std::thread::spawn(move || {
                let rt = Runtime::new(2);
                for_each(&rt, &policy, 0..100_000, |_| {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert!(counters
        .iter()
        .all(|c| c.load(Ordering::Relaxed) == 100_000));
    assert!(handle.calibrated_target().is_some());
}

#[test]
fn when_all_of_mixed_ready_and_pending() {
    let rt = Runtime::new(2);
    let mut futs = vec![ready(0u64)];
    futs.extend((1..50u64).map(|i| rt.spawn_future(move || i)));
    let vals = when_all(futs).get();
    assert_eq!(vals, (0..50).collect::<Vec<u64>>());
}

#[test]
fn heavy_dataflow_fan_out_and_in() {
    let rt = Runtime::new(2);
    let src = rt.spawn_future(|| 1u64).share();
    let mids: Vec<_> = (0..100u64)
        .map(|i| {
            let s = src.clone();
            dataflow(&rt, move |(x,)| x + i, (s,))
        })
        .collect();
    let total: u64 = when_all(mids).get().into_iter().sum();
    assert_eq!(total, 100 + (0..100).sum::<u64>());
}
