//! End-to-end multi-process acceptance: `airfoil --transport process`
//! must spawn one real OS process per rank, rendezvous over Unix-domain
//! sockets, and reproduce the in-process sharded run's residual history.
//!
//! The binary under test is the crate's own `airfoil` CLI (resolved via
//! `CARGO_BIN_EXE_airfoil`); `--rms-out` gives us rank 0's full residual
//! history to diff against the in-process reference.

use std::path::PathBuf;
use std::process::Command;

const RANKS: usize = 4;

fn run_airfoil(transport: &str, rms_out: &PathBuf) {
    let status = Command::new(env!("CARGO_BIN_EXE_airfoil"))
        .args([
            "--cells",
            "800",
            "--iters",
            "8",
            "--threads",
            "2",
            "--ranks",
            &RANKS.to_string(),
            "--print-every",
            "0",
            "--transport",
            transport,
            "--rms-out",
        ])
        .arg(rms_out)
        .status()
        .expect("launch airfoil binary");
    assert!(
        status.success(),
        "airfoil --transport {transport}: {status}"
    );
}

fn read_history(path: &PathBuf) -> Vec<f64> {
    let text = std::fs::read_to_string(path).expect("read rms history");
    text.lines()
        .map(|l| l.trim().parse().expect("rms line"))
        .collect()
}

/// Spawns the 4-process run and the in-process run and compares their
/// residual histories iteration by iteration. The tolerance matches the
/// sharded-vs-serial equivalence tests: both runs shard identically, so
/// only the allreduce combine shape (tree vs star-with-tree-combine, built
/// to be bitwise identical) and scatter timing can differ.
#[test]
fn four_process_run_matches_in_process() {
    let dir = std::env::temp_dir().join(format!("airfoil-proc-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let proc_out = dir.join("rms-process.txt");
    let inproc_out = dir.join("rms-inproc.txt");

    run_airfoil("process", &proc_out);
    run_airfoil("inproc", &inproc_out);

    let got = read_history(&proc_out);
    let expected = read_history(&inproc_out);
    assert_eq!(got.len(), expected.len(), "iteration counts differ");
    assert!(!got.is_empty(), "empty residual history");
    for (i, (a, b)) in got.iter().zip(&expected).enumerate() {
        assert!(
            (a - b).abs() <= 1e-9 * b.abs().max(1.0),
            "iteration {i}: process rms {a} vs in-process {b}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
