//! # airfoil-cfd — the Airfoil benchmark on op2-core
//!
//! The paper's evaluation application (§II-B, §VI): a non-linear 2-D
//! inviscid finite-volume code with five parallel loops per inner step —
//! `save_soln`, `adt_calc`, `res_calc`, `bres_calc`, `update` — ported
//! kernel-for-kernel from the OP2 distribution and driven through
//! `op2-core`'s fork-join (OpenMP-equivalent) or dataflow (HPX-equivalent)
//! backend.
//!
//! ```
//! use airfoil_cfd::{solver, Problem, SolverConfig};
//! use op2_core::{Op2, Op2Config};
//! use op2_mesh::channel_with_bump;
//!
//! let op2 = Op2::new(Op2Config::dataflow(2));
//! let mesh = channel_with_bump(24, 12);
//! let problem = Problem::declare(&op2, &mesh);
//! let result = solver::run(&op2, &problem, &SolverConfig {
//!     niter: 5, window: 4, ..Default::default()
//! });
//! assert_eq!(result.rms_history.len(), 5);
//! assert!(result.rms_history.iter().all(|r| r.is_finite()));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod app;
pub mod constants;
pub mod kernels;
pub mod setup;
pub mod shard;
pub mod simd;
pub mod solver;
pub mod verify;

pub use app::{AirfoilApp, PlainAirfoil, ShardedAirfoil};
pub use setup::Problem;
pub use shard::{run_sharded, RankProblem, RebalanceReport, ShardedProblem};
pub use solver::{run, solve, RunResult, SolverConfig};
