//! The Airfoil time loop (paper Fig 2): five parallel loops per
//! inner step, two inner steps per iteration.
//!
//! Under the dataflow backend no loop blocks the submitting thread: every
//! `par_loop` returns a future-backed handle and the per-dat dependency
//! chains order the work, so `save_soln` of iteration *i+1* can overlap
//! the tail of iteration *i* — the paper's loop interleaving. The `rms`
//! reduction uses a fresh [`Global`] per step, read through
//! [`Global::reduce_async`] futures: residual printing chains off a
//! continuation and the history is collected after the final fence, so
//! the time loop contains **zero blocking reduction reads**.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use op2_core::args::{gbl_inc, inc_via, read, read_via, rw, write};
use op2_core::hpx_rt::SharedFuture;
use op2_core::{Global, LoopHandle, Op2, ReducedFuture};

use crate::kernels;
use crate::setup::Problem;
use op2_mesh::QuadMesh;

/// Solver parameters.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Outer iterations (the original default is 1000).
    pub niter: usize,
    /// Backpressure window: how many outer iterations may be in flight
    /// before the submitter waits on an old one. Keeps the task graph
    /// bounded without serializing (0 = fully synchronous).
    pub window: usize,
    /// Print `rms` every so many iterations (0 = never), mirroring the
    /// original's `iter % 100` report.
    pub print_every: usize,
    /// Artificial per-cell cost skew for load-balancing studies: each
    /// cell burns `skew * |q - q_inf|` extra spin-work units in
    /// `adt_calc` (values are bitwise untouched), so cost tracks the
    /// flow field and concentrates around the bump's disturbed region —
    /// which no uniform static partition can balance. 0.0 (the default)
    /// disables the skew entirely. Honored by the sharded runner only.
    pub skew: f64,
    /// Check for rank imbalance and live-repartition every so many
    /// iterations (0 = never). Honored by the sharded runner only; see
    /// [`crate::shard::ShardedProblem::rebalance`].
    pub rebalance_every: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            niter: 1000,
            window: 16,
            print_every: 0,
            skew: 0.0,
            rebalance_every: 0,
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// `sqrt(rms / ncell)` after the second inner step of each iteration.
    pub rms_history: Vec<f64>,
    /// Wall time of the whole time loop (submission to fence).
    pub elapsed: Duration,
    /// Cells in the mesh.
    pub ncell: usize,
}

impl RunResult {
    /// Final residual.
    pub fn final_rms(&self) -> f64 {
        *self.rms_history.last().expect("at least one iteration")
    }
}

/// The farm-ready entrypoint: declares the problem on `op2` and runs the
/// solver in one call — the shape a
/// [`SolverFarm`](op2_core::farm::SolverFarm) tenant submits, where every
/// job receives a fresh world and must carry its declarations with it:
///
/// ```no_run
/// # let mesh = op2_mesh::channel_with_bump(24, 12);
/// # let farm = op2_core::farm::SolverFarm::new(op2_core::farm::FarmConfig::with_threads(2));
/// # let tenant = farm.register("t", op2_core::farm::Priority::Normal);
/// let cfg = airfoil_cfd::SolverConfig { niter: 10, window: 4, ..Default::default() };
/// let mesh = std::sync::Arc::new(mesh);
/// farm.submit(&tenant, move |op2| {
///     airfoil_cfd::solve(op2, &mesh, &cfg);
/// });
/// ```
pub fn solve(op2: &Op2, mesh: &QuadMesh, cfg: &SolverConfig) -> RunResult {
    let p = Problem::declare(op2, mesh);
    run(op2, &p, cfg)
}

/// Runs `cfg.niter` iterations of the Airfoil pseudo-timestepping loop on
/// an already-declared problem. May be called repeatedly; continues from
/// the current flow state.
pub fn run(op2: &Op2, p: &Problem, cfg: &SolverConfig) -> RunResult {
    let ncell = p.cells.size();
    let qinf = p.qinf;
    let t0 = Instant::now();

    let mut rms_futs: Vec<ReducedFuture<f64>> = Vec::with_capacity(cfg.niter);
    // Backpressure window: only the youngest `window` iterations' handles
    // are retained — the waited prefix is drained as it leaves the window,
    // so handle memory is O(window), not O(niter).
    let mut window_handles: VecDeque<LoopHandle> = VecDeque::with_capacity(cfg.window + 1);
    // Residual printing chains each line behind the previous one, so
    // output stays ordered without a blocking read in the loop.
    let mut last_print: Option<SharedFuture<()>> = None;

    for iter in 1..=cfg.niter {
        // Save the old solution.
        op2.loop_("save_soln", &p.cells)
            .arg(read(&p.p_q))
            .arg(write(&p.p_qold))
            .run(|q: &[f64], qold: &mut [f64]| kernels::save_soln(q, qold));

        let mut last_update: Option<(Global<f64>, LoopHandle)> = None;
        for _k in 0..2 {
            // Local timestep.
            op2.loop_("adt_calc", &p.cells)
                .arg(read_via(&p.p_x, &p.pcell, 0))
                .arg(read_via(&p.p_x, &p.pcell, 1))
                .arg(read_via(&p.p_x, &p.pcell, 2))
                .arg(read_via(&p.p_x, &p.pcell, 3))
                .arg(read(&p.p_q))
                .arg(write(&p.p_adt))
                .run(
                    |x1: &[f64], x2: &[f64], x3: &[f64], x4: &[f64], q: &[f64], adt: &mut [f64]| {
                        kernels::adt_calc(x1, x2, x3, x4, q, adt)
                    },
                );

            // Interior fluxes (indirect increments -> colored plan).
            op2.loop_("res_calc", &p.edges)
                .arg(read_via(&p.p_x, &p.pedge, 0))
                .arg(read_via(&p.p_x, &p.pedge, 1))
                .arg(read_via(&p.p_q, &p.pecell, 0))
                .arg(read_via(&p.p_q, &p.pecell, 1))
                .arg(read_via(&p.p_adt, &p.pecell, 0))
                .arg(read_via(&p.p_adt, &p.pecell, 1))
                .arg(inc_via(&p.p_res, &p.pecell, 0))
                .arg(inc_via(&p.p_res, &p.pecell, 1))
                .run(
                    |x1: &[f64],
                     x2: &[f64],
                     q1: &[f64],
                     q2: &[f64],
                     adt1: &[f64],
                     adt2: &[f64],
                     res1: &mut [f64],
                     res2: &mut [f64]| {
                        kernels::res_calc(x1, x2, q1, q2, adt1, adt2, res1, res2)
                    },
                );

            // Boundary fluxes.
            op2.loop_("bres_calc", &p.bedges)
                .arg(read_via(&p.p_x, &p.pbedge, 0))
                .arg(read_via(&p.p_x, &p.pbedge, 1))
                .arg(read_via(&p.p_q, &p.pbecell, 0))
                .arg(read_via(&p.p_adt, &p.pbecell, 0))
                .arg(inc_via(&p.p_res, &p.pbecell, 0))
                .arg(read(&p.p_bound))
                .run(
                    move |x1: &[f64],
                          x2: &[f64],
                          q1: &[f64],
                          adt1: &[f64],
                          res1: &mut [f64],
                          bound: &[i32]| {
                        kernels::bres_calc(x1, x2, q1, adt1, res1, bound, &qinf)
                    },
                );

            // Update; a fresh rms Global per step keeps the pipeline free
            // of reduction-read barriers.
            let rms = Global::<f64>::sum(1, "rms");
            let h = op2
                .loop_("update", &p.cells)
                .arg(read(&p.p_qold))
                .arg(write(&p.p_q))
                .arg(rw(&p.p_res))
                .arg(read(&p.p_adt))
                .arg(gbl_inc(&rms))
                .run(
                    |qold: &[f64], q: &mut [f64], res: &mut [f64], adt: &[f64], rms: &mut [f64]| {
                        kernels::update(qold, q, res, adt, rms)
                    },
                );
            last_update = Some((rms, h));
        }

        let (rms, handle) = last_update.expect("two inner steps ran");
        // Asynchronous reduction read (paper Fig 9): the value becomes a
        // future gated on the update loop's finalize; nothing blocks here.
        let red = rms.reduce_async(op2);
        if cfg.print_every > 0 && iter % cfg.print_every == 0 {
            let after: Vec<SharedFuture<()>> = last_print.iter().cloned().collect();
            let ncell_f = ncell as f64;
            last_print = Some(red.then_after(&after, move |v| {
                println!(" {iter:6} {:10.5e}", (v[0] / ncell_f).sqrt());
            }));
        }
        rms_futs.push(red);
        window_handles.push_back(handle);

        // Backpressure: bound the number of in-flight iterations, draining
        // the waited handle out of the window.
        if cfg.window > 0 && window_handles.len() > cfg.window {
            window_handles
                .pop_front()
                .expect("window is non-empty")
                .wait();
        }
    }

    // One fence at the end — the only global synchronization of the run
    // (it also covers the tracked reduce and print nodes).
    op2.fence();
    let elapsed = t0.elapsed();

    let rms_history = rms_futs
        .iter()
        .map(|r| (r.get_scalar() / ncell as f64).sqrt())
        .collect();

    RunResult {
        rms_history,
        elapsed,
        ncell,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{max_rel_diff, max_scaled_diff};
    use op2_core::Op2Config;
    use op2_mesh::channel_with_bump;

    fn simulate(config: Op2Config, niter: usize) -> (RunResult, Vec<f64>) {
        let op2 = Op2::new(config);
        let mesh = channel_with_bump(40, 20);
        let p = Problem::declare(&op2, &mesh);
        let r = run(
            &op2,
            &p,
            &SolverConfig {
                niter,
                window: 4,
                print_every: 0,
                ..SolverConfig::default()
            },
        );
        let q = p.p_q.snapshot();
        (r, q)
    }

    #[test]
    fn seq_run_is_finite_and_produces_rms() {
        let (r, q) = simulate(Op2Config::seq(), 30);
        assert_eq!(r.rms_history.len(), 30);
        assert!(r.rms_history.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(q.iter().all(|v| v.is_finite()));
        assert!(r.final_rms() > 0.0, "bump must perturb the flow");
    }

    #[test]
    fn backends_agree_on_physics() {
        let (r_seq, q_seq) = simulate(Op2Config::seq(), 20);
        let (r_fj, q_fj) = simulate(Op2Config::fork_join(2), 20);
        let (r_df, q_df) = simulate(Op2Config::dataflow(2), 20);

        // Indirect increments are applied in a different order per
        // backend (edge order vs color rounds), so results agree to
        // accumulated-rounding precision, not bitwise.
        let d_rms_fj = max_rel_diff(&r_seq.rms_history, &r_fj.rms_history);
        let d_rms_df = max_rel_diff(&r_seq.rms_history, &r_df.rms_history);
        let d_q_fj = max_scaled_diff(&q_seq, &q_fj, 1.0);
        let d_q_df = max_scaled_diff(&q_seq, &q_df, 1.0);
        assert!(d_rms_fj < 1e-7, "fork-join rms deviates: {d_rms_fj:e}");
        assert!(d_rms_df < 1e-7, "dataflow rms deviates: {d_rms_df:e}");
        assert!(d_q_fj < 1e-9, "fork-join q deviates: {d_q_fj:e}");
        assert!(d_q_df < 1e-9, "dataflow q deviates: {d_q_df:e}");
    }

    #[test]
    fn prefetching_does_not_change_results() {
        let (r_plain, q_plain) = simulate(Op2Config::dataflow(2), 15);
        let (r_pf, q_pf) = simulate(Op2Config::dataflow(2).with_prefetch(15), 15);
        assert!(max_rel_diff(&r_plain.rms_history, &r_pf.rms_history) < 1e-7);
        assert!(max_scaled_diff(&q_plain, &q_pf, 1.0) < 1e-9);
    }

    #[test]
    fn persistent_chunker_does_not_change_results() {
        let handle = op2_core::hpx_rt::PersistentChunker::new();
        let (r_a, q_a) = simulate(Op2Config::dataflow_persistent(2, handle), 15);
        let (r_b, q_b) = simulate(Op2Config::seq(), 15);
        assert!(max_rel_diff(&r_a.rms_history, &r_b.rms_history) < 1e-7);
        assert!(max_scaled_diff(&q_a, &q_b, 1.0) < 1e-9);
    }

    #[test]
    fn fully_synchronous_window_matches_pipelined() {
        let op2 = Op2::new(Op2Config::dataflow(2));
        let mesh = channel_with_bump(24, 12);
        let p = Problem::declare(&op2, &mesh);
        let r1 = run(
            &op2,
            &p,
            &SolverConfig {
                niter: 5,
                window: 0,
                print_every: 0,
                ..SolverConfig::default()
            },
        );
        // Continue with a large window on the same state.
        let r2 = run(
            &op2,
            &p,
            &SolverConfig {
                niter: 5,
                window: 64,
                print_every: 0,
                ..SolverConfig::default()
            },
        );
        assert!(r1
            .rms_history
            .iter()
            .chain(&r2.rms_history)
            .all(|v| v.is_finite()));
    }
}
