//! The Airfoil time loop (paper Fig 2): five parallel loops per
//! inner step, two inner steps per iteration.
//!
//! Under the dataflow backend no loop blocks the submitting thread: every
//! `par_loop` returns a future-backed handle and the per-dat dependency
//! chains order the work, so `save_soln` of iteration *i+1* can overlap
//! the tail of iteration *i* — the paper's loop interleaving. The `rms`
//! reduction uses a fresh [`Global`] per step, read through
//! [`Global::reduce_async`] futures: residual printing chains off a
//! continuation and the history is collected after the final fence, so
//! the time loop contains **zero blocking reduction reads**.

use std::time::Duration;

use op2_app::{ExitPolicy, RunConfig};
use op2_core::Op2;

use crate::app::PlainAirfoil;
use crate::setup::Problem;
use op2_mesh::QuadMesh;

/// Solver parameters.
#[derive(Debug, Clone)]
pub struct SolverConfig {
    /// Outer iterations (the original default is 1000).
    pub niter: usize,
    /// Backpressure window: how many outer iterations may be in flight
    /// before the submitter waits on an old one. Keeps the task graph
    /// bounded without serializing (0 = fully synchronous).
    pub window: usize,
    /// Print `rms` every so many iterations (0 = never), mirroring the
    /// original's `iter % 100` report.
    pub print_every: usize,
    /// Artificial per-cell cost skew for load-balancing studies: each
    /// cell burns `skew * |q - q_inf|` extra spin-work units in
    /// `adt_calc` (values are bitwise untouched), so cost tracks the
    /// flow field and concentrates around the bump's disturbed region —
    /// which no uniform static partition can balance. 0.0 (the default)
    /// disables the skew entirely. Honored by the sharded runner only.
    pub skew: f64,
    /// Check for rank imbalance and live-repartition every so many
    /// iterations (0 = never). Honored by the sharded runner only; see
    /// [`crate::shard::ShardedProblem::rebalance`].
    pub rebalance_every: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            niter: 1000,
            window: 16,
            print_every: 0,
            skew: 0.0,
            rebalance_every: 0,
        }
    }
}

/// Result of a run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// `sqrt(rms / ncell)` after the second inner step of each iteration.
    pub rms_history: Vec<f64>,
    /// Wall time of the whole time loop (submission to fence).
    pub elapsed: Duration,
    /// Cells in the mesh.
    pub ncell: usize,
}

impl RunResult {
    /// Final residual.
    pub fn final_rms(&self) -> f64 {
        *self.rms_history.last().expect("at least one iteration")
    }
}

/// The farm-ready entrypoint: declares the problem on `op2` and runs the
/// solver in one call — the shape a
/// [`SolverFarm`](op2_core::farm::SolverFarm) tenant submits, where every
/// job receives a fresh world and must carry its declarations with it:
///
/// ```no_run
/// # let mesh = op2_mesh::channel_with_bump(24, 12);
/// # let farm = op2_core::farm::SolverFarm::new(op2_core::farm::FarmConfig::with_threads(2));
/// # let tenant = farm.register("t", op2_core::farm::Priority::Normal);
/// let cfg = airfoil_cfd::SolverConfig { niter: 10, window: 4, ..Default::default() };
/// let mesh = std::sync::Arc::new(mesh);
/// farm.submit(&tenant, move |op2| {
///     airfoil_cfd::solve(op2, &mesh, &cfg);
/// });
/// ```
pub fn solve(op2: &Op2, mesh: &QuadMesh, cfg: &SolverConfig) -> RunResult {
    let p = Problem::declare(op2, mesh);
    run(op2, &p, cfg)
}

/// Runs `cfg.niter` iterations of the Airfoil pseudo-timestepping loop on
/// an already-declared problem. May be called repeatedly; continues from
/// the current flow state.
///
/// The iteration body lives in [`crate::app`] ([`PlainAirfoil`]) and the
/// time loop is the generic [`op2_app::run`] harness — a fixed-iteration
/// run through it is statement-for-statement the pre-refactor loop, so
/// the output is bitwise unchanged.
pub fn run(op2: &Op2, p: &Problem, cfg: &SolverConfig) -> RunResult {
    let mut inst = PlainAirfoil::new(op2, p);
    let out = op2_app::run(
        &mut inst,
        RunConfig {
            exit: ExitPolicy::Iterations(cfg.niter),
            window: cfg.window,
            print_every: cfg.print_every,
            rebalance_every: 0,
        },
    );
    RunResult {
        rms_history: out.residuals,
        elapsed: out.elapsed,
        ncell: p.cells.size(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{max_rel_diff, max_scaled_diff};
    use op2_core::Op2Config;
    use op2_mesh::channel_with_bump;

    fn simulate(config: Op2Config, niter: usize) -> (RunResult, Vec<f64>) {
        let op2 = Op2::new(config);
        let mesh = channel_with_bump(40, 20);
        let p = Problem::declare(&op2, &mesh);
        let r = run(
            &op2,
            &p,
            &SolverConfig {
                niter,
                window: 4,
                print_every: 0,
                ..SolverConfig::default()
            },
        );
        let q = p.p_q.snapshot();
        (r, q)
    }

    #[test]
    fn seq_run_is_finite_and_produces_rms() {
        let (r, q) = simulate(Op2Config::seq(), 30);
        assert_eq!(r.rms_history.len(), 30);
        assert!(r.rms_history.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(q.iter().all(|v| v.is_finite()));
        assert!(r.final_rms() > 0.0, "bump must perturb the flow");
    }

    #[test]
    fn backends_agree_on_physics() {
        let (r_seq, q_seq) = simulate(Op2Config::seq(), 20);
        let (r_fj, q_fj) = simulate(Op2Config::fork_join(2), 20);
        let (r_df, q_df) = simulate(Op2Config::dataflow(2), 20);

        // Indirect increments are applied in a different order per
        // backend (edge order vs color rounds), so results agree to
        // accumulated-rounding precision, not bitwise.
        let d_rms_fj = max_rel_diff(&r_seq.rms_history, &r_fj.rms_history);
        let d_rms_df = max_rel_diff(&r_seq.rms_history, &r_df.rms_history);
        let d_q_fj = max_scaled_diff(&q_seq, &q_fj, 1.0);
        let d_q_df = max_scaled_diff(&q_seq, &q_df, 1.0);
        assert!(d_rms_fj < 1e-7, "fork-join rms deviates: {d_rms_fj:e}");
        assert!(d_rms_df < 1e-7, "dataflow rms deviates: {d_rms_df:e}");
        assert!(d_q_fj < 1e-9, "fork-join q deviates: {d_q_fj:e}");
        assert!(d_q_df < 1e-9, "dataflow q deviates: {d_q_df:e}");
    }

    #[test]
    fn prefetching_does_not_change_results() {
        let (r_plain, q_plain) = simulate(Op2Config::dataflow(2), 15);
        let (r_pf, q_pf) = simulate(Op2Config::dataflow(2).with_prefetch(15), 15);
        assert!(max_rel_diff(&r_plain.rms_history, &r_pf.rms_history) < 1e-7);
        assert!(max_scaled_diff(&q_plain, &q_pf, 1.0) < 1e-9);
    }

    #[test]
    fn persistent_chunker_does_not_change_results() {
        let handle = op2_core::hpx_rt::PersistentChunker::new();
        let (r_a, q_a) = simulate(Op2Config::dataflow_persistent(2, handle), 15);
        let (r_b, q_b) = simulate(Op2Config::seq(), 15);
        assert!(max_rel_diff(&r_a.rms_history, &r_b.rms_history) < 1e-7);
        assert!(max_scaled_diff(&q_a, &q_b, 1.0) < 1e-9);
    }

    #[test]
    fn fully_synchronous_window_matches_pipelined() {
        let op2 = Op2::new(Op2Config::dataflow(2));
        let mesh = channel_with_bump(24, 12);
        let p = Problem::declare(&op2, &mesh);
        let r1 = run(
            &op2,
            &p,
            &SolverConfig {
                niter: 5,
                window: 0,
                print_every: 0,
                ..SolverConfig::default()
            },
        );
        // Continue with a large window on the same state.
        let r2 = run(
            &op2,
            &p,
            &SolverConfig {
                niter: 5,
                window: 64,
                print_every: 0,
                ..SolverConfig::default()
            },
        );
        assert!(r1
            .rms_history
            .iter()
            .chain(&r2.rms_history)
            .all(|v| v.is_finite()));
    }
}
