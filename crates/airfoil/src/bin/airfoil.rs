//! Airfoil CLI: run the benchmark with any backend/optimization combo.
//!
//! ```text
//! airfoil [--cells N] [--iters N] [--threads N] [--ranks N]
//!         [--backend seq|forkjoin|dataflow] [--transport inproc|process]
//!         [--prefetch FACTOR] [--persistent] [--print-every N]
//!         [--rms-out PATH]
//! ```
//!
//! `--ranks N` (N > 1) runs the multi-locality sharded path: the mesh is
//! partitioned into N shards, each driven by its own rank, with
//! asynchronous halo exchange between them. `--transport inproc` (the
//! default) hosts all ranks in this process on one worker pool;
//! `--transport process` relaunches the binary as **N real OS processes**
//! — one rank each, rendezvousing over Unix-domain sockets in a temporary
//! directory, exchanging halos and reduction partials as real wire bytes.
//! (`--rank-id R --rendezvous DIR` is the internal child invocation.)

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use airfoil_cfd::{shard, solver, Problem, SolverConfig};
use op2_core::locality::implicit_halo_stats;
use op2_core::transport::{ProcessTransport, Transport};
use op2_core::{Op2, Op2Config};
use op2_mesh::{quad_stats, QuadMesh};

struct Args {
    cells: usize,
    iters: usize,
    threads: usize,
    ranks: usize,
    backend: String,
    transport: String,
    rank_id: Option<usize>,
    rendezvous: Option<PathBuf>,
    rms_out: Option<PathBuf>,
    prefetch: Option<usize>,
    persistent: bool,
    print_every: usize,
    rebalance: usize,
    skew: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        cells: 20_000,
        iters: 100,
        threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
        ranks: 1,
        backend: "dataflow".to_owned(),
        transport: "inproc".to_owned(),
        rank_id: None,
        rendezvous: None,
        rms_out: None,
        prefetch: None,
        persistent: false,
        print_every: 100,
        rebalance: 0,
        skew: 0.0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.cells = value("--cells").parse().expect("--cells"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--ranks" => args.ranks = value("--ranks").parse().expect("--ranks"),
            "--backend" => args.backend = value("--backend"),
            "--transport" => args.transport = value("--transport"),
            "--rank-id" => args.rank_id = Some(value("--rank-id").parse().expect("--rank-id")),
            "--rendezvous" => args.rendezvous = Some(PathBuf::from(value("--rendezvous"))),
            "--rms-out" => args.rms_out = Some(PathBuf::from(value("--rms-out"))),
            "--prefetch" => args.prefetch = Some(value("--prefetch").parse().expect("--prefetch")),
            "--persistent" => args.persistent = true,
            "--print-every" => {
                args.print_every = value("--print-every").parse().expect("--print-every")
            }
            "--rebalance" => args.rebalance = value("--rebalance").parse().expect("--rebalance"),
            "--skew" => args.skew = value("--skew").parse().expect("--skew"),
            "--paper-scale" => args.cells = 720_000,
            "--help" | "-h" => {
                println!(
                    "airfoil: OP2/HPX Airfoil benchmark\n\
                     --cells N          target cell count (default 20000)\n\
                     --paper-scale      ~720K cells (the paper's mesh size)\n\
                     --iters N          outer iterations (default 100)\n\
                     --threads N        worker threads\n\
                     --ranks N          localities (sharded mesh + halo exchange)\n\
                     --backend B        seq | forkjoin | dataflow\n\
                     --transport T      inproc (all ranks in-process, default) |\n    \
                                    process (one OS process per rank, Unix sockets)\n\
                     --rms-out PATH     write the residual history to PATH (rank 0)\n\
                     --prefetch F       enable prefetching, distance factor F\n\
                     --persistent       persistent_auto_chunk_size: measured,\n    \
                                    feedback-resolved dataflow node granularity\n\
                     --print-every N    residual print period (default 100)\n\
                     --rebalance N      live-repartition check period in iterations\n    \
                                    (sharded runs only; 0 = off, the default)\n\
                     --skew S           artificial per-cell cost skew units (see\n    \
                                    SolverConfig::skew; sharded runs only)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

/// Parent-mode `--transport process`: relaunch this binary as one child
/// process per rank, rendezvousing in a fresh temporary directory, and
/// propagate any child failure as a nonzero exit. Stdout is inherited, so
/// rank 0's residual lines stream through as usual.
fn launch_processes(args: &Args) -> i32 {
    let exe = std::env::current_exe().expect("current_exe");
    let dir = std::env::temp_dir().join(format!("airfoil-rdv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create rendezvous dir");
    println!(
        "spawning {} rank processes (rendezvous {})",
        args.ranks,
        dir.display()
    );
    let mut children = Vec::with_capacity(args.ranks);
    for r in 0..args.ranks {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg("--cells")
            .arg(args.cells.to_string())
            .arg("--iters")
            .arg(args.iters.to_string())
            .arg("--threads")
            .arg(args.threads.to_string())
            .arg("--ranks")
            .arg(args.ranks.to_string())
            .arg("--backend")
            .arg(&args.backend)
            .arg("--print-every")
            .arg(args.print_every.to_string())
            .arg("--transport")
            .arg("process")
            .arg("--rank-id")
            .arg(r.to_string())
            .arg("--rendezvous")
            .arg(&dir);
        if let Some(f) = args.prefetch {
            cmd.arg("--prefetch").arg(f.to_string());
        }
        if args.persistent {
            cmd.arg("--persistent");
        }
        if let Some(p) = &args.rms_out {
            cmd.arg("--rms-out").arg(p);
        }
        children.push((r, cmd.spawn().expect("spawn rank process")));
    }
    let mut code = 0;
    for (r, mut child) in children {
        let status = child.wait().expect("wait for rank process");
        if !status.success() {
            eprintln!("rank {r} process failed: {status}");
            code = 1;
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    code
}

fn main() {
    let args = parse_args();
    let mut config = match args.backend.as_str() {
        "seq" => Op2Config::seq(),
        "forkjoin" => Op2Config::fork_join(args.threads),
        "dataflow" if args.persistent => Op2Config::persistent_auto(args.threads),
        "dataflow" => Op2Config::dataflow(args.threads),
        other => panic!("unknown backend {other}"),
    };
    if let Some(f) = args.prefetch {
        config = config.with_prefetch(f);
    }

    match args.transport.as_str() {
        "inproc" | "process" => {}
        other => panic!("unknown transport {other} (inproc | process)"),
    }
    if args.transport == "process" && args.rank_id.is_none() {
        assert!(args.ranks > 1, "--transport process needs --ranks N > 1");
        std::process::exit(launch_processes(&args));
    }

    let is_rank0 = args.rank_id.is_none_or(|r| r == 0);
    let mesh = QuadMesh::with_cells(args.cells);
    if is_rank0 {
        println!("mesh: {}", quad_stats(&mesh));
        println!(
            "backend: {} threads={} ranks={} transport={} prefetch={:?} persistent={}",
            config.backend,
            config.threads,
            args.ranks,
            args.transport,
            config.prefetch_distance,
            args.persistent
        );
    }

    if args.ranks > 1 {
        let shp = match args.rank_id {
            // Child of the process launcher: this process hosts exactly
            // one rank and exchanges real bytes with its peers.
            Some(rank) => {
                let dir = args
                    .rendezvous
                    .as_ref()
                    .expect("--rank-id needs --rendezvous");
                let t: Arc<dyn Transport> = Arc::new(
                    ProcessTransport::connect_unix(dir, rank, args.ranks)
                        .expect("rendezvous with peer rank processes"),
                );
                shard::ShardedProblem::declare_with_transport(config, &mesh, t)
            }
            None => shard::ShardedProblem::declare(config, &mesh, args.ranks),
        };
        let mut shp = shp;
        let result = shard::run_sharded(
            &mut shp,
            &SolverConfig {
                niter: args.iters,
                window: 16,
                print_every: args.print_every,
                skew: args.skew,
                rebalance_every: args.rebalance,
            },
        );
        if is_rank0 {
            println!(
                "completed {} iters on {} ranks in {:.3}s  ({:.2} ms/iter), final rms = {:.6e}",
                args.iters,
                args.ranks,
                result.elapsed.as_secs_f64(),
                result.elapsed.as_secs_f64() * 1e3 / args.iters as f64,
                result.final_rms()
            );
            if let Some(path) = &args.rms_out {
                let mut f = std::fs::File::create(path).expect("create --rms-out file");
                for v in &result.rms_history {
                    writeln!(f, "{v:.17e}").expect("write --rms-out file");
                }
            }
        }
        let first = shp.group.local_ranks().start;
        for (i, part) in shp.parts.iter().enumerate() {
            println!(
                "  rank {}: {} owned cells, {} halo rows, {} edges ({} interior)",
                first + i,
                part.cells.size(),
                part.n_halo_cells,
                part.edges.size(),
                part.n_interior_edges
            );
        }
        if is_rank0 {
            for (name, dat) in [("q", &shp.parts[0].p_q), ("adt", &shp.parts[0].p_adt)] {
                if let Some(st) = implicit_halo_stats(dat) {
                    println!(
                        "  implicit halo [{name}]: {} pair exchanges, {} refresh checks, {} skipped clean",
                        st.pair_exchanges, st.refresh_calls, st.skipped_clean
                    );
                }
            }
        }
        // Whole-job rendezvous before teardown so no process unlinks its
        // socket while a peer is still draining.
        shp.group.barrier();
        return;
    }

    let op2 = Op2::new(config);
    let problem = Problem::declare(&op2, &mesh);
    let result = solver::run(
        &op2,
        &problem,
        &SolverConfig {
            niter: args.iters,
            window: 16,
            print_every: args.print_every,
            ..SolverConfig::default()
        },
    );

    println!(
        "completed {} iters in {:.3}s  ({:.2} ms/iter), final rms = {:.6e}",
        args.iters,
        result.elapsed.as_secs_f64(),
        result.elapsed.as_secs_f64() * 1e3 / args.iters as f64,
        result.final_rms()
    );
    println!("-- per-loop stats --");
    for (name, stat) in op2.loop_stats() {
        println!(
            "  {name:12} x{:6}  total {:8.3}s",
            stat.invocations,
            stat.total.as_secs_f64()
        );
    }
    let (plans, hits) = op2.plan_cache_stats();
    println!("plans built: {plans}, cache hits: {hits}");
    let (spec_built, spec_hits) = op2.spec_cache_stats();
    println!(
        "loop-spec cache: {spec_built} schedules, {spec_hits} hits, {} granularity re-plans",
        op2.spec_cache_replans()
    );
    // Adaptive chunking demonstration: what the feedback measured and
    // what granularity each kernel converged to.
    let measured = op2.granularity_feedback().snapshot();
    if !measured.is_empty() {
        println!("-- adaptive granularity (measured feedback) --");
        for (kernel, _set, cost) in measured {
            let set = [
                ("save_soln", &problem.cells),
                ("adt_calc", &problem.cells),
                ("update", &problem.cells),
                ("res_calc", &problem.edges),
                ("bres_calc", &problem.bedges),
            ]
            .iter()
            .find(|(k, _)| *k == kernel)
            .map(|(_, s)| (*s).clone());
            match set {
                Some(s) => println!(
                    "  {kernel:12} {:8.0} ns/elem  ({} samples) -> {} elems/node",
                    cost.ewma_ns_per_elem,
                    cost.samples,
                    op2_core::__dataflow_resolved_block_size(&op2, &kernel, &s)
                ),
                None => println!(
                    "  {kernel:12} {:8.0} ns/elem  ({} samples)",
                    cost.ewma_ns_per_elem, cost.samples
                ),
            }
        }
    }
    println!("runtime: {}", op2.runtime().stats());
}
