//! Airfoil CLI: run the benchmark with any backend/optimization combo.
//!
//! ```text
//! airfoil [--cells N] [--iters N] [--threads N] [--ranks N]
//!         [--backend seq|forkjoin|dataflow]
//!         [--prefetch FACTOR] [--persistent] [--print-every N]
//! ```
//!
//! `--ranks N` (N > 1) runs the multi-locality sharded path: the mesh is
//! partitioned into N shards, each driven by its own simulated rank, with
//! asynchronous halo exchange between them.

use airfoil_cfd::{shard, solver, Problem, SolverConfig};
use op2_core::locality::implicit_halo_stats;
use op2_core::{Op2, Op2Config};
use op2_mesh::{quad_stats, QuadMesh};

struct Args {
    cells: usize,
    iters: usize,
    threads: usize,
    ranks: usize,
    backend: String,
    prefetch: Option<usize>,
    persistent: bool,
    print_every: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        cells: 20_000,
        iters: 100,
        threads: std::thread::available_parallelism().map_or(2, |n| n.get()),
        ranks: 1,
        backend: "dataflow".to_owned(),
        prefetch: None,
        persistent: false,
        print_every: 100,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.cells = value("--cells").parse().expect("--cells"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--ranks" => args.ranks = value("--ranks").parse().expect("--ranks"),
            "--backend" => args.backend = value("--backend"),
            "--prefetch" => args.prefetch = Some(value("--prefetch").parse().expect("--prefetch")),
            "--persistent" => args.persistent = true,
            "--print-every" => {
                args.print_every = value("--print-every").parse().expect("--print-every")
            }
            "--paper-scale" => args.cells = 720_000,
            "--help" | "-h" => {
                println!(
                    "airfoil: OP2/HPX Airfoil benchmark\n\
                     --cells N          target cell count (default 20000)\n\
                     --paper-scale      ~720K cells (the paper's mesh size)\n\
                     --iters N          outer iterations (default 100)\n\
                     --threads N        worker threads\n\
                     --ranks N          simulated localities (sharded mesh + halo exchange)\n\
                     --backend B        seq | forkjoin | dataflow\n\
                     --prefetch F       enable prefetching, distance factor F\n\
                     --persistent       persistent_auto_chunk_size: measured,\n    \
                                    feedback-resolved dataflow node granularity\n\
                     --print-every N    residual print period (default 100)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut config = match args.backend.as_str() {
        "seq" => Op2Config::seq(),
        "forkjoin" => Op2Config::fork_join(args.threads),
        "dataflow" if args.persistent => Op2Config::persistent_auto(args.threads),
        "dataflow" => Op2Config::dataflow(args.threads),
        other => panic!("unknown backend {other}"),
    };
    if let Some(f) = args.prefetch {
        config = config.with_prefetch(f);
    }

    let mesh = QuadMesh::with_cells(args.cells);
    println!("mesh: {}", quad_stats(&mesh));
    println!(
        "backend: {} threads={} ranks={} prefetch={:?} persistent={}",
        config.backend, config.threads, args.ranks, config.prefetch_distance, args.persistent
    );

    if args.ranks > 1 {
        let shp = shard::ShardedProblem::declare(config, &mesh, args.ranks);
        let result = shard::run_sharded(
            &shp,
            &SolverConfig {
                niter: args.iters,
                window: 16,
                print_every: args.print_every,
            },
        );
        println!(
            "completed {} iters on {} ranks in {:.3}s  ({:.2} ms/iter), final rms = {:.6e}",
            args.iters,
            args.ranks,
            result.elapsed.as_secs_f64(),
            result.elapsed.as_secs_f64() * 1e3 / args.iters as f64,
            result.final_rms()
        );
        for (r, part) in shp.parts.iter().enumerate() {
            println!(
                "  rank {r}: {} owned cells, {} halo rows, {} edges ({} interior)",
                part.cells.size(),
                part.n_halo_cells,
                part.edges.size(),
                part.n_interior_edges
            );
        }
        for (name, dat) in [("q", &shp.parts[0].p_q), ("adt", &shp.parts[0].p_adt)] {
            if let Some(st) = implicit_halo_stats(dat) {
                println!(
                    "  implicit halo [{name}]: {} pair exchanges, {} refresh checks, {} skipped clean",
                    st.pair_exchanges, st.refresh_calls, st.skipped_clean
                );
            }
        }
        return;
    }

    let op2 = Op2::new(config);
    let problem = Problem::declare(&op2, &mesh);
    let result = solver::run(
        &op2,
        &problem,
        &SolverConfig {
            niter: args.iters,
            window: 16,
            print_every: args.print_every,
        },
    );

    println!(
        "completed {} iters in {:.3}s  ({:.2} ms/iter), final rms = {:.6e}",
        args.iters,
        result.elapsed.as_secs_f64(),
        result.elapsed.as_secs_f64() * 1e3 / args.iters as f64,
        result.final_rms()
    );
    println!("-- per-loop stats --");
    for (name, stat) in op2.loop_stats() {
        println!(
            "  {name:12} x{:6}  total {:8.3}s",
            stat.invocations,
            stat.total.as_secs_f64()
        );
    }
    let (plans, hits) = op2.plan_cache_stats();
    println!("plans built: {plans}, cache hits: {hits}");
    let (spec_built, spec_hits) = op2.spec_cache_stats();
    println!(
        "loop-spec cache: {spec_built} schedules, {spec_hits} hits, {} granularity re-plans",
        op2.spec_cache_replans()
    );
    // Adaptive chunking demonstration: what the feedback measured and
    // what granularity each kernel converged to.
    let measured = op2.granularity_feedback().snapshot();
    if !measured.is_empty() {
        println!("-- adaptive granularity (measured feedback) --");
        for (kernel, _set, cost) in measured {
            let set = [
                ("save_soln", &problem.cells),
                ("adt_calc", &problem.cells),
                ("update", &problem.cells),
                ("res_calc", &problem.edges),
                ("bres_calc", &problem.bedges),
            ]
            .iter()
            .find(|(k, _)| *k == kernel)
            .map(|(_, s)| (*s).clone());
            match set {
                Some(s) => println!(
                    "  {kernel:12} {:8.0} ns/elem  ({} samples) -> {} elems/node",
                    cost.ewma_ns_per_elem,
                    cost.samples,
                    op2_core::__dataflow_resolved_block_size(&op2, &kernel, &s)
                ),
                None => println!(
                    "  {kernel:12} {:8.0} ns/elem  ({} samples)",
                    cost.ewma_ns_per_elem, cost.samples
                ),
            }
        }
    }
    println!("runtime: {}", op2.runtime().stats());
}
