//! Hand-vectorized block-level variants of the hot Airfoil kernels over
//! SoA component planes.
//!
//! The scalar kernels in [`crate::kernels`] process one element per call
//! through `&[f64]` row views — the shape the OP2 translator generates.
//! Under an SoA [`op2_core::Layout`] each component lives in its own
//! contiguous plane (`plane[c * stride + e]`), so a *block* of elements
//! can be processed `LANES` at a time with unit-stride plane loads. These
//! functions spell the lanes out as fixed-width `[f64; LANES]` arrays —
//! the idiom LLVM reliably lowers to packed vector instructions without
//! any unstable `std::simd` dependency.
//!
//! Correctness notes:
//!
//! * `res_calc_soa` computes the per-edge fluxes vectorized but applies
//!   the `+=`/`-=` increments **scalar-sequentially within the block**:
//!   two edges in the same lane group may share a cell, so a vectorized
//!   scatter-add would lose increments. Block-level callers must still
//!   color blocks apart exactly as for the scalar kernel.
//! * Each function handles the non-multiple-of-`LANES` tail by delegating
//!   to the scalar kernel on gathered rows, so results match the scalar
//!   path to floating-point reassociation (the lane sums reassociate the
//!   `rms` reduction; everything else is bitwise).

use std::ops::Range;

use crate::constants::{CFL, EPS, GAM, GM1};
use crate::kernels;

/// Vector width: 4 × f64 = one AVX2 register (two NEON registers).
pub const LANES: usize = 4;

/// Block-level SoA `update` over cells `range`.
///
/// `qold`, `q`, `res` are 4-component planes with component stride
/// `stride`; `adt` is the dim-1 plane. Returns the block's partial
/// `rms` sum (lane-reassociated relative to the scalar kernel).
pub fn update_soa(
    qold: &[f64],
    q: &mut [f64],
    res: &mut [f64],
    adt: &[f64],
    stride: usize,
    range: Range<usize>,
) -> f64 {
    let mut rms = 0.0;
    let mut e = range.start;
    while e + LANES <= range.end {
        let mut adti = [0.0; LANES];
        for l in 0..LANES {
            adti[l] = 1.0 / adt[e + l];
        }
        for c in 0..4 {
            let base = c * stride + e;
            let mut del = [0.0; LANES];
            for l in 0..LANES {
                del[l] = adti[l] * res[base + l];
            }
            for l in 0..LANES {
                q[base + l] = qold[base + l] - del[l];
                res[base + l] = 0.0;
            }
            for d in del {
                rms += d * d;
            }
        }
        e += LANES;
    }
    while e < range.end {
        let adti = 1.0 / adt[e];
        for c in 0..4 {
            let del = adti * res[c * stride + e];
            q[c * stride + e] = qold[c * stride + e] - del;
            res[c * stride + e] = 0.0;
            rms += del * del;
        }
        e += 1;
    }
    rms
}

/// Block-level SoA `adt_calc` over cells `range`.
///
/// `x` is the 2-component node-coordinate plane pair (stride `sx`),
/// gathered through `pcell` (4 node indices per cell); `q` the
/// 4-component cell-state planes (stride `sq`); `adt` the dim-1 output
/// plane.
pub fn adt_calc_soa(
    x: &[f64],
    sx: usize,
    pcell: &[u32],
    q: &[f64],
    sq: usize,
    adt: &mut [f64],
    range: Range<usize>,
) {
    let mut e = range.start;
    while e + LANES <= range.end {
        // Gather the four corner nodes of each lane's cell.
        let mut xn = [[0.0; LANES]; 8]; // [node*2 + comp][lane]
        for l in 0..LANES {
            for node in 0..4 {
                let n = pcell[(e + l) * 4 + node] as usize;
                xn[node * 2][l] = x[n];
                xn[node * 2 + 1][l] = x[sx + n];
            }
        }
        let mut u = [0.0; LANES];
        let mut v = [0.0; LANES];
        let mut c = [0.0; LANES];
        for l in 0..LANES {
            let ri = 1.0 / q[e + l];
            u[l] = ri * q[sq + e + l];
            v[l] = ri * q[2 * sq + e + l];
            c[l] =
                (GAM * GM1 * (ri * q[3 * sq + e + l] - 0.5 * (u[l] * u[l] + v[l] * v[l]))).sqrt();
        }
        let mut acc = [0.0; LANES];
        for (a, b) in [(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
            for l in 0..LANES {
                let dx = xn[b * 2][l] - xn[a * 2][l];
                let dy = xn[b * 2 + 1][l] - xn[a * 2 + 1][l];
                acc[l] += (u[l] * dy - v[l] * dx).abs() + c[l] * (dx * dx + dy * dy).sqrt();
            }
        }
        for l in 0..LANES {
            adt[e + l] = acc[l] / CFL;
        }
        e += LANES;
    }
    while e < range.end {
        let mut xr = [[0.0; 2]; 4];
        for (node, row) in xr.iter_mut().enumerate() {
            let n = pcell[e * 4 + node] as usize;
            *row = [x[n], x[sx + n]];
        }
        let qr = [q[e], q[sq + e], q[2 * sq + e], q[3 * sq + e]];
        let mut a = [0.0];
        kernels::adt_calc(&xr[0], &xr[1], &xr[2], &xr[3], &qr, &mut a);
        adt[e] = a[0];
        e += 1;
    }
}

/// Block-level SoA `res_calc` over edges `range`.
///
/// `x`: node-coordinate planes (stride `sx`) gathered through `pedge`
/// (2 node indices per edge); `q` (stride `sq`), `adt`, `res` (stride
/// `sr`): cell planes gathered through `pecell` (2 cell indices per
/// edge). Fluxes are computed vectorized; the increments are applied
/// scalar-sequentially within the block because lanes may share cells.
#[allow(clippy::too_many_arguments)]
pub fn res_calc_soa(
    x: &[f64],
    sx: usize,
    pedge: &[u32],
    q: &[f64],
    sq: usize,
    adt: &[f64],
    res: &mut [f64],
    sr: usize,
    pecell: &[u32],
    range: Range<usize>,
) {
    let mut e = range.start;
    while e + LANES <= range.end {
        let mut c1 = [0usize; LANES];
        let mut c2 = [0usize; LANES];
        let mut dx = [0.0; LANES];
        let mut dy = [0.0; LANES];
        for l in 0..LANES {
            let n1 = pedge[(e + l) * 2] as usize;
            let n2 = pedge[(e + l) * 2 + 1] as usize;
            dx[l] = x[n1] - x[n2];
            dy[l] = x[sx + n1] - x[sx + n2];
            c1[l] = pecell[(e + l) * 2] as usize;
            c2[l] = pecell[(e + l) * 2 + 1] as usize;
        }
        let mut q1 = [[0.0; LANES]; 4];
        let mut q2 = [[0.0; LANES]; 4];
        for c in 0..4 {
            for l in 0..LANES {
                q1[c][l] = q[c * sq + c1[l]];
                q2[c][l] = q[c * sq + c2[l]];
            }
        }
        let mut f = [[0.0; LANES]; 4];
        for l in 0..LANES {
            let mut ri = 1.0 / q1[0][l];
            let p1 = GM1 * (q1[3][l] - 0.5 * ri * (q1[1][l] * q1[1][l] + q1[2][l] * q1[2][l]));
            let vol1 = ri * (q1[1][l] * dy[l] - q1[2][l] * dx[l]);
            ri = 1.0 / q2[0][l];
            let p2 = GM1 * (q2[3][l] - 0.5 * ri * (q2[1][l] * q2[1][l] + q2[2][l] * q2[2][l]));
            let vol2 = ri * (q2[1][l] * dy[l] - q2[2][l] * dx[l]);
            let mu = 0.5 * (adt[c1[l]] + adt[c2[l]]) * EPS;
            f[0][l] = 0.5 * (vol1 * q1[0][l] + vol2 * q2[0][l]) + mu * (q1[0][l] - q2[0][l]);
            f[1][l] = 0.5 * (vol1 * q1[1][l] + p1 * dy[l] + vol2 * q2[1][l] + p2 * dy[l])
                + mu * (q1[1][l] - q2[1][l]);
            f[2][l] = 0.5 * (vol1 * q1[2][l] - p1 * dx[l] + vol2 * q2[2][l] - p2 * dx[l])
                + mu * (q1[2][l] - q2[2][l]);
            f[3][l] = 0.5 * (vol1 * (q1[3][l] + p1) + vol2 * (q2[3][l] + p2))
                + mu * (q1[3][l] - q2[3][l]);
        }
        // Scalar-sequential scatter: lanes may share target cells.
        for l in 0..LANES {
            for c in 0..4 {
                res[c * sr + c1[l]] += f[c][l];
                res[c * sr + c2[l]] -= f[c][l];
            }
        }
        e += LANES;
    }
    while e < range.end {
        let n1 = pedge[e * 2] as usize;
        let n2 = pedge[e * 2 + 1] as usize;
        let c1 = pecell[e * 2] as usize;
        let c2 = pecell[e * 2 + 1] as usize;
        let x1 = [x[n1], x[sx + n1]];
        let x2 = [x[n2], x[sx + n2]];
        let q1 = [q[c1], q[sq + c1], q[2 * sq + c1], q[3 * sq + c1]];
        let q2 = [q[c2], q[sq + c2], q[2 * sq + c2], q[3 * sq + c2]];
        let mut r1 = [0.0; 4];
        let mut r2 = [0.0; 4];
        kernels::res_calc(&x1, &x2, &q1, &q2, &[adt[c1]], &[adt[c2]], &mut r1, &mut r2);
        for c in 0..4 {
            res[c * sr + c1] += r1[c];
            res[c * sr + c2] += r2[c];
        }
        e += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift64* values in (0.5, 1.5) — safely away from
    /// the kernels' divisions by q[0].
    fn rng_vals(seed: u64, n: usize) -> Vec<f64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let u = (s.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64;
                0.5 + u
            })
            .collect()
    }

    fn to_planes(aos: &[f64], rows: usize, dim: usize) -> Vec<f64> {
        let mut p = vec![0.0; aos.len()];
        for e in 0..rows {
            for c in 0..dim {
                p[c * rows + e] = aos[e * dim + c];
            }
        }
        p
    }

    #[test]
    fn update_soa_matches_scalar() {
        let n = 13; // exercises the scalar tail
        let qold = rng_vals(1, n * 4);
        let q0 = rng_vals(2, n * 4);
        let res0 = rng_vals(3, n * 4);
        let adt = rng_vals(4, n);

        let mut q_ref = q0.clone();
        let mut res_ref = res0.clone();
        let mut rms_ref = [0.0];
        for e in 0..n {
            kernels::update(
                &qold[e * 4..e * 4 + 4],
                &mut q_ref[e * 4..e * 4 + 4],
                &mut res_ref[e * 4..e * 4 + 4],
                &adt[e..e + 1],
                &mut rms_ref,
            );
        }

        let qold_p = to_planes(&qold, n, 4);
        let mut q_p = to_planes(&q0, n, 4);
        let mut res_p = to_planes(&res0, n, 4);
        let rms = update_soa(&qold_p, &mut q_p, &mut res_p, &adt, n, 0..n);

        assert!((rms - rms_ref[0]).abs() < 1e-12 * rms_ref[0].max(1.0));
        assert_eq!(q_p, to_planes(&q_ref, n, 4), "q planes match bitwise");
        assert!(res_p.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn adt_calc_soa_matches_scalar() {
        let ncell = 11;
        let nnode = 9;
        let x = rng_vals(5, nnode * 2);
        let mut q = rng_vals(6, ncell * 4);
        // Keep the state physical: enough energy that the wavespeed's
        // sqrt argument stays positive.
        for e in 0..ncell {
            q[e * 4 + 3] += 10.0;
        }
        let pcell: Vec<u32> = (0..ncell * 4).map(|i| (i * 7 % nnode) as u32).collect();

        let mut adt_ref = vec![0.0; ncell];
        for e in 0..ncell {
            let rows: Vec<[f64; 2]> = (0..4)
                .map(|k| {
                    let n = pcell[e * 4 + k] as usize;
                    [x[n * 2], x[n * 2 + 1]]
                })
                .collect();
            let mut a = [0.0];
            kernels::adt_calc(
                &rows[0],
                &rows[1],
                &rows[2],
                &rows[3],
                &q[e * 4..e * 4 + 4],
                &mut a,
            );
            adt_ref[e] = a[0];
        }

        let x_p = to_planes(&x, nnode, 2);
        let q_p = to_planes(&q, ncell, 4);
        let mut adt = vec![0.0; ncell];
        adt_calc_soa(&x_p, nnode, &pcell, &q_p, ncell, &mut adt, 0..ncell);
        for e in 0..ncell {
            assert!(
                (adt[e] - adt_ref[e]).abs() < 1e-12,
                "cell {e}: {} vs {}",
                adt[e],
                adt_ref[e]
            );
        }
    }

    #[test]
    fn res_calc_soa_matches_scalar_including_shared_cells() {
        let nedge = 10;
        let ncell = 5; // deliberately few cells: lanes share targets
        let nnode = 7;
        let x = rng_vals(7, nnode * 2);
        let q = rng_vals(8, ncell * 4);
        let adt = rng_vals(9, ncell);
        let pedge: Vec<u32> = (0..nedge * 2).map(|i| (i * 3 % nnode) as u32).collect();
        // Two *distinct* cells per edge, with heavy reuse across edges so
        // lane groups genuinely share scatter targets.
        let pecell: Vec<u32> = (0..nedge)
            .flat_map(|e| [(e * 2 % ncell) as u32, ((e * 2 + 3) % ncell) as u32])
            .collect();

        let mut res_ref = vec![0.0; ncell * 4];
        for e in 0..nedge {
            let n1 = pedge[e * 2] as usize;
            let n2 = pedge[e * 2 + 1] as usize;
            let c1 = pecell[e * 2] as usize;
            let c2 = pecell[e * 2 + 1] as usize;
            let (r1, rest) = res_ref.split_at_mut(c1.max(c2) * 4);
            let (a, b) = if c1 < c2 {
                (&mut r1[c1 * 4..c1 * 4 + 4], &mut rest[..4])
            } else {
                (&mut rest[..4], &mut r1[c2 * 4..c2 * 4 + 4])
            };
            kernels::res_calc(
                &[x[n1 * 2], x[n1 * 2 + 1]],
                &[x[n2 * 2], x[n2 * 2 + 1]],
                &q[c1 * 4..c1 * 4 + 4],
                &q[c2 * 4..c2 * 4 + 4],
                &[adt[c1]],
                &[adt[c2]],
                a,
                b,
            );
        }

        let x_p = to_planes(&x, nnode, 2);
        let q_p = to_planes(&q, ncell, 4);
        let mut res_p = vec![0.0; ncell * 4];
        res_calc_soa(
            &x_p,
            nnode,
            &pedge,
            &q_p,
            ncell,
            &adt,
            &mut res_p,
            ncell,
            &pecell,
            0..nedge,
        );
        let res_soa_aos = {
            let mut out = vec![0.0; ncell * 4];
            for e in 0..ncell {
                for c in 0..4 {
                    out[e * 4 + c] = res_p[c * ncell + e];
                }
            }
            out
        };
        for i in 0..ncell * 4 {
            assert!(
                (res_soa_aos[i] - res_ref[i]).abs() < 1e-12,
                "res[{i}]: {} vs {}",
                res_soa_aos[i],
                res_ref[i]
            );
        }
    }
}
