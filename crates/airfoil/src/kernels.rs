//! The five Airfoil user kernels (paper §II-B), ported line-for-line from
//! the OP2 distribution (`save_soln.h`, `adt_calc.h`, `res_calc.h`,
//! `bres_calc.h`, `update.h`), in double precision.

use crate::constants::{CFL, EPS, GAM, GM1};

/// `save_soln`: copy the four conserved variables of a cell.
#[inline]
pub fn save_soln(q: &[f64], qold: &mut [f64]) {
    qold[..4].copy_from_slice(&q[..4]);
}

/// `adt_calc`: local timestep bound (area / wavespeed) of a quad cell from
/// its four corner nodes.
#[inline]
pub fn adt_calc(x1: &[f64], x2: &[f64], x3: &[f64], x4: &[f64], q: &[f64], adt: &mut [f64]) {
    let ri = 1.0 / q[0];
    let u = ri * q[1];
    let v = ri * q[2];
    let c = (GAM * GM1 * (ri * q[3] - 0.5 * (u * u + v * v))).sqrt();

    let mut acc;
    let (mut dx, mut dy) = (x2[0] - x1[0], x2[1] - x1[1]);
    acc = (u * dy - v * dx).abs() + c * (dx * dx + dy * dy).sqrt();
    dx = x3[0] - x2[0];
    dy = x3[1] - x2[1];
    acc += (u * dy - v * dx).abs() + c * (dx * dx + dy * dy).sqrt();
    dx = x4[0] - x3[0];
    dy = x4[1] - x3[1];
    acc += (u * dy - v * dx).abs() + c * (dx * dx + dy * dy).sqrt();
    dx = x1[0] - x4[0];
    dy = x1[1] - x4[1];
    acc += (u * dy - v * dx).abs() + c * (dx * dx + dy * dy).sqrt();
    adt[0] = acc / CFL;
}

/// `res_calc`: central flux with scalar artificial dissipation through an
/// interior edge; increments the residuals of both adjacent cells.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn res_calc(
    x1: &[f64],
    x2: &[f64],
    q1: &[f64],
    q2: &[f64],
    adt1: &[f64],
    adt2: &[f64],
    res1: &mut [f64],
    res2: &mut [f64],
) {
    let dx = x1[0] - x2[0];
    let dy = x1[1] - x2[1];

    let mut ri = 1.0 / q1[0];
    let p1 = GM1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]));
    let vol1 = ri * (q1[1] * dy - q1[2] * dx);

    ri = 1.0 / q2[0];
    let p2 = GM1 * (q2[3] - 0.5 * ri * (q2[1] * q2[1] + q2[2] * q2[2]));
    let vol2 = ri * (q2[1] * dy - q2[2] * dx);

    let mu = 0.5 * (adt1[0] + adt2[0]) * EPS;

    let mut f = 0.5 * (vol1 * q1[0] + vol2 * q2[0]) + mu * (q1[0] - q2[0]);
    res1[0] += f;
    res2[0] -= f;
    f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * q2[1] + p2 * dy) + mu * (q1[1] - q2[1]);
    res1[1] += f;
    res2[1] -= f;
    f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * q2[2] - p2 * dx) + mu * (q1[2] - q2[2]);
    res1[2] += f;
    res2[2] -= f;
    f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (q2[3] + p2)) + mu * (q1[3] - q2[3]);
    res1[3] += f;
    res2[3] -= f;
}

/// `bres_calc`: boundary-edge flux — wall pressure for `bound == 1`,
/// far-field characteristic flux against `qinf` otherwise.
#[inline]
pub fn bres_calc(
    x1: &[f64],
    x2: &[f64],
    q1: &[f64],
    adt1: &[f64],
    res1: &mut [f64],
    bound: &[i32],
    qinf: &[f64; 4],
) {
    let dx = x1[0] - x2[0];
    let dy = x1[1] - x2[1];

    let mut ri = 1.0 / q1[0];
    let p1 = GM1 * (q1[3] - 0.5 * ri * (q1[1] * q1[1] + q1[2] * q1[2]));

    if bound[0] == 1 {
        res1[1] += p1 * dy;
        res1[2] -= p1 * dx;
    } else {
        let vol1 = ri * (q1[1] * dy - q1[2] * dx);

        ri = 1.0 / qinf[0];
        let p2 = GM1 * (qinf[3] - 0.5 * ri * (qinf[1] * qinf[1] + qinf[2] * qinf[2]));
        let vol2 = ri * (qinf[1] * dy - qinf[2] * dx);

        let mu = adt1[0] * EPS;

        let mut f = 0.5 * (vol1 * q1[0] + vol2 * qinf[0]) + mu * (q1[0] - qinf[0]);
        res1[0] += f;
        f = 0.5 * (vol1 * q1[1] + p1 * dy + vol2 * qinf[1] + p2 * dy) + mu * (q1[1] - qinf[1]);
        res1[1] += f;
        f = 0.5 * (vol1 * q1[2] - p1 * dx + vol2 * qinf[2] - p2 * dx) + mu * (q1[2] - qinf[2]);
        res1[2] += f;
        f = 0.5 * (vol1 * (q1[3] + p1) + vol2 * (qinf[3] + p2)) + mu * (q1[3] - qinf[3]);
        res1[3] += f;
    }
}

/// `update`: explicit pseudo-timestep update; zeroes the residual and
/// accumulates the squared change into the `rms` reduction.
#[inline]
pub fn update(qold: &[f64], q: &mut [f64], res: &mut [f64], adt: &[f64], rms: &mut [f64]) {
    let adti = 1.0 / adt[0];
    for n in 0..4 {
        let del = adti * res[n];
        q[n] = qold[n] - del;
        res[n] = 0.0;
        rms[0] += del * del;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constants::qinf;

    #[test]
    fn save_soln_copies() {
        let q = [1.0, 2.0, 3.0, 4.0];
        let mut qold = [0.0; 4];
        save_soln(&q, &mut qold);
        assert_eq!(qold, q);
    }

    #[test]
    fn adt_positive_for_free_stream() {
        // Unit square cell, free-stream flow.
        let q = qinf();
        let mut adt = [0.0];
        adt_calc(
            &[0.0, 0.0],
            &[1.0, 0.0],
            &[1.0, 1.0],
            &[0.0, 1.0],
            &q,
            &mut adt,
        );
        assert!(adt[0] > 0.0 && adt[0].is_finite());
    }

    #[test]
    fn res_calc_is_antisymmetric_between_cells() {
        // Uniform flow: whatever flows out of cell 1 flows into cell 2.
        let q = qinf();
        let adt = [1.0];
        let mut r1 = [0.0; 4];
        let mut r2 = [0.0; 4];
        res_calc(
            &[0.0, 0.0],
            &[0.0, 1.0],
            &q,
            &q,
            &adt,
            &adt,
            &mut r1,
            &mut r2,
        );
        for n in 0..4 {
            assert!(
                (r1[n] + r2[n]).abs() < 1e-14,
                "component {n} not conservative"
            );
        }
    }

    #[test]
    fn uniform_flow_has_zero_dissipation() {
        // With q1 == q2 the dissipation term vanishes; flux is pure
        // convection, still antisymmetric.
        let q = qinf();
        let adt = [0.37];
        let mut r1 = [0.0; 4];
        let mut r2 = [0.0; 4];
        res_calc(
            &[0.2, 0.1],
            &[0.5, 0.9],
            &q,
            &q,
            &adt,
            &adt,
            &mut r1,
            &mut r2,
        );
        assert!(r1.iter().zip(&r2).all(|(a, b)| (a + b).abs() < 1e-14));
    }

    #[test]
    fn wall_bc_only_adds_pressure_to_momentum() {
        let q = qinf();
        let adt = [1.0];
        let mut r = [0.0; 4];
        bres_calc(&[0.0, 0.0], &[1.0, 0.0], &q, &adt, &mut r, &[1], &qinf());
        assert_eq!(r[0], 0.0, "wall adds no mass flux");
        assert_eq!(r[3], 0.0, "wall adds no energy flux");
        assert!(r[1] != 0.0 || r[2] != 0.0, "wall adds pressure force");
    }

    #[test]
    fn farfield_at_free_stream_is_nearly_fluxless_in_dissipation() {
        // q == qinf: dissipation term zero; convective part may be
        // non-zero but must be finite.
        let q = qinf();
        let adt = [1.0];
        let mut r = [0.0; 4];
        bres_calc(&[0.0, 0.0], &[0.0, 1.0], &q, &adt, &mut r, &[2], &qinf());
        assert!(r.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn update_zeroes_residual_and_accumulates_rms() {
        let qold = [1.0, 1.0, 1.0, 1.0];
        let mut q = [0.0; 4];
        let mut res = [0.1, 0.2, 0.3, 0.4];
        let adt = [2.0];
        let mut rms = [0.0];
        update(&qold, &mut q, &mut res, &adt, &mut rms);
        assert_eq!(res, [0.0; 4]);
        assert!((q[0] - (1.0 - 0.05)).abs() < 1e-15);
        let expected: f64 = [0.05f64, 0.1, 0.15, 0.2].iter().map(|d| d * d).sum();
        assert!((rms[0] - expected).abs() < 1e-15);
    }
}
