//! Verification helpers for comparing runs across backends.

/// Maximum relative difference between two equally-long sequences
/// (denominator floored at 1e-12 to tolerate zeros).
pub fn max_rel_diff(a: &[f64], b: &[f64]) -> f64 {
    max_scaled_diff(a, b, 1e-12)
}

/// Maximum difference scaled by `max(|x|, |y|, scale)`. Use `scale` around
/// the natural magnitude of the data (e.g. 1.0 for the O(1) conserved
/// variables) so components that happen to be ≈ 0 — like `ρv` in the
/// free stream — do not turn rounding noise into huge relative errors.
pub fn max_scaled_diff(a: &[f64], b: &[f64], scale: f64) -> f64 {
    assert_eq!(a.len(), b.len(), "sequence length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(scale))
        .fold(0.0, f64::max)
}

/// True when every value is finite.
pub fn all_finite(values: &[f64]) -> bool {
    values.iter().all(|v| v.is_finite())
}

/// Total mass (`ρ` summed over cells) — conserved up to boundary fluxes,
/// used as a sanity diagnostic.
pub fn total_mass(q: &[f64]) -> f64 {
    q.chunks_exact(4).map(|c| c[0]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel_diff_of_identical_is_zero() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(max_rel_diff(&a, &a), 0.0);
    }

    #[test]
    fn rel_diff_detects_divergence() {
        let a = [1.0, 2.0];
        let b = [1.0, 2.2];
        let d = max_rel_diff(&a, &b);
        assert!((d - 0.2 / 2.2).abs() < 1e-12);
    }

    #[test]
    fn finite_check() {
        assert!(all_finite(&[0.0, 1.0]));
        assert!(!all_finite(&[0.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }

    #[test]
    fn mass_sums_density() {
        let q = [1.0, 0.0, 0.0, 0.0, 2.0, 9.0, 9.0, 9.0];
        assert_eq!(total_mass(&q), 3.0);
    }
}
