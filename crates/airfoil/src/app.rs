//! Airfoil as an [`op2_app::App`]: the harness-facing adapter.
//!
//! The five-loop iteration bodies live here as free functions
//! ([`step_plain`], [`step_sharded`]); [`crate::solver::run`] and
//! [`crate::shard::run_sharded`] drive them through the generic
//! [`op2_app::run`] time loop with borrowing instances (so their
//! signatures and behavior — including bitwise output — are unchanged),
//! while [`AirfoilApp`] packages the same bodies behind the [`App`]
//! factory for the app-generic test matrix and the farm.

use std::sync::Arc;

use op2_app::{App, AppInstance, RebalanceReport, RunConfig, StepOutput};
use op2_core::args::{gbl_inc, inc_via, read, read_via, rw, write};
use op2_core::{Global, LoopHandle, Op2, Op2Config, ResidualMap};
use op2_mesh::{channel_with_bump, QuadMesh};

use crate::kernels;
use crate::setup::Problem;
use crate::shard::{skew_work, ShardedProblem};

/// Submits one Airfoil iteration (save + two inner steps) on a plain
/// single-context problem and returns the second inner step's `rms`
/// future and update handle. Statement-for-statement the body of the
/// pre-harness `solver::run` loop.
pub(crate) fn step_plain(op2: &Op2, p: &Problem) -> StepOutput {
    let qinf = p.qinf;

    // Save the old solution.
    op2.loop_("save_soln", &p.cells)
        .arg(read(&p.p_q))
        .arg(write(&p.p_qold))
        .run(|q: &[f64], qold: &mut [f64]| kernels::save_soln(q, qold));

    let mut last_update: Option<(Global<f64>, LoopHandle)> = None;
    for _k in 0..2 {
        // Local timestep.
        op2.loop_("adt_calc", &p.cells)
            .arg(read_via(&p.p_x, &p.pcell, 0))
            .arg(read_via(&p.p_x, &p.pcell, 1))
            .arg(read_via(&p.p_x, &p.pcell, 2))
            .arg(read_via(&p.p_x, &p.pcell, 3))
            .arg(read(&p.p_q))
            .arg(write(&p.p_adt))
            .run(
                |x1: &[f64], x2: &[f64], x3: &[f64], x4: &[f64], q: &[f64], adt: &mut [f64]| {
                    kernels::adt_calc(x1, x2, x3, x4, q, adt)
                },
            );

        // Interior fluxes (indirect increments -> colored plan).
        op2.loop_("res_calc", &p.edges)
            .arg(read_via(&p.p_x, &p.pedge, 0))
            .arg(read_via(&p.p_x, &p.pedge, 1))
            .arg(read_via(&p.p_q, &p.pecell, 0))
            .arg(read_via(&p.p_q, &p.pecell, 1))
            .arg(read_via(&p.p_adt, &p.pecell, 0))
            .arg(read_via(&p.p_adt, &p.pecell, 1))
            .arg(inc_via(&p.p_res, &p.pecell, 0))
            .arg(inc_via(&p.p_res, &p.pecell, 1))
            .run(
                |x1: &[f64],
                 x2: &[f64],
                 q1: &[f64],
                 q2: &[f64],
                 adt1: &[f64],
                 adt2: &[f64],
                 res1: &mut [f64],
                 res2: &mut [f64]| {
                    kernels::res_calc(x1, x2, q1, q2, adt1, adt2, res1, res2)
                },
            );

        // Boundary fluxes.
        op2.loop_("bres_calc", &p.bedges)
            .arg(read_via(&p.p_x, &p.pbedge, 0))
            .arg(read_via(&p.p_x, &p.pbedge, 1))
            .arg(read_via(&p.p_q, &p.pbecell, 0))
            .arg(read_via(&p.p_adt, &p.pbecell, 0))
            .arg(inc_via(&p.p_res, &p.pbecell, 0))
            .arg(read(&p.p_bound))
            .run(
                move |x1: &[f64],
                      x2: &[f64],
                      q1: &[f64],
                      adt1: &[f64],
                      res1: &mut [f64],
                      bound: &[i32]| {
                    kernels::bres_calc(x1, x2, q1, adt1, res1, bound, &qinf)
                },
            );

        // Update; a fresh rms Global per step keeps the pipeline free
        // of reduction-read barriers.
        let rms = Global::<f64>::sum(1, "rms");
        let h = op2
            .loop_("update", &p.cells)
            .arg(read(&p.p_qold))
            .arg(write(&p.p_q))
            .arg(rw(&p.p_res))
            .arg(read(&p.p_adt))
            .arg(gbl_inc(&rms))
            .run(
                |qold: &[f64], q: &mut [f64], res: &mut [f64], adt: &[f64], rms: &mut [f64]| {
                    kernels::update(qold, q, res, adt, rms)
                },
            );
        last_update = Some((rms, h));
    }

    let (rms, handle) = last_update.expect("two inner steps ran");
    // Asynchronous reduction read (paper Fig 9): the value becomes a
    // future gated on the update loop's finalize; nothing blocks here.
    StepOutput {
        residual: rms.reduce_async(op2),
        gates: vec![handle],
    }
}

/// One sharded Airfoil iteration across every locally hosted rank, with
/// the cross-rank `rms` as an allreduce future. Statement-for-statement
/// the body of the pre-harness `run_sharded` loop (no communication
/// calls: the halo rings schedule the `q`/`adt` exchanges when
/// `res_calc`'s stale halo reads are submitted).
pub(crate) fn step_sharded(shp: &ShardedProblem, skew: f64) -> StepOutput {
    let nranks = shp.parts.len();
    let first = shp.group.local_ranks().start;

    for (r, p) in shp.parts.iter().enumerate() {
        let op2 = shp.group.rank(first + r);
        op2.loop_("save_soln", &p.cells)
            .arg(read(&p.p_q))
            .arg(write(&p.p_qold))
            .run(|q: &[f64], qold: &mut [f64]| kernels::save_soln(q, qold));
    }

    let mut last_update: Option<(Vec<Global<f64>>, Vec<LoopHandle>)> = None;
    for _k in 0..2 {
        for (r, p) in shp.parts.iter().enumerate() {
            let op2 = shp.group.rank(first + r);
            let qinf = p.qinf;
            op2.loop_("adt_calc", &p.cells)
                .arg(read_via(&p.p_x, &p.pcell, 0))
                .arg(read_via(&p.p_x, &p.pcell, 1))
                .arg(read_via(&p.p_x, &p.pcell, 2))
                .arg(read_via(&p.p_x, &p.pcell, 3))
                .arg(read(&p.p_q))
                .arg(write(&p.p_adt))
                .run(
                    move |x1: &[f64],
                          x2: &[f64],
                          x3: &[f64],
                          x4: &[f64],
                          q: &[f64],
                          adt: &mut [f64]| {
                        kernels::adt_calc(x1, x2, x3, x4, q, adt);
                        if skew > 0.0 {
                            skew_work(skew, q, &qinf);
                        }
                    },
                );
        }

        // No manual exchange: res_calc's read_via(pecell) arguments
        // reach the halo rows, so submitting it refreshes the stale
        // q/adt imports automatically (sends chain behind the exported
        // rows' writers — `update` for q, `adt_calc` for adt — and
        // receives gate only res_calc's boundary blocks).
        for (r, p) in shp.parts.iter().enumerate() {
            let op2 = shp.group.rank(first + r);
            op2.loop_("res_calc", &p.edges)
                .arg(read_via(&p.p_x, &p.pedge, 0))
                .arg(read_via(&p.p_x, &p.pedge, 1))
                .arg(read_via(&p.p_q, &p.pecell, 0))
                .arg(read_via(&p.p_q, &p.pecell, 1))
                .arg(read_via(&p.p_adt, &p.pecell, 0))
                .arg(read_via(&p.p_adt, &p.pecell, 1))
                .arg(inc_via(&p.p_res, &p.pecell, 0))
                .arg(inc_via(&p.p_res, &p.pecell, 1))
                .run(
                    |x1: &[f64],
                     x2: &[f64],
                     q1: &[f64],
                     q2: &[f64],
                     adt1: &[f64],
                     adt2: &[f64],
                     res1: &mut [f64],
                     res2: &mut [f64]| {
                        kernels::res_calc(x1, x2, q1, q2, adt1, adt2, res1, res2)
                    },
                );
        }

        for (r, p) in shp.parts.iter().enumerate() {
            let op2 = shp.group.rank(first + r);
            let qinf = p.qinf;
            op2.loop_("bres_calc", &p.bedges)
                .arg(read_via(&p.p_x, &p.pbedge, 0))
                .arg(read_via(&p.p_x, &p.pbedge, 1))
                .arg(read_via(&p.p_q, &p.pbecell, 0))
                .arg(read_via(&p.p_adt, &p.pbecell, 0))
                .arg(inc_via(&p.p_res, &p.pbecell, 0))
                .arg(read(&p.p_bound))
                .run(
                    move |x1: &[f64],
                          x2: &[f64],
                          q1: &[f64],
                          adt1: &[f64],
                          res1: &mut [f64],
                          bound: &[i32]| {
                        kernels::bres_calc(x1, x2, q1, adt1, res1, bound, &qinf)
                    },
                );
        }

        let mut step_rms = Vec::with_capacity(nranks);
        let mut step_handles = Vec::with_capacity(nranks);
        for (r, p) in shp.parts.iter().enumerate() {
            let op2 = shp.group.rank(first + r);
            let rms = Global::<f64>::sum(1, "rms");
            let h = op2
                .loop_("update", &p.cells)
                .arg(read(&p.p_qold))
                .arg(write(&p.p_q))
                .arg(rw(&p.p_res))
                .arg(read(&p.p_adt))
                .arg(gbl_inc(&rms))
                .run(
                    |qold: &[f64], q: &mut [f64], res: &mut [f64], adt: &[f64], rms: &mut [f64]| {
                        kernels::update(qold, q, res, adt, rms)
                    },
                );
            step_rms.push(rms);
            step_handles.push(h);
        }
        last_update = Some((step_rms, step_handles));
    }

    let (rms, handles) = last_update.expect("two inner steps ran");
    // Asynchronous cross-rank allreduce: each rank's contribution node
    // gates on its own update finalize, the tree combines in fixed
    // rank order, and the total is a future — no rank's pipeline
    // drains here, even when printing every iteration.
    StepOutput {
        residual: shp.group.allreduce(&rms),
        gates: handles,
    }
}

fn rms_scale(ncell: usize) -> ResidualMap {
    let n = ncell as f64;
    Arc::new(move |v| (v / n).sqrt())
}

/// The borrowing plain instance [`crate::solver::run`] drives (borrowed
/// world + borrowed problem keeps the public `run(op2, &problem, cfg)`
/// signature intact).
pub struct PlainAirfoil<'a> {
    op2: &'a Op2,
    p: &'a Problem,
}

impl<'a> PlainAirfoil<'a> {
    /// Wraps an already-declared problem.
    pub fn new(op2: &'a Op2, p: &'a Problem) -> PlainAirfoil<'a> {
        PlainAirfoil { op2, p }
    }
}

impl AppInstance for PlainAirfoil<'_> {
    fn step(&mut self, _iter: usize) -> StepOutput {
        step_plain(self.op2, self.p)
    }

    fn residual_map(&self) -> ResidualMap {
        rms_scale(self.p.cells.size())
    }

    fn fence(&self) {
        self.op2.fence();
    }

    fn state(&self) -> Vec<f64> {
        self.p.p_q.snapshot()
    }
}

/// The borrowing sharded instance [`crate::shard::run_sharded`] drives.
pub struct ShardedAirfoil<'a> {
    shp: &'a mut ShardedProblem,
    skew: f64,
}

impl<'a> ShardedAirfoil<'a> {
    /// Wraps an already-declared sharded problem; `skew` is the
    /// artificial cost skew ([`crate::SolverConfig::skew`]).
    pub fn new(shp: &'a mut ShardedProblem, skew: f64) -> ShardedAirfoil<'a> {
        ShardedAirfoil { shp, skew }
    }
}

impl AppInstance for ShardedAirfoil<'_> {
    fn step(&mut self, _iter: usize) -> StepOutput {
        step_sharded(self.shp, self.skew)
    }

    fn residual_map(&self) -> ResidualMap {
        rms_scale(self.shp.ncell_global)
    }

    fn prints_here(&self) -> bool {
        self.shp.group.local_ranks().contains(&0)
    }

    fn fence(&self) {
        self.shp.group.fence();
    }

    fn rebalance(&mut self) -> Option<RebalanceReport> {
        self.shp.rebalance()
    }

    fn state(&self) -> Vec<f64> {
        self.shp.gather_q()
    }
}

/// Owning variants behind [`App::declare`] / [`App::declare_sharded`]
/// (the factory path carries its declarations with the instance).
struct DeclaredAirfoil<'a> {
    op2: &'a Op2,
    p: Problem,
}

impl AppInstance for DeclaredAirfoil<'_> {
    fn step(&mut self, _iter: usize) -> StepOutput {
        step_plain(self.op2, &self.p)
    }

    fn residual_map(&self) -> ResidualMap {
        rms_scale(self.p.cells.size())
    }

    fn fence(&self) {
        self.op2.fence();
    }

    fn state(&self) -> Vec<f64> {
        self.p.p_q.snapshot()
    }
}

struct DeclaredShardedAirfoil {
    shp: ShardedProblem,
}

impl AppInstance for DeclaredShardedAirfoil {
    fn step(&mut self, _iter: usize) -> StepOutput {
        step_sharded(&self.shp, 0.0)
    }

    fn residual_map(&self) -> ResidualMap {
        rms_scale(self.shp.ncell_global)
    }

    fn prints_here(&self) -> bool {
        self.shp.group.local_ranks().contains(&0)
    }

    fn fence(&self) {
        self.shp.group.fence();
    }

    fn rebalance(&mut self) -> Option<RebalanceReport> {
        self.shp.rebalance()
    }

    fn state(&self) -> Vec<f64> {
        self.shp.gather_q()
    }
}

/// The Airfoil benchmark as an [`App`]: a channel-with-bump mesh plus
/// the hand-ported five-loop iteration (the `.op2` spec describes the
/// same loops; its generated wrappers are golden-tested against the
/// hand-written code in `tests/generated_airfoil.rs`).
pub struct AirfoilApp {
    mesh: QuadMesh,
}

impl AirfoilApp {
    /// An `nx x ny` channel-with-bump mesh.
    pub fn new(nx: usize, ny: usize) -> AirfoilApp {
        AirfoilApp {
            mesh: channel_with_bump(nx, ny),
        }
    }

    /// Wraps an existing mesh.
    pub fn with_mesh(mesh: QuadMesh) -> AirfoilApp {
        AirfoilApp { mesh }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &QuadMesh {
        &self.mesh
    }
}

impl App for AirfoilApp {
    fn name(&self) -> &'static str {
        "airfoil"
    }

    fn spec(&self) -> &'static str {
        include_str!("../../translator/specs/airfoil.op2")
    }

    fn declare<'a>(&self, op2: &'a Op2) -> Box<dyn AppInstance + 'a> {
        Box::new(DeclaredAirfoil {
            op2,
            p: Problem::declare(op2, &self.mesh),
        })
    }

    fn declare_sharded(&self, config: Op2Config, nranks: usize) -> Box<dyn AppInstance> {
        Box::new(DeclaredShardedAirfoil {
            shp: ShardedProblem::declare(config, &self.mesh, nranks),
        })
    }

    fn default_run(&self) -> RunConfig {
        // The original driver: 1000 fixed iterations, window 16.
        RunConfig::iterations(1000, 16)
    }
}
