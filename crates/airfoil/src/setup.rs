//! Declaring the Airfoil problem to OP2 (paper §II: sets, maps, dats).

use op2_core::{Dat, Map, Op2, Set};
use op2_mesh::QuadMesh;

use crate::constants::qinf;

/// The declared OP2 problem: every set, map and dat of the Airfoil code,
/// mirroring `airfoil.cpp`.
pub struct Problem {
    /// Mesh nodes.
    pub nodes: Set,
    /// Interior edges.
    pub edges: Set,
    /// Boundary edges.
    pub bedges: Set,
    /// Cells.
    pub cells: Set,
    /// edge → 2 nodes.
    pub pedge: Map,
    /// edge → 2 cells.
    pub pecell: Map,
    /// bedge → 2 nodes.
    pub pbedge: Map,
    /// bedge → 1 cell.
    pub pbecell: Map,
    /// cell → 4 nodes.
    pub pcell: Map,
    /// Node coordinates (dim 2).
    pub p_x: Dat<f64>,
    /// Conserved variables (dim 4).
    pub p_q: Dat<f64>,
    /// Saved solution (dim 4).
    pub p_qold: Dat<f64>,
    /// Local timestep (dim 1).
    pub p_adt: Dat<f64>,
    /// Residual (dim 4).
    pub p_res: Dat<f64>,
    /// Boundary flags (dim 1).
    pub p_bound: Dat<i32>,
    /// Free-stream state.
    pub qinf: [f64; 4],
}

impl Problem {
    /// Declares sets, maps and dats for `mesh` and initializes the flow to
    /// free stream (exactly the original program's setup).
    pub fn declare(op2: &Op2, mesh: &QuadMesh) -> Problem {
        let nodes = op2.decl_set(mesh.nnode, "nodes");
        let edges = op2.decl_set(mesh.nedge, "edges");
        let bedges = op2.decl_set(mesh.nbedge, "bedges");
        let cells = op2.decl_set(mesh.ncell, "cells");

        let pedge = op2.decl_map(&edges, &nodes, 2, mesh.edge_nodes.clone(), "pedge");
        let pecell = op2.decl_map(&edges, &cells, 2, mesh.edge_cells.clone(), "pecell");
        let pbedge = op2.decl_map(&bedges, &nodes, 2, mesh.bedge_nodes.clone(), "pbedge");
        let pbecell = op2.decl_map(&bedges, &cells, 1, mesh.bedge_cells.clone(), "pbecell");
        let pcell = op2.decl_map(&cells, &nodes, 4, mesh.cell_nodes.clone(), "pcell");

        let qinf = qinf();
        let mut q0 = Vec::with_capacity(mesh.ncell * 4);
        for _ in 0..mesh.ncell {
            q0.extend_from_slice(&qinf);
        }

        let p_x = op2.decl_dat(&nodes, 2, "p_x", mesh.x.clone());
        let p_q = op2.decl_dat(&cells, 4, "p_q", q0);
        let p_qold = op2.decl_dat(&cells, 4, "p_qold", vec![0.0; mesh.ncell * 4]);
        let p_adt = op2.decl_dat(&cells, 1, "p_adt", vec![0.0; mesh.ncell]);
        let p_res = op2.decl_dat(&cells, 4, "p_res", vec![0.0; mesh.ncell * 4]);
        let p_bound = op2.decl_dat(&bedges, 1, "p_bound", mesh.bound.clone());

        Problem {
            nodes,
            edges,
            bedges,
            cells,
            pedge,
            pecell,
            pbedge,
            pbecell,
            pcell,
            p_x,
            p_q,
            p_qold,
            p_adt,
            p_res,
            p_bound,
            qinf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_core::Op2Config;
    use op2_mesh::channel_with_bump;

    #[test]
    fn declares_consistent_problem() {
        let op2 = Op2::new(Op2Config::seq());
        let mesh = channel_with_bump(10, 5);
        let p = Problem::declare(&op2, &mesh);
        assert_eq!(p.cells.size(), 50);
        assert_eq!(p.p_q.len(), 200);
        assert_eq!(p.pcell.dim(), 4);
        // Free-stream initialization.
        let q = p.p_q.snapshot();
        assert_eq!(&q[0..4], &p.qinf);
        assert_eq!(&q[196..200], &p.qinf);
    }
}
