//! Flow constants of the Airfoil benchmark (verbatim from the OP2
//! distribution's `airfoil.cpp` initialization).

/// Ratio of specific heats.
pub const GAM: f64 = 1.4;
/// `GAM - 1`.
pub const GM1: f64 = 0.4;
/// CFL number.
pub const CFL: f64 = 0.9;
/// Artificial-dissipation coefficient.
pub const EPS: f64 = 0.05;
/// Free-stream Mach number.
pub const MACH: f64 = 0.4;

/// Free-stream conserved variables `[ρ, ρu, ρv, ρE]`.
pub fn qinf() -> [f64; 4] {
    let p = 1.0f64;
    let r = 1.0f64;
    let u = (GAM * p / r).sqrt() * MACH;
    let e = p / (r * GM1) + 0.5 * u * u;
    [r, r * u, 0.0, r * e]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qinf_matches_original_values() {
        let q = qinf();
        assert!((q[0] - 1.0).abs() < 1e-15);
        assert!((q[1] - 0.4 * 1.4f64.sqrt()).abs() < 1e-15);
        assert_eq!(q[2], 0.0);
        // e = 1/0.4 + 0.5 u^2
        let u = q[1];
        assert!((q[3] - (2.5 + 0.5 * u * u)).abs() < 1e-15);
    }
}
