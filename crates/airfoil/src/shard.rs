//! Multi-locality sharding of the Airfoil problem: a partitioned mesh,
//! one `Op2` context per simulated rank, and a time loop whose halo
//! exchanges overlap interior compute.
//!
//! # Decomposition
//!
//! Cells are the partitioned set: [`op2_mesh::partition_greedy_bfs`] over
//! the cell-adjacency graph assigns every cell an owner rank, and
//! [`op2_mesh::build_halo`] over the `pecell` table derives, per rank, the
//! edges it executes and the remote cells it mirrors. Each rank then
//! declares a fully local problem:
//!
//! * **cells** — the owned cells (local ids `0..n_owned`, ascending global
//!   order), with the cell dats (`q`, `adt`, `res`) carrying halo mirror
//!   rows appended per peer rank (`decl_dat_halo`). Direct loops
//!   (`save_soln`, `adt_calc`, `update`) iterate the owned prefix only, so
//!   reductions never double-count;
//! * **edges** — every edge reaching at least one owned cell, *interior*
//!   edges (both cells owned) numbered first, *boundary* edges after.
//!   Partition-boundary edges are executed redundantly by both adjacent
//!   ranks (OP2's execute-halo), so residual increments never travel:
//!   each rank's owned cells accumulate all their contributions locally,
//!   while increments into halo rows are dead values that no loop reads;
//! * **nodes / bedges** — replicated as reached: coordinates are
//!   read-only, and a boundary edge belongs to its single cell's owner.
//!
//! # Implicit communication
//!
//! The time loop contains **no communication calls**. At declare time the
//! `q` and `adt` shards are tied into halo rings
//! ([`op2_core::locality::link_halo`]); from then on the access
//! descriptors alone drive the exchanges: `adt_calc`'s write of `adt` and
//! `update`'s write of `q` mark the exported halos stale, and submitting
//! `res_calc` — whose `read_via(pecell)` arguments reach the import rows —
//! schedules the gather/send/scatter nodes for exactly the stale pairs
//! before its own nodes are built. Nothing blocks: the send nodes chain
//! behind the epoch-table writers of the exported rows, the receive nodes
//! register as writers of the halo blocks, and `res_calc`'s interior
//! blocks — which reach no halo block — start immediately while the
//! exchange is in flight. Only the boundary blocks gate on the receives;
//! `bres_calc` reads through `pbecell`, which targets owned cells only,
//! so it triggers nothing.
//!
//! # Asynchronous reductions
//!
//! A rank's `rms` contribution is a per-rank [`Global`]; the cross-rank
//! total is produced by [`LocalityGroup::allreduce`], a reduction-tree LCO
//! whose per-rank contribution nodes gate on exactly that rank's update
//! finalize and whose combined result is a future. The time loop therefore
//! contains **zero blocking reduction reads**: residual printing chains
//! off the reduce future (ordered behind the previous line's print node),
//! and `rms_history` is collected from the futures after the final fence.
//! The reduce of iteration *i* overlaps iteration *i+1*'s interior
//! compute instead of draining every rank's pipeline the way a host-side
//! `get_scalar` sum per print used to.
//!
//! The `res` shards are deliberately *not* linked: increments into `res`
//! halo mirrors are dead values (partition-boundary edges are executed
//! redundantly by both ranks), so exchanging them would be pure waste.

use std::sync::Arc;

use op2_app::{plan_shards, ExitPolicy, RunConfig};
use op2_core::locality::{ExchangeOpts, HaloSpec, LocalityGroup};
use op2_core::rebalance::{
    agree_rank_busy, cost_levels, migrate_rows, MigrationSpec, DEFAULT_DEAD_ZONE,
};
use op2_core::transport::{InProcessTransport, Transport};
use op2_core::{Dat, Map, Op2Config, Set};
use op2_mesh::{
    neighbors_from_pairs, partition_greedy_bfs, partition_greedy_bfs_weighted, Partition, QuadMesh,
};

use crate::app::ShardedAirfoil;
use crate::constants::qinf;
use crate::solver::{RunResult, SolverConfig};

pub use op2_app::RebalanceReport;

/// One rank's fully local view of the Airfoil problem (compare
/// [`crate::Problem`], plus the shard bookkeeping).
pub struct RankProblem {
    /// Local mesh nodes (replicated as reached).
    pub nodes: Set,
    /// Local interior edges, interior-first (see module docs).
    pub edges: Set,
    /// Local boundary edges.
    pub bedges: Set,
    /// Owned cells.
    pub cells: Set,
    /// edge → 2 nodes.
    pub pedge: Map,
    /// edge → 2 cells (may target halo rows).
    pub pecell: Map,
    /// bedge → 2 nodes.
    pub pbedge: Map,
    /// bedge → 1 cell (always owned).
    pub pbecell: Map,
    /// owned cell → 4 nodes.
    pub pcell: Map,
    /// Node coordinates.
    pub p_x: Dat<f64>,
    /// Conserved variables, with halo rows.
    pub p_q: Dat<f64>,
    /// Saved solution (owned rows only — never read indirectly).
    pub p_qold: Dat<f64>,
    /// Local timestep, with halo rows.
    pub p_adt: Dat<f64>,
    /// Residual, with halo rows (halo increments are dead values).
    pub p_res: Dat<f64>,
    /// Boundary flags.
    pub p_bound: Dat<i32>,
    /// Free-stream state.
    pub qinf: [f64; 4],
    /// Edges `0..n_interior_edges` touch owned cells only.
    pub n_interior_edges: usize,
    /// Halo mirror rows appended to the cell dats.
    pub n_halo_cells: usize,
}

/// The sharded Airfoil problem: the rank contexts, their local problems,
/// and the cell halo spec shared by `q`/`adt`/`res`.
pub struct ShardedProblem {
    /// The rank contexts hosted by this process (shared worker pool).
    pub group: LocalityGroup,
    /// Local problems of the *locally hosted* ranks: `parts[i]` belongs to
    /// global rank `group.local_ranks().start + i` (all ranks under the
    /// default in-process transport).
    pub parts: Vec<RankProblem>,
    /// Cell halo exchange spec in local row numbering.
    pub cell_spec: HaloSpec,
    /// Owner rank of every global cell.
    pub cell_owner: Vec<u32>,
    /// Per rank: global ids of its owned cells, ascending — local owned
    /// row `i` of rank `r` is global cell `owned_cells[r][i]`.
    pub owned_cells: Vec<Vec<u32>>,
    /// Global cell count.
    pub ncell_global: usize,
    /// The global mesh, kept so [`ShardedProblem::rebalance`] can
    /// re-derive shards for a new ownership.
    pub mesh: QuadMesh,
}

impl ShardedProblem {
    /// Partitions `mesh` into `nranks` shards and declares every rank's
    /// local problem, all in this process (see module docs).
    /// Deterministic: the same mesh and rank count always produce the
    /// same shards.
    pub fn declare(config: Op2Config, mesh: &QuadMesh, nranks: usize) -> ShardedProblem {
        Self::declare_with_transport(config, mesh, Arc::new(InProcessTransport::new(nranks)))
    }

    /// [`ShardedProblem::declare`] over an explicit [`Transport`] — the
    /// distributed (SPMD) entry point: every participating process calls
    /// this with the same mesh, partitions it identically (the partition
    /// and halo derivation are deterministic), but declares sets, maps and
    /// dats only for its *locally hosted* ranks. The [`HaloSpec`] stays
    /// global so peers agree on traffic without negotiation.
    pub fn declare_with_transport(
        config: Op2Config,
        mesh: &QuadMesh,
        transport: Arc<dyn Transport>,
    ) -> ShardedProblem {
        let nranks = transport.nranks();
        assert!(
            nranks >= 1 && nranks <= mesh.ncell,
            "rank count must be in 1..=ncell"
        );
        let adj = neighbors_from_pairs(&mesh.edge_cells, mesh.ncell);
        let part = partition_greedy_bfs(&adj, nranks);
        let group = LocalityGroup::with_transport(config, transport);
        let owned_cells = part.owned_all();
        let (parts, spec) = declare_shards(&group, mesh, &part, &owned_cells);

        ShardedProblem {
            group,
            parts,
            cell_spec: spec,
            cell_owner: part.part_of,
            owned_cells,
            ncell_global: mesh.ncell,
            mesh: mesh.clone(),
        }
    }
}

/// Declares every locally hosted rank's shard of `mesh` for the ownership
/// `part` / `owned_all` (the latter is `part.owned_all()`, passed in so
/// callers can reuse it) and ties the `q`/`adt` shards into fresh halo
/// rings. Shared by first declaration and live repartitioning; fully
/// deterministic in its inputs.
fn declare_shards(
    group: &LocalityGroup,
    mesh: &QuadMesh,
    part: &Partition,
    owned_all: &[Vec<u32>],
) -> (Vec<RankProblem>, HaloSpec) {
    // The generic half — owned-first cell numbering, per-peer import
    // ranges, export rows, interior-first execute-halo split — is the
    // app-agnostic shard planner's job.
    let plan = plan_shards(mesh.ncell, &mesh.edge_cells, part, owned_all);
    let local = group.local_ranks();
    let qinf = qinf();

    let mut parts = Vec::with_capacity(local.len());

    {
        for (r, (owned, shard)) in owned_all.iter().zip(&plan.shards).enumerate() {
            let n_owned = shard.n_owned;
            debug_assert_eq!(n_owned, owned.len());
            let g2l_cell = &shard.g2l;
            let n_halo = shard.n_halo;

            // The spec is global; the entities below are per-process.
            if !local.contains(&r) {
                continue;
            }
            let op2 = group.rank(r);

            // Local edges: interior (both cells owned) first, boundary
            // after, each ascending in global order (the planner's split).
            let is_owned = |c: u32| part.part_of[c as usize] as usize == r;
            let n_interior = shard.n_interior;
            let ledges: Vec<u32> = shard.exec.clone();

            // Local boundary edges: owned by their single cell's owner.
            let lbedges: Vec<u32> = (0..mesh.nbedge as u32)
                .filter(|&b| is_owned(mesh.bedge_cells[b as usize]))
                .collect();

            // Local nodes: everything the local elements reach, ascending.
            let mut lnodes: Vec<u32> = Vec::new();
            for &c in owned {
                lnodes.extend_from_slice(&mesh.cell_nodes[4 * c as usize..4 * c as usize + 4]);
            }
            for &e in &ledges {
                lnodes.extend_from_slice(&mesh.edge_nodes[2 * e as usize..2 * e as usize + 2]);
            }
            for &b in &lbedges {
                lnodes.extend_from_slice(&mesh.bedge_nodes[2 * b as usize..2 * b as usize + 2]);
            }
            lnodes.sort_unstable();
            lnodes.dedup();
            let mut g2l_node = vec![u32::MAX; mesh.nnode];
            for (i, &gn) in lnodes.iter().enumerate() {
                g2l_node[gn as usize] = i as u32;
            }

            // Renumbered tables.
            let pcell_idx: Vec<u32> = owned
                .iter()
                .flat_map(|&c| {
                    mesh.cell_nodes[4 * c as usize..4 * c as usize + 4]
                        .iter()
                        .map(|&gn| g2l_node[gn as usize])
                })
                .collect();
            let pedge_idx: Vec<u32> = ledges
                .iter()
                .flat_map(|&e| {
                    mesh.edge_nodes[2 * e as usize..2 * e as usize + 2]
                        .iter()
                        .map(|&gn| g2l_node[gn as usize])
                })
                .collect();
            let pecell_idx: Vec<u32> = ledges
                .iter()
                .flat_map(|&e| {
                    mesh.edge_cells[2 * e as usize..2 * e as usize + 2]
                        .iter()
                        .map(|&gc| g2l_cell[gc as usize])
                })
                .collect();
            let pbedge_idx: Vec<u32> = lbedges
                .iter()
                .flat_map(|&b| {
                    mesh.bedge_nodes[2 * b as usize..2 * b as usize + 2]
                        .iter()
                        .map(|&gn| g2l_node[gn as usize])
                })
                .collect();
            let pbecell_idx: Vec<u32> = lbedges
                .iter()
                .map(|&b| g2l_cell[mesh.bedge_cells[b as usize] as usize])
                .collect();

            let nodes = op2.decl_set(lnodes.len(), "nodes");
            let edges = op2.decl_set(ledges.len(), "edges");
            let bedges = op2.decl_set(lbedges.len(), "bedges");
            let cells = op2.decl_set(n_owned, "cells");

            let pedge = op2.decl_map(&edges, &nodes, 2, pedge_idx, "pedge");
            let pecell = op2.decl_map_halo(&edges, &cells, 2, pecell_idx, "pecell", n_halo);
            let pbedge = op2.decl_map(&bedges, &nodes, 2, pbedge_idx, "pbedge");
            let pbecell = op2.decl_map(&bedges, &cells, 1, pbecell_idx, "pbecell");
            let pcell = op2.decl_map(&cells, &nodes, 4, pcell_idx, "pcell");

            let x_local: Vec<f64> = lnodes
                .iter()
                .flat_map(|&gn| {
                    let gn = gn as usize;
                    [mesh.x[2 * gn], mesh.x[2 * gn + 1]]
                })
                .collect();
            let bound_local: Vec<i32> = lbedges.iter().map(|&b| mesh.bound[b as usize]).collect();
            let n_cells_total = n_owned + n_halo;
            let mut q0 = Vec::with_capacity(n_cells_total * 4);
            for _ in 0..n_cells_total {
                q0.extend_from_slice(&qinf);
            }

            let p_x = op2.decl_dat(&nodes, 2, "p_x", x_local);
            let p_q = op2.decl_dat_halo(&cells, 4, "p_q", q0, n_halo);
            let p_qold = op2.decl_dat(&cells, 4, "p_qold", vec![0.0; n_owned * 4]);
            let p_adt = op2.decl_dat_halo(&cells, 1, "p_adt", vec![0.0; n_cells_total], n_halo);
            let p_res = op2.decl_dat_halo(&cells, 4, "p_res", vec![0.0; n_cells_total * 4], n_halo);
            let p_bound = op2.decl_dat(&bedges, 1, "p_bound", bound_local);

            parts.push(RankProblem {
                nodes,
                edges,
                bedges,
                cells,
                pedge,
                pecell,
                pbedge,
                pbecell,
                pcell,
                p_x,
                p_q,
                p_qold,
                p_adt,
                p_res,
                p_bound,
                qinf,
                n_interior_edges: n_interior,
                n_halo_cells: n_halo,
            });
        }
    }
    // Implicit communication: tie the q and adt shards into halo
    // rings so the time loop needs no manual exchange calls (res
    // halo increments are dead values — see module docs).
    let qs: Vec<Dat<f64>> = parts.iter().map(|p| p.p_q.clone()).collect();
    let adts: Vec<Dat<f64>> = parts.iter().map(|p| p.p_adt.clone()).collect();
    group.link_halo(&qs, &plan.spec);
    group.link_halo(&adts, &plan.spec);

    (parts, plan.spec)
}

impl ShardedProblem {
    /// Assembles the global solution vector from the ranks' owned rows
    /// (waits for pending writers). All-local groups only: a distributed
    /// process holds just its own shard of the solution.
    pub fn gather_q(&self) -> Vec<f64> {
        assert!(
            self.group.transport().all_local(),
            "gather_q needs every rank's rows in this process"
        );
        let mut q = vec![0.0f64; self.ncell_global * 4];
        for (r, part) in self.parts.iter().enumerate() {
            let local = part.p_q.read();
            for (i, &gc) in self.owned_cells[r].iter().enumerate() {
                q[4 * gc as usize..4 * gc as usize + 4].copy_from_slice(local.row(i));
            }
        }
        q
    }

    /// Checks the measured per-rank busy times for imbalance and, when
    /// the skew is outside the dead zone, live-repartitions: re-runs the
    /// greedy-BFS partitioner with cost-weighted quotas, declares fresh
    /// shards, migrates the flow state (`q`) into them as dataflow nodes
    /// — **without stopping the pipeline** — and retires the old shards'
    /// cached schedules and cost estimates. `None` means the workload is
    /// balanced (or unmeasured) and *nothing* changed: a run that never
    /// triggers stays bitwise identical to one that never checks.
    ///
    /// SPMD-safe: the decision is taken from [`agree_rank_busy`]'s agreed
    /// vector, so every process repartitions identically or not at all.
    /// Measured busy times reset after every check, triggered or not, so
    /// each decision sees only the load profile since the last one.
    pub fn rebalance(&mut self) -> Option<RebalanceReport> {
        let busy = agree_rank_busy(&self.group);
        self.rebalance_with_busy(&busy)
    }

    /// [`ShardedProblem::rebalance`] with the agreed per-rank busy times
    /// supplied by the caller — the deterministic entry point tests and
    /// drivers use to force (or provably not force) a migration.
    pub fn rebalance_with_busy(&mut self, busy: &[u64]) -> Option<RebalanceReport> {
        let nranks = self.group.nranks();
        assert_eq!(busy.len(), nranks, "one busy time per rank");
        let owned_sizes: Vec<usize> = self.owned_cells.iter().map(Vec::len).collect();
        let decision = cost_levels(busy, &owned_sizes, DEFAULT_DEAD_ZONE);
        // Fresh window either way: the next check must judge the load
        // profile that develops from *this* decision.
        self.reset_busy();
        let levels = decision?;

        // Each cell inherits its owner rank's measured per-element cost
        // level; the weighted partitioner then equalizes predicted work,
        // not cell counts.
        let mut weights = vec![1u64; self.ncell_global];
        for (r, owned) in self.owned_cells.iter().enumerate() {
            for &c in owned {
                weights[c as usize] = levels[r];
            }
        }
        let adj = neighbors_from_pairs(&self.mesh.edge_cells, self.mesh.ncell);
        let part = partition_greedy_bfs_weighted(&adj, nranks, &weights);
        let new_owned = part.owned_all();
        if new_owned == self.owned_cells {
            return None;
        }

        let (new_parts, new_spec) = declare_shards(&self.group, &self.mesh, &part, &new_owned);

        // Retire the old shards' cached schedules and measured costs
        // BEFORE any loop runs over the new sets: set signatures are
        // shape-based, so a rank re-declaring "cells" at an unchanged
        // size would otherwise hit the old shard's stale entries.
        let local = self.group.local_ranks();
        let mut specs_dropped = 0;
        for (i, p) in self.parts.iter().enumerate() {
            let op2 = self.group.rank(local.start + i);
            for sig in [
                p.cells.signature(),
                p.edges.signature(),
                p.bedges.signature(),
            ] {
                specs_dropped += op2.retire_set_signature(sig);
            }
        }

        // Only `q` carries state across iteration boundaries (`qold`,
        // `adt`, `res` are recomputed from it every iteration, and halo
        // mirrors refresh on first read) — migrate its owned rows as
        // ordinary epoch-table nodes and let the dependency chains gate
        // the new shards' first loops on the landings.
        let mspec = MigrationSpec::diff(&self.owned_cells, &new_owned);
        let old_q: Vec<Dat<f64>> = self.parts.iter().map(|p| p.p_q.clone()).collect();
        let new_q: Vec<Dat<f64>> = new_parts.iter().map(|p| p.p_q.clone()).collect();
        migrate_rows(
            &self.group,
            &old_q,
            &new_q,
            &mspec,
            &ExchangeOpts::default(),
        );

        let report = RebalanceReport {
            busy_ns: busy.to_vec(),
            levels,
            rows_crossing: mspec.rows_crossing(),
            specs_dropped,
        };
        self.parts = new_parts;
        self.cell_spec = new_spec;
        self.cell_owner = part.part_of;
        self.owned_cells = new_owned;
        Some(report)
    }

    fn reset_busy(&self) {
        // Rank worlds in one process share the feedback table, but under
        // a shared spec cache the table may span processes' worth of
        // state — reset through every local world to stay correct for
        // both wirings.
        for world in self.group.ranks() {
            world.granularity_feedback().reset_rank_busy();
        }
    }
}

/// Extra spin work proportional to how far this cell's state has moved
/// off free stream — the "work follows the flow gradient" cost model of
/// the load-balancing demo ([`SolverConfig::skew`]). Burns time only;
/// every dat value stays bitwise identical to the unskewed kernel.
#[inline]
pub(crate) fn skew_work(skew: f64, q: &[f64], qinf: &[f64; 4]) {
    let dev: f64 = q.iter().zip(qinf).map(|(a, b)| (a - b).abs()).sum();
    let spins = (skew * dev) as u64;
    let mut acc = 0u64;
    for i in 0..spins {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        std::hint::black_box(acc);
    }
}

/// Runs `cfg.niter` Airfoil iterations over the sharded problem — the
/// `--ranks N` execution path. Loop-for-loop equivalent to
/// [`crate::solver::run`] with **zero communication calls**: the halo
/// rings linked at declare time schedule the `q`/`adt` exchanges when
/// `res_calc`'s stale halo reads are submitted (overlapped with interior
/// compute under the Dataflow backend; see module docs).
///
/// Takes the problem `&mut` because `cfg.rebalance_every > 0` lets the
/// loop live-repartition between iterations
/// ([`ShardedProblem::rebalance`]); with rebalancing off the problem is
/// only read.
pub fn run_sharded(shp: &mut ShardedProblem, cfg: &SolverConfig) -> RunResult {
    let ncell = shp.ncell_global;
    let mut inst = ShardedAirfoil::new(shp, cfg.skew);
    let out = op2_app::run(
        &mut inst,
        RunConfig {
            exit: ExitPolicy::Iterations(cfg.niter),
            window: cfg.window,
            print_every: cfg.print_every,
            rebalance_every: cfg.rebalance_every,
        },
    );
    RunResult {
        rms_history: out.residuals,
        elapsed: out.elapsed,
        ncell,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_mesh::channel_with_bump;

    fn shard(nranks: usize) -> (QuadMesh, ShardedProblem) {
        let mesh = channel_with_bump(16, 8);
        let shp = ShardedProblem::declare(Op2Config::seq(), &mesh, nranks);
        (mesh, shp)
    }

    #[test]
    fn shards_cover_the_mesh_exactly() {
        let (mesh, shp) = shard(3);
        // Owned cells partition the global cells.
        let mut owner_seen = vec![0usize; mesh.ncell];
        for owned in &shp.owned_cells {
            for &c in owned {
                owner_seen[c as usize] += 1;
            }
        }
        assert!(owner_seen.iter().all(|&n| n == 1));
        // Every global boundary edge executes on exactly one rank; every
        // interior edge on the owner(s) of its cells.
        let total_bedges: usize = shp.parts.iter().map(|p| p.bedges.size()).sum();
        assert_eq!(total_bedges, mesh.nbedge);
        let total_edges: usize = shp.parts.iter().map(|p| p.edges.size()).sum();
        assert!(total_edges >= mesh.nedge, "exec halo duplicates edges");
    }

    #[test]
    fn interior_prefix_reaches_no_halo() {
        let (_, shp) = shard(4);
        for p in &shp.parts {
            let n_owned = p.cells.size();
            for e in 0..p.edges.size() {
                let reaches_halo = p.pecell.at(e, 0) >= n_owned || p.pecell.at(e, 1) >= n_owned;
                assert_eq!(
                    reaches_halo,
                    e >= p.n_interior_edges,
                    "edge {e} misplaced relative to the interior prefix"
                );
            }
            // Boundary-edge cells are always owned.
            for b in 0..p.bedges.size() {
                assert!(p.pbecell.at(b, 0) < n_owned);
            }
        }
    }

    #[test]
    fn sharded_seq_single_rank_is_bitwise_the_plain_run() {
        let mesh = channel_with_bump(12, 6);
        let cfg = SolverConfig {
            niter: 4,
            window: 2,
            print_every: 0,
            ..SolverConfig::default()
        };
        // Plain single-context run.
        let op2 = op2_core::Op2::new(Op2Config::seq());
        let p = crate::Problem::declare(&op2, &mesh);
        let plain = crate::solver::run(&op2, &p, &cfg);
        let q_plain = p.p_q.snapshot();
        // Sharded run with one rank: identical renumbering, identical
        // execution order under Seq — results must match bit for bit.
        let mut shp = ShardedProblem::declare(Op2Config::seq(), &mesh, 1);
        let sharded = run_sharded(&mut shp, &cfg);
        assert_eq!(sharded.rms_history, plain.rms_history);
        assert_eq!(shp.gather_q(), q_plain);
    }

    #[test]
    fn sharded_dataflow_smoke() {
        let mesh = channel_with_bump(12, 6);
        let cfg = SolverConfig {
            niter: 3,
            window: 2,
            print_every: 0,
            ..SolverConfig::default()
        };
        let mut shp = ShardedProblem::declare(Op2Config::dataflow(2), &mesh, 3);
        let r = run_sharded(&mut shp, &cfg);
        assert!(r.rms_history.iter().all(|v| v.is_finite()));
    }
}
