//! Shared CLI parsing for the figure binaries.

/// Common figure-harness options.
#[derive(Debug, Clone)]
pub struct SweepArgs {
    /// Target cell count for the Airfoil mesh.
    pub cells: usize,
    /// Outer iterations per measurement.
    pub iters: usize,
    /// Thread counts to sweep.
    pub threads: Vec<usize>,
    /// Repetitions (min-of) per point.
    pub reps: usize,
    /// Optional CSV output path.
    pub csv: Option<std::path::PathBuf>,
    /// Optional machine-readable JSON output path.
    pub json: Option<std::path::PathBuf>,
}

impl Default for SweepArgs {
    fn default() -> Self {
        let hw = std::thread::available_parallelism().map_or(2, |n| n.get());
        SweepArgs {
            cells: 60_000,
            iters: 30,
            // The paper sweeps 1..32 on a 16-core/32-thread box; default
            // here stops at 2x the available cores (oversubscription is
            // reported, not hidden).
            threads: default_thread_sweep(hw),
            reps: 2,
            csv: None,
            json: None,
        }
    }
}

/// 1, 2, 4, ... up to `2 * hw` (the paper's hyperthreaded tail).
pub fn default_thread_sweep(hw: usize) -> Vec<usize> {
    let mut v = vec![1usize];
    while *v.last().unwrap() < 2 * hw {
        v.push(v.last().unwrap() * 2);
    }
    v
}

/// Parses `--cells`, `--iters`, `--threads a,b,c`, `--reps`, `--csv PATH`,
/// `--json PATH`; panics with a readable message on bad input.
pub fn parse_sweep_args() -> SweepArgs {
    let mut args = SweepArgs::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.cells = value("--cells").parse().expect("--cells"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps"),
            "--threads" => {
                args.threads = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads"))
                    .collect();
            }
            "--csv" => args.csv = Some(value("--csv").into()),
            "--json" => args.json = Some(value("--json").into()),
            "--paper-scale" => {
                args.cells = 720_000;
                args.iters = 100;
            }
            "--help" | "-h" => {
                println!(
                    "figure harness options:\n\
                     --cells N       Airfoil mesh size (default 60000)\n\
                     --iters N       iterations per measurement (default 30)\n\
                     --threads LIST  e.g. 1,2,4,8,16,32\n\
                     --reps N        repetitions, min-of (default 2)\n\
                     --csv PATH      also write CSV\n\
                     --json PATH     also write machine-readable JSON\n\
                     --paper-scale   ~720K cells, 100 iters"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    assert!(!args.threads.is_empty(), "--threads must not be empty");
    args
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_powers_of_two_to_double_hw() {
        assert_eq!(default_thread_sweep(2), vec![1, 2, 4]);
        assert_eq!(default_thread_sweep(16), vec![1, 2, 4, 8, 16, 32]);
    }

    #[test]
    fn defaults_are_sane() {
        let a = SweepArgs::default();
        assert!(a.cells > 0 && a.iters > 0 && !a.threads.is_empty());
    }
}
