//! Cross-rank reduction micro-benchmark: the asynchronous reduction tree
//! (`LocalityGroup::allreduce`) vs the blocking host-side sum it replaced.
//!
//! Every simulated rank runs one compute loop per iteration that
//! increments a fresh per-rank `Global` (the Airfoil `update`/`rms`
//! pattern, with per-element spin work) and chains iterations through a
//! written dat. The per-iteration total is then consumed two ways:
//!
//! * **blocking** — the pre-redesign schedule: the host reads the reduced
//!   value inside the loop (`ReducedFuture::get_scalar` right after
//!   submission — semantically the old per-rank `get_scalar()` sum). This
//!   drains every rank's pipeline each iteration and puts the injected
//!   link delay squarely on the critical path;
//! * **async-tree** — the redesign: the allreduce result stays a future,
//!   the next iteration is submitted immediately, residual consumption
//!   chains off continuations, and the reduce (including its link delay)
//!   overlaps the following iteration's compute.
//!
//! An injected per-contribution link delay models the interconnect cost
//! of moving partials between localities. Emits a JSON baseline (default
//! `BENCH_reduce.json`). Options: `--cells` (per rank), `--iters`,
//! `--ranks`, `--threads a,b,c`, `--reps`, `--latency-us`,
//! `--min-speedup` (gate: exit non-zero if the async tree does not reach
//! this speedup over blocking at any swept thread count), `--csv`,
//! `--json`.

use std::time::{Duration, Instant};

use op2_bench::{SweepArgs, Table};
use op2_core::args::{gbl_inc, write};
use op2_core::locality::{ExchangeOpts, LocalityGroup};
use op2_core::{Dat, Global, Op2Config, ReducedFuture, Set};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schedule {
    AsyncTree,
    Blocking,
}

impl Schedule {
    fn label(self) -> &'static str {
        match self {
            Schedule::AsyncTree => "async-tree",
            Schedule::Blocking => "blocking",
        }
    }
}

fn spin(units: usize) {
    let mut acc = 1.0f64;
    for _ in 0..units {
        acc = (acc * 1.000001 + 1.0).sqrt();
    }
    std::hint::black_box(acc);
}

struct RankState {
    cells: Set,
    q: Dat<f64>,
}

fn run_solve(
    schedule: Schedule,
    threads: usize,
    ranks: usize,
    n: usize,
    iters: usize,
    latency: Duration,
) -> (Duration, f64) {
    let group = LocalityGroup::new(Op2Config::dataflow(threads), ranks);
    let states: Vec<RankState> = (0..ranks)
        .map(|r| {
            let op2 = group.rank(r);
            let cells = op2.decl_set(n, "cells");
            let q = op2.decl_dat(&cells, 1, "q", vec![0.0f64; n]);
            RankState { cells, q }
        })
        .collect();
    let opts = ExchangeOpts {
        link_delay: Some(latency),
    };

    let t0 = Instant::now();
    let mut history: Vec<ReducedFuture<f64>> = Vec::with_capacity(iters);
    let mut checksum = 0.0f64;
    for it in 0..iters {
        let globals: Vec<Global<f64>> = (0..ranks).map(|_| Global::<f64>::sum(1, "rms")).collect();
        for (r, s) in states.iter().enumerate() {
            let v = (it + r) as f64;
            // The q write chains this rank's iterations (WAR/RAW through
            // the dat) like the solver's update loop.
            group
                .rank(r)
                .loop_("update", &s.cells)
                .arg(write(&s.q))
                .arg(gbl_inc(&globals[r]))
                .run(move |q: &mut [f64], acc: &mut [f64]| {
                    spin(40);
                    q[0] = v;
                    acc[0] += 1.0;
                });
        }
        let red = group.allreduce_with(&globals, &opts);
        match schedule {
            Schedule::Blocking => {
                // Host-side barrier: every rank's update must finalize and
                // every contribution must cross the (delayed) link before
                // the next iteration is even submitted.
                checksum += red.get_scalar();
            }
            Schedule::AsyncTree => history.push(red),
        }
    }
    group.fence();
    // Residual-history collection off the futures, outside the loop.
    checksum += history.iter().map(ReducedFuture::get_scalar).sum::<f64>();
    (t0.elapsed(), checksum)
}

struct Args {
    sweep: SweepArgs,
    ranks: usize,
    latency_us: u64,
    min_speedup: f64,
    json_path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        sweep: SweepArgs {
            cells: 20_000,
            iters: 30,
            // The link delay occupies a worker for its duration (it models
            // the wire inside the contribution node, like exchange_with's
            // send node), so the pool needs at least `ranks` workers for
            // one reduce round not to monopolize it — sweep ranks and 2x.
            threads: vec![4, 8],
            ..SweepArgs::default()
        },
        ranks: 4,
        latency_us: 200,
        min_speedup: 0.0,
        json_path: "BENCH_reduce.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.sweep.cells = value("--cells").parse().expect("--cells"),
            "--iters" => args.sweep.iters = value("--iters").parse().expect("--iters"),
            "--reps" => args.sweep.reps = value("--reps").parse().expect("--reps"),
            "--ranks" => args.ranks = value("--ranks").parse().expect("--ranks"),
            "--latency-us" => {
                args.latency_us = value("--latency-us").parse().expect("--latency-us")
            }
            "--min-speedup" => {
                args.min_speedup = value("--min-speedup").parse().expect("--min-speedup")
            }
            "--threads" => {
                args.sweep.threads = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads"))
                    .collect();
            }
            "--csv" => args.sweep.csv = Some(value("--csv").into()),
            "--json" => args.json_path = value("--json"),
            "--help" | "-h" => {
                println!(
                    "reduce_overlap options:\n\
                     --cells N        owned cells per rank (default 20000)\n\
                     --iters N        solver iterations (default 30)\n\
                     --ranks N        simulated localities (default 4)\n\
                     --latency-us N   injected per-contribution link delay (default 200)\n\
                     --min-speedup X  fail unless async-tree reaches X vs blocking (default: no gate)\n\
                     --threads LIST   e.g. 1,2,4\n\
                     --reps N         repetitions, min-of (default 2)\n\
                     --csv PATH       also write CSV\n\
                     --json PATH      JSON baseline (default BENCH_reduce.json)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    assert!(
        args.ranks >= 2,
        "--ranks must be at least 2: a reduction tree over one rank has nothing to combine"
    );
    let latency = Duration::from_micros(args.latency_us);

    println!("reduce_overlap: async reduction tree vs blocking host-side sum");
    println!(
        "cells/rank={} ranks={} iters={} latency={}us reps={}",
        args.sweep.cells, args.ranks, args.sweep.iters, args.latency_us, args.sweep.reps
    );
    let mut table = Table::new(vec![
        "schedule",
        "threads",
        "best_seconds",
        "speedup_vs_blocking",
    ]);
    let mut rows: Vec<(String, usize, f64, f64)> = Vec::new();
    let mut best_speedup = 0.0f64;

    for &threads in &args.sweep.threads {
        let mut blocking_best = f64::NAN;
        for schedule in [Schedule::Blocking, Schedule::AsyncTree] {
            let mut best = Duration::MAX;
            let mut checksum = 0.0;
            for _ in 0..args.sweep.reps.max(1) {
                let (elapsed, sum) = run_solve(
                    schedule,
                    threads,
                    args.ranks,
                    args.sweep.cells,
                    args.sweep.iters,
                    latency,
                );
                best = best.min(elapsed);
                checksum = sum;
            }
            // Both schedules consume identical totals — guard the workload.
            let expected = (args.ranks * args.sweep.cells * args.sweep.iters) as f64;
            assert_eq!(checksum, expected, "reduction totals diverged");
            let secs = best.as_secs_f64();
            if schedule == Schedule::Blocking {
                blocking_best = secs;
            }
            let speedup = blocking_best / secs;
            if schedule == Schedule::AsyncTree {
                best_speedup = best_speedup.max(speedup);
            }
            rows.push((schedule.label().to_owned(), threads, secs, speedup));
            table.row(vec![
                schedule.label().to_owned(),
                threads.to_string(),
                format!("{secs:.4}"),
                format!("{speedup:.3}x"),
            ]);
        }
    }
    println!("{}", table.render());
    if let Some(csv) = &args.sweep.csv {
        table.write_csv(csv).expect("write CSV");
    }

    // Hand-rolled JSON (offline build: no serde).
    let mut json = String::from("{\n  \"bench\": \"reduce_overlap\",\n");
    json.push_str(&format!(
        "  \"cells_per_rank\": {}, \"ranks\": {}, \"iters\": {}, \"latency_us\": {}, \
         \"reps\": {}, \"host_threads\": {},\n  \"results\": [\n",
        args.sweep.cells,
        args.ranks,
        args.sweep.iters,
        args.latency_us,
        args.sweep.reps,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    for (i, (schedule, threads, secs, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"schedule\": \"{schedule}\", \"threads\": {threads}, \
             \"best_seconds\": {secs:.6}, \"speedup_vs_blocking\": {speedup:.4}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.json_path, json).expect("write JSON baseline");
    println!("wrote {}", args.json_path);

    if args.min_speedup > 0.0 && best_speedup < args.min_speedup {
        eprintln!(
            "FAIL: async-tree best speedup {best_speedup:.3}x < required {:.3}x",
            args.min_speedup
        );
        std::process::exit(1);
    }
}
