//! **Fig 20**: transfer rate of the prefetching iterator for different
//! `prefetch_distance_factor` values. The paper finds very small
//! distances too expensive, very large ones useless, and 15 optimal for
//! the Airfoil-shaped loop.

use op2_bench::{bandwidth_run, parse_sweep_args, Table};

const DISTANCES: [usize; 8] = [1, 2, 5, 10, 15, 25, 50, 100];

fn main() {
    let args = parse_sweep_args();
    let elements = (args.cells * 16).max(1 << 20);
    let passes = args.iters.max(3);
    println!(
        "Fig 20 — transfer rate vs prefetch_distance_factor \
         (elements={elements}, passes={passes})\n"
    );
    let mut header = vec!["threads".to_string(), "no_prefetch".to_string()];
    header.extend(DISTANCES.iter().map(|d| format!("d={d}")));
    let mut table = Table::new(header);
    for &t in &args.threads {
        let mut row = vec![t.to_string()];
        row.push(format!("{:.2}", bandwidth_run(t, elements, passes, None)));
        for &d in &DISTANCES {
            row.push(format!(
                "{:.2}",
                bandwidth_run(t, elements, passes, Some(d))
            ));
        }
        table.row(row);
    }
    print!("{}", table.render());
    println!("\n(all values GiB/s; paper optimum: d=15)");
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}
