//! **Fig 20**: transfer rate of the prefetching iterator for different
//! `prefetch_distance_factor` values. The paper finds very small
//! distances too expensive, very large ones useless, and 15 optimal for
//! the Airfoil-shaped loop.

use op2_bench::{bandwidth_run, parse_sweep_args, Table};

const DISTANCES: [usize; 8] = [1, 2, 5, 10, 15, 25, 50, 100];

fn main() {
    let args = parse_sweep_args();
    let elements = (args.cells * 16).max(1 << 20);
    let passes = args.iters.max(3);
    println!(
        "Fig 20 — transfer rate vs prefetch_distance_factor \
         (elements={elements}, passes={passes})\n"
    );
    let mut header = vec!["threads".to_string(), "no_prefetch".to_string()];
    header.extend(DISTANCES.iter().map(|d| format!("d={d}")));
    let mut table = Table::new(header);
    let mut rows: Vec<(usize, f64, Vec<f64>)> = Vec::new();
    for &t in &args.threads {
        let mut row = vec![t.to_string()];
        let base = bandwidth_run(t, elements, passes, None);
        row.push(format!("{base:.2}"));
        let mut rates = Vec::with_capacity(DISTANCES.len());
        for &d in &DISTANCES {
            let rate = bandwidth_run(t, elements, passes, Some(d));
            rates.push(rate);
            row.push(format!("{rate:.2}"));
        }
        rows.push((t, base, rates));
        table.row(row);
    }
    print!("{}", table.render());
    println!("\n(all values GiB/s; paper optimum: d=15)");
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &args.json {
        // Hand-rolled JSON (offline build: no serde).
        let mut json = String::from("{\n  \"bench\": \"fig20_prefetch_distance\",\n");
        json.push_str(&format!(
            "  \"elements\": {elements}, \"passes\": {passes},\n  \"points\": [\n"
        ));
        for (i, (t, base, rates)) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"threads\": {t}, \"no_prefetch_gibs\": {base:.4}, \"by_distance\": ["
            ));
            for (j, (d, rate)) in DISTANCES.iter().zip(rates).enumerate() {
                json.push_str(&format!(
                    "{{\"distance\": {d}, \"gibs\": {rate:.4}}}{}",
                    if j + 1 < DISTANCES.len() { ", " } else { "" }
                ));
            }
            json.push_str(&format!(
                "]}}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, json).expect("write JSON");
        eprintln!("wrote {}", path.display());
    }
}
