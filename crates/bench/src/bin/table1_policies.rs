//! **Table I**: the execution policies implemented in HPX, demonstrated
//! on a fixed reduction workload (per-chunk partials, no shared-cacheline
//! contention). `seq`/`par` block; `seq(task)`/`par(task)` return
//! futures; `par_vec` delegates vectorization to the compiler (see the
//! `hpx_rt::policy` docs).

use std::sync::Arc;
use std::time::Instant;

use hpx_rt::{par, par_task, par_vec, reduce, reduce_async, seq, seq_task, Runtime};
use op2_bench::Table;

fn main() {
    let rt = Runtime::new(std::thread::available_parallelism().map_or(2, |n| n.get()));
    let n = 4_000_000usize;
    let data: Arc<Vec<f64>> = Arc::new((0..n).map(|i| (i as f64).sqrt()).collect());
    let expected = reduce(&rt, &seq(), 0..n, 0.0f64, |i| data[i].sin(), |a, b| a + b);

    println!("Table I — execution policies (workload: {n}-element sin-sum reduction)\n");
    let mut table = Table::new(vec!["policy", "description", "implemented_by", "time_ms"]);

    let timed_sync = |policy: hpx_rt::ExecutionPolicy| {
        let t = Instant::now();
        let v = reduce(&rt, &policy, 0..n, 0.0f64, |i| data[i].sin(), |a, b| a + b);
        assert!((v - expected).abs() < 1e-6 * expected.abs());
        t.elapsed().as_secs_f64() * 1e3
    };
    let timed_async = |policy: hpx_rt::ExecutionPolicy| {
        let d = Arc::clone(&data);
        let t = Instant::now();
        let fut = reduce_async(&rt, policy, 0..n, 0.0f64, move |i| d[i].sin(), |a, b| a + b);
        let v = fut.get();
        assert!((v - expected).abs() < 1e-6 * expected.abs());
        t.elapsed().as_secs_f64() * 1e3
    };

    table.row(vec![
        "seq".into(),
        "sequential execution".into(),
        "Parallelism TS, HPX".into(),
        format!("{:.2}", timed_sync(seq())),
    ]);
    table.row(vec![
        "par".into(),
        "parallel execution".into(),
        "Parallelism TS, HPX".into(),
        format!("{:.2}", timed_sync(par())),
    ]);
    table.row(vec![
        "par_vec".into(),
        "parallel and vectorized execution".into(),
        "Parallelism TS".into(),
        format!("{:.2}", timed_sync(par_vec())),
    ]);
    table.row(vec![
        "seq(task)".into(),
        "sequential and asynchronous execution".into(),
        "HPX".into(),
        format!("{:.2}", timed_async(seq_task())),
    ]);
    table.row(vec![
        "par(task)".into(),
        "parallel and asynchronous execution".into(),
        "HPX".into(),
        format!("{:.2}", timed_async(par_task())),
    ]);

    print!("{}", table.render());

    if let Some(path) = std::env::args().skip_while(|a| a != "--csv").nth(1) {
        table.write_csv(std::path::Path::new(&path)).expect("csv");
        eprintln!("wrote {path}");
    }
}
