//! `simd_layout` — AoS-scalar vs SoA-vectorized airfoil kernels.
//!
//! Measures the three hot Airfoil kernels (`adt_calc`, `res_calc`,
//! `update`) two ways over the same channel mesh:
//!
//! * **aos-scalar** — the per-element scalar kernel from
//!   `airfoil_cfd::kernels`, called one element at a time through a
//!   `black_box`ed function pointer (the dispatch shape of the generated
//!   per-element wrappers; the pointer stops LLVM from fusing and
//!   cross-element-vectorizing the baseline into something no per-element
//!   framework dispatch could run).
//! * **soa-vector** — the block-level hand-vectorized kernels from
//!   `airfoil_cfd::simd` over SoA component planes.
//!
//! Reports elements/s and effective GiB/s per kernel at each thread count
//! and writes `BENCH_simd.json`. `--min-speedup X` is the CI gate: at the
//! highest thread count, at least one kernel's SoA-vector elements/s must
//! be `X`x the AoS-scalar baseline.

use std::cell::UnsafeCell;
use std::hint::black_box;
use std::ops::Range;
use std::time::Instant;

use airfoil_cfd::constants::qinf;
use airfoil_cfd::{kernels, simd};
use op2_bench::Table;
use op2_mesh::QuadMesh;

struct Args {
    cells: usize,
    passes: usize,
    threads: Vec<usize>,
    reps: usize,
    json_path: String,
    min_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cells: 60_000,
        passes: 40,
        threads: vec![1, 2, 4],
        reps: 3,
        json_path: "BENCH_simd.json".to_owned(),
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.cells = value("--cells").parse().expect("--cells"),
            "--passes" => args.passes = value("--passes").parse().expect("--passes"),
            "--threads" => {
                args.threads = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads"))
                    .collect();
            }
            "--reps" => args.reps = value("--reps").parse().expect("--reps"),
            "--json" => args.json_path = value("--json"),
            "--min-speedup" => {
                args.min_speedup = Some(value("--min-speedup").parse().expect("--min-speedup"))
            }
            "--help" | "-h" => {
                println!(
                    "simd_layout options:\n\
                     --cells N        mesh size in cells (default 60000)\n\
                     --passes N       kernel passes per measurement (default 40)\n\
                     --threads LIST   e.g. 1,2,4 (default)\n\
                     --reps N         repetitions, best-of (default 3)\n\
                     --json PATH      JSON output (default BENCH_simd.json)\n\
                     --min-speedup X  CI gate: require one kernel at X x at max threads"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    assert!(!args.threads.is_empty(), "--threads must not be empty");
    args
}

/// Shared mutable array for the scoped worker threads. Threads write
/// disjoint element ranges (the same discipline `op2-core` enforces
/// through its executors), so the aliased views never race.
struct SharedVec(UnsafeCell<Vec<f64>>);

// SAFETY: every access pattern in this binary partitions the element range
// across threads before touching the data.
unsafe impl Sync for SharedVec {}

impl SharedVec {
    fn new(v: Vec<f64>) -> Self {
        SharedVec(UnsafeCell::new(v))
    }

    /// # Safety
    ///
    /// Callers in different threads must write disjoint index sets.
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice_mut(&self) -> &mut [f64] {
        unsafe { (*self.0.get()).as_mut_slice() }
    }
}

/// Splits `0..n` into `t` contiguous chunks.
fn ranges(n: usize, t: usize) -> Vec<Range<usize>> {
    let t = t.max(1);
    let chunk = n.div_ceil(t);
    (0..t)
        .map(|i| (i * chunk).min(n)..((i + 1) * chunk).min(n))
        .collect()
}

/// Two disjoint 4-wide rows of an AoS residual buffer.
fn two_rows(res: &mut [f64], c1: usize, c2: usize) -> (&mut [f64], &mut [f64]) {
    debug_assert_ne!(c1, c2, "interior edges join distinct cells");
    let p = res.as_mut_ptr();
    // SAFETY: c1 != c2, rows are 4 apart and in-bounds.
    unsafe {
        (
            std::slice::from_raw_parts_mut(p.add(c1 * 4), 4),
            std::slice::from_raw_parts_mut(p.add(c2 * 4), 4),
        )
    }
}

fn to_planes(aos: &[f64], rows: usize, dim: usize) -> Vec<f64> {
    let mut p = vec![0.0; aos.len()];
    for e in 0..rows {
        for c in 0..dim {
            p[c * rows + e] = aos[e * dim + c];
        }
    }
    p
}

/// Times `passes` calls of `pass`, best wall time over `reps`.
fn bench(passes: usize, reps: usize, mut pass: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        for _ in 0..passes {
            pass();
        }
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Approximate bytes touched per element (reads + writes of payload and
/// index tables) — turns elements/s into an effective bandwidth.
const UPDATE_BYTES: usize = 136; // qold 32 + q 32 + res 64 (r+w) + adt 8
const ADT_BYTES: usize = 120; // x 64 (gathered) + q 32 + adt 8 + pcell 16
const RES_BYTES: usize = 256; // x 32 + q 64 + adt 16 + res 128 (r+w) + maps 16

struct Point {
    kernel: &'static str,
    threads: usize,
    elements: usize,
    aos_secs: f64,
    soa_secs: f64,
    bytes_per_elem: usize,
}

impl Point {
    fn aos_eps(&self, passes: usize) -> f64 {
        self.elements as f64 * passes as f64 / self.aos_secs
    }
    fn soa_eps(&self, passes: usize) -> f64 {
        self.elements as f64 * passes as f64 / self.soa_secs
    }
    fn speedup(&self) -> f64 {
        self.aos_secs / self.soa_secs
    }
}

fn main() {
    let args = parse_args();
    let mesh = QuadMesh::with_cells(args.cells);
    let (ncell, nnode, nedge) = (mesh.ncell, mesh.nnode, mesh.nedge);
    println!(
        "simd_layout — AoS-scalar vs SoA-vector airfoil kernels\n\
         cells={ncell} edges={nedge} passes={} reps={} lanes={}\n",
        args.passes,
        args.reps,
        simd::LANES
    );

    // Free-stream state everywhere; residuals small and non-uniform; adt
    // from one scalar pass so it is physical (positive, finite).
    let x = mesh.x.clone();
    let qi = qinf();
    let q0: Vec<f64> = (0..ncell).flat_map(|_| qi).collect();
    let qold0 = q0.clone();
    let res0: Vec<f64> = (0..ncell * 4)
        .map(|i| 1e-3 * ((i % 7) as f64 - 3.0))
        .collect();
    let mut adt0 = vec![0.0; ncell];
    for (e, a) in adt0.iter_mut().enumerate() {
        let rows: Vec<[f64; 2]> = (0..4)
            .map(|k| {
                let n = mesh.cell_nodes[e * 4 + k] as usize;
                [x[n * 2], x[n * 2 + 1]]
            })
            .collect();
        let mut out = [0.0];
        kernels::adt_calc(&rows[0], &rows[1], &rows[2], &rows[3], &qi, &mut out);
        *a = out[0];
    }

    // Shadow as a shared reference so `move` closures borrow, not move.
    let adt0 = &adt0;

    // SoA planes of the same state.
    let x_p = to_planes(&x, nnode, 2);
    let q0_p = to_planes(&q0, ncell, 4);
    let qold0_p = q0_p.clone();
    let res0_p = to_planes(&res0, ncell, 4);

    let pcell = &mesh.cell_nodes;
    let pedge = &mesh.edge_nodes;
    let pecell = &mesh.edge_cells;

    // black_box'ed function pointers: per-element dispatch the optimizer
    // cannot see through, the honest baseline for generated scalar loops.
    type UpdateFn = fn(&[f64], &mut [f64], &mut [f64], &[f64], &mut [f64]);
    type AdtFn = fn(&[f64], &[f64], &[f64], &[f64], &[f64], &mut [f64]);
    type ResFn = fn(&[f64], &[f64], &[f64], &[f64], &[f64], &[f64], &mut [f64], &mut [f64]);
    let update_fn: UpdateFn = black_box(kernels::update);
    let adt_fn: AdtFn = black_box(kernels::adt_calc);
    let res_fn: ResFn = black_box(kernels::res_calc);

    let mut points: Vec<Point> = Vec::new();
    for &t in &args.threads {
        // ---- update (direct, cells) ------------------------------------
        let aos_secs = {
            let q = SharedVec::new(q0.clone());
            let res = SharedVec::new(res0.clone());
            let (qold, adt) = (&qold0, &adt0);
            bench(args.passes, args.reps, || {
                let rms: f64 = std::thread::scope(|s| {
                    let hs: Vec<_> = ranges(ncell, t)
                        .into_iter()
                        .map(|r| {
                            let (q, res) = (&q, &res);
                            s.spawn(move || {
                                // SAFETY: disjoint element ranges per thread.
                                let q = unsafe { q.slice_mut() };
                                let res = unsafe { res.slice_mut() };
                                let mut rms = [0.0];
                                for e in r {
                                    update_fn(
                                        &qold[e * 4..e * 4 + 4],
                                        &mut q[e * 4..e * 4 + 4],
                                        &mut res[e * 4..e * 4 + 4],
                                        &adt0[e..e + 1],
                                        &mut rms,
                                    );
                                }
                                rms[0]
                            })
                        })
                        .collect();
                    hs.into_iter().map(|h| h.join().unwrap()).sum()
                });
                black_box((rms, adt));
            })
        };
        let soa_secs = {
            let q = SharedVec::new(q0_p.clone());
            let res = SharedVec::new(res0_p.clone());
            let qold = &qold0_p;
            bench(args.passes, args.reps, || {
                let rms: f64 = std::thread::scope(|s| {
                    let hs: Vec<_> = ranges(ncell, t)
                        .into_iter()
                        .map(|r| {
                            let (q, res) = (&q, &res);
                            s.spawn(move || {
                                // SAFETY: disjoint element ranges per thread.
                                let q = unsafe { q.slice_mut() };
                                let res = unsafe { res.slice_mut() };
                                simd::update_soa(qold, q, res, adt0, ncell, r)
                            })
                        })
                        .collect();
                    hs.into_iter().map(|h| h.join().unwrap()).sum()
                });
                black_box(rms);
            })
        };
        points.push(Point {
            kernel: "update",
            threads: t,
            elements: ncell,
            aos_secs,
            soa_secs,
            bytes_per_elem: UPDATE_BYTES,
        });

        // ---- adt_calc (indirect gather, cells) -------------------------
        let aos_secs = {
            let adt = SharedVec::new(adt0.to_vec());
            let (x, q) = (&x, &q0);
            bench(args.passes, args.reps, || {
                std::thread::scope(|s| {
                    for r in ranges(ncell, t) {
                        let adt = &adt;
                        s.spawn(move || {
                            // SAFETY: disjoint element ranges per thread.
                            let adt = unsafe { adt.slice_mut() };
                            for e in r {
                                let n0 = pcell[e * 4] as usize;
                                let n1 = pcell[e * 4 + 1] as usize;
                                let n2 = pcell[e * 4 + 2] as usize;
                                let n3 = pcell[e * 4 + 3] as usize;
                                adt_fn(
                                    &x[n0 * 2..n0 * 2 + 2],
                                    &x[n1 * 2..n1 * 2 + 2],
                                    &x[n2 * 2..n2 * 2 + 2],
                                    &x[n3 * 2..n3 * 2 + 2],
                                    &q[e * 4..e * 4 + 4],
                                    &mut adt[e..e + 1],
                                );
                            }
                        });
                    }
                });
            })
        };
        let soa_secs = {
            let adt = SharedVec::new(adt0.to_vec());
            let (x_p, q_p) = (&x_p, &q0_p);
            bench(args.passes, args.reps, || {
                std::thread::scope(|s| {
                    for r in ranges(ncell, t) {
                        let adt = &adt;
                        s.spawn(move || {
                            // SAFETY: disjoint element ranges per thread.
                            let adt = unsafe { adt.slice_mut() };
                            simd::adt_calc_soa(x_p, nnode, pcell, q_p, ncell, adt, r);
                        });
                    }
                });
            })
        };
        points.push(Point {
            kernel: "adt_calc",
            threads: t,
            elements: ncell,
            aos_secs,
            soa_secs,
            bytes_per_elem: ADT_BYTES,
        });

        // ---- res_calc (indirect increment, edges) ----------------------
        // Both variants use thread-private residual buffers reduced on the
        // main thread — the standard shared-memory treatment of indirect
        // increments, identical cost on both sides.
        let aos_secs = {
            let (x, q) = (&x, &q0);
            let mut res_main = res0.clone();
            bench(args.passes, args.reps, || {
                let partials: Vec<Vec<f64>> = std::thread::scope(|s| {
                    let hs: Vec<_> = ranges(nedge, t)
                        .into_iter()
                        .map(|r| {
                            s.spawn(move || {
                                let mut res = vec![0.0; ncell * 4];
                                for e in r {
                                    let n1 = pedge[e * 2] as usize;
                                    let n2 = pedge[e * 2 + 1] as usize;
                                    let c1 = pecell[e * 2] as usize;
                                    let c2 = pecell[e * 2 + 1] as usize;
                                    let (r1, r2) = two_rows(&mut res, c1, c2);
                                    res_fn(
                                        &x[n1 * 2..n1 * 2 + 2],
                                        &x[n2 * 2..n2 * 2 + 2],
                                        &q[c1 * 4..c1 * 4 + 4],
                                        &q[c2 * 4..c2 * 4 + 4],
                                        &adt0[c1..c1 + 1],
                                        &adt0[c2..c2 + 1],
                                        r1,
                                        r2,
                                    );
                                }
                                res
                            })
                        })
                        .collect();
                    hs.into_iter().map(|h| h.join().unwrap()).collect()
                });
                for p in &partials {
                    for (dst, src) in res_main.iter_mut().zip(p) {
                        *dst += src;
                    }
                }
                black_box(&res_main);
            })
        };
        let soa_secs = {
            let (x_p, q_p) = (&x_p, &q0_p);
            let mut res_main = res0_p.clone();
            bench(args.passes, args.reps, || {
                let partials: Vec<Vec<f64>> = std::thread::scope(|s| {
                    let hs: Vec<_> = ranges(nedge, t)
                        .into_iter()
                        .map(|r| {
                            s.spawn(move || {
                                let mut res = vec![0.0; ncell * 4];
                                simd::res_calc_soa(
                                    x_p, nnode, pedge, q_p, ncell, adt0, &mut res, ncell, pecell, r,
                                );
                                res
                            })
                        })
                        .collect();
                    hs.into_iter().map(|h| h.join().unwrap()).collect()
                });
                for p in &partials {
                    for (dst, src) in res_main.iter_mut().zip(p) {
                        *dst += src;
                    }
                }
                black_box(&res_main);
            })
        };
        points.push(Point {
            kernel: "res_calc",
            threads: t,
            elements: nedge,
            aos_secs,
            soa_secs,
            bytes_per_elem: RES_BYTES,
        });
    }

    // ---- report --------------------------------------------------------
    const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
    let mut table = Table::new(vec![
        "kernel",
        "threads",
        "aos_Melems/s",
        "soa_Melems/s",
        "aos_GiB/s",
        "soa_GiB/s",
        "speedup",
    ]);
    for p in &points {
        let (ae, se) = (p.aos_eps(args.passes), p.soa_eps(args.passes));
        table.row(vec![
            p.kernel.to_owned(),
            p.threads.to_string(),
            format!("{:.1}", ae / 1e6),
            format!("{:.1}", se / 1e6),
            format!("{:.2}", ae * p.bytes_per_elem as f64 / GIB),
            format!("{:.2}", se * p.bytes_per_elem as f64 / GIB),
            format!("{:.2}x", p.speedup()),
        ]);
    }
    print!("{}", table.render());

    // Hand-rolled JSON (offline build: no serde).
    let mut json = String::from("{\n  \"bench\": \"simd_layout\",\n");
    json.push_str(&format!(
        "  \"cells\": {ncell}, \"edges\": {nedge}, \"passes\": {}, \"reps\": {}, \
         \"lanes\": {}, \"host_threads\": {},\n",
        args.passes,
        args.reps,
        simd::LANES,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str("  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let (ae, se) = (p.aos_eps(args.passes), p.soa_eps(args.passes));
        json.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"threads\": {}, \"elements\": {}, \
             \"aos_elems_per_s\": {:.0}, \"soa_elems_per_s\": {:.0}, \
             \"aos_gib_per_s\": {:.4}, \"soa_gib_per_s\": {:.4}, \"speedup\": {:.4}}}{}\n",
            p.kernel,
            p.threads,
            p.elements,
            ae,
            se,
            ae * p.bytes_per_elem as f64 / GIB,
            se * p.bytes_per_elem as f64 / GIB,
            p.speedup(),
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.json_path, json).expect("write JSON");
    println!("wrote {}", args.json_path);

    if let Some(min) = args.min_speedup {
        let max_t = *args.threads.iter().max().unwrap();
        let best = points
            .iter()
            .filter(|p| p.threads == max_t)
            .max_by(|a, b| a.speedup().total_cmp(&b.speedup()))
            .expect("non-empty sweep");
        if best.speedup() < min {
            eprintln!(
                "FAIL: best SoA-vector speedup at {max_t} threads is {:.2}x \
                 ({}), below the {min}x gate",
                best.speedup(),
                best.kernel
            );
            std::process::exit(1);
        }
        println!(
            "gate passed: {} reaches {:.2}x >= {min}x at {max_t} threads",
            best.kernel,
            best.speedup()
        );
    }
}
