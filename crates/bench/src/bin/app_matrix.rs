//! The application-layer matrix bench: every translator-generated app
//! (airfoil, heat, jac) through the one generic harness, on the plain
//! backends and on a sharded locality group.
//!
//! Two things are measured per app:
//!
//! * **Throughput** — wall time and iterations/second of a
//!   fixed-iteration run per configuration (Seq / ForkJoin / Dataflow
//!   plain worlds, plus a multi-rank Dataflow locality group), so the
//!   per-app cost of the harness and of sharding is visible side by side.
//! * **Translator leverage** — the spec's line count against the line
//!   count of the Rust the translator generates from it (the OP2
//!   "source-to-source" payoff): how much hand-written kernel-wrapper
//!   code each app did *not* have to write.
//!
//! Gates (always on): every configuration of every app must finish with
//! a finite residual history, and every spec must translate cleanly.
//!
//! Writes `BENCH_apps.json`. Options: `--iters`, `--threads`,
//! `--ranks`, `--window`, `--csv PATH`, `--json PATH`.

use std::time::Instant;

use op2_app::{run, App, RunConfig};
use op2_bench::Table;
use op2_core::{Op2, Op2Config};
use op2_translator::{translate, CodegenBackend};

struct Args {
    iters: usize,
    threads: usize,
    ranks: usize,
    window: usize,
    csv: Option<std::path::PathBuf>,
    json_path: String,
}

fn parse_args() -> Args {
    let host = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut args = Args {
        iters: 60,
        threads: host.clamp(2, 8),
        ranks: 2,
        window: 8,
        csv: None,
        json_path: "BENCH_apps.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--ranks" => args.ranks = value("--ranks").parse().expect("--ranks"),
            "--window" => args.window = value("--window").parse().expect("--window"),
            "--csv" => args.csv = Some(value("--csv").into()),
            "--json" => args.json_path = value("--json"),
            "--help" | "-h" => {
                println!(
                    "app_matrix options:\n\
                     --iters N    iterations per run (default 60)\n\
                     --threads N  worker threads for the threaded backends (default host, 2..=8)\n\
                     --ranks N    local ranks in the sharded configuration (default 2)\n\
                     --window N   in-flight iteration window (default 8)\n\
                     --csv PATH   also write CSV\n\
                     --json PATH  JSON baseline (default BENCH_apps.json)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

/// Non-empty, non-comment lines — the count a human reads as "lines of
/// code" for both the `.op2` spec and the generated Rust.
fn loc(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("//"))
        .count()
}

struct ConfigPoint {
    config: String,
    wall_s: f64,
    iters_per_s: f64,
    final_residual: f64,
}

struct AppPoint {
    name: &'static str,
    spec_loc: usize,
    gen_loc: usize,
    points: Vec<ConfigPoint>,
}

fn bench_app(app: &dyn App, args: &Args, failed: &mut bool) -> AppPoint {
    let spec_loc = loc(app.spec());
    let gen_loc = match translate(app.spec(), CodegenBackend::Hpx) {
        Ok(code) => loc(&code),
        Err(errs) => {
            eprintln!("FAIL {}: spec does not translate: {errs:?}", app.name());
            *failed = true;
            0
        }
    };

    let cfg = || RunConfig::iterations(args.iters, args.window);
    let mut points = Vec::new();

    let plain: Vec<(String, Op2Config)> = vec![
        ("seq".into(), Op2Config::seq()),
        (
            format!("fork_join({})", args.threads),
            Op2Config::fork_join(args.threads),
        ),
        (
            format!("dataflow({})", args.threads),
            Op2Config::dataflow(args.threads),
        ),
    ];
    for (cname, config) in plain {
        let op2 = Op2::new(config);
        let mut inst = app.declare(&op2);
        let t0 = Instant::now();
        let out = run(inst.as_mut(), cfg());
        let wall_s = t0.elapsed().as_secs_f64();
        let r = out.final_residual();
        if !r.is_finite() {
            eprintln!("FAIL {}/{cname}: non-finite residual", app.name());
            *failed = true;
        }
        points.push(ConfigPoint {
            config: cname,
            wall_s,
            iters_per_s: out.iterations as f64 / wall_s,
            final_residual: r,
        });
    }

    let cname = format!("dataflow({}) x{}", args.threads, args.ranks);
    let mut inst = app.declare_sharded(Op2Config::dataflow(args.threads), args.ranks);
    let t0 = Instant::now();
    let out = run(inst.as_mut(), cfg());
    let wall_s = t0.elapsed().as_secs_f64();
    let r = out.final_residual();
    if !r.is_finite() {
        eprintln!("FAIL {}/{cname}: non-finite residual", app.name());
        *failed = true;
    }
    points.push(ConfigPoint {
        config: cname,
        wall_s,
        iters_per_s: out.iterations as f64 / wall_s,
        final_residual: r,
    });

    AppPoint {
        name: app.name(),
        spec_loc,
        gen_loc,
        points,
    }
}

fn main() {
    let args = parse_args();
    println!("app_matrix: every generated app through the generic harness");
    println!(
        "iters={} threads={} ranks={} window={}",
        args.iters, args.threads, args.ranks, args.window
    );

    // The three apps the translator currently generates; airfoil sized so
    // a Seq run still finishes in well under a second.
    let apps: Vec<Box<dyn App>> = vec![
        Box::new(airfoil_cfd::AirfoilApp::new(40, 20)),
        Box::new(op2_app::HeatApp::new(24)),
        Box::new(op2_app::JacApp::new(24)),
    ];

    let mut failed = false;
    let mut table = Table::new(vec![
        "app",
        "config",
        "wall_s",
        "iters_per_s",
        "spec_loc",
        "gen_loc",
        "leverage",
    ]);
    let mut results: Vec<AppPoint> = Vec::new();
    for app in &apps {
        let p = bench_app(app.as_ref(), &args, &mut failed);
        let leverage = p.gen_loc as f64 / p.spec_loc.max(1) as f64;
        println!(
            "  {}: spec {} LoC -> generated {} LoC ({leverage:.1}x)",
            p.name, p.spec_loc, p.gen_loc
        );
        for c in &p.points {
            table.row(vec![
                p.name.to_string(),
                c.config.clone(),
                format!("{:.4}", c.wall_s),
                format!("{:.1}", c.iters_per_s),
                p.spec_loc.to_string(),
                p.gen_loc.to_string(),
                format!("{leverage:.1}x"),
            ]);
        }
        results.push(p);
    }
    println!("{}", table.render());
    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("write CSV");
    }

    // Hand-rolled JSON (offline build: no serde).
    let mut json = String::from("{\n  \"bench\": \"app_matrix\",\n");
    json.push_str(&format!(
        "  \"iters\": {}, \"threads\": {}, \"ranks\": {}, \"window\": {}, \
         \"host_threads\": {},\n  \"apps\": [\n",
        args.iters,
        args.threads,
        args.ranks,
        args.window,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    for (i, p) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"app\": \"{}\", \"spec_loc\": {}, \"generated_loc\": {}, \
             \"results\": [\n",
            p.name, p.spec_loc, p.gen_loc
        ));
        for (j, c) in p.points.iter().enumerate() {
            json.push_str(&format!(
                "      {{\"config\": \"{}\", \"wall_seconds\": {:.4}, \
                 \"iters_per_second\": {:.2}, \"final_residual\": {:e}}}{}\n",
                c.config,
                c.wall_s,
                c.iters_per_s,
                c.final_residual,
                if j + 1 < p.points.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.json_path, json).expect("write JSON baseline");
    println!("wrote {}", args.json_path);

    if failed {
        std::process::exit(1);
    }
}
