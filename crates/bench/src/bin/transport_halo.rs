//! Transport-generic halo-exchange bench: the overlap schedule measured
//! through the [`Transport`] abstraction, over both implementations.
//!
//! The workload is the `halo_overlap` ring (producer / exchange / consumer
//! per iteration), but each rank drives its *own* single-rank
//! [`LocalityGroup`] over a shared transport — exactly the SPMD shape the
//! out-of-process path runs, so the same code measures:
//!
//! * **inproc** — all ranks on one [`InProcessTransport`] with an injected
//!   per-message link delay (deferred delivery on the timer thread). The
//!   overlapped-vs-bulk-sync speedup here is the regression-gated number:
//!   it collapses to ~1x if the delay ever blocks a worker again or the
//!   boundary/interior split stops hiding the latency.
//! * **socket** — one OS thread per rank, each rendezvousing a
//!   [`ProcessTransport`] over Unix-domain sockets (the wire protocol of
//!   the real multi-process launcher). Real serialization + kernel
//!   round-trips instead of an injected delay; reported for trajectory,
//!   not gated (wire latency is the host's, not ours).
//!
//! Emits `BENCH_transport.json`. `--min-speedup X` exits nonzero when the
//! in-process overlapped schedule fails to beat bulk-sync by at least `X`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use op2_bench::Table;
use op2_core::args::{read_via, write};
use op2_core::locality::{exchange_with, ExchangeOpts, HaloSpec, LocalityGroup};
use op2_core::transport::{ProcessTransport, Transport};
use op2_core::{Dat, Map, Op2Config, Set};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schedule {
    Overlapped,
    BulkSync,
}

impl Schedule {
    fn label(self) -> &'static str {
        match self {
            Schedule::Overlapped => "overlapped",
            Schedule::BulkSync => "bulk-sync",
        }
    }
}

fn spin(units: usize) {
    let mut acc = 1.0f64;
    for _ in 0..units {
        acc = (acc * 1.000001 + 1.0).sqrt();
    }
    std::hint::black_box(acc);
}

/// The ring's halo spec: rank r exports its first `halo` owned rows to
/// rank r+1 (mod ranks), landing in the importer's halo region.
fn ring_spec(ranks: usize, n: usize, halo: usize) -> HaloSpec {
    let mut spec = HaloSpec::empty(ranks);
    for r in 0..ranks {
        let next = (r + 1) % ranks;
        spec.export_rows[r][next] = (0..halo as u32).collect();
        spec.import_range[next][r] = n..n + halo;
    }
    spec.validate().expect("ring spec");
    spec
}

/// One rank's per-iteration state (socket path declares exactly one of
/// these; the in-process path declares one per rank on a shared group).
struct RankState {
    cells: Set,
    edges: Set,
    ident: Map,
    q: Dat<f64>,
    out: Dat<f64>,
}

fn declare_rank(group: &LocalityGroup, rank: usize, n: usize, halo: usize) -> RankState {
    let op2 = group.rank(rank);
    let cells = op2.decl_set(n, "cells");
    let q = op2.decl_dat_halo(&cells, 1, "q", vec![0.0f64; n + halo], halo);
    let edges = op2.decl_set(n + halo, "edges");
    let ident = op2.decl_map_halo(
        &edges,
        &cells,
        1,
        (0..(n + halo) as u32).collect(),
        "ident",
        halo,
    );
    let out = op2.decl_dat(&edges, 1, "out", vec![0.0f64; n + halo]);
    RankState {
        cells,
        edges,
        ident,
        q,
        out,
    }
}

/// Submits rank `rank`'s producer loop for iteration `it`.
fn produce(group: &LocalityGroup, s: &RankState, rank: usize, ranks: usize, it: usize) {
    let v = (it * ranks + rank) as f64;
    group
        .rank(rank)
        .loop_("produce", &s.cells)
        .arg(write(&s.q))
        .run(move |q: &mut [f64]| {
            spin(40);
            q[0] = v;
        });
}

/// Submits rank `rank`'s consumer loop (owned + halo rows through the
/// identity map — only the boundary blocks gate on the receives).
fn consume(group: &LocalityGroup, s: &RankState, rank: usize) {
    group
        .rank(rank)
        .loop_("consume", &s.edges)
        .arg(read_via(&s.q, &s.ident, 0))
        .arg(write(&s.out))
        .run(|q: &[f64], o: &mut [f64]| {
            spin(40);
            o[0] = q[0];
        });
}

/// All ranks hosted on one in-process group, the delay injected per
/// message and hidden (or not) by the schedule — the gated configuration.
fn run_inproc(
    schedule: Schedule,
    threads: usize,
    ranks: usize,
    n: usize,
    iters: usize,
    latency: Duration,
) -> Duration {
    let halo = (n / 8).max(1);
    let spec = ring_spec(ranks, n, halo);
    let group = LocalityGroup::new(Op2Config::dataflow(threads), ranks);
    let states: Vec<RankState> = (0..ranks)
        .map(|r| declare_rank(&group, r, n, halo))
        .collect();
    let qs: Vec<Dat<f64>> = states.iter().map(|s| s.q.clone()).collect();
    let opts = ExchangeOpts {
        link_delay: Some(latency),
    };

    let t0 = Instant::now();
    for it in 0..iters {
        for (r, s) in states.iter().enumerate() {
            produce(&group, s, r, ranks, it);
        }
        let recvs = exchange_with(&group, &qs, &spec, &opts);
        if schedule == Schedule::BulkSync {
            for row in &recvs {
                for f in row {
                    f.wait();
                }
            }
        }
        for (r, s) in states.iter().enumerate() {
            consume(&group, s, r);
        }
    }
    group.fence();
    t0.elapsed()
}

/// One OS thread per rank, each driving a single-rank group over its own
/// socket-backed transport — the real wire protocol, real kernel
/// round-trips instead of an injected delay. Returns the slowest rank's
/// wall time.
fn run_sockets(
    schedule: Schedule,
    threads: usize,
    ranks: usize,
    n: usize,
    iters: usize,
) -> Duration {
    let dir = std::env::temp_dir().join(format!(
        "op2-bench-transport-{}-{}",
        std::process::id(),
        schedule.label()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let halo = (n / 8).max(1);
    let elapsed = std::thread::scope(|s| {
        let handles: Vec<_> = (0..ranks)
            .map(|rank| {
                let dir = dir.clone();
                let spec = ring_spec(ranks, n, halo);
                s.spawn(move || {
                    let t: Arc<dyn Transport> = Arc::new(
                        ProcessTransport::connect_unix(&dir, rank, ranks)
                            .expect("socket rendezvous"),
                    );
                    let group = LocalityGroup::with_transport(Op2Config::dataflow(threads), t);
                    let state = declare_rank(&group, rank, n, halo);
                    // Synchronized start so each rank times the exchange,
                    // not the peers' declaration work.
                    group.barrier();
                    let t0 = Instant::now();
                    for it in 0..iters {
                        produce(&group, &state, rank, ranks, it);
                        let recvs = exchange_with(
                            &group,
                            std::slice::from_ref(&state.q),
                            &spec,
                            &ExchangeOpts::default(),
                        );
                        if schedule == Schedule::BulkSync {
                            for row in &recvs {
                                for f in row {
                                    f.wait();
                                }
                            }
                        }
                        consume(&group, &state, rank);
                    }
                    group.fence();
                    let elapsed = t0.elapsed();
                    group.barrier();
                    elapsed
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread"))
            .max()
            .expect("at least one rank")
    });
    let _ = std::fs::remove_dir_all(&dir);
    elapsed
}

struct Args {
    cells: usize,
    iters: usize,
    ranks: usize,
    threads: usize,
    reps: usize,
    latency_us: u64,
    min_speedup: Option<f64>,
    json_path: PathBuf,
}

fn parse_args() -> Args {
    let mut args = Args {
        // Small enough per-rank that the injected latency is a real
        // fraction of an iteration — the quantity the gate protects.
        cells: 4_000,
        iters: 20,
        ranks: 4,
        threads: 2,
        reps: 2,
        latency_us: 200,
        min_speedup: None,
        json_path: PathBuf::from("BENCH_transport.json"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.cells = value("--cells").parse().expect("--cells"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--ranks" => args.ranks = value("--ranks").parse().expect("--ranks"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps"),
            "--latency-us" => {
                args.latency_us = value("--latency-us").parse().expect("--latency-us")
            }
            "--min-speedup" => {
                args.min_speedup = Some(value("--min-speedup").parse().expect("--min-speedup"))
            }
            "--json" => args.json_path = value("--json").into(),
            "--help" | "-h" => {
                println!(
                    "transport_halo options:\n\
                     --cells N        owned cells per rank (default 4000)\n\
                     --iters N        producer/exchange/consumer rounds (default 20)\n\
                     --ranks N        ring size (default 4)\n\
                     --threads N      worker threads per rank group (default 2)\n\
                     --reps N         repetitions, min-of (default 2)\n\
                     --latency-us N   injected in-process link delay (default 200)\n\
                     --min-speedup X  exit 1 unless inproc overlap >= X (gate)\n\
                     --json PATH      JSON baseline (default BENCH_transport.json)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    assert!(
        args.ranks >= 2,
        "--ranks must be at least 2: a 1-rank ring has no peer to exchange with"
    );
    let latency = Duration::from_micros(args.latency_us);

    println!("transport_halo: overlap schedule through the Transport abstraction");
    println!(
        "cells/rank={} ranks={} iters={} latency={}us (inproc) threads={} reps={}",
        args.cells, args.ranks, args.iters, args.latency_us, args.threads, args.reps
    );
    let mut table = Table::new(vec![
        "transport",
        "schedule",
        "best_seconds",
        "speedup_vs_bulk_sync",
    ]);
    // (transport, schedule, best_seconds, speedup)
    let mut rows: Vec<(&'static str, &'static str, f64, f64)> = Vec::new();
    let mut inproc_speedup = f64::NAN;

    for transport in ["inproc", "socket"] {
        let mut bulk_best = f64::NAN;
        for schedule in [Schedule::BulkSync, Schedule::Overlapped] {
            let mut best = Duration::MAX;
            for _ in 0..args.reps.max(1) {
                let run = match transport {
                    "inproc" => run_inproc(
                        schedule,
                        args.threads,
                        args.ranks,
                        args.cells,
                        args.iters,
                        latency,
                    ),
                    _ => run_sockets(schedule, args.threads, args.ranks, args.cells, args.iters),
                };
                best = best.min(run);
            }
            let secs = best.as_secs_f64();
            if schedule == Schedule::BulkSync {
                bulk_best = secs;
            }
            let speedup = bulk_best / secs;
            if transport == "inproc" && schedule == Schedule::Overlapped {
                inproc_speedup = speedup;
            }
            rows.push((transport, schedule.label(), secs, speedup));
            table.row(vec![
                transport.to_owned(),
                schedule.label().to_owned(),
                format!("{secs:.4}"),
                format!("{speedup:.3}x"),
            ]);
        }
    }
    println!("{}", table.render());

    // Hand-rolled JSON (offline build: no serde).
    let mut json = String::from("{\n  \"bench\": \"transport_halo\",\n");
    json.push_str(&format!(
        "  \"cells_per_rank\": {}, \"ranks\": {}, \"iters\": {}, \"latency_us\": {}, \
         \"threads\": {}, \"reps\": {}, \"host_threads\": {},\n  \"results\": [\n",
        args.cells,
        args.ranks,
        args.iters,
        args.latency_us,
        args.threads,
        args.reps,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    for (i, (transport, schedule, secs, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"transport\": \"{transport}\", \"schedule\": \"{schedule}\", \
             \"best_seconds\": {secs:.6}, \"speedup_vs_bulk_sync\": {speedup:.4}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.json_path, json).expect("write JSON baseline");
    println!("wrote {}", args.json_path.display());

    if let Some(min) = args.min_speedup {
        if inproc_speedup.is_nan() || inproc_speedup < min {
            eprintln!(
                "REGRESSION: inproc overlapped speedup {inproc_speedup:.3}x < required {min:.3}x \
                 — the link delay is back on the critical path"
            );
            std::process::exit(1);
        }
        println!("gate passed: inproc overlapped speedup {inproc_speedup:.3}x >= {min:.3}x");
    }
}
