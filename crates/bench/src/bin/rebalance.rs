//! Dynamic load balancing benchmark: feedback-driven live repartitioning
//! vs the static greedy-BFS decomposition on a skewed Airfoil workload.
//!
//! The skew models the paper's motivating imbalance: per-cell cost in
//! `adt_calc` grows where the flow field is disturbed (near the bump), so
//! the rank that owns the disturbed region becomes the straggler. The
//! adaptive variant re-runs the partitioner with cost-weighted quotas
//! between iterations and migrates rows live; the static variant keeps
//! the seed decomposition.
//!
//! Metric: **makespan** — the maximum per-rank busy time accumulated by
//! the granularity-feedback tables over the measured iterations. On an
//! oversubscribed (single-core) host, wall clock cannot see load balance;
//! per-rank busy time is exactly what a distributed run's critical path
//! would be, so the gate compares `max_r busy[r]` instead.
//!
//! Protocol per variant: warm-up iterations (the adaptive variant
//! rebalances during warm-up and converges), reset the busy counters,
//! then run the measured iterations with the decomposition frozen so both
//! variants pay zero rebalancing overhead inside the measured window.
//!
//! Emits `BENCH_rebalance.json`. Options: `--cells`, `--ranks`, `--skew`,
//! `--warmup`, `--iters`, `--every N` (rebalance cadence during warm-up),
//! `--json PATH`, and `--min-speedup S` (exit non-zero unless
//! `makespan_static / makespan_adaptive >= S` — the CI gate).

use airfoil_cfd::shard::{run_sharded, ShardedProblem};
use airfoil_cfd::SolverConfig;
use op2_bench::Table;
use op2_core::rebalance::{agree_rank_busy, imbalance_ratio};
use op2_core::Op2Config;
use op2_mesh::QuadMesh;

struct Args {
    cells: usize,
    ranks: usize,
    skew: f64,
    warmup: usize,
    iters: usize,
    every: usize,
    json_path: String,
    min_speedup: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cells: 2_000,
        ranks: 4,
        skew: 100_000.0,
        warmup: 30,
        iters: 30,
        every: 5,
        json_path: "BENCH_rebalance.json".to_owned(),
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.cells = value("--cells").parse().expect("--cells"),
            "--ranks" => args.ranks = value("--ranks").parse().expect("--ranks"),
            "--skew" => args.skew = value("--skew").parse().expect("--skew"),
            "--warmup" => args.warmup = value("--warmup").parse().expect("--warmup"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--every" => args.every = value("--every").parse().expect("--every"),
            "--json" => args.json_path = value("--json"),
            "--min-speedup" => {
                args.min_speedup = Some(value("--min-speedup").parse().expect("--min-speedup"))
            }
            "--help" | "-h" => {
                println!(
                    "rebalance options:\n\
                     --cells N        mesh size in cells (default 2000)\n\
                     --ranks N        localities (default 4)\n\
                     --skew S         spin units per unit of state deviation (default 100000)\n\
                     --warmup N       warm-up iterations (default 30)\n\
                     --iters N        measured iterations (default 30)\n\
                     --every N        warm-up rebalance cadence (default 5)\n\
                     --json PATH      JSON baseline (default BENCH_rebalance.json)\n\
                     --min-speedup S  fail unless adaptive makespan speedup >= S (CI gate)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

struct VariantResult {
    busy: Vec<u64>,
    makespan_ns: u64,
    total_ns: u64,
    imbalance: f64,
    final_rms: f64,
}

/// Warm up (optionally rebalancing), reset the busy counters, then run the
/// measured window with the decomposition frozen.
fn run_variant(args: &Args, mesh: &QuadMesh, rebalance_every: usize) -> VariantResult {
    let mut shp = ShardedProblem::declare(Op2Config::seq(), mesh, args.ranks);
    let base = SolverConfig {
        window: 4,
        print_every: 0,
        skew: args.skew,
        ..SolverConfig::default()
    };
    run_sharded(
        &mut shp,
        &SolverConfig {
            niter: args.warmup,
            rebalance_every,
            ..base
        },
    );
    for world in shp.group.ranks() {
        world.granularity_feedback().reset_rank_busy();
    }
    let r = run_sharded(
        &mut shp,
        &SolverConfig {
            niter: args.iters,
            rebalance_every: 0,
            ..base
        },
    );
    let busy = agree_rank_busy(&shp.group);
    let makespan_ns = busy.iter().copied().max().unwrap_or(0);
    let total_ns: u64 = busy.iter().sum();
    VariantResult {
        imbalance: imbalance_ratio(&busy).unwrap_or(f64::NAN),
        busy,
        makespan_ns,
        total_ns,
        final_rms: r.final_rms(),
    }
}

fn main() {
    let args = parse_args();
    let mesh = QuadMesh::with_cells(args.cells);
    println!(
        "rebalance: static decomposition vs live feedback-driven repartitioning\n\
         cells={} ranks={} skew={} warmup={} iters={} every={}",
        mesh.ncell, args.ranks, args.skew, args.warmup, args.iters, args.every
    );

    let stats_before = op2_core::hpx_rt::stats::snapshot();
    let adaptive = run_variant(&args, &mesh, args.every);
    let rows_moved = stats_before.delta("op2.rebalance.rows_moved");
    let stat = run_variant(&args, &mesh, 0);

    let d_rms = (adaptive.final_rms - stat.final_rms).abs() / stat.final_rms.abs().max(1e-30);
    assert!(
        d_rms < 1e-6,
        "adaptive and static runs diverged: relative rms diff {d_rms:e}"
    );

    let speedup = stat.makespan_ns as f64 / adaptive.makespan_ns.max(1) as f64;
    let mut table = Table::new(vec!["variant", "makespan_ms", "total_busy_ms", "imbalance"]);
    for (name, v) in [("static", &stat), ("adaptive", &adaptive)] {
        table.row(vec![
            name.to_owned(),
            format!("{:.2}", v.makespan_ns as f64 / 1e6),
            format!("{:.2}", v.total_ns as f64 / 1e6),
            format!("{:.3}x", v.imbalance),
        ]);
    }
    println!("{}", table.render());
    println!(
        "makespan speedup (static/adaptive): {speedup:.3}x; {rows_moved} rows migrated \
         during adaptive warm-up"
    );

    // Hand-rolled JSON (offline build: no serde).
    let busy_json = |b: &[u64]| {
        let items: Vec<String> = b.iter().map(u64::to_string).collect();
        format!("[{}]", items.join(", "))
    };
    let mut json = String::from("{\n  \"bench\": \"rebalance\",\n");
    json.push_str(&format!(
        "  \"cells\": {}, \"ranks\": {}, \"skew\": {}, \"warmup\": {}, \"iters\": {}, \
         \"every\": {},\n",
        mesh.ncell, args.ranks, args.skew, args.warmup, args.iters, args.every
    ));
    json.push_str("  \"metric\": \"max per-rank busy ns over the measured window\",\n");
    for (name, v) in [("static", &stat), ("adaptive", &adaptive)] {
        json.push_str(&format!(
            "  \"{name}\": {{\"makespan_ns\": {}, \"total_busy_ns\": {}, \
             \"imbalance\": {:.4}, \"busy_ns\": {}}},\n",
            v.makespan_ns,
            v.total_ns,
            v.imbalance,
            busy_json(&v.busy)
        ));
    }
    json.push_str(&format!(
        "  \"rows_moved\": {rows_moved},\n  \"makespan_speedup\": {speedup:.4}\n}}\n"
    ));
    std::fs::write(&args.json_path, json).expect("write JSON baseline");
    println!("wrote {}", args.json_path);

    if let Some(min) = args.min_speedup {
        assert!(
            rows_moved > 0,
            "adaptive variant never migrated — no load detected"
        );
        if speedup < min {
            eprintln!(
                "FAIL: adaptive makespan speedup {speedup:.3}x below the {min}x gate \
                 (static imbalance {:.3}x, adaptive {:.3}x)",
                stat.imbalance, adaptive.imbalance
            );
            std::process::exit(1);
        }
        println!("gate passed: adaptive beats static by >= {min}x on makespan");
    }
}
