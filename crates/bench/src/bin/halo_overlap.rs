//! Halo-exchange overlap micro-benchmark: communication hidden behind
//! interior compute vs a bulk-synchronous exchange.
//!
//! A ring of simulated ranks runs a producer/exchange/consumer chain per
//! iteration: every rank writes its owned rows, exports a slice to its
//! successor, and a consumer loop gathers owned + halo rows through an
//! identity map. An injected per-message link delay models interconnect
//! latency. Two schedules are compared:
//!
//! * **overlapped** — the sharded driver's schedule: the exchange and the
//!   consumer are submitted back to back; the consumer's interior blocks
//!   run while the messages (and their delay) are in flight, and only the
//!   boundary blocks gate on the receives;
//! * **bulk-sync** — the MPI-style baseline: every receive future is
//!   waited on before the consumer loop is even submitted, so the link
//!   delay lands squarely on the critical path of every iteration.
//!
//! Emits a JSON baseline (default `BENCH_halo.json`) for the perf
//! trajectory. Options: `--cells` (per rank), `--iters`, `--ranks`,
//! `--threads a,b,c`, `--reps`, `--latency-us`, `--csv`, `--json`.

use std::time::{Duration, Instant};

use op2_bench::{SweepArgs, Table};
use op2_core::args::{read_via, write};
use op2_core::locality::{exchange_with, ExchangeOpts, HaloSpec, LocalityGroup};
use op2_core::{Dat, Map, Op2Config, Set};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Schedule {
    Overlapped,
    BulkSync,
}

impl Schedule {
    fn label(self) -> &'static str {
        match self {
            Schedule::Overlapped => "overlapped",
            Schedule::BulkSync => "bulk-sync",
        }
    }
}

fn spin(units: usize) {
    let mut acc = 1.0f64;
    for _ in 0..units {
        acc = (acc * 1.000001 + 1.0).sqrt();
    }
    std::hint::black_box(acc);
}

struct RankState {
    cells: Set,
    edges: Set,
    ident: Map,
    q: Dat<f64>,
    out: Dat<f64>,
}

fn run_ring(
    schedule: Schedule,
    threads: usize,
    ranks: usize,
    n: usize,
    iters: usize,
    latency: Duration,
) -> Duration {
    let halo = (n / 8).max(1);
    let group = LocalityGroup::new(Op2Config::dataflow(threads), ranks);
    let mut spec = HaloSpec::empty(ranks);
    let states: Vec<RankState> = (0..ranks)
        .map(|r| {
            let op2 = group.rank(r);
            let cells = op2.decl_set(n, "cells");
            let q = op2.decl_dat_halo(&cells, 1, "q", vec![0.0f64; n + halo], halo);
            let edges = op2.decl_set(n + halo, "edges");
            let ident = op2.decl_map_halo(
                &edges,
                &cells,
                1,
                (0..(n + halo) as u32).collect(),
                "ident",
                halo,
            );
            let out = op2.decl_dat(&edges, 1, "out", vec![0.0f64; n + halo]);
            // Ring topology: rank r exports its first `halo` rows to r+1.
            let next = (r + 1) % ranks;
            spec.export_rows[r][next] = (0..halo as u32).collect();
            spec.import_range[(r + 1) % ranks][r] = n..n + halo;
            RankState {
                cells,
                edges,
                ident,
                q,
                out,
            }
        })
        .collect();
    spec.validate().expect("ring spec");
    let qs: Vec<Dat<f64>> = states.iter().map(|s| s.q.clone()).collect();
    let opts = ExchangeOpts {
        link_delay: Some(latency),
    };

    let t0 = Instant::now();
    for it in 0..iters {
        // The q write-after-read edge against the previous consumer chains
        // the iterations without any explicit wait.
        for (r, s) in states.iter().enumerate() {
            let v = (it * ranks + r) as f64;
            group
                .rank(r)
                .loop_("produce", &s.cells)
                .arg(write(&s.q))
                .run(move |q: &mut [f64]| {
                    spin(40);
                    q[0] = v;
                });
        }
        let recvs = exchange_with(&group, &qs, &spec, &opts);
        if schedule == Schedule::BulkSync {
            for row in &recvs {
                for f in row {
                    f.wait();
                }
            }
        }
        for (r, s) in states.iter().enumerate() {
            group
                .rank(r)
                .loop_("consume", &s.edges)
                .arg(read_via(&s.q, &s.ident, 0))
                .arg(write(&s.out))
                .run(|q: &[f64], o: &mut [f64]| {
                    spin(40);
                    o[0] = q[0];
                });
        }
    }
    group.fence();
    t0.elapsed()
}

struct Args {
    sweep: SweepArgs,
    ranks: usize,
    latency_us: u64,
    json_path: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        sweep: SweepArgs {
            cells: 20_000,
            iters: 20,
            ..SweepArgs::default()
        },
        ranks: 4,
        latency_us: 200,
        json_path: "BENCH_halo.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.sweep.cells = value("--cells").parse().expect("--cells"),
            "--iters" => args.sweep.iters = value("--iters").parse().expect("--iters"),
            "--reps" => args.sweep.reps = value("--reps").parse().expect("--reps"),
            "--ranks" => args.ranks = value("--ranks").parse().expect("--ranks"),
            "--latency-us" => {
                args.latency_us = value("--latency-us").parse().expect("--latency-us")
            }
            "--threads" => {
                args.sweep.threads = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads"))
                    .collect();
            }
            "--csv" => args.sweep.csv = Some(value("--csv").into()),
            "--json" => args.json_path = value("--json"),
            "--help" | "-h" => {
                println!(
                    "halo_overlap options:\n\
                     --cells N       owned cells per rank (default 20000)\n\
                     --iters N       producer/exchange/consumer rounds (default 20)\n\
                     --ranks N       simulated localities in the ring (default 4)\n\
                     --latency-us N  injected per-message link delay (default 200)\n\
                     --threads LIST  e.g. 1,2,4\n\
                     --reps N        repetitions, min-of (default 2)\n\
                     --csv PATH      also write CSV\n\
                     --json PATH     JSON baseline (default BENCH_halo.json)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    assert!(
        args.ranks >= 2,
        "--ranks must be at least 2: a 1-rank ring has no peer to exchange with"
    );
    let latency = Duration::from_micros(args.latency_us);

    println!("halo_overlap: exchange hidden behind interior compute vs bulk-synchronous");
    println!(
        "cells/rank={} ranks={} iters={} latency={}us reps={}",
        args.sweep.cells, args.ranks, args.sweep.iters, args.latency_us, args.sweep.reps
    );
    let mut table = Table::new(vec![
        "schedule",
        "threads",
        "best_seconds",
        "speedup_vs_bulk_sync",
    ]);
    let mut rows: Vec<(String, usize, f64, f64)> = Vec::new();

    for &threads in &args.sweep.threads {
        let mut bulk_best = f64::NAN;
        for schedule in [Schedule::BulkSync, Schedule::Overlapped] {
            let mut best = Duration::MAX;
            for _ in 0..args.sweep.reps.max(1) {
                best = best.min(run_ring(
                    schedule,
                    threads,
                    args.ranks,
                    args.sweep.cells,
                    args.sweep.iters,
                    latency,
                ));
            }
            let secs = best.as_secs_f64();
            if schedule == Schedule::BulkSync {
                bulk_best = secs;
            }
            let speedup = bulk_best / secs;
            rows.push((schedule.label().to_owned(), threads, secs, speedup));
            table.row(vec![
                schedule.label().to_owned(),
                threads.to_string(),
                format!("{secs:.4}"),
                format!("{speedup:.3}x"),
            ]);
        }
    }
    println!("{}", table.render());
    if let Some(csv) = &args.sweep.csv {
        table.write_csv(csv).expect("write CSV");
    }

    // Hand-rolled JSON (offline build: no serde).
    let mut json = String::from("{\n  \"bench\": \"halo_overlap\",\n");
    json.push_str(&format!(
        "  \"cells_per_rank\": {}, \"ranks\": {}, \"iters\": {}, \"latency_us\": {}, \
         \"reps\": {}, \"host_threads\": {},\n  \"results\": [\n",
        args.sweep.cells,
        args.ranks,
        args.sweep.iters,
        args.latency_us,
        args.sweep.reps,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    for (i, (schedule, threads, secs, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"schedule\": \"{schedule}\", \"threads\": {threads}, \
             \"best_seconds\": {secs:.6}, \"speedup_vs_bulk_sync\": {speedup:.4}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.json_path, json).expect("write JSON baseline");
    println!("wrote {}", args.json_path);
}
