//! **Fig 16**: strong-scaling speedup (time(1 thread) / time(t)) of the
//! OpenMP baseline vs dataflow. The paper reports ≈33% better performance
//! for dataflow at high thread counts, attributed to asynchronous task
//! execution and loop interleaving.

use op2_bench::{parse_sweep_args, run_airfoil, Table, Variant};

fn main() {
    let args = parse_sweep_args();
    println!(
        "Fig 16 — Airfoil strong scaling (cells={}, iters={}, min of {} reps)\n",
        args.cells, args.iters, args.reps
    );
    let mut omp_times = Vec::new();
    let mut df_times = Vec::new();
    for &t in &args.threads {
        omp_times.push(
            run_airfoil(Variant::OpenMp, t, args.cells, args.iters, args.reps)
                .time
                .as_secs_f64(),
        );
        df_times.push(
            run_airfoil(Variant::Dataflow, t, args.cells, args.iters, args.reps)
                .time
                .as_secs_f64(),
        );
    }
    let mut table = Table::new(vec![
        "threads",
        "omp_speedup",
        "dataflow_speedup",
        "improvement_%",
    ]);
    for (i, &t) in args.threads.iter().enumerate() {
        let s_omp = omp_times[0] / omp_times[i];
        let s_df = df_times[0] / df_times[i];
        let improvement = (omp_times[i] / df_times[i] - 1.0) * 100.0;
        table.row(vec![
            t.to_string(),
            format!("{s_omp:.3}"),
            format!("{s_df:.3}"),
            format!("{improvement:.1}"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\npaper: dataflow ≈33% faster at the highest thread counts; \
         1-thread times should be ≈equal ({:.1} ms vs {:.1} ms here).",
        omp_times[0] * 1e3,
        df_times[0] * 1e3
    );
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}
