//! **Fig 17**: dataflow with vs without `persistent_auto_chunk_size`
//! (§IV-B). With the shared chunker, dependent loops get chunks of equal
//! *duration*, shrinking the waiting time between interleaved loops; the
//! paper reports ≈40% improvement at 32 threads.

use op2_bench::{parse_sweep_args, run_airfoil, tables::ms, Table, Variant};

fn main() {
    let args = parse_sweep_args();
    println!(
        "Fig 17 — persistent_auto_chunk_size ablation (cells={}, iters={}, min of {} reps)\n",
        args.cells, args.iters, args.reps
    );
    let mut table = Table::new(vec![
        "threads",
        "dataflow_ms",
        "persistent_ms",
        "improvement_%",
    ]);
    for &t in &args.threads {
        let base = run_airfoil(Variant::Dataflow, t, args.cells, args.iters, args.reps);
        let pers = run_airfoil(
            Variant::DataflowPersistent,
            t,
            args.cells,
            args.iters,
            args.reps,
        );
        let improvement = (base.time.as_secs_f64() / pers.time.as_secs_f64() - 1.0) * 100.0;
        table.row(vec![
            t.to_string(),
            ms(base.time),
            ms(pers.time),
            format!("{improvement:.1}"),
        ]);
    }
    print!("{}", table.render());
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}
