//! **Fig 18**: the prefetching iterator (§V) applied on top of the
//! dataflow + persistent-chunking configuration, distance factor 15 (the
//! paper's optimum). The paper reports ≈45% average speedup improvement.

use op2_bench::{parse_sweep_args, run_airfoil, tables::ms, Table, Variant};

fn main() {
    let args = parse_sweep_args();
    println!(
        "Fig 18 — prefetching ablation (cells={}, iters={}, distance=15, min of {} reps)\n",
        args.cells, args.iters, args.reps
    );
    let mut table = Table::new(vec![
        "threads",
        "dataflow_ms",
        "prefetch_ms",
        "improvement_%",
    ]);
    for &t in &args.threads {
        let base = run_airfoil(
            Variant::DataflowPersistent,
            t,
            args.cells,
            args.iters,
            args.reps,
        );
        let pf = run_airfoil(
            Variant::DataflowPrefetch { distance: 15 },
            t,
            args.cells,
            args.iters,
            args.reps,
        );
        let improvement = (base.time.as_secs_f64() / pf.time.as_secs_f64() - 1.0) * 100.0;
        table.row(vec![
            t.to_string(),
            ms(base.time),
            ms(pf.time),
            format!("{improvement:.1}"),
        ]);
    }
    print!("{}", table.render());
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}
