//! **Fig 18**: the prefetching iterator (§V) applied on top of the
//! dataflow + persistent-chunking configuration, distance factor 15 (the
//! paper's optimum). The paper reports ≈45% average speedup improvement.

use op2_bench::{parse_sweep_args, run_airfoil, tables::ms, Table, Variant};

fn main() {
    let args = parse_sweep_args();
    println!(
        "Fig 18 — prefetching ablation (cells={}, iters={}, distance=15, min of {} reps)\n",
        args.cells, args.iters, args.reps
    );
    let mut table = Table::new(vec![
        "threads",
        "dataflow_ms",
        "prefetch_ms",
        "improvement_%",
    ]);
    let mut rows: Vec<(usize, f64, f64, f64)> = Vec::new();
    for &t in &args.threads {
        let base = run_airfoil(
            Variant::DataflowPersistent,
            t,
            args.cells,
            args.iters,
            args.reps,
        );
        let pf = run_airfoil(
            Variant::DataflowPrefetch { distance: 15 },
            t,
            args.cells,
            args.iters,
            args.reps,
        );
        let improvement = (base.time.as_secs_f64() / pf.time.as_secs_f64() - 1.0) * 100.0;
        rows.push((
            t,
            base.time.as_secs_f64(),
            pf.time.as_secs_f64(),
            improvement,
        ));
        table.row(vec![
            t.to_string(),
            ms(base.time),
            ms(pf.time),
            format!("{improvement:.1}"),
        ]);
    }
    print!("{}", table.render());
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
    if let Some(path) = &args.json {
        // Hand-rolled JSON (offline build: no serde).
        let mut json = String::from("{\n  \"bench\": \"fig18_prefetch\",\n");
        json.push_str(&format!(
            "  \"cells\": {}, \"iters\": {}, \"reps\": {}, \"distance\": 15,\n",
            args.cells, args.iters, args.reps
        ));
        json.push_str("  \"points\": [\n");
        for (i, (t, base, pf, imp)) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"threads\": {t}, \"dataflow_seconds\": {base:.6}, \
                 \"prefetch_seconds\": {pf:.6}, \"improvement_pct\": {imp:.2}}}{}\n",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write(path, json).expect("write JSON");
        eprintln!("wrote {}", path.display());
    }
}
