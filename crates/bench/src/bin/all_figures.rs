//! Runs every figure harness with shared settings, writing CSVs to
//! `results/` — the one-shot reproduction driver referenced by
//! `EXPERIMENTS.md`.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let exe_dir = std::env::current_exe()
        .expect("current_exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    std::fs::create_dir_all("results").expect("mkdir results");

    let figures = [
        "fig15_exec_time",
        "fig16_strong_scaling",
        "fig17_chunk_sizes",
        "fig18_prefetch",
        "fig19_bandwidth",
        "fig20_prefetch_distance",
    ];
    for fig in figures {
        println!("\n=== {fig} ===");
        let mut cmd = Command::new(exe_dir.join(fig));
        cmd.args(&args)
            .arg("--csv")
            .arg(format!("results/{fig}.csv"));
        let status = cmd.status().unwrap_or_else(|e| panic!("spawn {fig}: {e}"));
        assert!(status.success(), "{fig} failed");
    }
    println!("\n=== table1_policies ===");
    let status = Command::new(exe_dir.join("table1_policies"))
        .arg("--csv")
        .arg("results/table1_policies.csv")
        .status()
        .expect("spawn table1");
    assert!(status.success(), "table1 failed");
    println!("\nall figures complete; CSVs in results/");
}
