//! The traffic-scale headline bench: N concurrent airfoil solves on one
//! shared runtime through the [`SolverFarm`].
//!
//! Every tenant runs a closed submission loop — `--solves` jobs, each a
//! full airfoil solve on a fresh tenant world — with the farm's
//! per-tenant backpressure window providing steady-state arrival: a new
//! solve is admitted as an old one completes, so the farm sits at its
//! concurrency limit for the whole run instead of burst-then-drain.
//! Per-solve latency is submit-to-completion (queueing included — the
//! number a tenant actually experiences), summarized as p50/p95/p99.
//!
//! Gates (CI):
//! * `--fairness` — at every multi-tenant point, no tenant is starved:
//!   every tenant completes all its solves and the first `tenants`
//!   completions come from at least half the tenants (weighted-fair
//!   dispatch round-robins equal-priority tenants, so early completions
//!   must be spread, not one tenant's burst).
//! * `--min-throughput-ratio X` — aggregate throughput at 16 tenants
//!   must reach at least `X` times the 1-tenant throughput: concurrency
//!   across tenants has to *pay*, not just queue.
//!
//! Writes `BENCH_farm.json`. Options: `--cells`, `--iters` (solver
//! iterations per solve), `--solves` (per tenant), `--tenants LIST`
//! (default 1,16,128), `--threads N`, `--lanes N`, `--window N`,
//! `--fairness`, `--min-throughput-ratio X`, `--csv PATH`, `--json PATH`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use op2_bench::tables::{ms_f, LatencySummary};
use op2_bench::Table;
use op2_core::farm::{FarmConfig, Priority, SolverFarm};
use op2_mesh::QuadMesh;

struct Args {
    cells: usize,
    iters: usize,
    solves: usize,
    tenants: Vec<usize>,
    threads: usize,
    lanes: usize,
    window: usize,
    fairness: bool,
    min_throughput_ratio: f64,
    csv: Option<std::path::PathBuf>,
    json_path: String,
}

fn parse_args() -> Args {
    let host = std::thread::available_parallelism().map_or(2, |n| n.get());
    let mut args = Args {
        cells: 1500,
        iters: 10,
        solves: 4,
        tenants: vec![1, 16, 128],
        threads: host,
        lanes: (host / 2).clamp(2, 8),
        window: 2,
        fairness: false,
        min_throughput_ratio: 0.0,
        csv: None,
        json_path: "BENCH_farm.json".to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.cells = value("--cells").parse().expect("--cells"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--solves" => args.solves = value("--solves").parse().expect("--solves"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--lanes" => args.lanes = value("--lanes").parse().expect("--lanes"),
            "--window" => args.window = value("--window").parse().expect("--window"),
            "--tenants" => {
                args.tenants = value("--tenants")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--tenants"))
                    .collect();
            }
            "--fairness" => args.fairness = true,
            "--min-throughput-ratio" => {
                args.min_throughput_ratio = value("--min-throughput-ratio")
                    .parse()
                    .expect("--min-throughput-ratio")
            }
            "--csv" => args.csv = Some(value("--csv").into()),
            "--json" => args.json_path = value("--json"),
            "--help" | "-h" => {
                println!(
                    "solver_farm options:\n\
                     --cells N                 mesh cells per solve (default 1500)\n\
                     --iters N                 solver iterations per solve (default 10)\n\
                     --solves N                solves per tenant (default 4)\n\
                     --tenants LIST            concurrent-tenant sweep (default 1,16,128)\n\
                     --threads N               shared runtime workers (default host)\n\
                     --lanes N                 dispatcher lanes (default host/2, 2..=8)\n\
                     --window N                per-tenant in-flight window (default 2)\n\
                     --fairness                gate: no tenant starved at multi-tenant points\n\
                     --min-throughput-ratio X  gate: throughput@16 >= X * throughput@1\n\
                     --csv PATH                also write CSV\n\
                     --json PATH               JSON baseline (default BENCH_farm.json)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

struct Point {
    tenants: usize,
    jobs: usize,
    wall_s: f64,
    throughput: f64,
    latency: LatencySummary,
    min_completed: u64,
    max_completed: u64,
    /// Distinct tenants among the first `tenants` completions.
    early_distinct: usize,
    spec_hits: u64,
    spec_built: usize,
}

fn run_point(args: &Args, ntenants: usize) -> Point {
    let mesh = Arc::new(QuadMesh::with_cells(args.cells));
    let solver_cfg = airfoil_cfd::SolverConfig {
        niter: args.iters,
        window: 4,
        print_every: 0,
        ..airfoil_cfd::SolverConfig::default()
    };
    let farm = SolverFarm::new(
        FarmConfig::with_threads(args.threads)
            .with_lanes(args.lanes)
            .with_window(args.window)
            .with_queue_capacity((2 * ntenants).max(64)),
    );
    let tenants: Vec<_> = (0..ntenants)
        .map(|i| farm.register(&format!("bench{i}"), Priority::Normal))
        .collect();

    // (tenant index, global completion order, submit-to-completion secs)
    let completions: Arc<Mutex<Vec<(usize, usize, f64)>>> = Arc::new(Mutex::new(Vec::new()));
    let order = Arc::new(AtomicUsize::new(0));

    let t0 = Instant::now();
    std::thread::scope(|s| {
        for (ti, tenant) in tenants.iter().enumerate() {
            let farm = &farm;
            let mesh = Arc::clone(&mesh);
            let solver_cfg = solver_cfg.clone();
            let completions = Arc::clone(&completions);
            let order = Arc::clone(&order);
            s.spawn(move || {
                for _ in 0..args.solves {
                    let mesh = Arc::clone(&mesh);
                    let solver_cfg = solver_cfg.clone();
                    let completions = Arc::clone(&completions);
                    let order = Arc::clone(&order);
                    let submitted = Instant::now();
                    // submit() parks on the oldest in-flight solve once
                    // this tenant is at its window — the steady state.
                    farm.submit(tenant, move |op2| {
                        let r = airfoil_cfd::solve(op2, &mesh, &solver_cfg);
                        assert!(r.final_rms().is_finite());
                        let seq = order.fetch_add(1, Ordering::Relaxed);
                        completions.lock().expect("completion log").push((
                            ti,
                            seq,
                            submitted.elapsed().as_secs_f64(),
                        ));
                    });
                }
            });
        }
    });
    farm.drain();
    let wall_s = t0.elapsed().as_secs_f64();

    let jobs = ntenants * args.solves;
    let completions = completions.lock().expect("completion log");
    assert_eq!(completions.len(), jobs, "every solve completed");
    let latencies: Vec<f64> = completions.iter().map(|&(_, _, l)| l).collect();
    let mut early: Vec<usize> = completions
        .iter()
        .filter(|&&(_, seq, _)| seq < ntenants)
        .map(|&(ti, _, _)| ti)
        .collect();
    early.sort_unstable();
    early.dedup();
    let completed: Vec<u64> = tenants.iter().map(|t| farm.tenant_completed(t)).collect();

    Point {
        tenants: ntenants,
        jobs,
        wall_s,
        throughput: jobs as f64 / wall_s,
        latency: LatencySummary::from_samples(&latencies),
        min_completed: completed.iter().copied().min().unwrap_or(0),
        max_completed: completed.iter().copied().max().unwrap_or(0),
        early_distinct: early.len(),
        spec_hits: farm.spec_share().hits(),
        spec_built: farm.spec_share().built(),
    }
}

fn main() {
    let args = parse_args();
    println!("solver_farm: concurrent airfoil solves on one shared runtime");
    println!(
        "cells={} iters={} solves/tenant={} threads={} lanes={} window={}",
        args.cells, args.iters, args.solves, args.threads, args.lanes, args.window
    );

    let mut table = Table::new(vec![
        "tenants",
        "solves",
        "wall_s",
        "solves_per_s",
        "p50_ms",
        "p95_ms",
        "p99_ms",
        "completed_min/max",
    ]);
    let mut points: Vec<Point> = Vec::new();
    for &n in &args.tenants {
        let p = run_point(&args, n.max(1));
        println!(
            "  {} tenants: {:.2} solves/s, p99 {:.1} ms, spec cache {} built / {} hits",
            p.tenants,
            p.throughput,
            p.latency.p99_s * 1e3,
            p.spec_built,
            p.spec_hits
        );
        table.row(vec![
            p.tenants.to_string(),
            p.jobs.to_string(),
            format!("{:.3}", p.wall_s),
            format!("{:.2}", p.throughput),
            ms_f(p.latency.p50_s),
            ms_f(p.latency.p95_s),
            ms_f(p.latency.p99_s),
            format!("{}/{}", p.min_completed, p.max_completed),
        ]);
        points.push(p);
    }
    println!("{}", table.render());
    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("write CSV");
    }

    // Hand-rolled JSON (offline build: no serde).
    let mut json = String::from("{\n  \"bench\": \"solver_farm\",\n");
    json.push_str(&format!(
        "  \"cells\": {}, \"iters\": {}, \"solves_per_tenant\": {}, \"threads\": {}, \
         \"lanes\": {}, \"window\": {}, \"host_threads\": {},\n  \"results\": [\n",
        args.cells,
        args.iters,
        args.solves,
        args.threads,
        args.lanes,
        args.window,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"tenants\": {}, \"solves\": {}, \"wall_seconds\": {:.4}, \
             \"solves_per_second\": {:.4}, {}, \"completed_min\": {}, \
             \"completed_max\": {}, \"early_distinct_tenants\": {}, \
             \"spec_cache_built\": {}, \"spec_cache_hits\": {}}}{}\n",
            p.tenants,
            p.jobs,
            p.wall_s,
            p.throughput,
            p.latency.json_fields(),
            p.min_completed,
            p.max_completed,
            p.early_distinct,
            p.spec_built,
            p.spec_hits,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&args.json_path, json).expect("write JSON baseline");
    println!("wrote {}", args.json_path);

    let mut failed = false;
    if args.fairness {
        for p in points.iter().filter(|p| p.tenants > 1) {
            if p.min_completed < args.solves as u64 {
                eprintln!(
                    "FAIL fairness: at {} tenants a tenant finished only {}/{} solves",
                    p.tenants, p.min_completed, args.solves
                );
                failed = true;
            }
            if p.early_distinct < p.tenants.div_ceil(2) {
                eprintln!(
                    "FAIL fairness: first {} completions came from only {} tenants (need >= {})",
                    p.tenants,
                    p.early_distinct,
                    p.tenants.div_ceil(2)
                );
                failed = true;
            }
        }
    }
    if args.min_throughput_ratio > 0.0 {
        let at = |n: usize| points.iter().find(|p| p.tenants == n);
        let single = at(1);
        let multi = at(16).or_else(|| points.iter().rfind(|p| p.tenants > 1));
        match (single, multi) {
            (Some(s), Some(m)) => {
                let ratio = m.throughput / s.throughput;
                if ratio < args.min_throughput_ratio {
                    eprintln!(
                        "FAIL throughput: {} tenants reach {ratio:.3}x of 1-tenant throughput \
                         (need >= {:.3}x)",
                        m.tenants, args.min_throughput_ratio
                    );
                    failed = true;
                }
            }
            _ => eprintln!(
                "WARN: --min-throughput-ratio needs both a 1-tenant and a multi-tenant point"
            ),
        }
    }
    if failed {
        std::process::exit(1);
    }
}
