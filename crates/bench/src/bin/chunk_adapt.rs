//! Adaptive-chunking benchmark (paper §IV-B, Figs 12/17 re-imagined for
//! the Dataflow backend): static chunk-size sweep vs feedback-driven
//! granularity on the airfoil-shaped workload.
//!
//! The static sweep hand-tunes the Dataflow node granularity
//! (`ChunkPolicy::Static`) across a power-of-two range; the adaptive
//! policies (`Auto`, `PersistentAuto`) start from the conservative probe
//! default and let measured per-element cost resolve the granularity at
//! runtime. The claim under test: **adaptive lands within ~10% of the best
//! static sweep point without hand-tuning**.
//!
//! Emits `BENCH_chunk.json`. Options: `--cells`, `--iters`, `--threads N`
//! (single value — this bench compares chunkers, not scaling), `--reps`,
//! `--json PATH`, and `--max-ratio R` (exit non-zero if any adaptive
//! variant is more than `R`x the best static time — the CI gate).

use std::time::Duration;

use airfoil_cfd::{solver, Problem, SolverConfig};
use op2_bench::Table;
use op2_core::hpx_rt::ChunkPolicy;
use op2_core::{Op2, Op2Config};
use op2_mesh::QuadMesh;

struct Args {
    cells: usize,
    iters: usize,
    threads: usize,
    reps: usize,
    json_path: String,
    max_ratio: Option<f64>,
}

fn parse_args() -> Args {
    let mut args = Args {
        cells: 8_000,
        iters: 30,
        threads: std::thread::available_parallelism().map_or(2, |n| n.get().min(4)),
        reps: 2,
        json_path: "BENCH_chunk.json".to_owned(),
        max_ratio: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.cells = value("--cells").parse().expect("--cells"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--threads" => args.threads = value("--threads").parse().expect("--threads"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps"),
            "--json" => args.json_path = value("--json"),
            "--max-ratio" => {
                args.max_ratio = Some(value("--max-ratio").parse().expect("--max-ratio"))
            }
            "--help" | "-h" => {
                println!(
                    "chunk_adapt options:\n\
                     --cells N       mesh size in cells (default 8000)\n\
                     --iters N       solver iterations (default 30)\n\
                     --threads N     worker threads (default min(host, 4))\n\
                     --reps N        repetitions, min-of (default 2)\n\
                     --json PATH     JSON baseline (default BENCH_chunk.json)\n\
                     --max-ratio R   fail if adaptive > R x best static (CI gate)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    args
}

/// One timed airfoil run under `config`; returns best wall time over reps.
fn run_airfoil(config: &Op2Config, mesh: &QuadMesh, iters: usize, reps: usize) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..reps.max(1) {
        let op2 = Op2::new(config.clone());
        let problem = Problem::declare(&op2, mesh);
        let result = solver::run(
            &op2,
            &problem,
            &SolverConfig {
                niter: iters,
                window: 16,
                print_every: 0,
                ..SolverConfig::default()
            },
        );
        assert!(
            result.final_rms().is_finite(),
            "diverged under {:?}",
            config.chunk
        );
        best = best.min(result.elapsed);
    }
    best
}

fn main() {
    let args = parse_args();
    let mesh = QuadMesh::with_cells(args.cells);
    println!(
        "chunk_adapt: static granularity sweep vs feedback-driven adaptive (Dataflow)\n\
         cells={} iters={} threads={} reps={}",
        mesh.ncell, args.iters, args.threads, args.reps
    );

    // Deltas over this process's runs, not absolute process-wide values —
    // robust to any warm-up work that already ticked the counters.
    let stats_before = op2_core::hpx_rt::stats::snapshot();

    let mut table = Table::new(vec!["variant", "best_seconds", "vs_best_static"]);

    // Static sweep: hand-tuned node granularity.
    let sweep: Vec<usize> = vec![32, 64, 128, 256, 512, 1024];
    let mut static_rows: Vec<(usize, f64)> = Vec::new();
    for &block in &sweep {
        let config =
            Op2Config::dataflow(args.threads).with_chunk(ChunkPolicy::Static { size: block });
        let secs = run_airfoil(&config, &mesh, args.iters, args.reps).as_secs_f64();
        static_rows.push((block, secs));
    }
    let &(best_block, best_static) = static_rows
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty sweep");

    for &(block, secs) in &static_rows {
        table.row(vec![
            format!("static{block}"),
            format!("{secs:.4}"),
            format!("{:.3}x", secs / best_static),
        ]);
    }

    // Adaptive: no hand-tuning — the probe default plus measured feedback.
    let adaptive_cfgs: Vec<(&str, Op2Config)> = vec![
        ("auto", Op2Config::dataflow(args.threads)),
        ("persistent_auto", Op2Config::persistent_auto(args.threads)),
    ];
    let mut adaptive_rows: Vec<(String, f64, f64)> = Vec::new();
    for (name, config) in adaptive_cfgs {
        let secs = run_airfoil(&config, &mesh, args.iters, args.reps).as_secs_f64();
        let ratio = secs / best_static;
        adaptive_rows.push((name.to_owned(), secs, ratio));
        table.row(vec![
            name.to_owned(),
            format!("{secs:.4}"),
            format!("{ratio:.3}x"),
        ]);
    }
    println!("{}", table.render());
    println!("best static point: block={best_block} ({best_static:.4}s)");

    let (hits, misses, replans) = (
        stats_before.delta("op2.spec_cache.hits"),
        stats_before.delta("op2.spec_cache.misses"),
        stats_before.delta("op2.spec_cache.replans"),
    );
    let samples = stats_before.delta("hpx.feedback.samples");
    println!(
        "loop-spec cache: {hits} hits / {misses} misses / {replans} re-plans; \
         {samples} feedback samples (this bench)"
    );

    // Hand-rolled JSON (offline build: no serde).
    let mut json = String::from("{\n  \"bench\": \"chunk_adapt\",\n");
    json.push_str(&format!(
        "  \"cells\": {}, \"iters\": {}, \"threads\": {}, \"reps\": {}, \"host_threads\": {},\n",
        mesh.ncell,
        args.iters,
        args.threads,
        args.reps,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    json.push_str("  \"static_sweep\": [\n");
    for (i, (block, secs)) in static_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"block\": {block}, \"best_seconds\": {secs:.6}}}{}\n",
            if i + 1 < static_rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"best_static\": {{\"block\": {best_block}, \"best_seconds\": {best_static:.6}}},\n"
    ));
    json.push_str("  \"adaptive\": [\n");
    for (i, (name, secs, ratio)) in adaptive_rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"policy\": \"{name}\", \"best_seconds\": {secs:.6}, \
             \"ratio_vs_best_static\": {ratio:.4}}}{}\n",
            if i + 1 < adaptive_rows.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"spec_cache\": {{\"hits\": {hits}, \"misses\": {misses}, \
         \"replans\": {replans}}},\n  \"feedback_samples\": {samples}\n}}\n"
    ));
    std::fs::write(&args.json_path, json).expect("write JSON baseline");
    println!("wrote {}", args.json_path);

    if let Some(max_ratio) = args.max_ratio {
        for (name, _, ratio) in &adaptive_rows {
            if *ratio > max_ratio {
                eprintln!(
                    "FAIL: adaptive '{name}' is {ratio:.3}x the best static point \
                     (gate: {max_ratio}x)"
                );
                std::process::exit(1);
            }
        }
        println!("gate passed: all adaptive variants within {max_ratio}x of best static");
    }
}
