//! **Fig 19**: data transfer rate of `hpx::for_each` with the standard
//! random-access iterator vs the prefetching iterator, inside a dataflow
//! task, across thread counts — the streaming (`update`-shaped) loop.

use op2_bench::{bandwidth_run, parse_sweep_args, Table};

fn main() {
    let args = parse_sweep_args();
    // Reuse --cells as the element count of the streaming loop (x16 to
    // defeat the last-level cache) and --iters as passes.
    let elements = (args.cells * 16).max(1 << 20);
    let passes = args.iters.max(3);
    println!(
        "Fig 19 — transfer rate, standard vs prefetching iterator \
         (elements={elements}, passes={passes})\n"
    );
    let mut table = Table::new(vec![
        "threads",
        "standard_GiBps",
        "prefetch_GiBps",
        "gain_%",
    ]);
    for &t in &args.threads {
        let plain = bandwidth_run(t, elements, passes, None);
        let pf = bandwidth_run(t, elements, passes, Some(15));
        table.row(vec![
            t.to_string(),
            format!("{plain:.2}"),
            format!("{pf:.2}"),
            format!("{:.1}", (pf / plain - 1.0) * 100.0),
        ]);
    }
    print!("{}", table.render());
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}
