//! **Fig 15**: Airfoil execution time, `#pragma omp parallel for` baseline
//! vs `dataflow`, across thread counts. The paper reports parity at one
//! thread and a widening dataflow advantage as threads grow.

use op2_bench::{parse_sweep_args, run_airfoil, tables::ms, Table, Variant};

fn main() {
    let args = parse_sweep_args();
    println!(
        "Fig 15 — Airfoil execution time (cells={}, iters={}, min of {} reps)\n",
        args.cells, args.iters, args.reps
    );
    let mut table = Table::new(vec!["threads", "omp_ms", "dataflow_ms", "dataflow/omp"]);
    for &t in &args.threads {
        let omp = run_airfoil(Variant::OpenMp, t, args.cells, args.iters, args.reps);
        let df = run_airfoil(Variant::Dataflow, t, args.cells, args.iters, args.reps);
        let rel = df.time.as_secs_f64() / omp.time.as_secs_f64();
        table.row(vec![
            t.to_string(),
            ms(omp.time),
            ms(df.time),
            format!("{rel:.3}"),
        ]);
        // Physics must agree or the comparison is meaningless.
        let drift = (omp.final_rms - df.final_rms).abs() / omp.final_rms.max(1e-300);
        assert!(drift < 1e-6, "backends disagree on rms: {drift:e}");
    }
    print!("{}", table.render());
    if let Some(path) = &args.csv {
        table.write_csv(path).expect("write csv");
        eprintln!("wrote {}", path.display());
    }
}
