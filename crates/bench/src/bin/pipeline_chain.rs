//! Pipelining micro-benchmark: whole-loop chaining vs block-granular
//! dataflow on an airfoil-shaped dependent loop chain.
//!
//! The workload alternates two RAW-dependent direct loops (`b = f(a)`,
//! `a = g(b)`) whose per-element cost is skewed — the tail blocks of every
//! loop are stragglers. Whole-loop chaining (each loop waits for its
//! predecessor's completion future, the pre-refactor engine) stalls every
//! iteration on the straggler tail; the block-granular engine starts the
//! successor's ready blocks on the idle workers instead.
//!
//! Emits a JSON baseline (default `BENCH_pipeline.json`) for the perf
//! trajectory. Options: the common sweep flags (`--cells`, `--iters`,
//! `--threads a,b,c`, `--reps`) plus `--json PATH`.

use std::time::{Duration, Instant};

use op2_bench::{SweepArgs, Table};
use op2_core::args::{read, write};
use op2_core::{Op2, Op2Config};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Chaining {
    /// Block-granular dataflow: successor blocks start as their per-block
    /// dependencies resolve (this repo's engine).
    BlockGranular,
    /// Whole-loop chaining: wait on every loop's completion future before
    /// submitting the next (the pre-refactor dependency granularity).
    WholeLoop,
    /// Fork-join baseline: global barrier after every loop.
    ForkJoin,
}

impl Chaining {
    fn label(self) -> &'static str {
        match self {
            Chaining::BlockGranular => "dataflow-block-granular",
            Chaining::WholeLoop => "dataflow-whole-loop",
            Chaining::ForkJoin => "fork-join",
        }
    }
}

fn spin(units: usize) {
    let mut acc = 1.0f64;
    for _ in 0..units {
        acc = (acc * 1.000001 + 1.0).sqrt();
    }
    std::hint::black_box(acc);
}

/// Cost skew: the last eighth of the set is 8x heavier per element — the
/// straggler tail that leaves workers idle under whole-loop chaining.
fn kernel_cost(e: usize, n: usize) -> usize {
    if e >= n - n / 8 {
        160
    } else {
        20
    }
}

fn run_chain(mode: Chaining, threads: usize, n: usize, iters: usize) -> Duration {
    let config = match mode {
        Chaining::ForkJoin => Op2Config::fork_join(threads),
        _ => Op2Config::dataflow(threads),
    };
    let op2 = Op2::new(config);
    let cells = op2.decl_set(n, "cells");
    let idx: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let a = op2.decl_dat(&cells, 1, "a", idx);
    let b = op2.decl_dat(&cells, 1, "b", vec![0.0; n]);

    let t0 = Instant::now();
    for _ in 0..iters {
        let h1 = op2.loop_("fwd", &cells).arg(read(&a)).arg(write(&b)).run(
            move |a: &[f64], b: &mut [f64]| {
                spin(kernel_cost(a[0] as usize, n));
                b[0] = a[0];
            },
        );
        if mode == Chaining::WholeLoop {
            h1.wait();
        }
        let h2 = op2.loop_("bwd", &cells).arg(read(&b)).arg(write(&a)).run(
            move |b: &[f64], a: &mut [f64]| {
                spin(kernel_cost(b[0] as usize, n));
                a[0] = b[0];
            },
        );
        if mode == Chaining::WholeLoop {
            h2.wait();
        }
    }
    op2.fence();
    t0.elapsed()
}

fn parse_args() -> (SweepArgs, String) {
    // Defaults tuned for a sub-minute pipelining measurement.
    let mut args = SweepArgs {
        cells: 20_000,
        iters: 10,
        ..SweepArgs::default()
    };
    let mut json_path = "BENCH_pipeline.json".to_owned();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--cells" => args.cells = value("--cells").parse().expect("--cells"),
            "--iters" => args.iters = value("--iters").parse().expect("--iters"),
            "--reps" => args.reps = value("--reps").parse().expect("--reps"),
            "--threads" => {
                args.threads = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().expect("--threads"))
                    .collect();
            }
            "--csv" => args.csv = Some(value("--csv").into()),
            "--json" => json_path = value("--json"),
            "--help" | "-h" => {
                println!(
                    "pipeline_chain options:\n\
                     --cells N       chain set size (default 20000)\n\
                     --iters N       chained loop pairs (default 10)\n\
                     --threads LIST  e.g. 1,2,4\n\
                     --reps N        repetitions, min-of (default 2)\n\
                     --csv PATH      also write CSV\n\
                     --json PATH     JSON baseline (default BENCH_pipeline.json)"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other} (try --help)"),
        }
    }
    (args, json_path)
}

fn main() {
    let (args, json_path) = parse_args();

    println!("pipeline_chain: dependent RAW loop chain, whole-loop vs block-granular");
    println!(
        "cells={} iters={} reps={}",
        args.cells, args.iters, args.reps
    );
    let mut table = Table::new(vec![
        "variant",
        "threads",
        "best_seconds",
        "speedup_vs_whole_loop",
    ]);
    let mut rows: Vec<(String, usize, f64, f64)> = Vec::new();
    // Deltas over this sweep, not absolute process-wide values.
    let stats_before = op2_core::hpx_rt::stats::snapshot();

    for &threads in &args.threads {
        let mut whole_loop_best = f64::NAN;
        for mode in [
            Chaining::WholeLoop,
            Chaining::BlockGranular,
            Chaining::ForkJoin,
        ] {
            let mut best = Duration::MAX;
            for _ in 0..args.reps.max(1) {
                best = best.min(run_chain(mode, threads, args.cells, args.iters));
            }
            let secs = best.as_secs_f64();
            if mode == Chaining::WholeLoop {
                whole_loop_best = secs;
            }
            let speedup = whole_loop_best / secs;
            rows.push((mode.label().to_owned(), threads, secs, speedup));
            table.row(vec![
                mode.label().to_owned(),
                threads.to_string(),
                format!("{secs:.4}"),
                format!("{speedup:.3}x"),
            ]);
        }
    }
    println!("{}", table.render());
    if let Some(csv) = &args.csv {
        table.write_csv(csv).expect("write CSV");
    }

    // Loop-spec cache effectiveness across the whole sweep: every repeated
    // submission of a (name, set, signature, chunk) shape should hit.
    let spec_hits = stats_before.delta("op2.spec_cache.hits");
    let spec_misses = stats_before.delta("op2.spec_cache.misses");
    println!("loop-spec cache: {spec_hits} hits / {spec_misses} misses (this sweep)");

    // Hand-rolled JSON (offline build: no serde).
    let mut json = String::from("{\n  \"bench\": \"pipeline_chain\",\n");
    json.push_str(&format!(
        "  \"cells\": {}, \"iters\": {}, \"reps\": {}, \"host_threads\": {},\n  \
         \"spec_cache_hits\": {spec_hits}, \"spec_cache_misses\": {spec_misses},\n  \"results\": [\n",
        args.cells,
        args.iters,
        args.reps,
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    for (i, (variant, threads, secs, speedup)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"variant\": \"{variant}\", \"threads\": {threads}, \
             \"best_seconds\": {secs:.6}, \"speedup_vs_whole_loop\": {speedup:.4}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&json_path, json).expect("write JSON baseline");
    println!("wrote {json_path}");
}
