//! Workload runners shared by the figure binaries.

use std::sync::Arc;
use std::time::Duration;

use airfoil_cfd::{solver, Problem, SolverConfig};
use hpx_rt::{
    for_each_async, for_each_prefetch_async, make_prefetcher_context, par_task, PersistentChunker,
    Runtime,
};
use op2_core::{Op2, Op2Config};
use op2_mesh::QuadMesh;

/// Which Airfoil configuration a figure compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// `#pragma omp parallel for` equivalent (fork-join, global barriers).
    OpenMp,
    /// Dataflow backend, per-loop `auto_chunk_size`.
    Dataflow,
    /// Dataflow + the paper's `persistent_auto_chunk_size` (§IV-B).
    DataflowPersistent,
    /// Dataflow + persistent chunking + prefetching iterator (§V).
    DataflowPrefetch {
        /// Prefetch distance factor (paper optimum: 15).
        distance: usize,
    },
}

impl Variant {
    /// Builds the corresponding [`Op2Config`].
    pub fn config(&self, threads: usize) -> Op2Config {
        match self {
            Variant::OpenMp => Op2Config::fork_join(threads),
            Variant::Dataflow => Op2Config::dataflow(threads),
            Variant::DataflowPersistent => {
                Op2Config::dataflow_persistent(threads, PersistentChunker::new())
            }
            Variant::DataflowPrefetch { distance } => {
                Op2Config::dataflow_persistent(threads, PersistentChunker::new())
                    .with_prefetch(*distance)
            }
        }
    }

    /// Short label used in tables.
    pub fn label(&self) -> String {
        match self {
            Variant::OpenMp => "omp-parallel-for".into(),
            Variant::Dataflow => "dataflow".into(),
            Variant::DataflowPersistent => "dataflow+persistent-chunks".into(),
            Variant::DataflowPrefetch { distance } => format!("dataflow+prefetch(d={distance})"),
        }
    }
}

/// One timed Airfoil measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Best wall time over the repetitions.
    pub time: Duration,
    /// Final residual (correctness cross-check between variants).
    pub final_rms: f64,
}

/// Runs the Airfoil benchmark: `reps` repetitions (fresh state each),
/// returning the minimum time. The mesh is built once per call.
pub fn run_airfoil(
    variant: Variant,
    threads: usize,
    cells: usize,
    iters: usize,
    reps: usize,
) -> Measurement {
    let mesh = QuadMesh::with_cells(cells);
    let mut best: Option<Measurement> = None;
    for _ in 0..reps.max(1) {
        let op2 = Op2::new(variant.config(threads));
        let problem = Problem::declare(&op2, &mesh);
        let result = solver::run(
            &op2,
            &problem,
            &SolverConfig {
                niter: iters,
                window: 16,
                print_every: 0,
                ..SolverConfig::default()
            },
        );
        let m = Measurement {
            time: result.elapsed,
            final_rms: result.final_rms(),
        };
        best = Some(match best {
            Some(prev) if prev.time <= m.time => prev,
            _ => m,
        });
    }
    best.expect("reps >= 1")
}

/// The Fig 19/20 bandwidth workload: an `update`-shaped streaming loop
/// over four containers (reads q/old/adt, writes res), executed as a
/// dataflow task via `for_each`, with or without the prefetching iterator.
/// Returns the sustained data rate in GiB/s.
pub fn bandwidth_run(
    threads: usize,
    elements: usize,
    passes: usize,
    prefetch_distance: Option<usize>,
) -> f64 {
    let rt = Runtime::new(threads);
    let qold: Arc<Vec<f64>> = Arc::new((0..elements * 4).map(|i| i as f64).collect());
    let adt: Arc<Vec<f64>> = Arc::new(vec![1.5; elements]);
    let res: Arc<Vec<f64>> = Arc::new(vec![0.25; elements * 4]);
    let q: Arc<Vec<std::sync::atomic::AtomicU64>> = Arc::new(
        (0..elements * 4)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect(),
    );

    // Bytes touched per element per pass: 4 reads qold + 1 read adt +
    // 4 reads res + 4 writes q, all f64.
    let bytes_per_pass = (elements * (4 + 1 + 4 + 4) * 8) as f64;

    let t0 = std::time::Instant::now();
    for _ in 0..passes {
        let body = {
            let (qold, adt, res, q) = (qold.clone(), adt.clone(), res.clone(), q.clone());
            move |e: usize| {
                let adti = 1.0 / adt[e];
                for n in 0..4 {
                    let del = adti * res[e * 4 + n];
                    let v = qold[e * 4 + n] - del;
                    q[e * 4 + n].store(v.to_bits(), std::sync::atomic::Ordering::Relaxed);
                }
            }
        };
        let fut = match prefetch_distance {
            None => for_each_async(&rt, par_task(), 0..elements, body),
            Some(d) => {
                let ctx = make_prefetcher_context(0..elements, d, (&qold[..], &adt[..], &res[..]));
                for_each_prefetch_async(&rt, par_task(), &ctx, Arc::new(body))
            }
        };
        fut.get();
    }
    let secs = t0.elapsed().as_secs_f64();
    bytes_per_pass * passes as f64 / secs / (1024.0 * 1024.0 * 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airfoil_measurement_is_consistent_across_variants() {
        let a = run_airfoil(Variant::OpenMp, 2, 2000, 5, 1);
        let b = run_airfoil(Variant::Dataflow, 2, 2000, 5, 1);
        assert!(a.time > Duration::ZERO && b.time > Duration::ZERO);
        let rel = (a.final_rms - b.final_rms).abs() / a.final_rms.max(1e-12);
        assert!(rel < 1e-6, "variants disagree on physics: {rel:e}");
    }

    #[test]
    fn bandwidth_positive_with_and_without_prefetch() {
        let plain = bandwidth_run(2, 50_000, 2, None);
        let pf = bandwidth_run(2, 50_000, 2, Some(15));
        assert!(plain > 0.0);
        assert!(pf > 0.0);
    }

    #[test]
    fn variant_labels_are_distinct() {
        let labels = [
            Variant::OpenMp.label(),
            Variant::Dataflow.label(),
            Variant::DataflowPersistent.label(),
            Variant::DataflowPrefetch { distance: 15 }.label(),
        ];
        let mut dedup = labels.to_vec();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
