//! Plain-text table and CSV emission for the figure harnesses.

use std::io::Write as _;
use std::path::Path;

/// A column-aligned results table that can also be written as CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                let pad = widths[c] - cells[c].len();
                // Right-align numbers (cells that parse as f64), left-align text.
                if cells[c].parse::<f64>().is_ok() {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[c]);
                } else {
                    line.push_str(&cells[c]);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV (RFC-4180 quoting for cells containing
    /// commas or quotes).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let join = |cells: &[String]| {
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        writeln!(f, "{}", join(&self.header))?;
        for row in &self.rows {
            writeln!(f, "{}", join(row))?;
        }
        f.flush()
    }
}

/// Latency percentiles over a set of per-operation samples — the p50/p95/
/// p99 columns of throughput benches (`solver_farm` being the archetype:
/// per-solve submit-to-completion latency under steady-state arrival).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean, seconds.
    pub mean_s: f64,
    /// Median (p50), seconds.
    pub p50_s: f64,
    /// 95th percentile, seconds.
    pub p95_s: f64,
    /// 99th percentile, seconds.
    pub p99_s: f64,
    /// Largest sample, seconds.
    pub max_s: f64,
}

impl LatencySummary {
    /// Summarizes `samples` (seconds; any order; NaNs rejected). Returns
    /// the zero summary for an empty slice.
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        assert!(
            samples.iter().all(|s| !s.is_nan()),
            "latency samples must not contain NaN"
        );
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        LatencySummary {
            count: sorted.len(),
            mean_s: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_s: percentile(&sorted, 0.50),
            p95_s: percentile(&sorted, 0.95),
            p99_s: percentile(&sorted, 0.99),
            max_s: *sorted.last().expect("non-empty"),
        }
    }

    /// `[Duration]` convenience for callers collecting `Instant` spans.
    pub fn from_durations(samples: &[std::time::Duration]) -> Self {
        let secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
        Self::from_samples(&secs)
    }

    /// The `"mean_ms"`/`"p50_ms"`/`"p95_ms"`/`"p99_ms"`/`"max_ms"` fields
    /// of a JSON record, pre-formatted — every bench writes the same
    /// shape into its `BENCH_*.json`.
    pub fn json_fields(&self) -> String {
        format!(
            "\"mean_ms\": {:.3}, \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}",
            self.mean_s * 1e3,
            self.p50_s * 1e3,
            self.p95_s * 1e3,
            self.p99_s * 1e3,
            self.max_s * 1e3
        )
    }
}

/// The `q`-quantile (0..=1) of an ascending-sorted slice, by linear
/// interpolation between the two nearest ranks — p99 of 16 samples is a
/// weighted blend of the two largest, not just the max.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Formats a `Duration` in milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Formats seconds in milliseconds with 2 decimals (percentile columns).
pub fn ms_f(secs: f64) -> String {
    format!("{:.2}", secs * 1e3)
}

/// Formats a ratio with 3 decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["threads", "time_ms"]);
        t.row(vec!["1", "100.00"]);
        t.row(vec!["16", "7.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("threads"));
        assert!(lines[3].ends_with("7.25"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let dir = std::env::temp_dir().join("op2_bench_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn percentiles_interpolate() {
        let sorted: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert!((percentile(&sorted, 0.50) - 50.5).abs() < 1e-9);
        assert!((percentile(&sorted, 0.99) - 99.01).abs() < 1e-9);
        assert_eq!(percentile(&[7.0], 0.99), 7.0);
    }

    #[test]
    fn latency_summary_orders_quantiles() {
        let samples: Vec<f64> = (0..50).map(|i| (50 - i) as f64 * 1e-3).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 50);
        assert!(s.p50_s <= s.p95_s && s.p95_s <= s.p99_s && s.p99_s <= s.max_s);
        assert_eq!(s.max_s, 50e-3);
        let json = s.json_fields();
        assert!(json.contains("\"p99_ms\""), "json fields present: {json}");
        assert_eq!(LatencySummary::from_samples(&[]).count, 0);
    }

    #[test]
    fn csv_quotes_cells_with_commas() {
        let mut t = Table::new(vec!["impl", "n"]);
        t.row(vec!["Parallelism TS, HPX", "say \"hi\""]);
        let dir = std::env::temp_dir().join("op2_bench_test_quote");
        let path = dir.join("q.csv");
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "impl,n\n\"Parallelism TS, HPX\",\"say \"\"hi\"\"\"\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
