//! Plain-text table and CSV emission for the figure harnesses.

use std::io::Write as _;
use std::path::Path;

/// A column-aligned results table that can also be written as CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header length).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for c in 0..ncols {
                if c > 0 {
                    line.push_str("  ");
                }
                let pad = widths[c] - cells[c].len();
                // Right-align numbers (cells that parse as f64), left-align text.
                if cells[c].parse::<f64>().is_ok() {
                    line.push_str(&" ".repeat(pad));
                    line.push_str(&cells[c]);
                } else {
                    line.push_str(&cells[c]);
                    line.push_str(&" ".repeat(pad));
                }
            }
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Writes the table as CSV (RFC-4180 quoting for cells containing
    /// commas or quotes).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
        let join = |cells: &[String]| {
            cells
                .iter()
                .map(|c| escape(c))
                .collect::<Vec<_>>()
                .join(",")
        };
        writeln!(f, "{}", join(&self.header))?;
        for row in &self.rows {
            writeln!(f, "{}", join(row))?;
        }
        f.flush()
    }
}

/// Formats a `Duration` in milliseconds with 2 decimals.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Formats a ratio with 3 decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["threads", "time_ms"]);
        t.row(vec!["1", "100.00"]);
        t.row(vec!["16", "7.25"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("threads"));
        assert!(lines[3].ends_with("7.25"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn csv_round_trip() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["1", "2"]);
        let dir = std::env::temp_dir().join("op2_bench_test");
        let path = dir.join("t.csv");
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn csv_quotes_cells_with_commas() {
        let mut t = Table::new(vec!["impl", "n"]);
        t.row(vec!["Parallelism TS, HPX", "say \"hi\""]);
        let dir = std::env::temp_dir().join("op2_bench_test_quote");
        let path = dir.join("q.csv");
        t.write_csv(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "impl,n\n\"Parallelism TS, HPX\",\"say \"\"hi\"\"\"\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
