//! # op2-bench — the figure-regeneration harness
//!
//! One binary per table/figure of the paper's evaluation (§VI):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig15_exec_time` | Fig 15: Airfoil execution time, OpenMP vs dataflow |
//! | `fig16_strong_scaling` | Fig 16: strong-scaling speedup comparison |
//! | `fig17_chunk_sizes` | Fig 17: ± `persistent_auto_chunk_size` |
//! | `fig18_prefetch` | Fig 18: ± prefetching iterator |
//! | `fig19_bandwidth` | Fig 19: transfer rate, standard vs prefetch iterator |
//! | `fig20_prefetch_distance` | Fig 20: transfer rate vs prefetch distance |
//! | `table1_policies` | Table I: execution-policy catalogue |
//! | `solver_farm` | multi-tenant farm: throughput + p50/p95/p99 at 1/16/128 tenants |
//! | `all_figures` | runs everything, writing CSVs to `results/` |
//!
//! Every binary accepts `--cells`, `--iters`, `--threads a,b,c`, `--reps`,
//! `--csv PATH` and `--paper-scale` (see [`sweep::parse_sweep_args`]).

pub mod harness;
pub mod sweep;
pub mod tables;

pub use harness::{bandwidth_run, run_airfoil, Measurement, Variant};
pub use sweep::{parse_sweep_args, SweepArgs};
pub use tables::{percentile, LatencySummary, Table};
