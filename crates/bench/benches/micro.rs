//! Micro-benchmarks of the runtime substrate and the OP2 layer: the
//! component costs behind the paper's end-to-end figures (future overhead,
//! dataflow chaining, chunked loops, plan coloring, prefetch iterator, one
//! Airfoil iteration per backend).
//!
//! Self-contained stopwatch harness (`harness = false`; the environment is
//! offline, so no external bench framework). Run with
//! `cargo bench -p op2-bench` — pass a substring to filter benchmarks,
//! `--quick` for one iteration each.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use airfoil_cfd::{solver, Problem, SolverConfig};
use hpx_rt::{
    dataflow, for_each, for_each_prefetch, make_prefetcher_context, par, ready, ChunkPolicy,
    Runtime,
};
use op2_core::{Op2, Op2Config};
use op2_mesh::channel_with_bump;

/// Measures `f` until ~`budget` elapsed (after one warm-up call) and
/// prints mean ns/op, min and iteration count.
struct Bench {
    filter: Option<String>,
    budget: Duration,
}

impl Bench {
    fn from_args() -> Self {
        let mut filter = None;
        let mut budget = Duration::from_millis(500);
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--quick" => budget = Duration::ZERO,
                "--bench" => {} // passed by `cargo bench`
                s if !s.starts_with("--") => filter = Some(s.to_owned()),
                _ => {}
            }
        }
        Bench { filter, budget }
    }

    fn run<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        if let Some(flt) = &self.filter {
            if !name.contains(flt.as_str()) {
                return;
            }
        }
        std::hint::black_box(f()); // warm-up
        let mut iters = 0u64;
        let mut min = Duration::MAX;
        let t0 = Instant::now();
        loop {
            let t = Instant::now();
            std::hint::black_box(f());
            let d = t.elapsed();
            min = min.min(d);
            iters += 1;
            if t0.elapsed() >= self.budget || iters >= 10_000 {
                break;
            }
        }
        let mean = t0.elapsed().as_nanos() as f64 / iters as f64;
        println!(
            "{name:<44} {mean:>14.0} ns/op   min {:>12} ns   ({iters} iters)",
            min.as_nanos()
        );
    }
}

fn bench_futures(b: &Bench) {
    let rt = Runtime::new(2);
    b.run("future/spawn_get_roundtrip", || {
        rt.spawn_future(|| 42u64).get()
    });
    b.run("future/dataflow_chain_64", || {
        let mut f = ready(0u64);
        for _ in 0..64 {
            f = dataflow(&rt, |(x,)| x + 1, (f,));
        }
        f.get()
    });
    b.run("future/when_all_64", || {
        let futs: Vec<_> = (0..64).map(|i| rt.spawn_future(move || i)).collect();
        hpx_rt::when_all(futs).get()
    });
    b.run("future/schedule_after_64_deps", || {
        let deps: Vec<_> = (0..64).map(|_| rt.spawn_future(|| ()).share()).collect();
        hpx_rt::schedule_after(&rt, &deps, || ()).get()
    });
}

fn bench_for_each(b: &Bench) {
    let rt = Runtime::new(2);
    let data: Vec<f64> = (0..1_000_000).map(|i| i as f64).collect();
    for (name, chunk) in [
        (
            "for_each_1M/static_4096",
            ChunkPolicy::Static { size: 4096 },
        ),
        (
            "for_each_1M/num_chunks_8",
            ChunkPolicy::NumChunks { chunks: 8 },
        ),
        ("for_each_1M/auto", ChunkPolicy::default()),
        (
            "for_each_1M/guided_min1024",
            ChunkPolicy::Guided { min: 1024 },
        ),
    ] {
        let policy = par().with_chunk(chunk);
        b.run(name, || {
            let acc = AtomicU64::new(0);
            for_each(&rt, &policy, 0..data.len(), |i| {
                acc.fetch_add(data[i] as u64, Ordering::Relaxed);
            });
            acc.into_inner()
        });
    }
}

fn bench_prefetch(b: &Bench) {
    let rt = Runtime::new(2);
    let n = 1 << 21;
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let b_: Vec<f64> = (0..n).map(|i| (i * 7) as f64).collect();
    b.run("prefetch_2M_gather/standard_iterator", || {
        let acc = AtomicU64::new(0);
        for_each(&rt, &par(), 0..n, |i| {
            acc.fetch_add((a[i] + b_[i]) as u64, Ordering::Relaxed);
        });
        acc.into_inner()
    });
    b.run("prefetch_2M_gather/prefetching_iterator_d15", || {
        let ctx = make_prefetcher_context(0..n, 15, (&a[..], &b_[..]));
        let acc = AtomicU64::new(0);
        for_each_prefetch(&rt, &par(), &ctx, |i| {
            acc.fetch_add((a[i] + b_[i]) as u64, Ordering::Relaxed);
        });
        acc.into_inner()
    });
}

fn bench_plan(b: &Bench) {
    // Plan construction cost on a paper-shaped edge->cell conflict.
    let mesh = channel_with_bump(200, 100);
    b.run("plan/color_20k_cells_mesh", || {
        // Fresh context so the plan cache never hits.
        let op2 = Op2::new(Op2Config::seq());
        let edges = op2.decl_set(mesh.nedge, "edges");
        let cells = op2.decl_set(mesh.ncell, "cells");
        let pecell = op2.decl_map(&edges, &cells, 2, mesh.edge_cells.clone(), "pecell");
        let res = op2.decl_dat(&cells, 4, "res", vec![0.0f64; mesh.ncell * 4]);
        let infos = vec![
            op2_core::ArgSpec::info(&op2_core::arg_inc_via(&res, &pecell, 0)),
            op2_core::ArgSpec::info(&op2_core::arg_inc_via(&res, &pecell, 1)),
        ];
        op2_core::plan_for(&op2, &edges, &infos).expect("colored plan")
    });
}

fn bench_airfoil_iteration(b: &Bench) {
    let mesh = channel_with_bump(100, 50);
    for (name, config) in [
        ("airfoil_5k_cells_iter/forkjoin_2t", Op2Config::fork_join(2)),
        ("airfoil_5k_cells_iter/dataflow_2t", Op2Config::dataflow(2)),
    ] {
        let op2 = Op2::new(config);
        let problem = Problem::declare(&op2, &mesh);
        b.run(name, || {
            solver::run(
                &op2,
                &problem,
                &SolverConfig {
                    niter: 1,
                    window: 0,
                    print_every: 0,
                    ..SolverConfig::default()
                },
            )
            .final_rms()
        });
    }
}

fn main() {
    let b = Bench::from_args();
    bench_futures(&b);
    bench_for_each(&b);
    bench_prefetch(&b);
    bench_plan(&b);
    bench_airfoil_iteration(&b);
}
