//! Criterion micro-benchmarks of the runtime substrate and the OP2 layer:
//! the component costs behind the paper's end-to-end figures (future
//! overhead, dataflow chaining, chunked loops, plan coloring, prefetch
//! iterator, one Airfoil iteration per backend).

use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use airfoil_cfd::{solver, Problem, SolverConfig};
use hpx_rt::{
    dataflow, for_each, for_each_prefetch, make_prefetcher_context, par, ready, ChunkPolicy,
    Runtime,
};
use op2_core::{Op2, Op2Config};
use op2_mesh::channel_with_bump;

fn bench_futures(c: &mut Criterion) {
    let rt = Runtime::new(2);
    c.bench_function("future/spawn_get_roundtrip", |b| {
        b.iter(|| rt.spawn_future(|| 42u64).get())
    });
    c.bench_function("future/dataflow_chain_64", |b| {
        b.iter(|| {
            let mut f = ready(0u64);
            for _ in 0..64 {
                f = dataflow(&rt, |(x,)| x + 1, (f,));
            }
            f.get()
        })
    });
    c.bench_function("future/when_all_64", |b| {
        b.iter(|| {
            let futs: Vec<_> = (0..64).map(|i| rt.spawn_future(move || i)).collect();
            hpx_rt::when_all(futs).get()
        })
    });
}

fn bench_for_each(c: &mut Criterion) {
    let rt = Runtime::new(2);
    let data: Vec<f64> = (0..1_000_000).map(|i| i as f64).collect();
    let mut group = c.benchmark_group("for_each_1M");
    for (name, chunk) in [
        ("static_4096", ChunkPolicy::Static { size: 4096 }),
        ("num_chunks_8", ChunkPolicy::NumChunks { chunks: 8 }),
        ("auto", ChunkPolicy::default()),
        ("guided_min1024", ChunkPolicy::Guided { min: 1024 }),
    ] {
        group.bench_function(name, |b| {
            let policy = par().with_chunk(chunk.clone());
            b.iter(|| {
                let acc = AtomicU64::new(0);
                for_each(&rt, &policy, 0..data.len(), |i| {
                    acc.fetch_add(data[i] as u64, Ordering::Relaxed);
                });
                acc.into_inner()
            })
        });
    }
    group.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    let rt = Runtime::new(2);
    let n = 1 << 21;
    let a: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let b_: Vec<f64> = (0..n).map(|i| (i * 7) as f64).collect();
    let mut group = c.benchmark_group("prefetch_2M_gather");
    group.bench_function("standard_iterator", |bch| {
        bch.iter(|| {
            let acc = AtomicU64::new(0);
            for_each(&rt, &par(), 0..n, |i| {
                acc.fetch_add((a[i] + b_[i]) as u64, Ordering::Relaxed);
            });
            acc.into_inner()
        })
    });
    group.bench_function("prefetching_iterator_d15", |bch| {
        bch.iter(|| {
            let ctx = make_prefetcher_context(0..n, 15, (&a[..], &b_[..]));
            let acc = AtomicU64::new(0);
            for_each_prefetch(&rt, &par(), &ctx, |i| {
                acc.fetch_add((a[i] + b_[i]) as u64, Ordering::Relaxed);
            });
            acc.into_inner()
        })
    });
    group.finish();
}

fn bench_plan(c: &mut Criterion) {
    // Plan construction cost on a paper-shaped edge->cell conflict.
    let mesh = channel_with_bump(200, 100);
    c.bench_function("plan/color_20k_cells_mesh", |b| {
        b.iter(|| {
            // Fresh context so the plan cache never hits.
            let op2 = Op2::new(Op2Config::seq());
            let edges = op2.decl_set(mesh.nedge, "edges");
            let cells = op2.decl_set(mesh.ncell, "cells");
            let pecell = op2.decl_map(&edges, &cells, 2, mesh.edge_cells.clone(), "pecell");
            let res = op2.decl_dat(&cells, 4, "res", vec![0.0f64; mesh.ncell * 4]);
            let infos = vec![
                op2_core::ArgSpec::info(&op2_core::arg_inc_via(&res, &pecell, 0)),
                op2_core::ArgSpec::info(&op2_core::arg_inc_via(&res, &pecell, 1)),
            ];
            op2_core::plan_for(&op2, &edges, &infos).expect("colored plan")
        })
    });
}

fn bench_airfoil_iteration(c: &mut Criterion) {
    let mesh = channel_with_bump(100, 50);
    let mut group = c.benchmark_group("airfoil_5k_cells_iter");
    group.sample_size(10);
    for (name, config) in [
        ("forkjoin_2t", Op2Config::fork_join(2)),
        ("dataflow_2t", Op2Config::dataflow(2)),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let op2 = Op2::new(config.clone());
            let problem = Problem::declare(&op2, &mesh);
            b.iter(|| {
                solver::run(
                    &op2,
                    &problem,
                    &SolverConfig {
                        niter: 1,
                        window: 0,
                        print_every: 0,
                    },
                )
                .final_rms()
            })
        });
    }
    group.finish();
}

fn tight(c: Criterion) -> Criterion {
    c.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = benches;
    config = tight(Criterion::default());
    targets = bench_futures, bench_for_each, bench_prefetch, bench_plan, bench_airfoil_iteration
}
criterion_main!(benches);
