//! Compressed-sparse-row adjacency built by inverting a mapping table —
//! the "who touches me" view used for statistics and renumbering.

/// CSR adjacency: `targets of i` = `adj[offsets[i]..offsets[i+1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `n + 1` row offsets.
    pub offsets: Vec<u32>,
    /// Flattened adjacency lists.
    pub adj: Vec<u32>,
}

impl Csr {
    /// Neighbours of row `i`.
    pub fn row(&self, i: usize) -> &[u32] {
        &self.adj[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum row degree.
    pub fn max_degree(&self) -> usize {
        (0..self.len())
            .map(|i| self.row(i).len())
            .max()
            .unwrap_or(0)
    }

    /// Mean row degree.
    pub fn mean_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.adj.len() as f64 / self.len() as f64
    }
}

/// Inverts a mapping table: given `nfrom` source elements each mapping to
/// `dim` of `nto` targets, returns target → sources adjacency.
pub fn invert_map(indices: &[u32], nfrom: usize, dim: usize, nto: usize) -> Csr {
    assert_eq!(indices.len(), nfrom * dim, "table shape mismatch");
    let mut counts = vec![0u32; nto + 1];
    for &t in indices {
        counts[t as usize + 1] += 1;
    }
    for i in 0..nto {
        counts[i + 1] += counts[i];
    }
    let offsets = counts.clone();
    let mut cursor = counts;
    let mut adj = vec![0u32; indices.len()];
    for e in 0..nfrom {
        for k in 0..dim {
            let t = indices[e * dim + k] as usize;
            adj[cursor[t] as usize] = e as u32;
            cursor[t] += 1;
        }
    }
    Csr { offsets, adj }
}

/// Builds target-to-target adjacency (e.g. node → neighbouring nodes)
/// from a 2-ary relation table such as edge → nodes. Neighbour lists are
/// sorted and deduplicated.
pub fn neighbors_from_pairs(pairs: &[u32], nto: usize) -> Csr {
    assert!(
        pairs.len().is_multiple_of(2),
        "pair table must have even length"
    );
    let mut lists: Vec<Vec<u32>> = vec![Vec::new(); nto];
    for p in pairs.chunks_exact(2) {
        let (a, b) = (p[0] as usize, p[1] as usize);
        lists[a].push(p[1]);
        lists[b].push(p[0]);
    }
    let mut offsets = Vec::with_capacity(nto + 1);
    let mut adj = Vec::new();
    offsets.push(0u32);
    for mut l in lists {
        l.sort_unstable();
        l.dedup();
        adj.extend_from_slice(&l);
        offsets.push(adj.len() as u32);
    }
    Csr { offsets, adj }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invert_edge_to_node_map() {
        // 3 edges over 3 nodes in a triangle.
        let indices = [0, 1, 1, 2, 2, 0];
        let csr = invert_map(&indices, 3, 2, 3);
        assert_eq!(csr.len(), 3);
        let mut r0 = csr.row(0).to_vec();
        r0.sort_unstable();
        assert_eq!(r0, vec![0, 2], "node 0 touched by edges 0 and 2");
        assert_eq!(csr.max_degree(), 2);
        assert!((csr.mean_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn neighbors_of_path_graph() {
        // 0-1-2-3 path.
        let pairs = [0, 1, 1, 2, 2, 3];
        let csr = neighbors_from_pairs(&pairs, 4);
        assert_eq!(csr.row(0), &[1]);
        assert_eq!(csr.row(1), &[0, 2]);
        assert_eq!(csr.row(3), &[2]);
    }

    #[test]
    fn duplicate_pairs_dedup() {
        let pairs = [0, 1, 1, 0];
        let csr = neighbors_from_pairs(&pairs, 2);
        assert_eq!(csr.row(0), &[1]);
        assert_eq!(csr.row(1), &[0]);
    }

    #[test]
    fn empty() {
        let csr = invert_map(&[], 0, 1, 0);
        assert!(csr.is_empty());
        assert_eq!(csr.mean_degree(), 0.0);
    }
}
