//! Triangulated unit-square meshes for the secondary example applications
//! (edge-based heat diffusion).

/// An unstructured triangle mesh over the unit square.
#[derive(Debug, Clone)]
pub struct TriMesh {
    /// Node count.
    pub nnode: usize,
    /// Triangle count.
    pub ntri: usize,
    /// Unique edge count.
    pub nedge: usize,
    /// Triangle → 3 nodes, `ntri x 3`.
    pub tri_nodes: Vec<u32>,
    /// Edge → 2 nodes, `nedge x 2`.
    pub edge_nodes: Vec<u32>,
    /// Node coordinates, `nnode x 2`.
    pub x: Vec<f64>,
    /// 1 for boundary nodes, 0 for interior.
    pub node_boundary: Vec<i32>,
}

/// Triangulates an `n x n` structured grid of the unit square (each quad
/// split along its diagonal), returning fully unstructured tables.
pub fn unit_square(n: usize) -> TriMesh {
    assert!(n >= 1, "need at least one cell per side");
    let side = n + 1;
    let nnode = side * side;
    let node = |i: usize, j: usize| (j * side + i) as u32;

    let mut x = Vec::with_capacity(nnode * 2);
    let mut node_boundary = Vec::with_capacity(nnode);
    for j in 0..side {
        for i in 0..side {
            x.push(i as f64 / n as f64);
            x.push(j as f64 / n as f64);
            node_boundary.push(i32::from(i == 0 || j == 0 || i == n || j == n));
        }
    }

    let mut tri_nodes = Vec::with_capacity(n * n * 6);
    let mut edge_set: Vec<(u32, u32)> = Vec::with_capacity(3 * n * n + 2 * n);
    let mut push_edge = |a: u32, b: u32| {
        edge_set.push(if a < b { (a, b) } else { (b, a) });
    };
    for j in 0..n {
        for i in 0..n {
            let (a, b, c, d) = (
                node(i, j),
                node(i + 1, j),
                node(i + 1, j + 1),
                node(i, j + 1),
            );
            // Lower-right triangle (a, b, c) and upper-left (a, c, d).
            tri_nodes.extend_from_slice(&[a, b, c]);
            tri_nodes.extend_from_slice(&[a, c, d]);
            push_edge(a, b);
            push_edge(b, c);
            push_edge(a, c);
            push_edge(c, d);
            push_edge(a, d);
        }
    }
    edge_set.sort_unstable();
    edge_set.dedup();
    let nedge = edge_set.len();
    let mut edge_nodes = Vec::with_capacity(nedge * 2);
    for (a, b) in edge_set {
        edge_nodes.push(a);
        edge_nodes.push(b);
    }

    TriMesh {
        nnode,
        ntri: 2 * n * n,
        nedge,
        tri_nodes,
        edge_nodes,
        x,
        node_boundary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts() {
        let m = unit_square(4);
        assert_eq!(m.nnode, 25);
        assert_eq!(m.ntri, 32);
        // Edges of a triangulated n x n grid: horizontal (n+1)*n, vertical
        // n*(n+1), diagonal n*n.
        assert_eq!(m.nedge, 2 * 5 * 4 + 16);
        assert_eq!(m.edge_nodes.len(), m.nedge * 2);
    }

    #[test]
    fn euler_formula() {
        let m = unit_square(7);
        let v = m.nnode as i64;
        let e = m.nedge as i64;
        let f = m.ntri as i64 + 1;
        assert_eq!(v - e + f, 2);
    }

    #[test]
    fn boundary_ring_marked() {
        let m = unit_square(3);
        let marked = m.node_boundary.iter().filter(|&&b| b == 1).count();
        assert_eq!(marked, 4 * 3); // perimeter nodes of a 4x4 grid
    }

    #[test]
    fn edges_are_unique_and_sorted_pairs() {
        let m = unit_square(5);
        for e in 0..m.nedge {
            assert!(m.edge_nodes[2 * e] < m.edge_nodes[2 * e + 1]);
        }
    }
}
