//! Structured-as-unstructured quadrilateral meshes.
//!
//! The paper's Airfoil case reads `new_grid.dat` — a structured C-mesh
//! around a NACA0012 airfoil stored as a fully unstructured mesh (node
//! coordinates plus explicit cell→node, edge→node, edge→cell, bedge→node,
//! bedge→cell and boundary-flag tables). We cannot redistribute that file,
//! so [`channel_with_bump`] generates the same *shape* of data: a
//! structured channel grid with a smooth wall bump standing in for the
//! airfoil surface, emitted through exactly the same unstructured tables.
//! The indirection patterns (the only thing the runtime ever sees) are
//! identical in kind: quad cells, interior edges bordered by two cells,
//! boundary edges flagged wall (`bound = 1`) or far-field (`bound = 2`).

/// Boundary condition flag: solid wall (the "airfoil" surface).
pub const BOUND_WALL: i32 = 1;
/// Boundary condition flag: far-field.
pub const BOUND_FARFIELD: i32 = 2;

/// An unstructured quad mesh in OP2's Airfoil table layout.
#[derive(Debug, Clone)]
pub struct QuadMesh {
    /// Cells in x.
    pub imax: usize,
    /// Cells in y.
    pub jmax: usize,
    /// Node count (`(imax+1) * (jmax+1)`).
    pub nnode: usize,
    /// Cell count (`imax * jmax`).
    pub ncell: usize,
    /// Interior edge count.
    pub nedge: usize,
    /// Boundary edge count.
    pub nbedge: usize,
    /// Cell → 4 nodes (counter-clockwise), row-major `ncell x 4`.
    pub cell_nodes: Vec<u32>,
    /// Interior edge → 2 nodes, `nedge x 2`.
    pub edge_nodes: Vec<u32>,
    /// Interior edge → 2 adjacent cells, `nedge x 2`.
    pub edge_cells: Vec<u32>,
    /// Boundary edge → 2 nodes, `nbedge x 2`.
    pub bedge_nodes: Vec<u32>,
    /// Boundary edge → 1 adjacent cell, `nbedge x 1`.
    pub bedge_cells: Vec<u32>,
    /// Boundary edge condition flags (`nbedge`), [`BOUND_WALL`] or
    /// [`BOUND_FARFIELD`].
    pub bound: Vec<i32>,
    /// Node coordinates, `nnode x 2`.
    pub x: Vec<f64>,
}

impl QuadMesh {
    /// Node id at grid position `(i, j)`.
    #[inline]
    pub fn node(&self, i: usize, j: usize) -> usize {
        node_id(self.imax, i, j)
    }

    /// Cell id at grid position `(i, j)`.
    #[inline]
    pub fn cell(&self, i: usize, j: usize) -> usize {
        j * self.imax + i
    }

    /// Approximately `imax x jmax` scaled so `cells ≈ target_cells`.
    /// Keeps the paper's 2:1 aspect ratio.
    pub fn with_cells(target_cells: usize) -> QuadMesh {
        let target = target_cells.max(2);
        // imax = 2k, jmax = k -> cells = 2k^2.
        let k = (((target as f64) / 2.0).sqrt().round() as usize).max(1);
        channel_with_bump(2 * k, k)
    }

    /// The paper-scale mesh: ~720K nodes, ~1.44M interior edges (matching
    /// "over 720K nodes and about 1.5 million edges").
    pub fn paper_scale() -> QuadMesh {
        channel_with_bump(1200, 600)
    }
}

#[inline]
fn node_id(imax: usize, i: usize, j: usize) -> usize {
    j * (imax + 1) + i
}

/// Height profile of the wall bump standing in for the airfoil surface:
/// a `sin²` hump over the middle third of the channel floor, 10% of the
/// channel height.
fn bump(t: f64) -> f64 {
    const START: f64 = 1.0 / 3.0;
    const END: f64 = 2.0 / 3.0;
    const HEIGHT: f64 = 0.1;
    if !(START..=END).contains(&t) {
        return 0.0;
    }
    let s = (t - START) / (END - START);
    HEIGHT * (std::f64::consts::PI * s).sin().powi(2)
}

/// Generates the channel mesh (see module docs). `imax`/`jmax` are the
/// cell counts in x/y; the domain is a 2:1 channel `[0,2] x [0,1]`.
pub fn channel_with_bump(imax: usize, jmax: usize) -> QuadMesh {
    assert!(imax >= 3 && jmax >= 1, "mesh must be at least 3x1 cells");
    let nnode = (imax + 1) * (jmax + 1);
    let ncell = imax * jmax;
    let nedge = (imax - 1) * jmax + imax * (jmax - 1);
    let nbedge = 2 * imax + 2 * jmax;

    // Node coordinates: vertical lines follow the bump at the floor and
    // relax linearly toward the flat ceiling.
    let mut x = Vec::with_capacity(nnode * 2);
    for j in 0..=jmax {
        for i in 0..=imax {
            let t = i as f64 / imax as f64;
            let eta = j as f64 / jmax as f64;
            let floor = bump(t);
            x.push(2.0 * t);
            x.push(floor + eta * (1.0 - floor));
        }
    }

    // Cells, counter-clockwise.
    let mut cell_nodes = Vec::with_capacity(ncell * 4);
    for j in 0..jmax {
        for i in 0..imax {
            cell_nodes.push(node_id(imax, i, j) as u32);
            cell_nodes.push(node_id(imax, i + 1, j) as u32);
            cell_nodes.push(node_id(imax, i + 1, j + 1) as u32);
            cell_nodes.push(node_id(imax, i, j + 1) as u32);
        }
    }

    // Interior edges: vertical edges between horizontally adjacent cells,
    // then horizontal edges between vertically adjacent cells.
    //
    // Orientation convention (required by the Airfoil flux kernels): with
    // edge nodes (a, b) and (dx, dy) = x_a - x_b, the scaled normal
    // n = (dy, -dx) must point from the edge's first cell to its second
    // (outward through a boundary edge). Violating this flips the
    // convection direction and blows the scheme up.
    let mut edge_nodes = Vec::with_capacity(nedge * 2);
    let mut edge_cells = Vec::with_capacity(nedge * 2);
    let cell = |i: usize, j: usize| (j * imax + i) as u32;
    for j in 0..jmax {
        for i in 1..imax {
            // Nodes top->bottom gives n = +x: cells (left, right).
            edge_nodes.push(node_id(imax, i, j + 1) as u32);
            edge_nodes.push(node_id(imax, i, j) as u32);
            edge_cells.push(cell(i - 1, j));
            edge_cells.push(cell(i, j));
        }
    }
    for j in 1..jmax {
        for i in 0..imax {
            // Nodes left->right gives n = +y: cells (below, above).
            edge_nodes.push(node_id(imax, i, j) as u32);
            edge_nodes.push(node_id(imax, i + 1, j) as u32);
            edge_cells.push(cell(i, j - 1));
            edge_cells.push(cell(i, j));
        }
    }
    debug_assert_eq!(edge_nodes.len(), nedge * 2);

    // Boundary edges: floor (wall over the bump footprint, far-field
    // elsewhere), ceiling, inlet, outlet — all with outward normals.
    let mut bedge_nodes = Vec::with_capacity(nbedge * 2);
    let mut bedge_cells = Vec::with_capacity(nbedge);
    let mut bound = Vec::with_capacity(nbedge);
    for i in 0..imax {
        // Floor: right->left gives outward n = -y.
        bedge_nodes.push(node_id(imax, i + 1, 0) as u32);
        bedge_nodes.push(node_id(imax, i, 0) as u32);
        bedge_cells.push(cell(i, 0));
        let mid = (i as f64 + 0.5) / imax as f64;
        bound.push(if bump(mid) > 0.0 {
            BOUND_WALL
        } else {
            BOUND_FARFIELD
        });
    }
    for i in 0..imax {
        // Ceiling: left->right gives outward n = +y.
        bedge_nodes.push(node_id(imax, i, jmax) as u32);
        bedge_nodes.push(node_id(imax, i + 1, jmax) as u32);
        bedge_cells.push(cell(i, jmax - 1));
        bound.push(BOUND_FARFIELD);
    }
    for j in 0..jmax {
        // Inlet (i = 0): bottom->top gives outward n = -x.
        bedge_nodes.push(node_id(imax, 0, j) as u32);
        bedge_nodes.push(node_id(imax, 0, j + 1) as u32);
        bedge_cells.push(cell(0, j));
        bound.push(BOUND_FARFIELD);
        // Outlet (i = imax): top->bottom gives outward n = +x.
        bedge_nodes.push(node_id(imax, imax, j + 1) as u32);
        bedge_nodes.push(node_id(imax, imax, j) as u32);
        bedge_cells.push(cell(imax - 1, j));
        bound.push(BOUND_FARFIELD);
    }
    debug_assert_eq!(bound.len(), nbedge);

    QuadMesh {
        imax,
        jmax,
        nnode,
        ncell,
        nedge,
        nbedge,
        cell_nodes,
        edge_nodes,
        edge_cells,
        bedge_nodes,
        bedge_cells,
        bound,
        x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_are_consistent() {
        let m = channel_with_bump(10, 5);
        assert_eq!(m.nnode, 11 * 6);
        assert_eq!(m.ncell, 50);
        assert_eq!(m.nedge, 9 * 5 + 10 * 4);
        assert_eq!(m.nbedge, 2 * 10 + 2 * 5);
        assert_eq!(m.cell_nodes.len(), m.ncell * 4);
        assert_eq!(m.edge_nodes.len(), m.nedge * 2);
        assert_eq!(m.edge_cells.len(), m.nedge * 2);
        assert_eq!(m.bedge_nodes.len(), m.nbedge * 2);
        assert_eq!(m.bedge_cells.len(), m.nbedge);
        assert_eq!(m.x.len(), m.nnode * 2);
    }

    #[test]
    fn euler_formula_for_planar_mesh() {
        // V - E + F = 2 with F = ncell + 1 (outer face) and
        // E = interior + boundary edges.
        let m = channel_with_bump(17, 9);
        let v = m.nnode as i64;
        let e = (m.nedge + m.nbedge) as i64;
        let f = m.ncell as i64 + 1;
        assert_eq!(v - e + f, 2);
    }

    #[test]
    fn paper_scale_counts_match_paper() {
        // Don't allocate the full mesh in unit tests; check the formulas.
        let (imax, jmax) = (1200usize, 600usize);
        let nnode = (imax + 1) * (jmax + 1);
        let nedge = (imax - 1) * jmax + imax * (jmax - 1);
        assert!(
            (700_000..750_000).contains(&nnode),
            "paper: over 720K nodes"
        );
        assert!(
            (1_400_000..1_500_000).contains(&nedge),
            "paper: ~1.5M edges"
        );
    }

    #[test]
    fn interior_edges_touch_two_distinct_cells() {
        let m = channel_with_bump(8, 4);
        for e in 0..m.nedge {
            let c1 = m.edge_cells[2 * e];
            let c2 = m.edge_cells[2 * e + 1];
            assert_ne!(c1, c2, "edge {e} degenerate");
            assert!((c1 as usize) < m.ncell && (c2 as usize) < m.ncell);
        }
    }

    #[test]
    fn bump_region_is_wall_rest_farfield() {
        let m = channel_with_bump(30, 4);
        let walls = m.bound.iter().filter(|&&b| b == BOUND_WALL).count();
        let far = m.bound.iter().filter(|&&b| b == BOUND_FARFIELD).count();
        assert!(walls > 0, "some wall edges");
        assert_eq!(walls + far, m.nbedge);
        // The wall is only on the floor (first imax bedges).
        assert!(m.bound[m.imax..].iter().all(|&b| b == BOUND_FARFIELD));
    }

    #[test]
    fn cells_are_counter_clockwise() {
        let m = channel_with_bump(12, 6);
        for c in 0..m.ncell {
            let n = &m.cell_nodes[4 * c..4 * c + 4];
            let mut area = 0.0;
            for k in 0..4 {
                let a = n[k] as usize;
                let b = n[(k + 1) % 4] as usize;
                area += m.x[2 * a] * m.x[2 * b + 1] - m.x[2 * b] * m.x[2 * a + 1];
            }
            assert!(area > 0.0, "cell {c} not CCW (area {area})");
        }
    }

    #[test]
    fn with_cells_hits_target_roughly() {
        let m = QuadMesh::with_cells(10_000);
        let ratio = m.ncell as f64 / 10_000.0;
        assert!((0.5..2.0).contains(&ratio), "got {} cells", m.ncell);
    }

    #[test]
    fn bump_profile_is_smooth_and_bounded() {
        assert_eq!(bump(0.0), 0.0);
        assert_eq!(bump(1.0), 0.0);
        let peak = bump(0.5);
        assert!(peak > 0.05 && peak <= 0.1 + 1e-12);
    }
}
