//! Breadth-first (reverse Cuthill–McKee style) renumbering to improve the
//! memory locality of indirect accesses — the classic OP2 mesh
//! preprocessing step, exposed here for locality ablations.

use crate::csr::Csr;

/// Computes a BFS ordering of a graph given node adjacency, starting from
/// the lowest-degree node of each component, visiting neighbours in
/// ascending-degree order. Returns `perm` with `perm[old] = new`.
pub fn bfs_permutation(adj: &Csr) -> Vec<u32> {
    let n = adj.len();
    let mut perm = vec![u32::MAX; n];
    let mut next_label = 0u32;
    let mut queue = std::collections::VecDeque::new();

    let mut by_degree: Vec<u32> = (0..n as u32).collect();
    by_degree.sort_by_key(|&i| adj.row(i as usize).len());

    for &start in &by_degree {
        if perm[start as usize] != u32::MAX {
            continue;
        }
        perm[start as usize] = next_label;
        next_label += 1;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            let mut nbrs: Vec<u32> = adj
                .row(v as usize)
                .iter()
                .copied()
                .filter(|&u| perm[u as usize] == u32::MAX)
                .collect();
            nbrs.sort_by_key(|&u| adj.row(u as usize).len());
            for u in nbrs {
                if perm[u as usize] == u32::MAX {
                    perm[u as usize] = next_label;
                    next_label += 1;
                    queue.push_back(u);
                }
            }
        }
    }
    debug_assert_eq!(next_label as usize, n);
    perm
}

/// Applies `perm[old] = new` to a mapping table in place (re-labels
/// targets).
pub fn relabel_targets(indices: &mut [u32], perm: &[u32]) {
    for t in indices {
        *t = perm[*t as usize];
    }
}

/// Permutes row-major data of `dim` scalars per element into the new
/// numbering.
pub fn permute_rows<T: Copy + Default>(data: &[T], dim: usize, perm: &[u32]) -> Vec<T> {
    assert_eq!(data.len(), perm.len() * dim, "data shape mismatch");
    let mut out = vec![T::default(); data.len()];
    for (old, &new) in perm.iter().enumerate() {
        let (o, n) = (old * dim, new as usize * dim);
        out[n..n + dim].copy_from_slice(&data[o..o + dim]);
    }
    out
}

/// Mean |a - b| over a pair table — the locality figure BFS renumbering
/// improves (smaller = more cache friendly indirect access).
pub fn mean_pair_span(pairs: &[u32]) -> f64 {
    if pairs.is_empty() {
        return 0.0;
    }
    let total: u64 = pairs
        .chunks_exact(2)
        .map(|p| u64::from(p[0].abs_diff(p[1])))
        .sum();
    total as f64 / (pairs.len() / 2) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::neighbors_from_pairs;

    #[test]
    fn permutation_is_a_bijection() {
        let pairs = [0, 3, 3, 1, 1, 4, 4, 2];
        let adj = neighbors_from_pairs(&pairs, 5);
        let perm = bfs_permutation(&adj);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..5).collect::<Vec<u32>>());
    }

    #[test]
    fn bfs_improves_span_on_shuffled_path() {
        // A path graph with deliberately scattered labels.
        let n = 64u32;
        let scramble = |i: u32| (i * 37) % n;
        let mut pairs = Vec::new();
        for i in 0..n - 1 {
            pairs.push(scramble(i));
            pairs.push(scramble(i + 1));
        }
        let before = mean_pair_span(&pairs);
        let adj = neighbors_from_pairs(&pairs, n as usize);
        let perm = bfs_permutation(&adj);
        let mut relabeled = pairs.clone();
        relabel_targets(&mut relabeled, &perm);
        let after = mean_pair_span(&relabeled);
        assert!(
            after < before / 4.0,
            "BFS should dramatically shrink spans: {before} -> {after}"
        );
        // A path renumbered by BFS has span exactly 1.
        assert!((after - 1.0).abs() < 1e-9);
    }

    #[test]
    fn permute_rows_moves_data() {
        let data = [10.0, 11.0, 20.0, 21.0, 30.0, 31.0];
        let perm = [2u32, 0, 1];
        let out = permute_rows(&data, 2, &perm);
        assert_eq!(out, [20.0, 21.0, 30.0, 31.0, 10.0, 11.0]);
    }

    #[test]
    fn handles_disconnected_components() {
        let pairs = [0, 1, 2, 3];
        let adj = neighbors_from_pairs(&pairs, 4);
        let perm = bfs_permutation(&adj);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
