//! Mesh validation: the invariants the solver relies on.

use crate::quad::QuadMesh;

/// Checks every structural invariant of a [`QuadMesh`]; returns the list
/// of violations (empty = valid).
pub fn validate_quad(m: &QuadMesh) -> Vec<String> {
    let mut errors = Vec::new();
    let mut check_range = |what: &str, table: &[u32], limit: usize| {
        if let Some((i, &v)) = table.iter().enumerate().find(|(_, &v)| v as usize >= limit) {
            errors.push(format!("{what}[{i}] = {v} out of range (< {limit})"));
        }
    };
    check_range("cell_nodes", &m.cell_nodes, m.nnode);
    check_range("edge_nodes", &m.edge_nodes, m.nnode);
    check_range("edge_cells", &m.edge_cells, m.ncell);
    check_range("bedge_nodes", &m.bedge_nodes, m.nnode);
    check_range("bedge_cells", &m.bedge_cells, m.ncell);

    if m.cell_nodes.len() != m.ncell * 4 {
        errors.push("cell_nodes length".into());
    }
    if m.edge_nodes.len() != m.nedge * 2 || m.edge_cells.len() != m.nedge * 2 {
        errors.push("edge table length".into());
    }
    if m.bedge_nodes.len() != m.nbedge * 2
        || m.bedge_cells.len() != m.nbedge
        || m.bound.len() != m.nbedge
    {
        errors.push("bedge table length".into());
    }
    if m.x.len() != m.nnode * 2 {
        errors.push("coordinate length".into());
    }

    for e in 0..m.nedge {
        if m.edge_cells[2 * e] == m.edge_cells[2 * e + 1] {
            errors.push(format!("edge {e} has identical cells"));
        }
        if m.edge_nodes[2 * e] == m.edge_nodes[2 * e + 1] {
            errors.push(format!("edge {e} has identical nodes"));
        }
    }

    if !m
        .bound
        .iter()
        .all(|&b| b == crate::quad::BOUND_WALL || b == crate::quad::BOUND_FARFIELD)
    {
        errors.push("invalid boundary flag".into());
    }

    // Geometric checks below index through the tables; they are only
    // meaningful (and memory-safe) on a structurally sound mesh.
    if !errors.is_empty() {
        return errors;
    }

    // Orientation: with (dx, dy) = x_a - x_b over edge nodes (a, b), the
    // scaled normal n = (dy, -dx) must point from cell 1 toward cell 2
    // (interior) / away from the cell (boundary). The flux kernels rely
    // on this; a flipped edge reverses convection and destabilizes the
    // scheme.
    let centroid = |c: usize| -> (f64, f64) {
        let n = &m.cell_nodes[4 * c..4 * c + 4];
        let (mut cx, mut cy) = (0.0, 0.0);
        for &v in n {
            cx += m.x[2 * v as usize];
            cy += m.x[2 * v as usize + 1];
        }
        (cx / 4.0, cy / 4.0)
    };
    let normal = |a: usize, b: usize| -> (f64, f64) {
        let dx = m.x[2 * a] - m.x[2 * b];
        let dy = m.x[2 * a + 1] - m.x[2 * b + 1];
        (dy, -dx)
    };
    for e in 0..m.nedge {
        let (a, b) = (
            m.edge_nodes[2 * e] as usize,
            m.edge_nodes[2 * e + 1] as usize,
        );
        let (c1, c2) = (
            m.edge_cells[2 * e] as usize,
            m.edge_cells[2 * e + 1] as usize,
        );
        let n = normal(a, b);
        let (x1, y1) = centroid(c1);
        let (x2, y2) = centroid(c2);
        if n.0 * (x2 - x1) + n.1 * (y2 - y1) <= 0.0 {
            errors.push(format!("edge {e}: normal does not point cell1 -> cell2"));
        }
    }
    for e in 0..m.nbedge {
        let (a, b) = (
            m.bedge_nodes[2 * e] as usize,
            m.bedge_nodes[2 * e + 1] as usize,
        );
        let c = m.bedge_cells[e] as usize;
        let n = normal(a, b);
        let (cx, cy) = centroid(c);
        let (mx, my) = (
            0.5 * (m.x[2 * a] + m.x[2 * b]),
            0.5 * (m.x[2 * a + 1] + m.x[2 * b + 1]),
        );
        if n.0 * (mx - cx) + n.1 * (my - cy) <= 0.0 {
            errors.push(format!("bedge {e}: normal does not point outward"));
        }
    }

    // Conservation structure: every cell must be reachable from the edge
    // tables (each cell of a structured channel borders >= 2 edges).
    let mut touched = vec![0u8; m.ncell];
    for &c in m.edge_cells.iter().chain(m.bedge_cells.iter()) {
        touched[c as usize] = 1;
    }
    if touched.contains(&0) {
        errors.push("cell untouched by any edge".into());
    }

    errors
}

/// Summary statistics of a quad mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct MeshStats {
    /// Node count.
    pub nnode: usize,
    /// Cell count.
    pub ncell: usize,
    /// Interior edge count.
    pub nedge: usize,
    /// Boundary edge count.
    pub nbedge: usize,
    /// Wall boundary edges.
    pub nwall: usize,
    /// Mean |c1 - c2| over interior edges (locality proxy).
    pub mean_cell_span: f64,
}

/// Computes [`MeshStats`].
pub fn quad_stats(m: &QuadMesh) -> MeshStats {
    MeshStats {
        nnode: m.nnode,
        ncell: m.ncell,
        nedge: m.nedge,
        nbedge: m.nbedge,
        nwall: m
            .bound
            .iter()
            .filter(|&&b| b == crate::quad::BOUND_WALL)
            .count(),
        mean_cell_span: crate::renumber::mean_pair_span(&m.edge_cells),
    }
}

impl std::fmt::Display for MeshStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "nodes={} cells={} edges={} bedges={} (wall={}) mean-edge-span={:.1}",
            self.nnode, self.ncell, self.nedge, self.nbedge, self.nwall, self.mean_cell_span
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quad::channel_with_bump;

    #[test]
    fn generated_meshes_validate_clean() {
        for (i, j) in [(3, 1), (8, 4), (33, 17), (100, 50)] {
            let m = channel_with_bump(i, j);
            let errors = validate_quad(&m);
            assert!(errors.is_empty(), "{i}x{j}: {errors:?}");
        }
    }

    #[test]
    fn detects_degenerate_edge() {
        let mut m = channel_with_bump(4, 2);
        m.edge_cells[1] = m.edge_cells[0];
        assert!(validate_quad(&m)
            .iter()
            .any(|e| e.contains("identical cells")));
    }

    #[test]
    fn detects_out_of_range() {
        let mut m = channel_with_bump(4, 2);
        m.cell_nodes[0] = m.nnode as u32;
        assert!(!validate_quad(&m).is_empty());
    }

    #[test]
    fn stats_display() {
        let m = channel_with_bump(10, 5);
        let s = quad_stats(&m);
        assert_eq!(s.ncell, 50);
        assert!(s.nwall > 0);
        assert!(s.to_string().contains("cells=50"));
    }
}
