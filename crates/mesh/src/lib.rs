//! # op2-mesh — unstructured-mesh substrate
//!
//! Mesh generators and utilities for the OP2/HPX reproduction. The paper's
//! Airfoil evaluation reads a structured-as-unstructured NACA0012 grid
//! (`new_grid.dat`, ~720K nodes / ~1.5M edges); [`quad::channel_with_bump`]
//! synthesizes an equivalent mesh (same table layout, same indirection
//! structure, same boundary-flag scheme) at any scale, and
//! [`quad::QuadMesh::paper_scale`] matches the paper's element counts.
//!
//! Also provided: a triangle mesh generator for the secondary example
//! applications, CSR adjacency inversion, BFS (RCM-style) renumbering for
//! locality ablations, deterministic k-way partitioning with halo-list
//! derivation for the multi-locality execution layer, and structural
//! validation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csr;
pub mod partition;
pub mod quad;
pub mod renumber;
pub mod tri;
pub mod validate;

pub use csr::{invert_map, neighbors_from_pairs, Csr};
pub use partition::{
    build_halo, partition_greedy_bfs, partition_greedy_bfs_weighted, HaloPlan, Partition,
};
pub use quad::{channel_with_bump, QuadMesh, BOUND_FARFIELD, BOUND_WALL};
pub use renumber::{bfs_permutation, mean_pair_span, permute_rows, relabel_targets};
pub use tri::{unit_square, TriMesh};
pub use validate::{quad_stats, validate_quad, MeshStats};
