//! Deterministic k-way mesh partitioning and halo-list construction — the
//! distributed-memory substrate of the multi-locality execution layer.
//!
//! # Ownership model (OP2 MPI semantics)
//!
//! A [`Partition`] assigns every element of a *target* set (cells, for the
//! Airfoil loop nest) to exactly one rank: its **owner**. From a partition
//! and a mapping table (e.g. `pecell: edges → 2 cells`), [`build_halo`]
//! derives, per rank:
//!
//! * the **exec** list — the source elements a rank executes: every source
//!   element reaching at least one owned target. Source elements on a
//!   partition boundary appear in several ranks' exec lists and are
//!   executed *redundantly* (OP2's "execute halo"), so that every owned
//!   target receives all of its contributions locally and increment
//!   results never need to travel;
//! * the **import** lists — per peer rank, the non-owned targets the
//!   rank's exec elements reach. These are the halo rows a rank keeps a
//!   local mirror of, refreshed by asynchronous exchange before each read;
//! * the **export** lists — the exact mirror image: `export[r][s]` is the
//!   slice of `r`-owned elements that rank `s` imports, i.e.
//!   `export[r][s] == import[s][r]` element for element.
//!
//! Both the partitioner and the halo derivation are fully deterministic:
//! the same mesh and rank count always produce the same lists, which is
//! what makes the sharded execution layer testable against single-locality
//! goldens.

use crate::csr::Csr;

/// A k-way assignment of elements to ranks (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Number of ranks.
    pub nparts: usize,
    /// Owner rank of each element, `part_of[e] < nparts`.
    pub part_of: Vec<u32>,
}

impl Partition {
    /// Elements owned by `rank`, ascending. Prefer [`Partition::owned_all`]
    /// when every rank's list is needed — calling this in a loop over ranks
    /// rescans all n elements per rank (O(n·k) total).
    pub fn owned(&self, rank: usize) -> Vec<u32> {
        self.part_of
            .iter()
            .enumerate()
            .filter(|(_, &p)| p as usize == rank)
            .map(|(e, _)| e as u32)
            .collect()
    }

    /// Every rank's owned elements, ascending, in one O(n) bucket-fill
    /// pass: `owned_all()[r] == owned(r)` for every rank.
    pub fn owned_all(&self) -> Vec<Vec<u32>> {
        let sizes = self.sizes();
        let mut out: Vec<Vec<u32>> = sizes.into_iter().map(Vec::with_capacity).collect();
        for (e, &p) in self.part_of.iter().enumerate() {
            out[p as usize].push(e as u32);
        }
        out
    }

    /// Element count per rank.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.nparts];
        for &p in &self.part_of {
            sizes[p as usize] += 1;
        }
        sizes
    }

    /// Checks the fundamental invariant: every element is owned by exactly
    /// one rank in range (vacuously true by construction of `part_of`
    /// unless a value is out of range).
    pub fn validate(&self) -> Result<(), String> {
        for (e, &p) in self.part_of.iter().enumerate() {
            if p as usize >= self.nparts {
                return Err(format!(
                    "element {e} owned by rank {p}, only {} ranks exist",
                    self.nparts
                ));
            }
        }
        Ok(())
    }
}

/// Deterministic greedy-BFS k-way partitioning over a CSR adjacency.
///
/// Ranks are grown one at a time: each starts from the lowest-numbered
/// unassigned element and claims unassigned neighbours breadth-first until
/// its quota (`⌈n/k⌉` for the first `n mod k` ranks, `⌊n/k⌋` for the rest)
/// is met, re-seeding from the lowest unassigned element whenever its
/// frontier is exhausted. Quotas are met exactly, so part sizes differ by
/// at most one — and the BFS growth keeps parts contiguous on meshes with
/// contiguous numbering, which is what bounds halo sizes.
pub fn partition_greedy_bfs(adj: &Csr, nparts: usize) -> Partition {
    partition_greedy_bfs_weighted(adj, nparts, &vec![1u64; adj.len()])
}

/// Cost-weighted [`partition_greedy_bfs`]: element `e` contributes
/// `weights[e]` (floored at 1) toward its rank's quota instead of 1, so a
/// rank full of expensive elements owns proportionally fewer of them.
///
/// Quotas are recomputed as each rank is grown —
/// `⌈remaining_weight / remaining_ranks⌉` — which for unit weights
/// reproduces the unweighted `⌈n/k⌉`/`⌊n/k⌋` split exactly (same claim
/// order, same partition), and for skewed weights keeps every rank within
/// one max-weight element of the ideal share. The growth itself is the
/// same deterministic BFS: claim unassigned neighbours until the quota is
/// met, re-seeding from the lowest unassigned element; the final rank's
/// quota equals the entire remaining weight, so every element is assigned.
pub fn partition_greedy_bfs_weighted(adj: &Csr, nparts: usize, weights: &[u64]) -> Partition {
    assert!(nparts >= 1, "partition needs at least one rank");
    let n = adj.len();
    assert_eq!(weights.len(), n, "one weight per element");
    let mut part_of = vec![u32::MAX; n];
    let w = |e: usize| weights[e].max(1);
    let mut remaining_weight: u64 = (0..n).map(w).sum();
    let mut next_seed = 0usize;
    for rank in 0..nparts {
        let remaining_ranks = (nparts - rank) as u64;
        let quota = remaining_weight.div_ceil(remaining_ranks);
        let mut claimed = 0u64;
        let mut frontier = std::collections::VecDeque::new();
        while claimed < quota {
            let Some(e) = frontier.pop_front() else {
                // Re-seed from the lowest unassigned element.
                while next_seed < n && part_of[next_seed] != u32::MAX {
                    next_seed += 1;
                }
                if next_seed >= n {
                    break;
                }
                part_of[next_seed] = rank as u32;
                claimed += w(next_seed);
                frontier.push_back(next_seed as u32);
                continue;
            };
            for &nb in adj.row(e as usize) {
                if claimed >= quota {
                    break;
                }
                if part_of[nb as usize] == u32::MAX {
                    part_of[nb as usize] = rank as u32;
                    claimed += w(nb as usize);
                    frontier.push_back(nb);
                }
            }
        }
        remaining_weight -= claimed.min(remaining_weight);
    }
    debug_assert!(part_of.iter().all(|&p| p != u32::MAX));
    Partition { nparts, part_of }
}

/// Per-rank exec/import/export lists derived from a partition and one
/// mapping table (see module docs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HaloPlan {
    /// Number of ranks.
    pub nparts: usize,
    /// `exec[r]`: source elements rank `r` executes, ascending.
    pub exec: Vec<Vec<u32>>,
    /// `import[r][s]`: targets owned by `s` that rank `r` mirrors,
    /// ascending; empty for `s == r`.
    pub import: Vec<Vec<Vec<u32>>>,
    /// `export[r][s] == import[s][r]`: targets owned by `r` that rank `s`
    /// mirrors.
    pub export: Vec<Vec<Vec<u32>>>,
}

impl HaloPlan {
    /// Total halo (import) rows of `rank`.
    pub fn halo_size(&self, rank: usize) -> usize {
        self.import[rank].iter().map(Vec::len).sum()
    }

    /// Checks the structural invariants: import/export symmetry across
    /// every rank pair, empty diagonals, imports owned by the peer, and
    /// every exec element's reach covered by ownership plus imports.
    pub fn validate(
        &self,
        part: &Partition,
        map_indices: &[u32],
        dim: usize,
    ) -> Result<(), String> {
        for r in 0..self.nparts {
            if !self.import[r][r].is_empty() || !self.export[r][r].is_empty() {
                return Err(format!("rank {r}: non-empty self halo"));
            }
            for s in 0..self.nparts {
                if self.export[r][s] != self.import[s][r] {
                    return Err(format!("ranks {r}->{s}: export/import asymmetry"));
                }
                for &t in &self.import[r][s] {
                    if part.part_of[t as usize] as usize != s {
                        return Err(format!("rank {r}: import {t} not owned by {s}"));
                    }
                }
            }
            // Coverage: everything an exec element reaches is resident.
            for &e in &self.exec[r] {
                for k in 0..dim {
                    let t = map_indices[e as usize * dim + k];
                    let owner = part.part_of[t as usize] as usize;
                    if owner != r && self.import[r][owner].binary_search(&t).is_err() {
                        return Err(format!(
                            "rank {r}: exec element {e} reaches {t} (owner {owner}) outside halo"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

/// Builds the [`HaloPlan`] of `part` for a mapping table of arity `dim`
/// (see module docs). A source element is executed by every rank owning at
/// least one of its targets; its non-owned targets become imports.
pub fn build_halo(part: &Partition, map_indices: &[u32], dim: usize) -> HaloPlan {
    assert!(dim > 0, "mapping arity must be positive");
    assert!(
        map_indices.len().is_multiple_of(dim),
        "table length not a multiple of the arity"
    );
    let nfrom = map_indices.len() / dim;
    let k = part.nparts;
    let mut exec: Vec<Vec<u32>> = vec![Vec::new(); k];
    let mut import: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); k]; k];
    let mut owners = Vec::with_capacity(dim);
    for e in 0..nfrom {
        let targets = &map_indices[e * dim..(e + 1) * dim];
        owners.clear();
        owners.extend(targets.iter().map(|&t| part.part_of[t as usize]));
        let mut execs: Vec<u32> = owners.clone();
        execs.sort_unstable();
        execs.dedup();
        for &r in &execs {
            exec[r as usize].push(e as u32);
            for (slot, &t) in targets.iter().enumerate() {
                let owner = owners[slot];
                if owner != r {
                    import[r as usize][owner as usize].push(t);
                }
            }
        }
    }
    for row in &mut import {
        for list in row {
            list.sort_unstable();
            list.dedup();
        }
    }
    let export: Vec<Vec<Vec<u32>>> = (0..k)
        .map(|r| (0..k).map(|s| import[s][r].clone()).collect())
        .collect();
    HaloPlan {
        nparts: k,
        exec,
        import,
        export,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::neighbors_from_pairs;

    /// A ring of n cells: cell c neighbours (c±1 mod n); edge e connects
    /// cells (e, e+1 mod n).
    fn ring(n: usize) -> (Csr, Vec<u32>) {
        let mut pairs = Vec::with_capacity(2 * n);
        for e in 0..n {
            pairs.push(e as u32);
            pairs.push(((e + 1) % n) as u32);
        }
        (neighbors_from_pairs(&pairs, n), pairs)
    }

    #[test]
    fn partition_is_exact_and_balanced() {
        let (adj, _) = ring(103);
        for k in [1usize, 2, 3, 7, 103] {
            let p = partition_greedy_bfs(&adj, k);
            p.validate().unwrap();
            let sizes = p.sizes();
            assert_eq!(sizes.iter().sum::<usize>(), 103);
            let (base, extra) = (103 / k, 103 % k);
            for (r, &s) in sizes.iter().enumerate() {
                assert_eq!(s, base + usize::from(r < extra), "rank {r} off quota");
            }
        }
    }

    #[test]
    fn partition_is_deterministic() {
        let (adj, _) = ring(64);
        assert_eq!(partition_greedy_bfs(&adj, 5), partition_greedy_bfs(&adj, 5));
    }

    #[test]
    fn owned_all_matches_owned_per_rank() {
        let (adj, _) = ring(57);
        let p = partition_greedy_bfs(&adj, 5);
        let all = p.owned_all();
        assert_eq!(all.len(), 5);
        for (r, rows) in all.iter().enumerate() {
            assert_eq!(*rows, p.owned(r), "rank {r}");
            assert!(rows.windows(2).all(|w| w[0] < w[1]), "rank {r} sorted");
        }
        assert_eq!(all.iter().map(Vec::len).sum::<usize>(), 57);
    }

    #[test]
    fn weighted_partition_with_uniform_weights_matches_unweighted() {
        let (adj, _) = ring(103);
        for k in [1usize, 2, 3, 7] {
            for w in [1u64, 9] {
                let weighted = partition_greedy_bfs_weighted(&adj, k, &vec![w; 103]);
                assert_eq!(weighted, partition_greedy_bfs(&adj, k), "k={k} w={w}");
            }
        }
    }

    #[test]
    fn weighted_partition_balances_weight_not_count() {
        // First half of the ring is 3x as expensive as the second half:
        // the expensive side must end up split across more ranks, so the
        // per-rank *weight* stays near the ideal share even though the
        // per-rank element counts diverge.
        let n = 120;
        let (adj, _) = ring(n);
        let weights: Vec<u64> = (0..n).map(|e| if e < n / 2 { 3 } else { 1 }).collect();
        let k = 4;
        let p = partition_greedy_bfs_weighted(&adj, k, &weights);
        p.validate().unwrap();
        let total: u64 = weights.iter().sum();
        let ideal = total as f64 / k as f64;
        let mut rank_weight = vec![0u64; k];
        for (e, &r) in p.part_of.iter().enumerate() {
            rank_weight[r as usize] += weights[e];
        }
        for (r, &wsum) in rank_weight.iter().enumerate() {
            let dev = (wsum as f64 - ideal).abs() / ideal;
            assert!(dev < 0.15, "rank {r} weight {wsum} vs ideal {ideal}");
        }
        let sizes = p.sizes();
        assert!(
            sizes.iter().max().unwrap() - sizes.iter().min().unwrap() > n / k / 4,
            "counts should diverge when weight balances: {sizes:?}"
        );
    }

    #[test]
    fn weighted_partition_assigns_every_element_even_with_huge_weights() {
        let (adj, _) = ring(10);
        let mut weights = vec![1u64; 10];
        weights[0] = 1_000_000; // one element dwarfs the total
        let p = partition_greedy_bfs_weighted(&adj, 3, &weights);
        p.validate().unwrap();
        assert_eq!(p.sizes().iter().sum::<usize>(), 10, "nothing left behind");
    }

    #[test]
    fn bfs_growth_keeps_ring_parts_contiguous() {
        let (adj, _) = ring(40);
        let p = partition_greedy_bfs(&adj, 4);
        // Each rank's owned set on a ring is one (possibly wrapping) arc:
        // count ownership changes walking the ring — one per boundary.
        let changes = (0..40)
            .filter(|&c| p.part_of[c] != p.part_of[(c + 1) % 40])
            .count();
        assert!(changes <= 2 * 4, "fragmented partition: {changes} cuts");
    }

    #[test]
    fn halo_of_ring_is_symmetric_and_covering() {
        let (adj, pairs) = ring(30);
        let p = partition_greedy_bfs(&adj, 3);
        let h = build_halo(&p, &pairs, 2);
        h.validate(&p, &pairs, 2).unwrap();
        // Every edge is executed by the owner(s) of its two cells and by
        // no one else.
        let mut exec_count = vec![0usize; 30];
        for r in 0..3 {
            for &e in &h.exec[r] {
                exec_count[e as usize] += 1;
            }
        }
        for e in 0..30 {
            let (a, b) = (
                p.part_of[pairs[2 * e] as usize],
                p.part_of[pairs[2 * e + 1] as usize],
            );
            assert_eq!(exec_count[e], if a == b { 1 } else { 2 }, "edge {e}");
        }
    }

    #[test]
    fn single_rank_needs_no_halo() {
        let (adj, pairs) = ring(16);
        let p = partition_greedy_bfs(&adj, 1);
        let h = build_halo(&p, &pairs, 2);
        assert_eq!(h.exec[0].len(), 16);
        assert_eq!(h.halo_size(0), 0);
    }

    #[test]
    fn dim1_map_owned_targets_need_no_halo() {
        // A map whose single target determines the executing rank (the
        // Airfoil `pbecell` shape) never imports anything.
        let (adj, _) = ring(20);
        let p = partition_greedy_bfs(&adj, 4);
        let table: Vec<u32> = (0..20).map(|e| e as u32).collect();
        let h = build_halo(&p, &table, 1);
        for r in 0..4 {
            assert_eq!(h.halo_size(r), 0, "rank {r}");
        }
        h.validate(&p, &table, 1).unwrap();
    }

    #[test]
    fn empty_adjacency() {
        let adj = Csr {
            offsets: vec![0],
            adj: Vec::new(),
        };
        let p = partition_greedy_bfs(&adj, 2);
        assert_eq!(p.part_of.len(), 0);
        assert_eq!(p.sizes(), vec![0, 0]);
    }
}
