//! Semantic analysis: name resolution and access/shape checking.

use crate::ast::*;
use crate::token::TranslateError;

/// Maximum loop arity supported by the `op2-core` `par_loopN` family.
pub const MAX_LOOP_ARITY: usize = 10;

/// Validates a parsed [`Program`]; returns all diagnostics (empty = valid).
pub fn check(program: &Program) -> Vec<TranslateError> {
    let mut errors = Vec::new();

    // Duplicate names across every namespace (OP2 identifiers share one).
    let mut names: Vec<(&str, crate::token::Pos)> = Vec::new();
    names.extend(program.sets.iter().map(|s| (s.name.as_str(), s.pos)));
    names.extend(program.maps.iter().map(|m| (m.name.as_str(), m.pos)));
    names.extend(program.dats.iter().map(|d| (d.name.as_str(), d.pos)));
    names.extend(program.gbls.iter().map(|g| (g.name.as_str(), g.pos)));
    for (i, &(name, pos)) in names.iter().enumerate() {
        if let Some(&(_, first)) = names[..i].iter().find(|(n, _)| *n == name) {
            errors.push(TranslateError::new(
                format!("duplicate declaration of `{name}` (first at {first})"),
                pos,
            ));
        }
    }

    for m in &program.maps {
        if program.set(&m.from).is_none() {
            errors.push(TranslateError::new(
                format!("map `{}`: unknown source set `{}`", m.name, m.from),
                m.pos,
            ));
        }
        if program.set(&m.to).is_none() {
            errors.push(TranslateError::new(
                format!("map `{}`: unknown target set `{}`", m.name, m.to),
                m.pos,
            ));
        }
        if m.dim == 0 {
            errors.push(TranslateError::new(
                format!("map `{}`: dim must be positive", m.name),
                m.pos,
            ));
        }
    }

    for d in &program.dats {
        if program.set(&d.set).is_none() {
            errors.push(TranslateError::new(
                format!("dat `{}`: unknown set `{}`", d.name, d.set),
                d.pos,
            ));
        }
        if d.dim == 0 {
            errors.push(TranslateError::new(
                format!("dat `{}`: dim must be positive", d.name),
                d.pos,
            ));
        }
    }

    for l in &program.loops {
        if program.set(&l.set).is_none() {
            errors.push(TranslateError::new(
                format!("loop `{}`: unknown iteration set `{}`", l.kernel, l.set),
                l.pos,
            ));
            continue;
        }
        if l.args.is_empty() {
            errors.push(TranslateError::new(
                format!("loop `{}`: needs at least one argument", l.kernel),
                l.pos,
            ));
        }
        if l.args.len() > MAX_LOOP_ARITY {
            errors.push(TranslateError::new(
                format!(
                    "loop `{}`: {} arguments exceeds the supported maximum of {MAX_LOOP_ARITY}",
                    l.kernel,
                    l.args.len()
                ),
                l.pos,
            ));
        }
        for arg in &l.args {
            match arg {
                LoopArg::Dat {
                    dat,
                    via,
                    access,
                    pos,
                } => {
                    let Some(d) = program.dat(dat) else {
                        errors.push(TranslateError::new(
                            format!("loop `{}`: unknown dat `{dat}`", l.kernel),
                            *pos,
                        ));
                        continue;
                    };
                    match via {
                        None => {
                            if d.set != l.set {
                                errors.push(TranslateError::new(
                                    format!(
                                        "loop `{}`: direct arg `{dat}` lives on set `{}`, loop iterates `{}`",
                                        l.kernel, d.set, l.set
                                    ),
                                    *pos,
                                ));
                            }
                        }
                        Some((map_name, idx)) => {
                            let Some(m) = program.map(map_name) else {
                                errors.push(TranslateError::new(
                                    format!("loop `{}`: unknown map `{map_name}`", l.kernel),
                                    *pos,
                                ));
                                continue;
                            };
                            if m.from != l.set {
                                errors.push(TranslateError::new(
                                    format!(
                                        "loop `{}`: map `{map_name}` maps from `{}`, loop iterates `{}`",
                                        l.kernel, m.from, l.set
                                    ),
                                    *pos,
                                ));
                            }
                            if m.to != d.set {
                                errors.push(TranslateError::new(
                                    format!(
                                        "loop `{}`: map `{map_name}` targets `{}`, dat `{dat}` lives on `{}`",
                                        l.kernel, m.to, d.set
                                    ),
                                    *pos,
                                ));
                            }
                            if *idx >= m.dim {
                                errors.push(TranslateError::new(
                                    format!(
                                        "loop `{}`: slot {idx} out of range for map `{map_name}` (dim {})",
                                        l.kernel, m.dim
                                    ),
                                    *pos,
                                ));
                            }
                        }
                    }
                    // Indirect writes are unsupported by OP2's plan model
                    // (only Inc is safe through a map for non-read).
                    if via.is_some() && matches!(access, AccessKind::Write | AccessKind::Rw) {
                        errors.push(TranslateError::new(
                            format!(
                                "loop `{}`: indirect `{}` access on `{dat}` — OP2 supports read/inc through maps",
                                l.kernel,
                                if *access == AccessKind::Write { "write" } else { "rw" }
                            ),
                            *pos,
                        ));
                    }
                }
                LoopArg::Gbl { gbl, access, pos } => {
                    if program.gbl(gbl).is_none() {
                        errors.push(TranslateError::new(
                            format!("loop `{}`: unknown global `{gbl}`", l.kernel),
                            *pos,
                        ));
                    }
                    if !matches!(access, AccessKind::Inc | AccessKind::Read) {
                        errors.push(TranslateError::new(
                            format!("loop `{}`: globals support read or inc access", l.kernel),
                            *pos,
                        ));
                    }
                }
            }
        }
    }

    for (i, c) in program.converges.iter().enumerate() {
        if program.converges[..i].iter().any(|prev| prev.gbl == c.gbl) {
            errors.push(TranslateError::new(
                format!("converge: duplicate exit for global `{}`", c.gbl),
                c.pos,
            ));
        }
        match program.gbl(&c.gbl) {
            None => {
                errors.push(TranslateError::new(
                    format!("converge: unknown global `{}`", c.gbl),
                    c.pos,
                ));
            }
            Some(g) => {
                // The exit compares one scalar residual; dim-1 f64 is the
                // shape `Convergence` (and `ReducedFuture::get_scalar`)
                // consumes.
                if g.dim != 1 || g.ty != ScalarType::F64 {
                    errors.push(TranslateError::new(
                        format!(
                            "converge: global `{}` must be dim 1, f64 (found dim {}, {})",
                            c.gbl,
                            g.dim,
                            g.ty.rust_name()
                        ),
                        c.pos,
                    ));
                }
            }
        }
        if c.tol.is_nan() || c.tol <= 0.0 {
            errors.push(TranslateError::new(
                format!("converge `{}`: tolerance must be positive", c.gbl),
                c.pos,
            ));
        }
        if c.every == 0 {
            errors.push(TranslateError::new(
                format!("converge `{}`: check interval must be at least 1", c.gbl),
                c.pos,
            ));
        }
        if c.max == 0 {
            errors.push(TranslateError::new(
                format!("converge `{}`: iteration cap must be at least 1", c.gbl),
                c.pos,
            ));
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn errors_of(src: &str) -> Vec<String> {
        check(&parse(src).unwrap())
            .into_iter()
            .map(|e| e.message)
            .collect()
    }

    #[test]
    fn valid_program_has_no_errors() {
        let src = r#"
            program ok;
            set cells; set nodes;
            map pcell : cells -> nodes, dim 4;
            dat q : cells, dim 4, f64;
            dat xn : nodes, dim 2, f64;
            gbl rms : dim 1, f64;
            loop work over cells {
                arg q : rw;
                arg xn via pcell[3] : read;
                arg rms gbl : inc;
            }
        "#;
        assert!(errors_of(src).is_empty());
    }

    #[test]
    fn catches_duplicate_names() {
        let errs = errors_of("program p; set a; set a;");
        assert!(errs.iter().any(|e| e.contains("duplicate")));
    }

    #[test]
    fn catches_wrong_set_direct_arg() {
        let src = r#"
            program p; set a; set b;
            dat d : a, dim 1, f64;
            loop l over b { arg d : read; }
        "#;
        assert!(errors_of(src).iter().any(|e| e.contains("lives on set")));
    }

    #[test]
    fn catches_map_slot_out_of_range() {
        let src = r#"
            program p; set e; set n;
            map m : e -> n, dim 2;
            dat d : n, dim 1, f64;
            loop l over e { arg d via m[5] : read; }
        "#;
        assert!(errors_of(src).iter().any(|e| e.contains("out of range")));
    }

    #[test]
    fn catches_indirect_write() {
        let src = r#"
            program p; set e; set n;
            map m : e -> n, dim 2;
            dat d : n, dim 1, f64;
            loop l over e { arg d via m[0] : write; }
        "#;
        assert!(errors_of(src)
            .iter()
            .any(|e| e.contains("read/inc through maps")));
    }

    #[test]
    fn catches_excess_arity() {
        let mut src = String::from("program p; set s; dat d : s, dim 1, f64; loop l over s {");
        for _ in 0..11 {
            src.push_str("arg d : read;");
        }
        src.push('}');
        assert!(errors_of(&src).iter().any(|e| e.contains("exceeds")));
    }

    #[test]
    fn converge_checks_global_shape_and_parameters() {
        let errs =
            errors_of("program p; gbl v : dim 3, f64; converge v : tol 1e-9, every 1, max 10;");
        assert!(errs.iter().any(|e| e.contains("must be dim 1, f64")));
        let errs = errors_of("program p; converge ghost : tol 1e-9, every 1, max 10;");
        assert!(errs.iter().any(|e| e.contains("unknown global")));
        let errs = errors_of(
            "program p; gbl r : dim 1, f64; \
             converge r : tol 1e-9, every 1, max 10; \
             converge r : tol 1e-6, every 1, max 10;",
        );
        assert!(errs.iter().any(|e| e.contains("duplicate exit")));
        let errs =
            errors_of("program p; gbl r : dim 1, f64; converge r : tol 1e-9, every 0, max 0;");
        assert!(errs.iter().any(|e| e.contains("check interval")));
        assert!(errs.iter().any(|e| e.contains("iteration cap")));
    }

    #[test]
    fn catches_unknown_references() {
        let src = "program p; set s; loop l over s { arg ghost : read; }";
        assert!(errors_of(src).iter().any(|e| e.contains("unknown dat")));
        let src2 = "program p; map m : x -> y, dim 1;";
        let errs = errors_of(src2);
        assert!(errs.iter().any(|e| e.contains("unknown source set")));
        assert!(errs.iter().any(|e| e.contains("unknown target set")));
    }
}
