//! Tokens of the `.op2` declaration language.

/// A source position (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line number.
    pub line: usize,
    /// Column number.
    pub col: usize,
}

impl std::fmt::Display for Pos {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword.
    Ident(String),
    /// Unsigned integer literal.
    Int(u64),
    /// Floating-point literal (`1.5`, `1e-12`, `2.5e3`), kept as its
    /// lexeme so `Tok` stays `Eq`; the parser converts to `f64`.
    Float(String),
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// End of input.
    Eof,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(v) => write!(f, "`{v}`"),
            Tok::Float(s) => write!(f, "`{s}`"),
            Tok::Colon => f.write_str("`:`"),
            Tok::Semi => f.write_str("`;`"),
            Tok::Comma => f.write_str("`,`"),
            Tok::Arrow => f.write_str("`->`"),
            Tok::LBracket => f.write_str("`[`"),
            Tok::RBracket => f.write_str("`]`"),
            Tok::LBrace => f.write_str("`{`"),
            Tok::RBrace => f.write_str("`}`"),
            Tok::Eof => f.write_str("end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// A translation error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TranslateError {
    /// Human-readable description.
    pub message: String,
    /// Position the error refers to.
    pub pos: Pos,
}

impl TranslateError {
    /// Creates an error at `pos`.
    pub fn new(message: impl Into<String>, pos: Pos) -> Self {
        TranslateError {
            message: message.into(),
            pos,
        }
    }
}

impl std::fmt::Display for TranslateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.pos, self.message)
    }
}

impl std::error::Error for TranslateError {}
