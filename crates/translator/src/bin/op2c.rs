//! `op2c` — the OP2 source-to-source translator CLI.
//!
//! ```text
//! op2c [--backend openmp|hpx] [--layout aos|soa] [--check] [-o OUT.rs] INPUT.op2
//! ```

use op2_translator::{
    check_source, emit_kernel_skeletons_layout, translate_layout, CodegenBackend, CodegenLayout,
};

fn main() {
    let mut backend = CodegenBackend::Hpx;
    let mut layout = CodegenLayout::AoS;
    let mut check_only = false;
    let mut kernels_only = false;
    let mut output: Option<String> = None;
    let mut input: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--backend" => {
                let name = args.next().expect("missing value for --backend");
                backend = CodegenBackend::parse(&name)
                    .unwrap_or_else(|| panic!("unknown backend `{name}` (openmp|hpx)"));
            }
            "--layout" => {
                let name = args.next().expect("missing value for --layout");
                layout = CodegenLayout::parse(&name)
                    .unwrap_or_else(|| panic!("unknown layout `{name}` (aos|soa)"));
            }
            "--check" => check_only = true,
            "--emit-kernels" => kernels_only = true,
            "-o" | "--output" => output = Some(args.next().expect("missing value for -o")),
            "--help" | "-h" => {
                println!(
                    "op2c: OP2 source-to-source translator\n\
                     usage: op2c [--backend openmp|hpx] [--layout aos|soa] [--check] [--emit-kernels] [-o OUT.rs] INPUT.op2"
                );
                return;
            }
            other if !other.starts_with('-') => input = Some(other.to_owned()),
            other => {
                eprintln!("unknown flag {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let Some(input) = input else {
        eprintln!("op2c: no input file (try --help)");
        std::process::exit(2);
    };
    let src =
        std::fs::read_to_string(&input).unwrap_or_else(|e| panic!("cannot read {input}: {e}"));

    if check_only {
        match check_source(&src) {
            Ok(p) => {
                println!(
                    "{input}: ok — programme `{}`: {} sets, {} maps, {} dats, {} globals, {} loops",
                    p.name,
                    p.sets.len(),
                    p.maps.len(),
                    p.dats.len(),
                    p.gbls.len(),
                    p.loops.len()
                );
            }
            Err(errors) => {
                for e in &errors {
                    eprintln!("{input}:{e}");
                }
                std::process::exit(1);
            }
        }
        return;
    }

    let result = if kernels_only {
        emit_kernel_skeletons_layout(&src, layout)
    } else {
        translate_layout(&src, backend, layout)
    };
    match result {
        Ok(code) => match output {
            Some(path) => {
                std::fs::write(&path, code).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
                eprintln!("wrote {path}");
            }
            None => print!("{code}"),
        },
        Err(errors) => {
            for e in &errors {
                eprintln!("{input}:{e}");
            }
            std::process::exit(1);
        }
    }
}
