//! Recursive-descent parser for the `.op2` language.
//!
//! Grammar (EBNF):
//!
//! ```text
//! program   := "program" IDENT ";" decl*
//! decl      := set | map | dat | gbl | loop | converge
//! set       := "set" IDENT ";"
//! map       := "map" IDENT ":" IDENT "->" IDENT "," "dim" INT ";"
//! dat       := "dat" IDENT ":" IDENT "," "dim" INT "," TYPE ";"
//! gbl       := "gbl" IDENT ":" "dim" INT "," TYPE ";"
//! loop      := "loop" IDENT "over" IDENT "{" arg* "}"
//! arg       := "arg" IDENT ("gbl" | ["via" IDENT "[" INT "]"]) ":" ACCESS ";"
//! converge  := "converge" IDENT ":" "tol" NUM "," "every" INT "," "max" INT ";"
//! TYPE      := "f64" | "f32" | "i32" | "i64" | "double" | "float" | "int" | "long"
//! ACCESS    := "read" | "write" | "rw" | "inc"
//! NUM       := FLOAT | INT
//! ```

use crate::ast::*;
use crate::lexer::lex;
use crate::token::{Pos, Tok, Token, TranslateError};

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.at].clone();
        if self.at + 1 < self.tokens.len() {
            self.at += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok) -> Result<Pos, TranslateError> {
        let t = self.next();
        if t.tok == tok {
            Ok(t.pos)
        } else {
            Err(TranslateError::new(
                format!("expected {tok}, found {}", t.tok),
                t.pos,
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Pos), TranslateError> {
        let t = self.next();
        match t.tok {
            Tok::Ident(s) => Ok((s, t.pos)),
            other => Err(TranslateError::new(
                format!("expected {what}, found {other}"),
                t.pos,
            )),
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<Pos, TranslateError> {
        let (word, pos) = self.ident(&format!("keyword `{kw}`"))?;
        if word == kw {
            Ok(pos)
        } else {
            Err(TranslateError::new(
                format!("expected keyword `{kw}`, found `{word}`"),
                pos,
            ))
        }
    }

    fn integer(&mut self, what: &str) -> Result<(usize, Pos), TranslateError> {
        let t = self.next();
        match t.tok {
            Tok::Int(v) => Ok((v as usize, t.pos)),
            other => Err(TranslateError::new(
                format!("expected {what}, found {other}"),
                t.pos,
            )),
        }
    }

    fn number(&mut self, what: &str) -> Result<(f64, Pos), TranslateError> {
        let t = self.next();
        match t.tok {
            // Lexemes are validated by the lexer, so the parse is
            // infallible here.
            Tok::Float(s) => Ok((s.parse::<f64>().expect("lexer-validated float"), t.pos)),
            Tok::Int(v) => Ok((v as f64, t.pos)),
            other => Err(TranslateError::new(
                format!("expected {what}, found {other}"),
                t.pos,
            )),
        }
    }

    fn scalar_type(&mut self) -> Result<ScalarType, TranslateError> {
        let (name, pos) = self.ident("a scalar type")?;
        ScalarType::parse(&name)
            .ok_or_else(|| TranslateError::new(format!("unknown scalar type `{name}`"), pos))
    }

    fn access(&mut self) -> Result<AccessKind, TranslateError> {
        let (name, pos) = self.ident("an access mode (read/write/rw/inc)")?;
        AccessKind::parse(&name)
            .ok_or_else(|| TranslateError::new(format!("unknown access mode `{name}`"), pos))
    }

    fn parse_program(&mut self) -> Result<Program, TranslateError> {
        let mut program = Program::default();
        self.keyword("program")?;
        let (name, _) = self.ident("programme name")?;
        program.name = name;
        self.expect(Tok::Semi)?;

        loop {
            let t = self.peek().clone();
            match &t.tok {
                Tok::Eof => break,
                Tok::Ident(kw) => match kw.as_str() {
                    "set" => {
                        self.next();
                        let (name, pos) = self.ident("set name")?;
                        self.expect(Tok::Semi)?;
                        program.sets.push(SetDecl { name, pos });
                    }
                    "map" => {
                        self.next();
                        let (name, pos) = self.ident("map name")?;
                        self.expect(Tok::Colon)?;
                        let (from, _) = self.ident("source set")?;
                        self.expect(Tok::Arrow)?;
                        let (to, _) = self.ident("target set")?;
                        self.expect(Tok::Comma)?;
                        self.keyword("dim")?;
                        let (dim, _) = self.integer("map arity")?;
                        self.expect(Tok::Semi)?;
                        program.maps.push(MapDecl {
                            name,
                            from,
                            to,
                            dim,
                            pos,
                        });
                    }
                    "dat" => {
                        self.next();
                        let (name, pos) = self.ident("dat name")?;
                        self.expect(Tok::Colon)?;
                        let (set, _) = self.ident("owning set")?;
                        self.expect(Tok::Comma)?;
                        self.keyword("dim")?;
                        let (dim, _) = self.integer("dat dim")?;
                        self.expect(Tok::Comma)?;
                        let ty = self.scalar_type()?;
                        self.expect(Tok::Semi)?;
                        program.dats.push(DatDecl {
                            name,
                            set,
                            dim,
                            ty,
                            pos,
                        });
                    }
                    "gbl" => {
                        self.next();
                        let (name, pos) = self.ident("global name")?;
                        self.expect(Tok::Colon)?;
                        self.keyword("dim")?;
                        let (dim, _) = self.integer("global dim")?;
                        self.expect(Tok::Comma)?;
                        let ty = self.scalar_type()?;
                        self.expect(Tok::Semi)?;
                        program.gbls.push(GblDecl { name, dim, ty, pos });
                    }
                    "loop" => {
                        self.next();
                        let (kernel, pos) = self.ident("kernel name")?;
                        self.keyword("over")?;
                        let (set, _) = self.ident("iteration set")?;
                        self.expect(Tok::LBrace)?;
                        let mut args = Vec::new();
                        while self.peek().tok != Tok::RBrace {
                            args.push(self.parse_arg()?);
                        }
                        self.expect(Tok::RBrace)?;
                        program.loops.push(LoopDecl {
                            kernel,
                            set,
                            args,
                            pos,
                        });
                    }
                    "converge" => {
                        self.next();
                        let (gbl, pos) = self.ident("residual global name")?;
                        self.expect(Tok::Colon)?;
                        self.keyword("tol")?;
                        let (tol, _) = self.number("a tolerance")?;
                        self.expect(Tok::Comma)?;
                        self.keyword("every")?;
                        let (every, _) = self.integer("a check interval")?;
                        self.expect(Tok::Comma)?;
                        self.keyword("max")?;
                        let (max, _) = self.integer("an iteration cap")?;
                        self.expect(Tok::Semi)?;
                        program.converges.push(ConvergeDecl {
                            gbl,
                            tol,
                            every,
                            max,
                            pos,
                        });
                    }
                    other => {
                        return Err(TranslateError::new(
                            format!("expected a declaration, found `{other}`"),
                            t.pos,
                        ));
                    }
                },
                other => {
                    return Err(TranslateError::new(
                        format!("expected a declaration, found {other}"),
                        t.pos,
                    ));
                }
            }
        }
        Ok(program)
    }

    fn parse_arg(&mut self) -> Result<LoopArg, TranslateError> {
        self.keyword("arg")?;
        let (target, pos) = self.ident("dat or global name")?;
        let t = self.peek().clone();
        let arg = match &t.tok {
            Tok::Ident(kw) if kw == "gbl" => {
                self.next();
                self.expect(Tok::Colon)?;
                let access = self.access()?;
                LoopArg::Gbl {
                    gbl: target,
                    access,
                    pos,
                }
            }
            Tok::Ident(kw) if kw == "via" => {
                self.next();
                let (map, _) = self.ident("map name")?;
                self.expect(Tok::LBracket)?;
                let (idx, _) = self.integer("map slot")?;
                self.expect(Tok::RBracket)?;
                self.expect(Tok::Colon)?;
                let access = self.access()?;
                LoopArg::Dat {
                    dat: target,
                    via: Some((map, idx)),
                    access,
                    pos,
                }
            }
            _ => {
                self.expect(Tok::Colon)?;
                let access = self.access()?;
                LoopArg::Dat {
                    dat: target,
                    via: None,
                    access,
                    pos,
                }
            }
        };
        self.expect(Tok::Semi)?;
        Ok(arg)
    }
}

/// Parses `.op2` source into a [`Program`].
pub fn parse(src: &str) -> Result<Program, TranslateError> {
    let tokens = lex(src)?;
    Parser { tokens, at: 0 }.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = r#"
        program demo;
        set cells;
        set nodes;
        map pcell : cells -> nodes, dim 4;
        dat q : cells, dim 4, f64;
        gbl rms : dim 1, f64;
        loop work over cells {
            arg q : read;
            arg q via pcell[2] : inc;
            arg rms gbl : inc;
        }
    "#;

    #[test]
    fn parses_all_declaration_kinds() {
        let p = parse(SMALL).unwrap();
        assert_eq!(p.name, "demo");
        assert_eq!(p.sets.len(), 2);
        assert_eq!(p.maps[0].dim, 4);
        assert_eq!(p.dats[0].ty, ScalarType::F64);
        assert_eq!(p.gbls[0].dim, 1);
        let l = &p.loops[0];
        assert_eq!(l.kernel, "work");
        assert_eq!(l.args.len(), 3);
        match &l.args[1] {
            LoopArg::Dat {
                via: Some((m, i)),
                access,
                ..
            } => {
                assert_eq!(m, "pcell");
                assert_eq!(*i, 2);
                assert_eq!(*access, AccessKind::Inc);
            }
            other => panic!("wrong arg: {other:?}"),
        }
        match &l.args[2] {
            LoopArg::Gbl { gbl, .. } => assert_eq!(gbl, "rms"),
            other => panic!("wrong arg: {other:?}"),
        }
    }

    #[test]
    fn parses_converge_declaration() {
        let src =
            "program x; gbl resid : dim 1, f64; converge resid : tol 1e-12, every 2, max 500;";
        let p = parse(src).unwrap();
        let c = &p.converges[0];
        assert_eq!(c.gbl, "resid");
        assert_eq!(c.tol, 1e-12);
        assert_eq!(c.every, 2);
        assert_eq!(c.max, 500);
        assert!(p.converge("resid").is_some());
    }

    #[test]
    fn converge_tolerance_accepts_an_integer() {
        let p =
            parse("program x; gbl r : dim 1, f64; converge r : tol 1, every 1, max 10;").unwrap();
        assert_eq!(p.converges[0].tol, 1.0);
    }

    #[test]
    fn converge_rejects_a_missing_field() {
        let err = parse("program x; converge r : tol 1e-9, max 10;").unwrap_err();
        assert!(err.message.contains("every"));
    }

    #[test]
    fn error_reports_position() {
        let err = parse("program x;\nset ;").unwrap_err();
        assert_eq!(err.pos.line, 2);
        assert!(err.message.contains("set name"));
    }

    #[test]
    fn rejects_bad_access() {
        let src = "program x; set s; dat d : s, dim 1, f64; loop l over s { arg d : sideways; }";
        let err = parse(src).unwrap_err();
        assert!(err.message.contains("unknown access mode"));
    }

    #[test]
    fn rejects_missing_program_header() {
        let err = parse("set s;").unwrap_err();
        assert!(err.message.contains("program"));
    }

    #[test]
    fn accepts_c_style_type_names() {
        let p = parse("program x; set s; dat d : s, dim 1, double;").unwrap();
        assert_eq!(p.dats[0].ty, ScalarType::F64);
    }
}
