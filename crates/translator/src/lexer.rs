//! Hand-written lexer for the `.op2` language.

use crate::token::{Pos, Tok, Token, TranslateError};

/// Tokenizes `src`, stripping `//` line and `/* */` block comments.
pub fn lex(src: &str) -> Result<Vec<Token>, TranslateError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(TranslateError::new("unterminated block comment", pos));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b':' => {
                out.push(Token {
                    tok: Tok::Colon,
                    pos,
                });
                bump!();
            }
            b';' => {
                out.push(Token {
                    tok: Tok::Semi,
                    pos,
                });
                bump!();
            }
            b',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    pos,
                });
                bump!();
            }
            b'[' => {
                out.push(Token {
                    tok: Tok::LBracket,
                    pos,
                });
                bump!();
            }
            b']' => {
                out.push(Token {
                    tok: Tok::RBracket,
                    pos,
                });
                bump!();
            }
            b'{' => {
                out.push(Token {
                    tok: Tok::LBrace,
                    pos,
                });
                bump!();
            }
            b'}' => {
                out.push(Token {
                    tok: Tok::RBrace,
                    pos,
                });
                bump!();
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                out.push(Token {
                    tok: Tok::Arrow,
                    pos,
                });
                bump!();
                bump!();
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                let text = &src[start..i];
                let value = text
                    .parse::<u64>()
                    .map_err(|_| TranslateError::new(format!("invalid integer `{text}`"), pos))?;
                out.push(Token {
                    tok: Tok::Int(value),
                    pos,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_owned()),
                    pos,
                });
            }
            other => {
                return Err(TranslateError::new(
                    format!("unexpected character `{}`", other as char),
                    pos,
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_declarations() {
        let toks = lex("map pedge : edges -> nodes, dim 2;").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Ident(s) if s == "map"));
        assert!(matches!(kinds[3], Tok::Ident(s) if s == "edges"));
        assert!(kinds.contains(&&Tok::Arrow));
        assert!(matches!(kinds[kinds.len() - 3], Tok::Int(2)));
        assert_eq!(kinds.last(), Some(&&Tok::Eof));
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("set a;\nset b;").unwrap();
        let b_tok = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b_tok.pos.line, 2);
        assert_eq!(b_tok.pos.col, 5);
    }

    #[test]
    fn strips_comments() {
        let toks = lex("// hello\nset /* inline */ a;").unwrap();
        assert!(matches!(&toks[0].tok, Tok::Ident(s) if s == "set"));
        assert_eq!(toks.len(), 4); // set, a, ;, eof
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        let err = lex("set $x;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.pos.col, 5);
    }
}
