//! Hand-written lexer for the `.op2` language.

use crate::token::{Pos, Tok, Token, TranslateError};

/// Tokenizes `src`, stripping `//` line and `/* */` block comments.
pub fn lex(src: &str) -> Result<Vec<Token>, TranslateError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => bump!(),
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'*' => {
                bump!();
                bump!();
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(TranslateError::new("unterminated block comment", pos));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        bump!();
                        bump!();
                        break;
                    }
                    bump!();
                }
            }
            b':' => {
                out.push(Token {
                    tok: Tok::Colon,
                    pos,
                });
                bump!();
            }
            b';' => {
                out.push(Token {
                    tok: Tok::Semi,
                    pos,
                });
                bump!();
            }
            b',' => {
                out.push(Token {
                    tok: Tok::Comma,
                    pos,
                });
                bump!();
            }
            b'[' => {
                out.push(Token {
                    tok: Tok::LBracket,
                    pos,
                });
                bump!();
            }
            b']' => {
                out.push(Token {
                    tok: Tok::RBracket,
                    pos,
                });
                bump!();
            }
            b'{' => {
                out.push(Token {
                    tok: Tok::LBrace,
                    pos,
                });
                bump!();
            }
            b'}' => {
                out.push(Token {
                    tok: Tok::RBrace,
                    pos,
                });
                bump!();
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'>' => {
                out.push(Token {
                    tok: Tok::Arrow,
                    pos,
                });
                bump!();
                bump!();
            }
            b'0'..=b'9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    bump!();
                }
                // Float continuation: a fraction (`.` followed by a digit
                // — not `..` or a field access) and/or an exponent.
                let mut is_float = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_float = true;
                    bump!();
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        bump!();
                    }
                }
                if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                        j += 1;
                    }
                    if j < bytes.len() && bytes[j].is_ascii_digit() {
                        is_float = true;
                        while i < j {
                            bump!();
                        }
                        while i < bytes.len() && bytes[i].is_ascii_digit() {
                            bump!();
                        }
                    }
                }
                let text = &src[start..i];
                if is_float {
                    // Validated here so the parser's conversion is
                    // infallible for lexed tokens.
                    text.parse::<f64>()
                        .map_err(|_| TranslateError::new(format!("invalid float `{text}`"), pos))?;
                    out.push(Token {
                        tok: Tok::Float(text.to_owned()),
                        pos,
                    });
                } else {
                    let value = text.parse::<u64>().map_err(|_| {
                        TranslateError::new(format!("invalid integer `{text}`"), pos)
                    })?;
                    out.push(Token {
                        tok: Tok::Int(value),
                        pos,
                    });
                }
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                out.push(Token {
                    tok: Tok::Ident(src[start..i].to_owned()),
                    pos,
                });
            }
            other => {
                return Err(TranslateError::new(
                    format!("unexpected character `{}`", other as char),
                    pos,
                ));
            }
        }
    }
    out.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_declarations() {
        let toks = lex("map pedge : edges -> nodes, dim 2;").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[0], Tok::Ident(s) if s == "map"));
        assert!(matches!(kinds[3], Tok::Ident(s) if s == "edges"));
        assert!(kinds.contains(&&Tok::Arrow));
        assert!(matches!(kinds[kinds.len() - 3], Tok::Int(2)));
        assert_eq!(kinds.last(), Some(&&Tok::Eof));
    }

    #[test]
    fn tracks_positions() {
        let toks = lex("set a;\nset b;").unwrap();
        let b_tok = toks
            .iter()
            .find(|t| t.tok == Tok::Ident("b".into()))
            .unwrap();
        assert_eq!(b_tok.pos.line, 2);
        assert_eq!(b_tok.pos.col, 5);
    }

    #[test]
    fn strips_comments() {
        let toks = lex("// hello\nset /* inline */ a;").unwrap();
        assert!(matches!(&toks[0].tok, Tok::Ident(s) if s == "set"));
        assert_eq!(toks.len(), 4); // set, a, ;, eof
    }

    #[test]
    fn lexes_float_literals() {
        let toks = lex("tol 1e-12, 2.5, 3.25e+4, 7e3, 10").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
        assert!(matches!(kinds[1], Tok::Float(s) if s == "1e-12"));
        assert!(matches!(kinds[3], Tok::Float(s) if s == "2.5"));
        assert!(matches!(kinds[5], Tok::Float(s) if s == "3.25e+4"));
        assert!(matches!(kinds[7], Tok::Float(s) if s == "7e3"));
        assert!(matches!(kinds[9], Tok::Int(10)));
    }

    #[test]
    fn bare_e_suffix_is_not_a_float() {
        // `2e` with no exponent digits: `2` then ident `e` (two tokens),
        // not a malformed float.
        let toks = lex("dim 2e;").unwrap();
        assert!(matches!(&toks[1].tok, Tok::Int(2)));
        assert!(matches!(&toks[2].tok, Tok::Ident(s) if s == "e"));
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex("/* oops").is_err());
    }

    #[test]
    fn rejects_stray_character() {
        let err = lex("set $x;").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.pos.col, 5);
    }
}
