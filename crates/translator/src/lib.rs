//! # op2-translator — the `op2c` source-to-source translator
//!
//! The paper's deliverable is a retargeted OP2 code generator: "its Python
//! source-to-source code translator is modified to automatically generate
//! the parallel loops using HPX library calls" (§II-B). This crate is that
//! translator for the Rust reproduction: it parses a small declarative
//! `.op2` language (programme = sets, maps, dats, globals, loops with
//! access descriptors), runs the same shape/access checks OP2 performs,
//! and emits Rust loop wrappers in either of two styles:
//!
//! * **openmp** — blocking wrappers with an implicit global barrier after
//!   every loop (stock OP2, paper Fig 4);
//! * **hpx** — future-returning wrappers whose loops chain through the
//!   dataflow dependency graph (the paper's redesign, Fig 8).
//!
//! ```
//! let src = r#"
//!     program demo;
//!     set cells;
//!     dat q : cells, dim 4, f64;
//!     dat qold : cells, dim 4, f64;
//!     loop save_soln over cells {
//!         arg q : read;
//!         arg qold : write;
//!     }
//! "#;
//! let code = op2_translator::translate(src, op2_translator::CodegenBackend::Hpx).unwrap();
//! assert!(code.contains("pub fn op_par_loop_save_soln<K>"));
//! assert!(code.contains("-> LoopHandle"));
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod codegen;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod token;

pub use ast::Program;
pub use codegen::{CodegenBackend, CodegenLayout};
pub use token::TranslateError;

/// One-shot translation: source text → generated Rust, or every diagnostic
/// found on the way. AoS layout (see [`translate_layout`]).
pub fn translate(src: &str, backend: CodegenBackend) -> Result<String, Vec<TranslateError>> {
    translate_layout(src, backend, CodegenLayout::AoS)
}

/// [`translate`] with an explicit target dat layout (`op2c --layout`).
/// AoS output is byte-identical to [`translate`]; SoA output documents
/// the plane layout on every wrapper.
pub fn translate_layout(
    src: &str,
    backend: CodegenBackend,
    layout: CodegenLayout,
) -> Result<String, Vec<TranslateError>> {
    let program = parser::parse(src).map_err(|e| vec![e])?;
    codegen::generate_layout(&program, backend, layout)
}

/// Generates kernel-skeleton stubs (the `op2c --emit-kernels` mode).
/// AoS layout (see [`emit_kernel_skeletons_layout`]).
pub fn emit_kernel_skeletons(src: &str) -> Result<String, Vec<TranslateError>> {
    emit_kernel_skeletons_layout(src, CodegenLayout::AoS)
}

/// [`emit_kernel_skeletons`] with an explicit target layout: SoA emits
/// block-level stride-aware stubs over component planes.
pub fn emit_kernel_skeletons_layout(
    src: &str,
    layout: CodegenLayout,
) -> Result<String, Vec<TranslateError>> {
    let program = parser::parse(src).map_err(|e| vec![e])?;
    codegen::generate_kernel_skeletons_layout(&program, layout)
}

/// Parses and checks without generating (the `op2c --check` mode).
pub fn check_source(src: &str) -> Result<Program, Vec<TranslateError>> {
    let program = parser::parse(src).map_err(|e| vec![e])?;
    let errors = sema::check(&program);
    if errors.is_empty() {
        Ok(program)
    } else {
        Err(errors)
    }
}
