//! Abstract syntax of an `.op2` programme declaration.

use crate::token::Pos;

/// Scalar types supported by the DSL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarType {
    /// `f64`
    F64,
    /// `f32`
    F32,
    /// `i32`
    I32,
    /// `i64`
    I64,
}

impl ScalarType {
    /// The Rust spelling.
    pub fn rust_name(self) -> &'static str {
        match self {
            ScalarType::F64 => "f64",
            ScalarType::F32 => "f32",
            ScalarType::I32 => "i32",
            ScalarType::I64 => "i64",
        }
    }

    /// Parses the DSL spelling.
    pub fn parse(name: &str) -> Option<ScalarType> {
        match name {
            "f64" | "double" => Some(ScalarType::F64),
            "f32" | "float" => Some(ScalarType::F32),
            "i32" | "int" => Some(ScalarType::I32),
            "i64" | "long" => Some(ScalarType::I64),
            _ => None,
        }
    }
}

/// Access descriptors (the DSL spellings of `OP_READ` etc.).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// `read`
    Read,
    /// `write`
    Write,
    /// `rw`
    Rw,
    /// `inc`
    Inc,
}

impl AccessKind {
    /// Parses the DSL spelling.
    pub fn parse(name: &str) -> Option<AccessKind> {
        match name {
            "read" => Some(AccessKind::Read),
            "write" => Some(AccessKind::Write),
            "rw" => Some(AccessKind::Rw),
            "inc" => Some(AccessKind::Inc),
            _ => None,
        }
    }

    /// True for write/rw/inc.
    pub fn is_mut(self) -> bool {
        !matches!(self, AccessKind::Read)
    }
}

/// `set NAME;`
#[derive(Debug, Clone)]
pub struct SetDecl {
    /// Set name.
    pub name: String,
    /// Declaration position.
    pub pos: Pos,
}

/// `map NAME : FROM -> TO, dim N;`
#[derive(Debug, Clone)]
pub struct MapDecl {
    /// Map name.
    pub name: String,
    /// Source set.
    pub from: String,
    /// Target set.
    pub to: String,
    /// Arity.
    pub dim: usize,
    /// Declaration position.
    pub pos: Pos,
}

/// `dat NAME : SET, dim N, TYPE;`
#[derive(Debug, Clone)]
pub struct DatDecl {
    /// Dat name.
    pub name: String,
    /// Owning set.
    pub set: String,
    /// Scalars per element.
    pub dim: usize,
    /// Scalar type.
    pub ty: ScalarType,
    /// Declaration position.
    pub pos: Pos,
}

/// `gbl NAME : dim N, TYPE;`
#[derive(Debug, Clone)]
pub struct GblDecl {
    /// Global name.
    pub name: String,
    /// Scalars.
    pub dim: usize,
    /// Scalar type.
    pub ty: ScalarType,
    /// Declaration position.
    pub pos: Pos,
}

/// One argument inside a `loop` block.
#[derive(Debug, Clone)]
pub enum LoopArg {
    /// `arg DAT [via MAP[IDX]] : ACCESS;`
    Dat {
        /// Referenced dat.
        dat: String,
        /// Indirection, if any.
        via: Option<(String, usize)>,
        /// Access mode.
        access: AccessKind,
        /// Position.
        pos: Pos,
    },
    /// `arg GBL gbl : ACCESS;`
    Gbl {
        /// Referenced global.
        gbl: String,
        /// Access mode (`inc` or `read`).
        access: AccessKind,
        /// Position.
        pos: Pos,
    },
}

impl LoopArg {
    /// Position of the argument declaration.
    pub fn pos(&self) -> Pos {
        match self {
            LoopArg::Dat { pos, .. } | LoopArg::Gbl { pos, .. } => *pos,
        }
    }
}

/// `loop KERNEL over SET { args }`
#[derive(Debug, Clone)]
pub struct LoopDecl {
    /// Kernel / loop name.
    pub kernel: String,
    /// Iteration set.
    pub set: String,
    /// Arguments in order.
    pub args: Vec<LoopArg>,
    /// Position.
    pub pos: Pos,
}

/// `converge GBL : tol T, every N, max M;` — a data-dependent loop exit:
/// stop once the (scaled) reduced value of `GBL` drops below `tol`,
/// checking every `every` iterations, with a hard cap of `max`. Lowered
/// onto the asynchronous-reduction path (`op2_core::Convergence` over
/// `ReducedFuture`s), so the check never blocks the time loop.
#[derive(Debug, Clone)]
pub struct ConvergeDecl {
    /// The residual global the exit is driven by.
    pub gbl: String,
    /// Tolerance (in the solver's scaled residual units).
    pub tol: f64,
    /// Check interval in iterations.
    pub every: usize,
    /// Hard iteration cap.
    pub max: usize,
    /// Declaration position.
    pub pos: Pos,
}

/// A parsed `.op2` file.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// `program NAME;`
    pub name: String,
    /// Declared sets.
    pub sets: Vec<SetDecl>,
    /// Declared maps.
    pub maps: Vec<MapDecl>,
    /// Declared dats.
    pub dats: Vec<DatDecl>,
    /// Declared globals.
    pub gbls: Vec<GblDecl>,
    /// Declared loops.
    pub loops: Vec<LoopDecl>,
    /// Declared convergence exits.
    pub converges: Vec<ConvergeDecl>,
}

impl Program {
    /// Looks up a map by name.
    pub fn map(&self, name: &str) -> Option<&MapDecl> {
        self.maps.iter().find(|m| m.name == name)
    }

    /// Looks up a dat by name.
    pub fn dat(&self, name: &str) -> Option<&DatDecl> {
        self.dats.iter().find(|d| d.name == name)
    }

    /// Looks up a global by name.
    pub fn gbl(&self, name: &str) -> Option<&GblDecl> {
        self.gbls.iter().find(|g| g.name == name)
    }

    /// Looks up a set by name.
    pub fn set(&self, name: &str) -> Option<&SetDecl> {
        self.sets.iter().find(|s| s.name == name)
    }

    /// Looks up a convergence exit by its driving global.
    pub fn converge(&self, gbl: &str) -> Option<&ConvergeDecl> {
        self.converges.iter().find(|c| c.gbl == gbl)
    }
}
