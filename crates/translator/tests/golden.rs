//! Golden-file regression tests: the checked-in generated code for the
//! Airfoil programme must match what `op2c` produces today.
//!
//! Regenerate after intentional codegen changes with:
//! `cargo run -p op2-translator --bin op2c -- --backend hpx specs/airfoil.op2 -o tests/golden/airfoil_hpx.rs`
//! (and likewise for `openmp`).

use op2_translator::{check_source, translate, CodegenBackend};

const AIRFOIL: &str = include_str!("../specs/airfoil.op2");

#[test]
fn airfoil_spec_is_semantically_valid() {
    let program = check_source(AIRFOIL).expect("airfoil.op2 must check clean");
    assert_eq!(program.name, "airfoil");
    assert_eq!(program.sets.len(), 4);
    assert_eq!(program.maps.len(), 5);
    assert_eq!(program.dats.len(), 6);
    assert_eq!(program.loops.len(), 5, "the paper's five loops (Fig 2)");
}

#[test]
fn airfoil_hpx_matches_golden() {
    let generated = translate(AIRFOIL, CodegenBackend::Hpx).unwrap();
    let golden = include_str!("golden/airfoil_hpx.rs");
    assert_eq!(generated, golden, "hpx codegen drifted; regenerate golden");
}

#[test]
fn airfoil_openmp_matches_golden() {
    let generated = translate(AIRFOIL, CodegenBackend::OpenMp).unwrap();
    let golden = include_str!("golden/airfoil_openmp.rs");
    assert_eq!(
        generated, golden,
        "openmp codegen drifted; regenerate golden"
    );
}

#[test]
fn backends_differ_exactly_in_synchronization() {
    let hpx = translate(AIRFOIL, CodegenBackend::Hpx).unwrap();
    let omp = translate(AIRFOIL, CodegenBackend::OpenMp).unwrap();
    // Same five wrappers...
    for name in ["save_soln", "adt_calc", "res_calc", "bres_calc", "update"] {
        assert!(hpx.contains(&format!("op_par_loop_{name}")));
        assert!(omp.contains(&format!("op_par_loop_{name}")));
    }
    // ...but openmp joins (global barrier) while hpx returns futures.
    assert_eq!(omp.matches("handle.wait();").count(), 5);
    assert_eq!(hpx.matches("handle.wait();").count(), 0);
    assert_eq!(hpx.matches("-> LoopHandle").count(), 5);
    assert_eq!(omp.matches("-> LoopHandle").count(), 0);
}

#[test]
fn res_calc_emits_eight_builder_args_with_increments() {
    let hpx = translate(AIRFOIL, CodegenBackend::Hpx).unwrap();
    let res_calc = hpx
        .split("pub fn op_par_loop_res_calc")
        .nth(1)
        .expect("res_calc wrapper present");
    let body = res_calc.split("pub fn").next().unwrap();
    assert_eq!(body.matches(".arg(").count(), 8, "arity-free builder args");
    assert!(body.contains(".arg(arg_inc_via(p_res, pecell, 0))"));
    assert!(body.contains(".arg(arg_inc_via(p_res, pecell, 1))"));
    assert!(body.contains(".run(kernel)"));
}

#[test]
fn kernel_skeletons_cover_all_loops_with_correct_mutability() {
    let skeletons = op2_translator::emit_kernel_skeletons(AIRFOIL).unwrap();
    for name in ["save_soln", "adt_calc", "res_calc", "bres_calc", "update"] {
        assert!(
            skeletons.contains(&format!("pub fn {name}(")),
            "{name} missing"
        );
    }
    // res_calc: last two args (the increments) are mutable, the rest not.
    assert!(skeletons.contains("arg6_p_res: &mut [f64]"));
    assert!(skeletons.contains("arg7_p_res: &mut [f64]"));
    assert!(skeletons.contains("arg0_p_x: &[f64]"));
    // bres_calc reads the i32 boundary flag.
    assert!(skeletons.contains("arg5_p_bound: &[i32]"));
    // update increments the rms global.
    assert!(skeletons.contains("arg4_rms: &mut [f64]"));
}
