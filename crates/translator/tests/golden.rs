//! Golden-file regression tests: the checked-in generated code for the
//! Airfoil programme must match what `op2c` produces today.
//!
//! Regenerate after intentional codegen changes with:
//! `cargo run -p op2-translator --bin op2c -- --backend hpx specs/airfoil.op2 -o tests/golden/airfoil_hpx.rs`
//! (and likewise for `openmp`).

use op2_translator::{
    check_source, emit_kernel_skeletons_layout, translate, translate_layout, CodegenBackend,
    CodegenLayout,
};

const AIRFOIL: &str = include_str!("../specs/airfoil.op2");
const HEAT: &str = include_str!("../specs/heat.op2");
const JAC: &str = include_str!("../specs/jac.op2");

#[test]
fn airfoil_spec_is_semantically_valid() {
    let program = check_source(AIRFOIL).expect("airfoil.op2 must check clean");
    assert_eq!(program.name, "airfoil");
    assert_eq!(program.sets.len(), 4);
    assert_eq!(program.maps.len(), 5);
    assert_eq!(program.dats.len(), 6);
    assert_eq!(program.loops.len(), 5, "the paper's five loops (Fig 2)");
}

#[test]
fn airfoil_hpx_matches_golden() {
    let generated = translate(AIRFOIL, CodegenBackend::Hpx).unwrap();
    let golden = include_str!("golden/airfoil_hpx.rs");
    assert_eq!(generated, golden, "hpx codegen drifted; regenerate golden");
}

#[test]
fn airfoil_openmp_matches_golden() {
    let generated = translate(AIRFOIL, CodegenBackend::OpenMp).unwrap();
    let golden = include_str!("golden/airfoil_openmp.rs");
    assert_eq!(
        generated, golden,
        "openmp codegen drifted; regenerate golden"
    );
}

#[test]
fn heat_spec_is_semantically_valid() {
    let program = check_source(HEAT).expect("heat.op2 must check clean");
    assert_eq!(program.name, "heat");
    assert_eq!(program.loops.len(), 2);
    let c = program.converge("delta").expect("heat has a converge decl");
    assert_eq!((c.tol, c.every, c.max), (1e-6, 50, 2000));
}

#[test]
fn heat_hpx_matches_golden() {
    let generated = translate(HEAT, CodegenBackend::Hpx).unwrap();
    let golden = include_str!("golden/heat_hpx.rs");
    assert_eq!(generated, golden, "hpx codegen drifted; regenerate golden");
}

#[test]
fn jac_spec_is_semantically_valid() {
    let program = check_source(JAC).expect("jac.op2 must check clean");
    assert_eq!(program.name, "jac");
    assert_eq!(program.loops.len(), 2);
    let c = program.converge("resid").expect("jac has a converge decl");
    assert_eq!((c.tol, c.every, c.max), (1e-12, 1, 500));
}

#[test]
fn jac_hpx_matches_golden() {
    let generated = translate(JAC, CodegenBackend::Hpx).unwrap();
    let golden = include_str!("golden/jac_hpx.rs");
    assert_eq!(generated, golden, "hpx codegen drifted; regenerate golden");
}

#[test]
fn converge_decls_lower_onto_the_async_reduction_path() {
    // The generated constructor is the only hook the app layer needs:
    // parameters travel from the spec into `Convergence::new`, and the
    // doc steers users to observe/should_stop (never a blocking read).
    let heat = translate(HEAT, CodegenBackend::Hpx).unwrap();
    assert!(heat.contains("pub fn delta_convergence() -> Convergence"));
    assert!(heat.contains("Convergence::new(1e-6, 50, 2000)"));
    let jac = translate(JAC, CodegenBackend::Hpx).unwrap();
    assert!(jac.contains("pub fn resid_convergence() -> Convergence"));
    assert!(jac.contains("Convergence::new(1e-12, 1, 500)"));
    assert!(jac.contains("never blocks"));
}

#[test]
fn aos_layout_is_byte_identical_to_the_default_path() {
    for backend in [CodegenBackend::Hpx, CodegenBackend::OpenMp] {
        assert_eq!(
            translate_layout(AIRFOIL, backend, CodegenLayout::AoS).unwrap(),
            translate(AIRFOIL, backend).unwrap(),
            "explicit --layout aos must not change the output"
        );
    }
}

#[test]
fn airfoil_hpx_soa_matches_golden() {
    let generated = translate_layout(AIRFOIL, CodegenBackend::Hpx, CodegenLayout::SoA).unwrap();
    let golden = include_str!("golden/airfoil_hpx_soa.rs");
    assert_eq!(
        generated, golden,
        "hpx soa codegen drifted; regenerate golden"
    );
}

#[test]
fn airfoil_soa_kernel_skeletons_match_golden() {
    let generated = emit_kernel_skeletons_layout(AIRFOIL, CodegenLayout::SoA).unwrap();
    let golden = include_str!("golden/airfoil_kernels_soa.rs");
    assert_eq!(
        generated, golden,
        "soa skeleton codegen drifted; regenerate golden"
    );
}

#[test]
fn soa_skeletons_are_block_level_and_stride_aware() {
    let skeletons = emit_kernel_skeletons_layout(AIRFOIL, CodegenLayout::SoA).unwrap();
    for name in ["save_soln", "adt_calc", "res_calc", "bres_calc", "update"] {
        assert!(skeletons.contains(&format!("pub fn {name}_soa(")), "{name}");
    }
    // Every dat argument carries its plane stride; indirect loops get the
    // map index table and every skeleton takes an element range.
    assert!(skeletons.contains("arg0_p_q_stride: usize"));
    assert!(skeletons.contains("pcell: &[u32]"));
    assert!(skeletons.contains("pecell: &[u32]"));
    assert!(skeletons.contains("range: std::ops::Range<usize>"));
    // The wrappers (not the skeletons) stay layout-oblivious: SoA wrapper
    // output differs from AoS only in documentation.
    let aos = translate(AIRFOIL, CodegenBackend::Hpx).unwrap();
    let soa = translate_layout(AIRFOIL, CodegenBackend::Hpx, CodegenLayout::SoA).unwrap();
    let strip = |s: &str| {
        s.lines()
            .filter(|l| !l.trim_start().starts_with("//"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(strip(&aos), strip(&soa), "wrapper code must not differ");
}

#[test]
fn backends_differ_exactly_in_synchronization() {
    let hpx = translate(AIRFOIL, CodegenBackend::Hpx).unwrap();
    let omp = translate(AIRFOIL, CodegenBackend::OpenMp).unwrap();
    // Same five wrappers...
    for name in ["save_soln", "adt_calc", "res_calc", "bres_calc", "update"] {
        assert!(hpx.contains(&format!("op_par_loop_{name}")));
        assert!(omp.contains(&format!("op_par_loop_{name}")));
    }
    // ...but openmp joins (global barrier) while hpx returns futures.
    assert_eq!(omp.matches("handle.wait();").count(), 5);
    assert_eq!(hpx.matches("handle.wait();").count(), 0);
    assert_eq!(hpx.matches("-> LoopHandle").count(), 5);
    assert_eq!(omp.matches("-> LoopHandle").count(), 0);
}

#[test]
fn res_calc_emits_eight_builder_args_with_increments() {
    let hpx = translate(AIRFOIL, CodegenBackend::Hpx).unwrap();
    let res_calc = hpx
        .split("pub fn op_par_loop_res_calc")
        .nth(1)
        .expect("res_calc wrapper present");
    let body = res_calc.split("pub fn").next().unwrap();
    assert_eq!(body.matches(".arg(").count(), 8, "arity-free builder args");
    assert!(body.contains(".arg(arg_inc_via(p_res, pecell, 0))"));
    assert!(body.contains(".arg(arg_inc_via(p_res, pecell, 1))"));
    assert!(body.contains(".run(kernel)"));
}

#[test]
fn kernel_skeletons_cover_all_loops_with_correct_mutability() {
    let skeletons = op2_translator::emit_kernel_skeletons(AIRFOIL).unwrap();
    for name in ["save_soln", "adt_calc", "res_calc", "bres_calc", "update"] {
        assert!(
            skeletons.contains(&format!("pub fn {name}(")),
            "{name} missing"
        );
    }
    // res_calc: last two args (the increments) are mutable, the rest not.
    assert!(skeletons.contains("arg6_p_res: &mut [f64]"));
    assert!(skeletons.contains("arg7_p_res: &mut [f64]"));
    assert!(skeletons.contains("arg0_p_x: &[f64]"));
    // bres_calc reads the i32 boundary flag.
    assert!(skeletons.contains("arg5_p_bound: &[i32]"));
    // update increments the rms global.
    assert!(skeletons.contains("arg4_rms: &mut [f64]"));
}
