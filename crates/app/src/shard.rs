//! The app-agnostic half of mesh sharding.
//!
//! Every sharded application numbers its partitioned (primary) set the
//! same way: owned rows first in ascending global order, then halo
//! import mirrors grouped contiguously per peer rank (the exchange
//! relies on contiguity to scatter with one copy), with the executed
//! secondary elements split interior-first so only the boundary blocks
//! gate on halo receives. [`plan_shards`] computes exactly that —
//! extracted verbatim from the Airfoil shard declaration, which now
//! builds on it, as do the node-graph apps ([`crate::heat`],
//! [`crate::jac`]).

use op2_core::locality::{HaloSpec, LocalityGroup};
use op2_core::{Map, Set};
use op2_mesh::{build_halo, neighbors_from_pairs, partition_greedy_bfs, Partition};

/// One rank's slice of a [`ShardPlan`].
pub struct RankShard {
    /// Global primary id → local row (`u32::MAX` = unreached). Owned
    /// rows come first (ascending global order), halo mirrors after,
    /// contiguous per peer rank.
    pub g2l: Vec<u32>,
    /// Local row → global primary id, covering owned and halo rows
    /// (`l2g.len() == n_owned + n_halo`) — the gather/init companion of
    /// `g2l`.
    pub l2g: Vec<u32>,
    /// Owned rows (the local primary set size).
    pub n_owned: usize,
    /// Halo mirror rows appended to the primary dats.
    pub n_halo: usize,
    /// Executed secondary elements (global ids): *interior* elements
    /// (every endpoint owned) first, partition-boundary elements after.
    pub exec: Vec<u32>,
    /// `exec[..n_interior]` reach owned rows only.
    pub n_interior: usize,
}

/// The generic sharding of one partitioned set: per-rank local
/// numberings plus the global [`HaloSpec`] all ranks agree on.
pub struct ShardPlan {
    /// Halo exchange spec in local row numbering (global: filled for
    /// every rank, not just locally hosted ones).
    pub spec: HaloSpec,
    /// One entry per rank.
    pub shards: Vec<RankShard>,
}

/// Plans the shards of a partitioned set with `n_primary` elements whose
/// secondary set connects to it through `pairs` (secondary element `e`
/// reaches primary elements `pairs[2e]` and `pairs[2e+1]` — the shape
/// [`build_halo`] consumes). Fully deterministic in its inputs; the
/// numbering rules are in the module docs.
pub fn plan_shards(
    n_primary: usize,
    pairs: &[u32],
    part: &Partition,
    owned_all: &[Vec<u32>],
) -> ShardPlan {
    let nranks = part.nparts;
    let halo = build_halo(part, pairs, 2);
    let mut spec = HaloSpec::empty(nranks);
    let mut shards = Vec::with_capacity(nranks);

    for (r, owned) in owned_all.iter().enumerate() {
        let n_owned = owned.len();

        // Local numbering: owned first, then halo imports grouped by
        // owner rank (contiguous per peer).
        let mut g2l = vec![u32::MAX; n_primary];
        for (i, &c) in owned.iter().enumerate() {
            g2l[c as usize] = i as u32;
        }
        let mut l2g = owned.clone();
        let mut off = n_owned;
        for s in 0..nranks {
            let imp = &halo.import[r][s];
            spec.import_range[r][s] = off..off + imp.len();
            for (j, &c) in imp.iter().enumerate() {
                g2l[c as usize] = (off + j) as u32;
            }
            l2g.extend_from_slice(imp);
            off += imp.len();
        }
        let n_halo = off - n_owned;

        // Exported rows are owned, so their local ids are final here.
        for s in 0..nranks {
            spec.export_rows[r][s] = halo.export[r][s].iter().map(|&c| g2l[c as usize]).collect();
        }

        // Executed secondary elements: interior (every endpoint owned)
        // first, partition-boundary after, each ascending in global
        // order.
        let is_owned = |c: u32| part.part_of[c as usize] as usize == r;
        let (interior, boundary): (Vec<u32>, Vec<u32>) = halo.exec[r].iter().partition(|&&e| {
            is_owned(pairs[2 * e as usize]) && is_owned(pairs[2 * e as usize + 1])
        });
        let n_interior = interior.len();
        let exec: Vec<u32> = interior.into_iter().chain(boundary).collect();

        shards.push(RankShard {
            g2l,
            l2g,
            n_owned,
            n_halo,
            exec,
            n_interior,
        });
    }
    spec.validate().expect("shard plan broke the halo spec");

    ShardPlan { spec, shards }
}

/// Sets and maps of one locally hosted rank's shard of a *node-graph*
/// application (a primary node set reached by an edge set through a
/// 2-wide map — the heat and jac topology).
pub struct NodeGraphShard {
    /// Global rank this shard belongs to.
    pub rank: usize,
    /// Owned nodes.
    pub nodes: Set,
    /// Executed edges, interior-first.
    pub edges: Set,
    /// edge → 2 nodes (may target halo rows).
    pub pedge: Map,
    /// Owned node rows.
    pub n_owned: usize,
    /// Halo mirror rows appended to node dats.
    pub n_halo: usize,
    /// `edges[..n_interior_edges]` reach owned nodes only.
    pub n_interior_edges: usize,
    /// Local node row → global node id (owned + halo rows).
    pub l2g: Vec<u32>,
}

/// Partitions a node graph over the group's ranks and declares every
/// *locally hosted* rank's sets and maps (dats are the application's
/// job — it knows their initial values and which ones to halo-link).
/// Deterministic: the same graph and rank count always produce the same
/// shards.
pub fn declare_node_graph_shards(
    group: &LocalityGroup,
    nnode: usize,
    edge_nodes: &[u32],
) -> (Vec<NodeGraphShard>, HaloSpec) {
    let nranks = group.nranks();
    assert!(
        nranks >= 1 && nranks <= nnode,
        "rank count must be in 1..=nnode"
    );
    let adj = neighbors_from_pairs(edge_nodes, nnode);
    let part = partition_greedy_bfs(&adj, nranks);
    let owned_all = part.owned_all();
    let plan = plan_shards(nnode, edge_nodes, &part, &owned_all);

    let local = group.local_ranks();
    let mut out = Vec::with_capacity(local.len());
    for (r, shard) in plan.shards.iter().enumerate() {
        if !local.contains(&r) {
            continue;
        }
        let op2 = group.rank(r);
        let nodes = op2.decl_set(shard.n_owned, "nodes");
        let edges = op2.decl_set(shard.exec.len(), "edges");
        let pedge_idx: Vec<u32> = shard
            .exec
            .iter()
            .flat_map(|&e| {
                edge_nodes[2 * e as usize..2 * e as usize + 2]
                    .iter()
                    .map(|&gn| shard.g2l[gn as usize])
            })
            .collect();
        let pedge = op2.decl_map_halo(&edges, &nodes, 2, pedge_idx, "pedge", shard.n_halo);
        out.push(NodeGraphShard {
            rank: r,
            nodes,
            edges,
            pedge,
            n_owned: shard.n_owned,
            n_halo: shard.n_halo,
            n_interior_edges: shard.n_interior,
            l2g: shard.l2g.clone(),
        });
    }
    (out, plan.spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_mesh::unit_square;

    fn plan(nranks: usize) -> (usize, Vec<u32>, Partition, ShardPlan) {
        let mesh = unit_square(6);
        let adj = neighbors_from_pairs(&mesh.edge_nodes, mesh.nnode);
        let part = partition_greedy_bfs(&adj, nranks);
        let owned = part.owned_all();
        let p = plan_shards(mesh.nnode, &mesh.edge_nodes, &part, &owned);
        (mesh.nnode, mesh.edge_nodes, part, p)
    }

    #[test]
    fn owned_rows_partition_the_primary_set() {
        let (nnode, _, _, plan) = plan(3);
        let total: usize = plan.shards.iter().map(|s| s.n_owned).sum();
        assert_eq!(total, nnode);
        for s in &plan.shards {
            assert_eq!(s.l2g.len(), s.n_owned + s.n_halo);
            // Owned prefix of l2g is ascending (global order).
            assert!(s.l2g[..s.n_owned].windows(2).all(|w| w[0] < w[1]));
            // g2l inverts l2g on every reached row.
            for (local, &g) in s.l2g.iter().enumerate() {
                assert_eq!(s.g2l[g as usize], local as u32);
            }
        }
    }

    #[test]
    fn interior_prefix_reaches_no_halo() {
        let (_, pairs, part, plan) = plan(4);
        for (r, s) in plan.shards.iter().enumerate() {
            for (i, &e) in s.exec.iter().enumerate() {
                let owned = |c: u32| part.part_of[c as usize] as usize == r;
                let interior = owned(pairs[2 * e as usize]) && owned(pairs[2 * e as usize + 1]);
                assert_eq!(interior, i < s.n_interior, "edge {e} misplaced");
            }
        }
    }

    #[test]
    fn import_ranges_are_contiguous_per_peer() {
        let (_, _, _, plan) = plan(4);
        for (r, s) in plan.shards.iter().enumerate() {
            let mut expect = s.n_owned;
            for peer in 0..plan.shards.len() {
                let range = &plan.spec.import_range[r][peer];
                assert_eq!(range.start, expect, "rank {r} peer {peer}");
                expect = range.end;
            }
            assert_eq!(expect, s.n_owned + s.n_halo);
        }
    }
}
