//! The app-agnostic time loop.
//!
//! [`run`] drives any [`AppInstance`] the way the original Airfoil
//! driver drove its five loops: per iteration it asks the instance to
//! submit one step, chains the residual print behind the previous line's
//! print node, feeds the residual future to the convergence policy,
//! applies the backpressure window, optionally live-rebalances, and
//! fences exactly once at the end. Nothing in the loop blocks on a
//! reduction: residual values are consumed through [`ReducedFuture`]s —
//! printing via continuations, the history after the final fence, and
//! the data-dependent exit through [`Convergence`], which consults only
//! futures that are already resolved.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

use op2_core::hpx_rt::SharedFuture;
use op2_core::{Convergence, LoopHandle, Op2, Op2Config, ReducedFuture, ResidualMap};

/// What one [`AppInstance::step`] submitted: the iteration's residual as
/// an asynchronous-reduction future and the handles the backpressure
/// window should retain (one per rank — waiting on them bounds the
/// in-flight task graph).
pub struct StepOutput {
    /// The step's residual reduction (raw, unscaled — see
    /// [`AppInstance::residual_map`]).
    pub residual: ReducedFuture<f64>,
    /// Handles gating this iteration for the backpressure window.
    pub gates: Vec<LoopHandle>,
}

/// What one successful rebalance did (moved here from the Airfoil shards
/// so the harness can report it app-agnostically).
#[derive(Debug, Clone)]
pub struct RebalanceReport {
    /// The agreed per-rank busy nanoseconds the decision was taken from.
    pub busy_ns: Vec<u64>,
    /// Quantized per-element cost level of each rank's old shard.
    pub levels: Vec<u64>,
    /// Rows that changed owner rank.
    pub rows_crossing: usize,
    /// Cached loop schedules retired with the old shards.
    pub specs_dropped: usize,
}

/// A declared application ready to iterate: one object per world (plain)
/// or locality group (sharded), owning or borrowing its sets, maps and
/// dats. [`run`] is generic over this trait, so instances may borrow
/// (`PlainAirfoil<'a>`) or own (`Box<dyn AppInstance>`) their problem.
pub trait AppInstance {
    /// Submits one time-loop iteration (`iter` counts from 1) and
    /// returns its residual future and window gates. Must not block.
    fn step(&mut self, iter: usize) -> StepOutput;

    /// Maps the raw reduced residual to the reported one (e.g. the
    /// Airfoil `sqrt(rms / ncell)`). Applied to printed lines, the
    /// convergence check and the collected history alike.
    fn residual_map(&self) -> ResidualMap;

    /// Whether this process prints residual lines (under a distributed
    /// transport only the process hosting rank 0 does).
    fn prints_here(&self) -> bool {
        true
    }

    /// Waits for everything submitted so far (the run's single fence).
    fn fence(&self);

    /// Checks for imbalance and live-repartitions; `None` means nothing
    /// changed. Plain (single-world) instances keep the default.
    fn rebalance(&mut self) -> Option<RebalanceReport> {
        None
    }

    /// The evolving primary state, flattened for cross-backend
    /// comparison (sharded instances gather owned rows into global
    /// numbering). Call after [`run`] — it does not fence.
    fn state(&self) -> Vec<f64>;
}

/// An application: the factory for [`AppInstance`]s plus its `.op2`
/// source. One value per workload (airfoil, heat, jac), reusable across
/// worlds — the farm and the app-matrix tests iterate `&[&dyn App]`.
pub trait App {
    /// Short name (also the generated programme name).
    fn name(&self) -> &'static str;

    /// The `.op2` spec this app's wrappers were generated from.
    fn spec(&self) -> &'static str;

    /// Declares the app on an existing world (the farm-tenant shape:
    /// every job receives a fresh world and carries its declarations).
    /// The instance borrows the world, so it lives no longer than `op2`.
    fn declare<'a>(&self, op2: &'a Op2) -> Box<dyn AppInstance + 'a>;

    /// Declares the app sharded over `nranks` simulated localities.
    fn declare_sharded(&self, config: Op2Config, nranks: usize) -> Box<dyn AppInstance>;

    /// The run configuration the app's spec asks for (apps with a
    /// `converge` declaration exit on it).
    fn default_run(&self) -> RunConfig;
}

/// When the time loop ends.
pub enum ExitPolicy {
    /// Exactly this many iterations.
    Iterations(usize),
    /// Data-dependent: stop when the policy's scaled residual drops
    /// below tolerance (checked through resolved futures only — see
    /// [`Convergence`]), with the policy's cap as the iteration bound.
    Converge(Convergence),
}

/// Harness parameters (the app-agnostic subset of the old Airfoil
/// `SolverConfig`).
pub struct RunConfig {
    /// Exit policy (iteration count or convergence).
    pub exit: ExitPolicy,
    /// Backpressure window: in-flight iterations before the submitter
    /// waits on the oldest (0 = fully synchronous).
    pub window: usize,
    /// Print the scaled residual every so many iterations (0 = never).
    pub print_every: usize,
    /// Call [`AppInstance::rebalance`] every so many iterations (0 =
    /// never; skipped after the final iteration).
    pub rebalance_every: usize,
}

impl RunConfig {
    /// A fixed-length run with the given window, nothing printed.
    pub fn iterations(niter: usize, window: usize) -> RunConfig {
        RunConfig {
            exit: ExitPolicy::Iterations(niter),
            window,
            print_every: 0,
            rebalance_every: 0,
        }
    }

    /// A convergence-driven run with the given window, nothing printed.
    pub fn converge(conv: Convergence, window: usize) -> RunConfig {
        RunConfig {
            exit: ExitPolicy::Converge(conv),
            window,
            print_every: 0,
            rebalance_every: 0,
        }
    }
}

/// Result of a [`run`].
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The scaled residual of every completed iteration.
    pub residuals: Vec<f64>,
    /// Wall time of the whole time loop (submission to fence).
    pub elapsed: Duration,
    /// Iterations actually run (`< max` iff the exit converged early).
    pub iterations: usize,
    /// `(iteration, scaled residual)` of the observation that crossed
    /// the tolerance, if the run exited on convergence.
    pub converged: Option<(usize, f64)>,
}

impl RunOutcome {
    /// Final scaled residual.
    pub fn final_residual(&self) -> f64 {
        *self.residuals.last().expect("at least one iteration")
    }
}

/// Runs the time loop over `inst` (see module docs for the loop shape).
///
/// With `ExitPolicy::Iterations` the control flow is statement-for-
/// statement the pre-harness Airfoil driver: same submission order, same
/// print chaining, same window drain, same single fence — which is what
/// keeps a 1-rank Seq airfoil run bitwise identical to the old code.
pub fn run<I: AppInstance + ?Sized>(inst: &mut I, cfg: RunConfig) -> RunOutcome {
    let scale = inst.residual_map();
    let prints_here = inst.prints_here();
    let (max_iters, mut conv) = match cfg.exit {
        ExitPolicy::Iterations(n) => (n, None),
        ExitPolicy::Converge(mut c) => {
            // The policy compares what the app reports: inject the app's
            // scaling unless the caller already set one.
            c.ensure_scale(Arc::clone(&scale));
            (c.max_iters(), Some(c))
        }
    };
    let t0 = Instant::now();

    let mut futs: Vec<ReducedFuture<f64>> = Vec::with_capacity(max_iters);
    // Backpressure window: the waited prefix is drained, so handle
    // memory is O(window * nranks), not O(niter * nranks).
    let mut window_gates: VecDeque<Vec<LoopHandle>> = VecDeque::with_capacity(cfg.window + 1);
    // Print nodes chain linearly so residual lines stay ordered without
    // a blocking read in the loop.
    let mut last_print: Option<SharedFuture<()>> = None;
    let mut iterations = 0;

    for iter in 1..=max_iters {
        let StepOutput { residual, gates } = inst.step(iter);

        if prints_here && cfg.print_every > 0 && iter % cfg.print_every == 0 {
            let after: Vec<SharedFuture<()>> = last_print.iter().cloned().collect();
            let scale = Arc::clone(&scale);
            last_print = Some(residual.then_after(&after, move |v| {
                println!(" {iter:6} {:10.5e}", scale(v[0]));
            }));
        }
        if let Some(c) = conv.as_mut() {
            c.observe(iter, &residual);
        }
        futs.push(residual);
        window_gates.push_back(gates);

        // Backpressure: bound in-flight iterations across all ranks,
        // draining the waited handles out of the window.
        if cfg.window > 0 && window_gates.len() > cfg.window {
            for h in window_gates.pop_front().expect("window is non-empty") {
                h.wait();
            }
        }
        iterations = iter;

        // Data-dependent exit: consults only already-resolved residual
        // futures, so the check never blocks the loop.
        if let Some(c) = conv.as_mut() {
            if c.should_stop(iter) {
                break;
            }
        }

        // Feedback-driven live repartitioning: between iterations, never
        // after the last one.
        if cfg.rebalance_every > 0 && iter % cfg.rebalance_every == 0 && iter < max_iters {
            if let Some(rep) = inst.rebalance() {
                if prints_here {
                    eprintln!(
                        " rebalance @ iter {iter}: levels {:?}, {} rows changed rank, \
                         {} cached schedules retired",
                        rep.levels, rep.rows_crossing, rep.specs_dropped
                    );
                }
            }
        }
    }

    // One fence at the end — the only global synchronization of the run
    // (it also covers the tracked reduce and print nodes).
    inst.fence();
    let elapsed = t0.elapsed();

    let residuals: Vec<f64> = futs.iter().map(|r| scale(r.get_scalar())).collect();
    let converged = conv.as_ref().and_then(Convergence::converged);

    RunOutcome {
        residuals,
        elapsed,
        iterations,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use op2_core::args::{gbl_inc, rw};
    use op2_core::{Dat, Global, Set};

    /// A scalar toy app: one dat halves itself each step, the residual
    /// is the sum of its values — so the residual sequence is exactly
    /// `n/2, n/4, ...` and convergence behavior is analytic.
    struct Halver {
        op2: Op2,
        cells: Set,
        x: Dat<f64>,
        /// Fence inside every step, so each residual future is already
        /// resolved when the harness observes it — makes the exact exit
        /// iteration deterministic for the convergence tests (real apps
        /// never do this; their exit lands within the resolution lag).
        eager: bool,
    }

    impl Halver {
        fn new(n: usize) -> Halver {
            let op2 = Op2::new(Op2Config::seq());
            let cells = op2.decl_set(n, "cells");
            let x = op2.decl_dat(&cells, 1, "x", vec![1.0f64; n]);
            Halver {
                op2,
                cells,
                x,
                eager: false,
            }
        }

        fn eager(n: usize) -> Halver {
            Halver {
                eager: true,
                ..Halver::new(n)
            }
        }
    }

    impl AppInstance for Halver {
        fn step(&mut self, _iter: usize) -> StepOutput {
            let g = Global::<f64>::sum(1, "total");
            let h = self
                .op2
                .loop_("halve", &self.cells)
                .arg(rw(&self.x))
                .arg(gbl_inc(&g))
                .run(|x: &mut [f64], t: &mut [f64]| {
                    x[0] *= 0.5;
                    t[0] += x[0];
                });
            let residual = g.reduce_async(&self.op2);
            if self.eager {
                self.op2.fence();
            }
            StepOutput {
                residual,
                gates: vec![h],
            }
        }

        fn residual_map(&self) -> ResidualMap {
            let n = self.cells.size() as f64;
            Arc::new(move |v| v / n)
        }

        fn fence(&self) {
            self.op2.fence();
        }

        fn state(&self) -> Vec<f64> {
            self.x.snapshot()
        }
    }

    #[test]
    fn fixed_iterations_run_to_the_count() {
        let mut app = Halver::new(8);
        let out = run(&mut app, RunConfig::iterations(5, 2));
        assert_eq!(out.iterations, 5);
        assert_eq!(out.residuals.len(), 5);
        assert!(out.converged.is_none());
        // Scaled residual of iteration k is 2^-k.
        for (k, r) in out.residuals.iter().enumerate() {
            assert_eq!(*r, 0.5f64.powi(k as i32 + 1));
        }
        assert!(app.state().iter().all(|&v| v == 0.5f64.powi(5)));
    }

    #[test]
    fn convergence_exit_stops_early() {
        let mut app = Halver::eager(4);
        // 2^-k < 1e-3 first at k = 10; the eager toy resolves each
        // future before it is observed, so the exit lands exactly there.
        let out = run(
            &mut app,
            RunConfig::converge(Convergence::new(1e-3, 1, 100), 2),
        );
        assert_eq!(out.iterations, 10);
        let (at, value) = out.converged.expect("must converge");
        assert_eq!(at, 10);
        assert!(value < 1e-3);
        assert_eq!(out.residuals.len(), 10);
    }

    #[test]
    fn convergence_cap_bounds_a_non_converging_run() {
        let mut app = Halver::new(4);
        let out = run(
            &mut app,
            RunConfig::converge(Convergence::new(1e-300, 1, 7), 0),
        );
        assert_eq!(out.iterations, 7);
        assert!(out.converged.is_none());
    }
}
