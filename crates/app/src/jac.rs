//! Jacobi iteration on the node graph of the triangulated unit square,
//! driven by the translator-generated wrappers (`specs/jac.op2` →
//! `tests/golden/jac_hpx.rs`, `include!`d below).
//!
//! The system is `A x = b` with `A = D - Adj` where `Adj` is the graph
//! adjacency and `D = diag(degree + 4)` — strictly diagonally dominant,
//! so Jacobi converges linearly: `x_new = (b + Adj x) / diag`. The
//! squared-update residual accumulates into a Sum global each sweep and
//! the generated [`Convergence`] policy exits the loop when
//! `sqrt(resid / nnode)` drops below the spec's tolerance — the workload
//! whose iteration count is *data-dependent*, exercising the
//! asynchronous-reduction convergence path end to end (the loop contains
//! zero blocking residual reads; `tests/convergence_exit.rs` asserts the
//! `op2.reduce.blocking_reads` counter stays flat).
//!
//! Sharded exactly like [`crate::heat`]: `x` is halo-linked, `acc`
//! carries unlinked (dead) halo rows, `b`/`diag` are owned-only.

use std::sync::Arc;

use op2_core::locality::LocalityGroup;
use op2_core::transport::InProcessTransport;
use op2_core::{Dat, Global, Op2, Op2Config, ResidualMap, Set};
use op2_mesh::{unit_square, TriMesh};

use crate::harness::{App, AppInstance, RunConfig, StepOutput};
use crate::shard::{declare_node_graph_shards, NodeGraphShard};

/// The translator-generated loop wrappers and convergence constructor.
mod generated {
    include!("../../translator/tests/golden/jac_hpx.rs");
}

pub use generated::{op_par_loop_jac_spmv, op_par_loop_jac_update, resid_convergence};

/// Right-hand side: smooth, deterministic, nonzero — so the solution is
/// nontrivial and identical across backends and shardings.
fn rhs(mesh: &TriMesh) -> Vec<f64> {
    (0..mesh.nnode)
        .map(|v| {
            let (x, y) = (mesh.x[2 * v], mesh.x[2 * v + 1]);
            1.0 + x + 2.0 * y
        })
        .collect()
}

/// Diagonal: node degree + 4 (strict diagonal dominance; the adjacency
/// row sum is exactly the degree).
fn diagonal(mesh: &TriMesh) -> Vec<f64> {
    let mut degree = vec![0u32; mesh.nnode];
    for &n in &mesh.edge_nodes {
        degree[n as usize] += 1;
    }
    degree.into_iter().map(|d| d as f64 + 4.0).collect()
}

/// The Jacobi kernels (the generated wrappers carry the access
/// descriptors; these carry the arithmetic).
mod kernels {
    /// Off-diagonal sweep: each edge contributes both endpoints' `x` to
    /// the other endpoint's accumulator.
    pub fn jac_spmv(x0: &[f64], x1: &[f64], a0: &mut [f64], a1: &mut [f64]) {
        a0[0] += x1[0];
        a1[0] += x0[0];
    }

    /// Point update: `x_new = (b + acc) / diag`, accumulate the squared
    /// update into the residual, clear the accumulator.
    pub fn jac_update(b: &[f64], diag: &[f64], x: &mut [f64], acc: &mut [f64], r: &mut [f64]) {
        let xn = (b[0] + acc[0]) / diag[0];
        let d = xn - x[0];
        r[0] += d * d;
        x[0] = xn;
        acc[0] = 0.0;
    }
}

/// The Jacobi [`App`]: `A x = b` on the node graph of a triangulated
/// `n x n` unit square.
pub struct JacApp {
    mesh: TriMesh,
}

impl JacApp {
    /// An `n x n` triangulated unit square.
    pub fn new(n: usize) -> JacApp {
        JacApp {
            mesh: unit_square(n),
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &TriMesh {
        &self.mesh
    }
}

impl App for JacApp {
    fn name(&self) -> &'static str {
        "jac"
    }

    fn spec(&self) -> &'static str {
        include_str!("../../translator/specs/jac.op2")
    }

    fn declare<'a>(&self, op2: &'a Op2) -> Box<dyn AppInstance + 'a> {
        let mesh = &self.mesh;
        let nodes = op2.decl_set(mesh.nnode, "nodes");
        let edges = op2.decl_set(mesh.nedge, "edges");
        let pedge = op2.decl_map(&edges, &nodes, 2, mesh.edge_nodes.clone(), "pedge");
        let b = op2.decl_dat(&nodes, 1, "b", rhs(mesh));
        let diag = op2.decl_dat(&nodes, 1, "diag", diagonal(mesh));
        let x = op2.decl_dat(&nodes, 1, "x", vec![0.0f64; mesh.nnode]);
        let acc = op2.decl_dat(&nodes, 1, "acc", vec![0.0f64; mesh.nnode]);
        Box::new(PlainJac {
            op2,
            nodes,
            edges,
            pedge,
            b,
            diag,
            x,
            acc,
            nnode: mesh.nnode,
        })
    }

    fn declare_sharded(&self, config: Op2Config, nranks: usize) -> Box<dyn AppInstance> {
        let mesh = &self.mesh;
        let group =
            LocalityGroup::with_transport(config, Arc::new(InProcessTransport::new(nranks)));
        let (shards, spec) = declare_node_graph_shards(&group, mesh.nnode, &mesh.edge_nodes);

        let (b_all, diag_all) = (rhs(mesh), diagonal(mesh));
        let parts: Vec<JacPart> = shards
            .into_iter()
            .map(|s| {
                let op2 = group.rank(s.rank);
                let rows = s.n_owned + s.n_halo;
                let b0: Vec<f64> = s.l2g[..s.n_owned]
                    .iter()
                    .map(|&g| b_all[g as usize])
                    .collect();
                let d0: Vec<f64> = s.l2g[..s.n_owned]
                    .iter()
                    .map(|&g| diag_all[g as usize])
                    .collect();
                let b = op2.decl_dat(&s.nodes, 1, "b", b0);
                let diag = op2.decl_dat(&s.nodes, 1, "diag", d0);
                let x = op2.decl_dat_halo(&s.nodes, 1, "x", vec![0.0; rows], s.n_halo);
                let acc = op2.decl_dat_halo(&s.nodes, 1, "acc", vec![0.0; rows], s.n_halo);
                JacPart {
                    shard: s,
                    b,
                    diag,
                    x,
                    acc,
                }
            })
            .collect();

        // Only x travels: acc halo increments are dead values (boundary
        // edges run redundantly on both ranks, as in heat and airfoil).
        let xs: Vec<Dat<f64>> = parts.iter().map(|p| p.x.clone()).collect();
        group.link_halo(&xs, &spec);

        Box::new(ShardedJac {
            group,
            parts,
            nnode_global: mesh.nnode,
        })
    }

    fn default_run(&self) -> RunConfig {
        RunConfig::converge(generated::resid_convergence(), 16)
    }
}

struct PlainJac<'a> {
    op2: &'a Op2,
    nodes: Set,
    edges: Set,
    pedge: op2_core::Map,
    b: Dat<f64>,
    diag: Dat<f64>,
    x: Dat<f64>,
    acc: Dat<f64>,
    nnode: usize,
}

impl AppInstance for PlainJac<'_> {
    fn step(&mut self, _iter: usize) -> StepOutput {
        generated::op_par_loop_jac_spmv(
            self.op2,
            &self.edges,
            &self.x,
            &self.acc,
            &self.pedge,
            kernels::jac_spmv,
        );
        let resid = Global::<f64>::sum(1, "resid");
        let h = generated::op_par_loop_jac_update(
            self.op2,
            &self.nodes,
            &self.b,
            &self.diag,
            &self.x,
            &self.acc,
            &resid,
            kernels::jac_update,
        );
        StepOutput {
            residual: resid.reduce_async(self.op2),
            gates: vec![h],
        }
    }

    fn residual_map(&self) -> ResidualMap {
        let n = self.nnode as f64;
        Arc::new(move |v| (v / n).sqrt())
    }

    fn fence(&self) {
        self.op2.fence();
    }

    fn state(&self) -> Vec<f64> {
        self.x.snapshot()
    }
}

struct JacPart {
    shard: NodeGraphShard,
    b: Dat<f64>,
    diag: Dat<f64>,
    x: Dat<f64>,
    acc: Dat<f64>,
}

struct ShardedJac {
    group: LocalityGroup,
    parts: Vec<JacPart>,
    nnode_global: usize,
}

impl AppInstance for ShardedJac {
    fn step(&mut self, _iter: usize) -> StepOutput {
        for p in &self.parts {
            let op2 = self.group.rank(p.shard.rank);
            generated::op_par_loop_jac_spmv(
                op2,
                &p.shard.edges,
                &p.x,
                &p.acc,
                &p.shard.pedge,
                kernels::jac_spmv,
            );
        }
        let mut resids = Vec::with_capacity(self.parts.len());
        let mut gates = Vec::with_capacity(self.parts.len());
        for p in &self.parts {
            let op2 = self.group.rank(p.shard.rank);
            let resid = Global::<f64>::sum(1, "resid");
            let h = generated::op_par_loop_jac_update(
                op2,
                &p.shard.nodes,
                &p.b,
                &p.diag,
                &p.x,
                &p.acc,
                &resid,
                kernels::jac_update,
            );
            resids.push(resid);
            gates.push(h);
        }
        StepOutput {
            residual: self.group.allreduce(&resids),
            gates,
        }
    }

    fn residual_map(&self) -> ResidualMap {
        let n = self.nnode_global as f64;
        Arc::new(move |v| (v / n).sqrt())
    }

    fn prints_here(&self) -> bool {
        self.group.local_ranks().contains(&0)
    }

    fn fence(&self) {
        self.group.fence();
    }

    fn state(&self) -> Vec<f64> {
        assert!(
            self.group.transport().all_local(),
            "state() needs every rank's rows in this process"
        );
        let mut x = vec![0.0f64; self.nnode_global];
        for p in &self.parts {
            let local = p.x.read();
            for (i, &g) in p.shard.l2g[..p.shard.n_owned].iter().enumerate() {
                x[g as usize] = local.row(i)[0];
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;

    #[test]
    fn jacobi_converges_and_solves_the_system() {
        let app = JacApp::new(12);
        let op2 = Op2::new(Op2Config::seq());
        let mut inst = app.declare(&op2);
        let out = run(inst.as_mut(), app.default_run());
        let (at, v) = out
            .converged
            .expect("diagonally dominant Jacobi must converge");
        assert!(v < 1e-12);
        assert!(at < generated::resid_convergence().max_iters());

        // Substitute back: (D - Adj) x must reproduce b.
        let x = inst.state();
        let mesh = app.mesh();
        let (b, diag) = (rhs(mesh), diagonal(mesh));
        let mut adj = vec![0.0f64; mesh.nnode];
        for e in 0..mesh.nedge {
            let (u, w) = (
                mesh.edge_nodes[2 * e] as usize,
                mesh.edge_nodes[2 * e + 1] as usize,
            );
            adj[u] += x[w];
            adj[w] += x[u];
        }
        for i in 0..mesh.nnode {
            let ax = diag[i] * x[i] - adj[i];
            assert!((ax - b[i]).abs() < 1e-8, "row {i}: Ax = {ax}, b = {}", b[i]);
        }
    }

    #[test]
    fn sharded_jac_agrees_with_plain() {
        let app = JacApp::new(10);
        let op2 = Op2::new(Op2Config::seq());
        let mut plain = app.declare(&op2);
        run(plain.as_mut(), RunConfig::iterations(40, 8));
        let reference = plain.state();

        let mut sharded = app.declare_sharded(Op2Config::seq(), 2);
        run(sharded.as_mut(), RunConfig::iterations(40, 8));
        let got = sharded.state();
        assert_eq!(reference.len(), got.len());
        for (a, b) in reference.iter().zip(&got) {
            assert!((a - b).abs() < 1e-10, "{a} vs {b}");
        }
    }
}
