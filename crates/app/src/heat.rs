//! Explicit heat diffusion on the triangulated unit square, driven by
//! the translator-generated wrappers (`specs/heat.op2` →
//! `tests/golden/heat_hpx.rs`, `include!`d below).
//!
//! Physics: each edge moves heat between its endpoints proportionally to
//! their temperature difference; an explicit Euler step applies the
//! accumulated flux (Dirichlet boundary nodes held fixed) and records
//! the largest temperature change into a `ReduceOp::Max` global — whose
//! generated [`Convergence`] policy ends the run once the field stops
//! moving. The reduction operator is chosen at `Global` creation (the
//! DSL declares only shape), so the same `arg gbl : inc` lowering serves
//! Sum and Max apps alike.
//!
//! Sharded: nodes are the partitioned set ([`declare_node_graph_shards`]
//! numbers them owned-first), `temp` is halo-linked (edge kernels read
//! both endpoints), while `flux` carries halo rows that are *not*
//! linked: partition-boundary edges run redundantly on both ranks, so
//! flux increments into mirror rows are dead values no loop reads —
//! exactly the Airfoil `res` pattern.

use std::sync::Arc;

use op2_core::locality::LocalityGroup;
use op2_core::transport::InProcessTransport;
use op2_core::{Dat, Global, Op2, Op2Config, ReduceOp, ResidualMap, Set};
use op2_mesh::{unit_square, TriMesh};

use crate::harness::{App, AppInstance, RunConfig, StepOutput};
use crate::shard::{declare_node_graph_shards, NodeGraphShard};

/// The translator-generated loop wrappers and convergence constructor
/// (kept as a checked-in golden file; see the spec header for the
/// regeneration command).
mod generated {
    include!("../../translator/tests/golden/heat_hpx.rs");
}

pub use generated::{delta_convergence, op_par_loop_apply_flux, op_par_loop_edge_flux};

/// Explicit Euler step size (interior nodes of the triangulation have
/// degree at most 8, so this keeps the scheme stable).
pub const ALPHA: f64 = 0.1;

/// Initial condition: a hot disc in the centre of the unit square, cold
/// elsewhere (the boundary ring stays fixed at zero).
fn initial_temps(mesh: &TriMesh) -> Vec<f64> {
    (0..mesh.nnode)
        .map(|v| {
            let (x, y) = (mesh.x[2 * v], mesh.x[2 * v + 1]);
            if ((x - 0.5).powi(2) + (y - 0.5).powi(2)).sqrt() < 0.25 {
                1.0
            } else {
                0.0
            }
        })
        .collect()
}

/// The heat-diffusion kernels, shared by the plain and sharded
/// instances (the generated wrappers carry the access descriptors; these
/// carry the arithmetic).
mod kernels {
    /// Edge loop: scatter the endpoint temperature difference into both
    /// flux accumulators.
    pub fn edge_flux(t0: &[f64], t1: &[f64], f0: &mut [f64], f1: &mut [f64]) {
        let d = t1[0] - t0[0];
        f0[0] += d;
        f1[0] -= d;
    }

    /// Node loop: apply the flux (boundary held fixed), track the
    /// largest change, reset the accumulator.
    pub fn apply_flux(alpha: f64, t: &mut [f64], f: &mut [f64], b: &[i32], d: &mut [f64]) {
        if b[0] == 0 {
            let change = alpha * f[0];
            t[0] += change;
            if change.abs() > d[0] {
                d[0] = change.abs();
            }
        }
        f[0] = 0.0;
    }
}

/// The heat-diffusion [`App`]: a triangulated `n x n` unit square.
pub struct HeatApp {
    mesh: TriMesh,
}

impl HeatApp {
    /// An `n x n` triangulated unit square (the example's size is 64).
    pub fn new(n: usize) -> HeatApp {
        HeatApp {
            mesh: unit_square(n),
        }
    }

    /// The underlying mesh.
    pub fn mesh(&self) -> &TriMesh {
        &self.mesh
    }
}

impl App for HeatApp {
    fn name(&self) -> &'static str {
        "heat"
    }

    fn spec(&self) -> &'static str {
        include_str!("../../translator/specs/heat.op2")
    }

    fn declare<'a>(&self, op2: &'a Op2) -> Box<dyn AppInstance + 'a> {
        let mesh = &self.mesh;
        let nodes = op2.decl_set(mesh.nnode, "nodes");
        let edges = op2.decl_set(mesh.nedge, "edges");
        let pedge = op2.decl_map(&edges, &nodes, 2, mesh.edge_nodes.clone(), "pedge");
        let temp = op2.decl_dat(&nodes, 1, "temp", initial_temps(mesh));
        let flux = op2.decl_dat(&nodes, 1, "flux", vec![0.0f64; mesh.nnode]);
        let boundary = op2.decl_dat(&nodes, 1, "boundary", mesh.node_boundary.clone());
        Box::new(PlainHeat {
            op2,
            nodes,
            edges,
            pedge,
            temp,
            flux,
            boundary,
        })
    }

    fn declare_sharded(&self, config: Op2Config, nranks: usize) -> Box<dyn AppInstance> {
        let mesh = &self.mesh;
        let group =
            LocalityGroup::with_transport(config, Arc::new(InProcessTransport::new(nranks)));
        let (shards, spec) = declare_node_graph_shards(&group, mesh.nnode, &mesh.edge_nodes);

        let temps0 = initial_temps(mesh);
        let parts: Vec<HeatPart> = shards
            .into_iter()
            .map(|s| {
                let op2 = group.rank(s.rank);
                let rows = s.n_owned + s.n_halo;
                let t0: Vec<f64> = s.l2g.iter().map(|&g| temps0[g as usize]).collect();
                let b0: Vec<i32> = s.l2g[..s.n_owned]
                    .iter()
                    .map(|&g| mesh.node_boundary[g as usize])
                    .collect();
                let temp = op2.decl_dat_halo(&s.nodes, 1, "temp", t0, s.n_halo);
                let flux = op2.decl_dat_halo(&s.nodes, 1, "flux", vec![0.0; rows], s.n_halo);
                let boundary = op2.decl_dat(&s.nodes, 1, "boundary", b0);
                HeatPart {
                    shard: s,
                    temp,
                    flux,
                    boundary,
                }
            })
            .collect();

        // Implicit communication: only temp is exchanged (flux halo
        // increments are dead values — see module docs).
        let temps: Vec<Dat<f64>> = parts.iter().map(|p| p.temp.clone()).collect();
        group.link_halo(&temps, &spec);

        Box::new(ShardedHeat {
            group,
            parts,
            nnode_global: mesh.nnode,
        })
    }

    fn default_run(&self) -> RunConfig {
        RunConfig::converge(generated::delta_convergence(), 16)
    }
}

struct PlainHeat<'a> {
    op2: &'a Op2,
    nodes: Set,
    edges: Set,
    pedge: op2_core::Map,
    temp: Dat<f64>,
    flux: Dat<f64>,
    boundary: Dat<i32>,
}

impl AppInstance for PlainHeat<'_> {
    fn step(&mut self, _iter: usize) -> StepOutput {
        generated::op_par_loop_edge_flux(
            self.op2,
            &self.edges,
            &self.temp,
            &self.flux,
            &self.pedge,
            kernels::edge_flux,
        );
        let delta = Global::<f64>::new(1, ReduceOp::Max, "delta");
        let h = generated::op_par_loop_apply_flux(
            self.op2,
            &self.nodes,
            &self.temp,
            &self.flux,
            &self.boundary,
            &delta,
            |t: &mut [f64], f: &mut [f64], b: &[i32], d: &mut [f64]| {
                kernels::apply_flux(ALPHA, t, f, b, d)
            },
        );
        StepOutput {
            residual: delta.reduce_async(self.op2),
            gates: vec![h],
        }
    }

    fn residual_map(&self) -> ResidualMap {
        // The max temperature change is already in reported units.
        Arc::new(|v| v)
    }

    fn fence(&self) {
        self.op2.fence();
    }

    fn state(&self) -> Vec<f64> {
        self.temp.snapshot()
    }
}

struct HeatPart {
    shard: NodeGraphShard,
    temp: Dat<f64>,
    flux: Dat<f64>,
    boundary: Dat<i32>,
}

struct ShardedHeat {
    group: LocalityGroup,
    parts: Vec<HeatPart>,
    nnode_global: usize,
}

impl AppInstance for ShardedHeat {
    fn step(&mut self, _iter: usize) -> StepOutput {
        for p in &self.parts {
            let op2 = self.group.rank(p.shard.rank);
            generated::op_par_loop_edge_flux(
                op2,
                &p.shard.edges,
                &p.temp,
                &p.flux,
                &p.shard.pedge,
                kernels::edge_flux,
            );
        }
        let mut deltas = Vec::with_capacity(self.parts.len());
        let mut gates = Vec::with_capacity(self.parts.len());
        for p in &self.parts {
            let op2 = self.group.rank(p.shard.rank);
            let delta = Global::<f64>::new(1, ReduceOp::Max, "delta");
            let h = generated::op_par_loop_apply_flux(
                op2,
                &p.shard.nodes,
                &p.temp,
                &p.flux,
                &p.boundary,
                &delta,
                |t: &mut [f64], f: &mut [f64], b: &[i32], d: &mut [f64]| {
                    kernels::apply_flux(ALPHA, t, f, b, d)
                },
            );
            deltas.push(delta);
            gates.push(h);
        }
        // Cross-rank max as a reduction-tree future: Max combines the
        // same way Sum does, nothing blocks.
        StepOutput {
            residual: self.group.allreduce(&deltas),
            gates,
        }
    }

    fn residual_map(&self) -> ResidualMap {
        Arc::new(|v| v)
    }

    fn prints_here(&self) -> bool {
        self.group.local_ranks().contains(&0)
    }

    fn fence(&self) {
        self.group.fence();
    }

    fn state(&self) -> Vec<f64> {
        assert!(
            self.group.transport().all_local(),
            "state() needs every rank's rows in this process"
        );
        let mut t = vec![0.0f64; self.nnode_global];
        for p in &self.parts {
            let local = p.temp.read();
            for (i, &g) in p.shard.l2g[..p.shard.n_owned].iter().enumerate() {
                t[g as usize] = local.row(i)[0];
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::run;

    #[test]
    fn plain_heat_converges_on_the_async_reduction_path() {
        let app = HeatApp::new(16);
        let op2 = Op2::new(Op2Config::seq());
        let mut inst = app.declare(&op2);
        let out = run(inst.as_mut(), app.default_run());
        let (at, v) = out.converged.expect("the field must settle");
        assert!(at < generated::delta_convergence().max_iters());
        assert!(v < 1e-6);
        // Diffusion with a fixed cold boundary: bounded by the initial
        // extremes, and finite everywhere.
        let t = inst.state();
        assert!(t
            .iter()
            .all(|&x| x.is_finite() && (-1e-9..=1.0 + 1e-9).contains(&x)));
    }

    #[test]
    fn sharded_heat_matches_plain_within_roundoff() {
        let app = HeatApp::new(12);
        let op2 = Op2::new(Op2Config::seq());
        let mut plain = app.declare(&op2);
        run(plain.as_mut(), RunConfig::iterations(50, 8));
        let reference = plain.state();

        // Per-rank edge order permutes the flux additions, so agreement
        // is to roundoff, not bitwise.
        let mut sharded = app.declare_sharded(Op2Config::seq(), 3);
        run(sharded.as_mut(), RunConfig::iterations(50, 8));
        let got = sharded.state();
        assert_eq!(reference.len(), got.len());
        for (a, b) in reference.iter().zip(&got) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
