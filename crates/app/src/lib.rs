//! # op2-app — the application layer
//!
//! Everything an unstructured-mesh application shares, factored out of
//! the Airfoil solver so new workloads are declaration + kernels only:
//!
//! * [`AppInstance`] / [`App`] — the two-level application contract: an
//!   *instance* submits one time-loop iteration ([`AppInstance::step`])
//!   and hands back the iteration's residual future and gate handles; an
//!   *app* is the factory that declares instances on a fresh world
//!   (plain or sharded) and carries the `.op2` spec it was generated
//!   from;
//! * [`run`] — the generic time loop: backpressure window, chained
//!   residual printing, the convergence-driven exit on the asynchronous
//!   reduction path, the rebalance hook, one final fence. Loop-for-loop
//!   identical to the original Airfoil driver — a 1-rank Seq airfoil run
//!   through this harness is bitwise the pre-refactor run;
//! * [`shard::plan_shards`] — the app-agnostic half of mesh sharding
//!   (owned-first local numbering, per-peer import ranges, export rows,
//!   interior-first execute-halo split), reused by the Airfoil shards and
//!   the node-graph apps here;
//! * [`heat`] / [`jac`] — two translator-generated applications (specs
//!   in `crates/translator/specs/`): explicit heat diffusion with a
//!   max-change exit, and Jacobi iteration whose loop count is
//!   data-dependent through the `converge` construct.

#![warn(missing_docs)]

pub mod harness;
pub mod heat;
pub mod jac;
pub mod shard;

pub use harness::{
    run, App, AppInstance, ExitPolicy, RebalanceReport, RunConfig, RunOutcome, StepOutput,
};
pub use heat::HeatApp;
pub use jac::JacApp;
pub use shard::{plan_shards, RankShard, ShardPlan};
