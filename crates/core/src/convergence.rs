//! Data-dependent loop exit lowered onto the asynchronous-reduction path.
//!
//! A convergence-driven time loop ("iterate until the residual drops
//! below `tol`") naively reads the residual every iteration — a blocking
//! [`crate::Global::get`] that drains the whole pipeline at every check.
//! [`Convergence`] is the non-blocking alternative the `op2c` translator
//! lowers its `converge` construct onto: each iteration's residual is an
//! in-flight [`ReducedFuture`] (from [`crate::Global::reduce_async`] or
//! `LocalityGroup::allreduce`); the policy *observes* the future and the
//! loop *polls* [`Convergence::should_stop`], which drains only the
//! futures that are already resolved. The decision therefore lags the
//! pipeline by however many iterations are still in flight (bounded by
//! the solver's backpressure window) — the loop may overshoot the
//! crossing iteration by up to that window, but it never blocks on a
//! residual read. `op2.reduce.blocking_reads` stays at zero for the whole
//! loop; the translator-generated constructor plus this invariant is what
//! the `jac` app's tests assert.

use std::collections::VecDeque;
use std::sync::Arc;

use crate::gbl::ReducedFuture;

/// Maps a raw reduced residual to the scaled value compared against the
/// tolerance (and printed) — e.g. Airfoil's `|v| (v / ncell).sqrt()`.
pub type ResidualMap = Arc<dyn Fn(f64) -> f64 + Send + Sync>;

/// A non-blocking convergence policy over asynchronous residual
/// reductions. Construct with [`Convergence::new`] (what generated
/// `*_convergence()` functions return), feed each iteration's
/// [`ReducedFuture`] to [`Convergence::observe`], and poll
/// [`Convergence::should_stop`] — which never blocks: it inspects only
/// futures whose reductions already completed.
pub struct Convergence {
    tol: f64,
    every: usize,
    max: usize,
    scale: Option<ResidualMap>,
    /// Observed-but-unresolved residual futures, oldest first.
    queue: VecDeque<(usize, ReducedFuture<f64>)>,
    /// Most recent resolved `(iter, scaled residual)`.
    latest: Option<(usize, f64)>,
    /// First resolved `(iter, scaled residual)` below `tol`.
    converged: Option<(usize, f64)>,
}

impl Convergence {
    /// A policy that stops once the scaled residual drops below `tol`,
    /// checking every `every` iteration(s), with a hard cap of `max`
    /// iterations.
    pub fn new(tol: f64, every: usize, max: usize) -> Self {
        assert!(tol > 0.0, "convergence tolerance must be positive");
        assert!(every >= 1, "check interval must be at least 1");
        assert!(max >= 1, "iteration cap must be at least 1");
        Convergence {
            tol,
            every,
            max,
            scale: None,
            queue: VecDeque::new(),
            latest: None,
            converged: None,
        }
    }

    /// Sets the raw-to-scaled residual map (see [`ResidualMap`]). The
    /// tolerance is compared against the *scaled* value, so it lives in
    /// the same units the solver prints.
    pub fn with_scale(mut self, scale: ResidualMap) -> Self {
        self.scale = Some(scale);
        self
    }

    /// [`Convergence::with_scale`] unless a map is already set — the
    /// harness hook that injects the app's residual scaling into a
    /// translator-generated (scale-free) policy.
    pub fn ensure_scale(&mut self, scale: ResidualMap) {
        if self.scale.is_none() {
            self.scale = Some(scale);
        }
    }

    /// The convergence tolerance (in scaled units).
    pub fn tol(&self) -> f64 {
        self.tol
    }

    /// The check interval in iterations.
    pub fn every(&self) -> usize {
        self.every
    }

    /// The hard iteration cap.
    pub fn max_iters(&self) -> usize {
        self.max
    }

    /// Observes iteration `iter`'s residual future. Iterations off the
    /// `every` grid are ignored; nothing blocks.
    pub fn observe(&mut self, iter: usize, residual: &ReducedFuture<f64>) {
        if iter.is_multiple_of(self.every) {
            self.queue.push_back((iter, residual.clone()));
        }
    }

    /// Drains every *already-resolved* observed future in order and
    /// returns whether the loop should exit: the scaled residual crossed
    /// below the tolerance, or `iter` reached the cap. **Never blocks** —
    /// a still-in-flight reduction is simply not consulted yet, so the
    /// exit may lag the crossing by the solver's in-flight window.
    pub fn should_stop(&mut self, iter: usize) -> bool {
        while let Some((it, fut)) = self.queue.front() {
            if !fut.is_ready() {
                break;
            }
            let raw = fut.get_scalar();
            let scaled = match &self.scale {
                Some(f) => f(raw),
                None => raw,
            };
            self.latest = Some((*it, scaled));
            if self.converged.is_none() && scaled < self.tol {
                self.converged = Some((*it, scaled));
            }
            self.queue.pop_front();
        }
        self.converged.is_some() || iter >= self.max
    }

    /// The first `(iteration, scaled residual)` observed below the
    /// tolerance, if any.
    pub fn converged(&self) -> Option<(usize, f64)> {
        self.converged
    }

    /// The most recent resolved `(iteration, scaled residual)`.
    pub fn latest(&self) -> Option<(usize, f64)> {
        self.latest
    }
}

impl std::fmt::Debug for Convergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Convergence")
            .field("tol", &self.tol)
            .field("every", &self.every)
            .field("max", &self.max)
            .field("pending", &self.queue.len())
            .field("converged", &self.converged)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::gbl_inc;
    use crate::{Global, Op2, Op2Config};

    fn residual_future(op2: &Op2, set: &crate::Set, value: f64) -> ReducedFuture<f64> {
        let g = Global::<f64>::sum(1, "r");
        let per_elem = value / set.size() as f64;
        op2.loop_("contrib", set)
            .arg(gbl_inc(&g))
            .run(move |r: &mut [f64]| r[0] += per_elem);
        g.reduce_async(op2)
    }

    #[test]
    fn stops_at_first_residual_below_tol() {
        let op2 = Op2::new(Op2Config::seq());
        let set = op2.decl_set(4, "s");
        let mut c = Convergence::new(0.5, 1, 100);
        for (iter, v) in [(1, 2.0), (2, 1.0), (3, 0.25)] {
            let fut = residual_future(&op2, &set, v);
            op2.fence();
            c.observe(iter, &fut);
            let stop = c.should_stop(iter);
            assert_eq!(stop, iter == 3, "iteration {iter}");
        }
        let (it, r) = c.converged().expect("converged");
        assert_eq!(it, 3);
        assert!((r - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unresolved_futures_are_not_consulted_and_nothing_blocks() {
        // A future that never resolves must leave should_stop false (below
        // the cap) rather than blocking — the whole point of the design.
        let op2 = Op2::new(Op2Config::seq());
        let set = op2.decl_set(2, "s");
        let fut = residual_future(&op2, &set, 1e-30);
        op2.fence();
        let mut c = Convergence::new(1e-6, 1, 10);
        // Not observed yet: only the cap can stop the loop.
        assert!(!c.should_stop(9));
        assert!(c.should_stop(10), "cap must fire at max");
        assert!(c.converged().is_none());
        c.observe(11, &fut);
        assert!(c.should_stop(11));
        assert_eq!(c.converged().map(|(i, _)| i), Some(11));
    }

    #[test]
    fn every_grid_filters_observations() {
        let op2 = Op2::new(Op2Config::seq());
        let set = op2.decl_set(2, "s");
        let mut c = Convergence::new(1e-9, 5, 100);
        let fut = residual_future(&op2, &set, 1e-30);
        op2.fence();
        c.observe(3, &fut); // off-grid: ignored
        assert!(!c.should_stop(3));
        c.observe(5, &fut);
        assert!(c.should_stop(5));
    }

    #[test]
    fn scale_is_applied_before_the_tolerance() {
        let op2 = Op2::new(Op2Config::seq());
        let set = op2.decl_set(2, "s");
        // Raw residual 4.0, scale sqrt(raw)/4 => 0.5 < tol 0.6.
        let mut c = Convergence::new(0.6, 1, 10).with_scale(Arc::new(|raw: f64| raw.sqrt() / 4.0));
        let fut = residual_future(&op2, &set, 4.0);
        op2.fence();
        c.observe(1, &fut);
        assert!(c.should_stop(1));
        let (_, r) = c.converged().expect("converged");
        assert!((r - 0.5).abs() < 1e-12);
    }
}
