//! Scalar types, access descriptors and entity identifiers.

use std::sync::atomic::{AtomicU64, Ordering};

/// Scalar types storable in a [`Dat`](crate::Dat): plain-old-data, so rows
/// can be viewed as slices and copied freely between tasks. The
/// [`WireScalar`](crate::transport::WireScalar) supertrait gives every dat
/// scalar a fixed-width little-endian wire encoding, so halo rows and
/// reduction partials can cross process boundaries.
pub trait OpType:
    Copy + Send + Sync + Default + PartialEq + std::fmt::Debug + crate::transport::WireScalar + 'static
{
}

macro_rules! impl_op_type {
    ($($t:ty),+) => { $(impl OpType for $t {})+ };
}
impl_op_type!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64, usize, isize, bool);

/// How a kernel accesses an argument (paper §II-A: `OP_READ`, `OP_WRITE`,
/// `OP_RW`, `OP_INC`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Read only.
    Read,
    /// Write only (every accessed component is overwritten).
    Write,
    /// Read and write.
    Rw,
    /// Increment — associative accumulation, the access mode that makes
    /// indirect loops race-prone and forces plan coloring.
    Inc,
}

impl Access {
    /// True for `Write`/`Rw`/`Inc`: the kernel may modify the data.
    #[inline]
    pub fn is_mut(self) -> bool {
        !matches!(self, Access::Read)
    }
}

impl std::fmt::Display for Access {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Access::Read => "OP_READ",
            Access::Write => "OP_WRITE",
            Access::Rw => "OP_RW",
            Access::Inc => "OP_INC",
        })
    }
}

/// Process-unique id shared by sets, maps, dats and globals.
pub(crate) fn next_entity_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Process-unique generation stamp for one loop submission. The epoch
/// tables use it to tell "another node of the same loop scattering into
/// this block" (accumulate the writer set) from "a newer loop writing the
/// block" (supersede the writer set).
pub(crate) fn next_loop_gen() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_mutability() {
        assert!(!Access::Read.is_mut());
        assert!(Access::Write.is_mut());
        assert!(Access::Rw.is_mut());
        assert!(Access::Inc.is_mut());
    }

    #[test]
    fn entity_ids_are_unique() {
        let a = next_entity_id();
        let b = next_entity_id();
        assert_ne!(a, b);
    }

    #[test]
    fn display_matches_op2_names() {
        assert_eq!(Access::Inc.to_string(), "OP_INC");
    }
}
