//! Dats: data defined on sets (paper §II-A, `op_decl_dat`), plus the
//! per-dat dependency state that lets the dataflow backend chain loops.
//!
//! # Safety model
//!
//! The payload lives in an `UnsafeCell<Vec<T>>`. Mutable access happens on
//! exactly two disciplined paths:
//!
//! 1. **Loop executors** (`crate::driver`): race-freedom is guaranteed by
//!    the execution plan — direct mutable args touch disjoint rows because
//!    chunks partition the set; indirect mutable args are serialized by
//!    block coloring; loop-vs-loop ordering is enforced by the per-dat
//!    last-writer/readers futures ([`DepState`]).
//! 2. **User guards** ([`Dat::read`] / [`Dat::write`]) which first wait for
//!    the relevant futures and are tracked by a borrow counter so a guard
//!    held across a conflicting `par_loop` submission panics instead of
//!    racing.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Arc;

use hpx_rt::SharedFuture;

use crate::set::Set;
use crate::types::{next_entity_id, OpType};

/// Dependency state used by the dataflow backend: the completion future of
/// the last loop that wrote this dat, and of every reader since.
#[derive(Default)]
pub(crate) struct DepState {
    pub last_write: Option<SharedFuture<()>>,
    pub readers: Vec<SharedFuture<()>>,
}

pub(crate) struct DatInner<T> {
    pub id: u64,
    pub set: Set,
    pub dim: usize,
    pub name: String,
    data: UnsafeCell<Vec<T>>,
    pub deps: Mutex<DepState>,
    /// User-guard tracking: >0 read guards, -1 write guard, 0 free.
    borrow: AtomicIsize,
}

// SAFETY: see the module-level safety model; all mutable access is
// serialized by plans/futures (executors) or the borrow counter (guards).
unsafe impl<T: Send + Sync> Send for DatInner<T> {}
unsafe impl<T: Send + Sync> Sync for DatInner<T> {}

/// Data on a set: `set.size()` rows of `dim` scalars. Cheap to clone (an
/// `Arc` handle); clones alias the same storage.
pub struct Dat<T: OpType> {
    inner: Arc<DatInner<T>>,
}

impl<T: OpType> Clone for Dat<T> {
    fn clone(&self) -> Self {
        Dat {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: OpType> Dat<T> {
    pub(crate) fn new(set: &Set, dim: usize, name: &str, data: Vec<T>) -> Self {
        assert!(dim > 0, "dat '{name}': dim must be positive");
        assert_eq!(
            data.len(),
            set.size() * dim,
            "dat '{name}': expected {} values ({} x {dim}), got {}",
            set.size() * dim,
            set.size(),
            data.len()
        );
        Dat {
            inner: Arc::new(DatInner {
                id: next_entity_id(),
                set: set.clone(),
                dim,
                name: name.to_owned(),
                data: UnsafeCell::new(data),
                deps: Mutex::new(DepState::default()),
                borrow: AtomicIsize::new(0),
            }),
        }
    }

    /// The set this dat is defined on.
    pub fn set(&self) -> &Set {
        &self.inner.set
    }

    /// Scalars per set element.
    #[inline]
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// Declared name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    /// Total scalar count (`set.size() * dim`).
    pub fn len(&self) -> usize {
        self.inner.set.size() * self.inner.dim
    }

    /// True for a dat on an empty set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw base pointer for the executors.
    ///
    /// # Safety
    ///
    /// Dereferencing requires the caller to uphold the module-level model.
    #[inline(always)]
    pub(crate) unsafe fn ptr(&self) -> *mut T {
        // SAFETY: UnsafeCell grants the raw pointer; the Vec itself is
        // never resized after construction, so the pointer is stable.
        unsafe { (*self.inner.data.get()).as_mut_ptr() }
    }

    // ---- dependency bookkeeping (dataflow backend) ----------------------

    /// Futures this access must wait for: writers wait for everything
    /// (write-after-write, write-after-read); readers only for the last
    /// writer.
    pub(crate) fn collect_deps(&self, mutates: bool, out: &mut Vec<SharedFuture<()>>) {
        let mut deps = self.inner.deps.lock();
        if let Some(w) = &deps.last_write {
            out.push(w.clone());
        }
        if mutates {
            out.append(&mut deps.readers);
        }
    }

    /// Records a loop's completion future against this dat.
    pub(crate) fn record_completion(&self, mutates: bool, done: &SharedFuture<()>) {
        let mut deps = self.inner.deps.lock();
        if mutates {
            deps.last_write = Some(done.clone());
            deps.readers.clear();
        } else {
            deps.readers.push(done.clone());
        }
    }

    fn wait_last_write(&self) {
        let w = self.inner.deps.lock().last_write.clone();
        if let Some(w) = w {
            w.wait();
        }
    }

    fn wait_all(&self) {
        let (w, readers) = {
            let deps = self.inner.deps.lock();
            (deps.last_write.clone(), deps.readers.clone())
        };
        if let Some(w) = w {
            w.wait();
        }
        for r in readers {
            r.wait();
        }
    }

    // ---- guard-based user access ----------------------------------------

    /// Waits for all pending writes, then returns a read view of the rows.
    ///
    /// # Panics
    ///
    /// If a write guard is live.
    pub fn read(&self) -> DatReadGuard<'_, T> {
        self.wait_last_write();
        let prev = self.inner.borrow.fetch_add(1, Ordering::AcqRel);
        assert!(
            prev >= 0,
            "dat '{}': read() while a write guard is live",
            self.inner.name
        );
        DatReadGuard { dat: self }
    }

    /// Waits for all pending loops touching this dat, then returns an
    /// exclusive view (setup/initialization use).
    ///
    /// # Panics
    ///
    /// If any other guard is live.
    pub fn write(&self) -> DatWriteGuard<'_, T> {
        self.wait_all();
        let prev =
            self.inner
                .borrow
                .compare_exchange(0, -1, Ordering::AcqRel, Ordering::Acquire);
        assert!(
            prev.is_ok(),
            "dat '{}': write() while another guard is live",
            self.inner.name
        );
        DatWriteGuard { dat: self }
    }

    /// Waits for pending writes and clones the payload out.
    pub fn snapshot(&self) -> Vec<T> {
        self.read().to_vec()
    }

    /// Panics unless a new loop argument with the given mutability could
    /// run now without racing a live user guard.
    pub(crate) fn assert_borrowable(&self, mutates: bool) {
        let b = self.inner.borrow.load(Ordering::Acquire);
        if mutates {
            assert!(
                b == 0,
                "dat '{}': submitted as a mutable loop argument while a user guard is live",
                self.inner.name
            );
        } else {
            assert!(
                b >= 0,
                "dat '{}': submitted as a loop argument while a write guard is live",
                self.inner.name
            );
        }
    }
}

impl<T: OpType> std::fmt::Debug for Dat<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dat")
            .field("name", &self.inner.name)
            .field("set", &self.inner.set.name())
            .field("dim", &self.inner.dim)
            .finish()
    }
}

/// Shared read view of a dat (see [`Dat::read`]).
pub struct DatReadGuard<'a, T: OpType> {
    dat: &'a Dat<T>,
}

impl<T: OpType> std::ops::Deref for DatReadGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // SAFETY: guard construction waited for writers and registered in
        // the borrow counter; conflicting loop submissions panic.
        unsafe { std::slice::from_raw_parts(self.dat.ptr(), self.dat.len()) }
    }
}

impl<T: OpType> DatReadGuard<'_, T> {
    /// The `dim` scalars of row `e`.
    pub fn row(&self, e: usize) -> &[T] {
        let d = self.dat.dim();
        &self[e * d..(e + 1) * d]
    }
}

impl<T: OpType> Drop for DatReadGuard<'_, T> {
    fn drop(&mut self) {
        self.dat.inner.borrow.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exclusive view of a dat (see [`Dat::write`]).
pub struct DatWriteGuard<'a, T: OpType> {
    dat: &'a Dat<T>,
}

impl<T: OpType> std::ops::Deref for DatWriteGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        // SAFETY: exclusive per borrow counter.
        unsafe { std::slice::from_raw_parts(self.dat.ptr(), self.dat.len()) }
    }
}

impl<T: OpType> std::ops::DerefMut for DatWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        // SAFETY: exclusive per borrow counter.
        unsafe { std::slice::from_raw_parts_mut(self.dat.ptr(), self.dat.len()) }
    }
}

impl<T: OpType> DatWriteGuard<'_, T> {
    /// Mutable view of the `dim` scalars of row `e`.
    pub fn row_mut(&mut self, e: usize) -> &mut [T] {
        let d = self.dat.dim();
        let start = e * d;
        &mut self[start..start + d]
    }
}

impl<T: OpType> Drop for DatWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.dat.inner.borrow.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk() -> Dat<f64> {
        let set = Set::new(4, "cells");
        Dat::new(&set, 2, "q", vec![0.0; 8])
    }

    #[test]
    fn rows_and_len() {
        let d = mk();
        assert_eq!(d.len(), 8);
        assert_eq!(d.dim(), 2);
        {
            let mut w = d.write();
            w.row_mut(2).copy_from_slice(&[1.0, 2.0]);
        }
        let r = d.read();
        assert_eq!(r.row(2), &[1.0, 2.0]);
        assert_eq!(r.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn multiple_read_guards_allowed() {
        let d = mk();
        let a = d.read();
        let b = d.read();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "write() while another guard is live")]
    fn write_conflicts_with_read_guard() {
        let d = mk();
        let _r = d.read();
        let _w = d.write();
    }

    #[test]
    #[should_panic(expected = "expected 8 values")]
    fn rejects_wrong_payload_length() {
        let set = Set::new(4, "cells");
        let _ = Dat::new(&set, 2, "q", vec![0.0; 7]);
    }

    #[test]
    fn dep_bookkeeping_orders_writers_after_readers() {
        let d = mk();
        let r1 = SharedFuture::ready(());
        d.record_completion(false, &r1);
        let mut deps = Vec::new();
        d.collect_deps(true, &mut deps);
        assert_eq!(deps.len(), 1, "writer must wait for the reader");
        // After collecting for a writer, readers are drained.
        let mut deps2 = Vec::new();
        d.collect_deps(true, &mut deps2);
        assert!(deps2.is_empty());
    }

    #[test]
    fn snapshot_clones() {
        let d = mk();
        let s = d.snapshot();
        assert_eq!(s, vec![0.0; 8]);
    }
}
