//! Dats: data defined on sets (paper §II-A, `op_decl_dat`), plus the
//! per-block *epoch table* that lets the dataflow backend chain loops at
//! mini-partition granularity.
//!
//! # Dependency model (block-granular epochs)
//!
//! A dat's rows are partitioned into fixed *dependency blocks* aligned to
//! the context's mini-partition block size. Each block carries its own
//! dependency state ([`BlockDeps`]): the completion futures of the loop
//! nodes that last **wrote** rows of the block (one writer *generation*,
//! possibly many nodes when an indirect loop scatters into the block), the
//! **readers** since, and an **epoch** counter that advances whenever a new
//! writer generation replaces the old one.
//!
//! The dataflow backend schedules one node per loop block and wires each
//! node only to the dependency blocks it actually touches (directly by row
//! range, indirectly through the map's block-reach table, see
//! [`crate::plan`]). A RAW-dependent loop therefore starts its block *i* as
//! soon as the predecessor finished the blocks feeding *i* — instead of
//! waiting for the predecessor's last block, which is a barrier in
//! disguise. The sequential and fork-join backends keep whole-dat
//! semantics: they collect and record across every block at once.
//!
//! # Safety model
//!
//! The payload lives in an `UnsafeCell<Vec<T>>`. Mutable access happens on
//! exactly two disciplined paths:
//!
//! 1. **Loop executors** (`crate::driver`): race-freedom is guaranteed by
//!    the execution plan — direct mutable args touch disjoint rows because
//!    blocks partition the set; indirect mutable args are serialized by
//!    block coloring (color-round gates under dataflow); loop-vs-loop
//!    ordering is enforced by the per-block epoch table ([`DepTable`]).
//! 2. **User guards** ([`Dat::read`] / [`Dat::write`]) which first wait for
//!    the relevant futures and are tracked by a borrow counter so a guard
//!    held across a conflicting `par_loop` submission panics instead of
//!    racing.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::ops::Range;
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};

use hpx_rt::SharedFuture;

#[cfg(test)]
use crate::config::DEFAULT_BLOCK_SIZE;
use crate::set::Set;
use crate::types::{next_entity_id, OpType};

/// Drop completed reader futures once a block collects this many.
const READER_PRUNE_THRESHOLD: usize = 32;

/// Physical memory layout of a dat's scalars (the classic OP2 AoS/SoA
/// choice). The *logical* model is always `total_rows x dim`, rows are
/// always addressed by element index, and the per-block dependency table
/// is row-indexed — so the dependency engine, the coloring planner and
/// the halo dirty-bit protocol are layout-oblivious. Only the scalar
/// offset of `(element, component)` changes:
///
/// * [`Layout::AoS`] — `e * dim + c`: each element's components are
///   adjacent (best for per-element gather/scatter through maps).
/// * [`Layout::SoA`] — `c * total_rows + e`: `dim` contiguous component
///   *planes* (best for vectorized direct sweeps: unit-stride lanes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Layout {
    /// Array-of-structures: row-major, `dim` consecutive scalars per
    /// element.
    #[default]
    AoS,
    /// Structure-of-arrays: `dim` contiguous planes of `total_rows`
    /// scalars each; component `c` of element `e` lives at
    /// `c * total_rows + e`.
    SoA,
}

/// Dependency state of one block of rows.
#[derive(Default)]
struct BlockDeps {
    /// Monotonic writer-generation counter (diagnostics + tests).
    epoch: u64,
    /// Loop generation that produced the current `writers` set; recording
    /// a writer from a newer generation replaces the set and bumps the
    /// epoch, so the many nodes of one scattering loop accumulate while
    /// distinct loops supersede each other.
    writer_gen: u64,
    /// Completion futures of the current writer generation's nodes.
    writers: Vec<SharedFuture<()>>,
    /// Completion futures of reads since the current writer generation.
    readers: Vec<SharedFuture<()>>,
}

impl BlockDeps {
    /// Clones (never drains) the pending futures: writers always, readers
    /// additionally for a mutating access. Draining readers here would be
    /// unsound under the block-granular driver — two nodes of one loop may
    /// collect the same dependency block in the same color round (coloring
    /// separates shared target *elements*, not target *blocks*), and the
    /// second would lose its write-after-read edge. Readers are cleared
    /// when a new writer generation is recorded instead.
    fn collect(&self, mutates: bool, out: &mut Vec<SharedFuture<()>>) {
        out.extend(self.writers.iter().cloned());
        if mutates {
            out.extend(self.readers.iter().cloned());
        }
    }
}

/// The per-dat, block-indexed dependency table (see module docs).
pub(crate) struct DepTable {
    block_size: usize,
    blocks: Mutex<Vec<BlockDeps>>,
}

impl DepTable {
    fn new(rows: usize, block_size: usize) -> Self {
        let block_size = block_size.max(1);
        let nblocks = rows.div_ceil(block_size);
        DepTable {
            block_size,
            blocks: Mutex::new((0..nblocks).map(|_| BlockDeps::default()).collect()),
        }
    }

    /// Rows per dependency block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Indices of the dependency blocks overlapping a row range.
    fn blocks_of(&self, rows: &Range<usize>) -> Range<usize> {
        if rows.start >= rows.end {
            return 0..0;
        }
        (rows.start / self.block_size)..((rows.end - 1) / self.block_size + 1)
    }

    /// Futures an access to `rows` must wait for: writers always; a
    /// mutating access additionally waits for the readers.
    pub fn collect_rows(
        &self,
        rows: &Range<usize>,
        mutates: bool,
        out: &mut Vec<SharedFuture<()>>,
    ) {
        let blocks = self.blocks.lock();
        for b in self.blocks_of(rows) {
            blocks[b].collect(mutates, out);
        }
    }

    /// [`DepTable::collect_rows`] for an explicit block index (indirect
    /// args resolve their reach to block indices, not row ranges).
    pub fn collect_block(&self, block: usize, mutates: bool, out: &mut Vec<SharedFuture<()>>) {
        let blocks = self.blocks.lock();
        if let Some(b) = blocks.get(block) {
            b.collect(mutates, out);
        }
    }

    fn record(entry: &mut BlockDeps, mutates: bool, gen: u64, done: &SharedFuture<()>) {
        if mutates {
            if entry.writer_gen != gen {
                entry.writer_gen = gen;
                entry.epoch += 1;
                entry.writers.clear();
                entry.readers.clear();
            }
            entry.writers.push(done.clone());
        } else {
            if entry.readers.len() >= READER_PRUNE_THRESHOLD {
                entry.readers.retain(|f| !f.is_ready());
            }
            entry.readers.push(done.clone());
        }
    }

    /// Records a node's completion against the blocks overlapping `rows`.
    /// `gen` identifies the submitting loop: the first writer of a new
    /// generation supersedes the previous writer set.
    pub fn record_rows(
        &self,
        rows: &Range<usize>,
        mutates: bool,
        gen: u64,
        done: &SharedFuture<()>,
    ) {
        let mut blocks = self.blocks.lock();
        for b in self.blocks_of(rows) {
            Self::record(&mut blocks[b], mutates, gen, done);
        }
    }

    /// [`DepTable::record_rows`] for an explicit block index.
    pub fn record_block(&self, block: usize, mutates: bool, gen: u64, done: &SharedFuture<()>) {
        let mut blocks = self.blocks.lock();
        if let Some(b) = blocks.get_mut(block) {
            Self::record(b, mutates, gen, done);
        }
    }

    /// Whole-dat collection (sequential / fork-join backends and guards).
    pub fn collect_all(&self, mutates: bool, out: &mut Vec<SharedFuture<()>>) {
        let blocks = self.blocks.lock();
        for b in blocks.iter() {
            b.collect(mutates, out);
        }
    }

    /// Whole-dat recording (sequential / fork-join backends).
    pub fn record_all(&self, mutates: bool, gen: u64, done: &SharedFuture<()>) {
        let mut blocks = self.blocks.lock();
        for b in blocks.iter_mut() {
            Self::record(b, mutates, gen, done);
        }
    }

    /// Clones every pending future without draining readers (user guards
    /// must not steal WAR dependencies from future writers).
    fn peek_all(&self, include_readers: bool) -> Vec<SharedFuture<()>> {
        let blocks = self.blocks.lock();
        let mut out = Vec::new();
        for b in blocks.iter() {
            out.extend(b.writers.iter().cloned());
            if include_readers {
                out.extend(b.readers.iter().cloned());
            }
        }
        out
    }

    /// Per-block epoch counters (diagnostics).
    fn epochs(&self) -> Vec<u64> {
        self.blocks.lock().iter().map(|b| b.epoch).collect()
    }
}

pub(crate) struct DatInner<T> {
    pub id: u64,
    pub set: Set,
    pub dim: usize,
    pub name: String,
    /// Mirror rows beyond `set.size()` holding halo copies of remote-owned
    /// elements under the multi-locality layer (see [`crate::locality`]).
    /// 0 for ordinary dats.
    pub halo_rows: usize,
    /// Physical scalar layout (see [`Layout`]).
    pub layout: Layout,
    data: UnsafeCell<Vec<T>>,
    pub deps: DepTable,
    /// User-guard tracking: >0 read guards, -1 write guard, 0 free.
    borrow: AtomicIsize,
    /// Implicit-communication link: `(rank, ring)` once this shard was
    /// registered with [`crate::locality::link_halo`]. The ring carries
    /// the halo spec, the peer shards and the per-peer dirty bits that
    /// drive automatic halo exchange at loop submission.
    halo_ring: OnceLock<(usize, Arc<crate::locality::HaloRing<T>>)>,
}

// SAFETY: see the module-level safety model; all mutable access is
// serialized by plans/futures (executors) or the borrow counter (guards).
unsafe impl<T: Send + Sync> Send for DatInner<T> {}
unsafe impl<T: Send + Sync> Sync for DatInner<T> {}

/// Data on a set: `set.size()` rows of `dim` scalars. Cheap to clone (an
/// `Arc` handle); clones alias the same storage.
pub struct Dat<T: OpType> {
    inner: Arc<DatInner<T>>,
}

impl<T: OpType> Clone for Dat<T> {
    fn clone(&self) -> Self {
        Dat {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: OpType> Dat<T> {
    /// Test convenience: a dat with the default dependency-block size.
    #[cfg(test)]
    pub(crate) fn new(set: &Set, dim: usize, name: &str, data: Vec<T>) -> Self {
        Self::with_dep_block_size(set, dim, name, data, DEFAULT_BLOCK_SIZE)
    }

    /// Creates a dat whose dependency table is partitioned into blocks of
    /// `dep_block_size` rows — aligned by [`crate::Op2::decl_dat`] to the
    /// context's mini-partition block size so loop blocks and dependency
    /// blocks coincide.
    #[cfg(test)]
    pub(crate) fn with_dep_block_size(
        set: &Set,
        dim: usize,
        name: &str,
        data: Vec<T>,
        dep_block_size: usize,
    ) -> Self {
        Self::with_halo(set, dim, name, data, dep_block_size, 0)
    }

    /// Creates a dat with `halo_rows` mirror rows appended beyond the
    /// set's own elements: storage, the dependency table and user guards
    /// all cover `set.size() + halo_rows` rows, while loops keep iterating
    /// the owned prefix only. Halo rows are fed by remote ranks through
    /// [`crate::locality::exchange`], whose receive nodes register in the
    /// same per-block epoch table as local writers — a halo block is just
    /// a remote-fed block to the dependency engine.
    #[cfg(test)]
    pub(crate) fn with_halo(
        set: &Set,
        dim: usize,
        name: &str,
        data: Vec<T>,
        dep_block_size: usize,
        halo_rows: usize,
    ) -> Self {
        Self::with_halo_layout(set, dim, name, data, dep_block_size, halo_rows, Layout::AoS)
    }

    /// [`Dat::with_halo`] with an explicit [`Layout`]. `data` is always
    /// given in canonical row-major (AoS) order; an SoA dat transposes it
    /// into component planes on construction.
    pub(crate) fn with_halo_layout(
        set: &Set,
        dim: usize,
        name: &str,
        data: Vec<T>,
        dep_block_size: usize,
        halo_rows: usize,
        layout: Layout,
    ) -> Self {
        assert!(dim > 0, "dat '{name}': dim must be positive");
        let rows = set.size() + halo_rows;
        assert_eq!(
            data.len(),
            rows * dim,
            "dat '{name}': expected {} values ({rows} x {dim}, incl. {halo_rows} halo rows), got {}",
            rows * dim,
            data.len()
        );
        let data = match layout {
            Layout::AoS => data,
            Layout::SoA => transpose_to_planes(&data, rows, dim),
        };
        Dat {
            inner: Arc::new(DatInner {
                id: next_entity_id(),
                set: set.clone(),
                dim,
                name: name.to_owned(),
                halo_rows,
                layout,
                data: UnsafeCell::new(data),
                deps: DepTable::new(rows, dep_block_size),
                borrow: AtomicIsize::new(0),
                halo_ring: OnceLock::new(),
            }),
        }
    }

    /// The set this dat is defined on.
    pub fn set(&self) -> &Set {
        &self.inner.set
    }

    /// Scalars per set element.
    #[inline]
    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    /// Declared name (diagnostics).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    pub(crate) fn id(&self) -> u64 {
        self.inner.id
    }

    /// Halo mirror rows beyond the set's own elements (0 for ordinary
    /// dats).
    #[inline]
    pub fn halo_rows(&self) -> usize {
        self.inner.halo_rows
    }

    /// Total storage rows: `set.size() + halo_rows()`.
    #[inline]
    pub fn total_rows(&self) -> usize {
        self.inner.set.size() + self.inner.halo_rows
    }

    /// Total scalar count (`total_rows() * dim` — owned plus halo rows).
    pub fn len(&self) -> usize {
        self.total_rows() * self.inner.dim
    }

    /// True for a dat on an empty set.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Raw base pointer for the executors.
    ///
    /// # Safety
    ///
    /// Dereferencing requires the caller to uphold the module-level model.
    #[inline(always)]
    pub(crate) unsafe fn ptr(&self) -> *mut T {
        // SAFETY: UnsafeCell grants the raw pointer; the Vec itself is
        // never resized after construction, so the pointer is stable.
        unsafe { (*self.inner.data.get()).as_mut_ptr() }
    }

    // ---- layout ---------------------------------------------------------

    /// Physical scalar layout of this dat.
    #[inline(always)]
    pub fn layout(&self) -> Layout {
        self.inner.layout
    }

    /// Distance in scalars between two components of one element: `1` for
    /// AoS (components adjacent), `total_rows()` for SoA (one plane
    /// apart). Kernel authors writing block-level SoA bodies index
    /// component `c` of element `e` as `plane_base[c * stride + e]`.
    #[inline(always)]
    pub fn component_stride(&self) -> usize {
        match self.inner.layout {
            Layout::AoS => 1,
            Layout::SoA => self.total_rows(),
        }
    }

    /// Appends row `e` (canonical component order) to `out`.
    ///
    /// # Safety
    ///
    /// Caller must hold read access to row `e` per the module-level model.
    pub(crate) unsafe fn append_row_to(&self, e: usize, out: &mut Vec<T>) {
        let dim = self.inner.dim;
        let base = unsafe { self.ptr() };
        match self.inner.layout {
            Layout::AoS => {
                // SAFETY: row e lies within the never-resized storage.
                out.extend_from_slice(unsafe {
                    std::slice::from_raw_parts(base.add(e * dim), dim)
                });
            }
            Layout::SoA => {
                let stride = self.total_rows();
                for c in 0..dim {
                    // SAFETY: c * stride + e < dim * total_rows = len.
                    out.push(unsafe { *base.add(c * stride + e) });
                }
            }
        }
    }

    /// Scatters `buf` (canonical row-major order, `buf.len() / dim` rows)
    /// into the storage starting at row `start`.
    ///
    /// # Safety
    ///
    /// Caller must hold exclusive access to the target rows per the
    /// module-level model; `start * dim + buf.len()` must not exceed
    /// [`Dat::len`].
    pub(crate) unsafe fn scatter_rows_from(&self, start: usize, buf: &[T]) {
        let dim = self.inner.dim;
        debug_assert_eq!(buf.len() % dim, 0);
        let base = unsafe { self.ptr() };
        match self.inner.layout {
            Layout::AoS => {
                // SAFETY: contiguous rows under AoS; bounds per contract.
                unsafe {
                    std::ptr::copy_nonoverlapping(buf.as_ptr(), base.add(start * dim), buf.len())
                };
            }
            Layout::SoA => {
                let stride = self.total_rows();
                for (i, chunk) in buf.chunks_exact(dim).enumerate() {
                    for (c, &v) in chunk.iter().enumerate() {
                        // SAFETY: bounds per contract (row start + i).
                        unsafe { *base.add(c * stride + start + i) = v };
                    }
                }
            }
        }
    }

    /// Scatters `buf` (canonical row-major order, one `dim`-wide chunk per
    /// entry of `rows`) into the listed — possibly non-contiguous — rows.
    /// The row-migration path lands moved rows with this (a rank's
    /// newly-owned rows interleave with rows it kept, so the destination
    /// is a list, unlike a halo import's contiguous range).
    ///
    /// # Safety
    ///
    /// Caller must hold exclusive access to the target rows per the
    /// module-level model; every row must be `< total_rows()` and
    /// `buf.len()` must equal `rows.len() * dim`.
    pub(crate) unsafe fn scatter_row_list_from(&self, rows: &[u32], buf: &[T]) {
        let dim = self.inner.dim;
        debug_assert_eq!(buf.len(), rows.len() * dim);
        let base = unsafe { self.ptr() };
        match self.inner.layout {
            Layout::AoS => {
                for (i, &row) in rows.iter().enumerate() {
                    // SAFETY: row < total_rows per contract; rows are
                    // dim-aligned in the never-resized storage.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            buf.as_ptr().add(i * dim),
                            base.add(row as usize * dim),
                            dim,
                        )
                    };
                }
            }
            Layout::SoA => {
                let stride = self.total_rows();
                for (i, &row) in rows.iter().enumerate() {
                    for c in 0..dim {
                        // SAFETY: c * stride + row < dim * total_rows.
                        unsafe { *base.add(c * stride + row as usize) = buf[i * dim + c] };
                    }
                }
            }
        }
    }

    /// Clones the payload out in canonical row-major order (gathering SoA
    /// planes back into rows). Callers must already hold access.
    fn to_canonical_vec(&self) -> Vec<T> {
        match self.inner.layout {
            // SAFETY: caller holds access per guard construction.
            Layout::AoS => unsafe { std::slice::from_raw_parts(self.ptr(), self.len()) }.to_vec(),
            Layout::SoA => {
                let mut out = Vec::with_capacity(self.len());
                for e in 0..self.total_rows() {
                    // SAFETY: caller holds access per guard construction.
                    unsafe { self.append_row_to(e, &mut out) };
                }
                out
            }
        }
    }

    // ---- implicit halo exchange -----------------------------------------

    /// Links this shard (as `rank`) to a halo ring. Once per dat.
    pub(crate) fn attach_halo_ring(&self, rank: usize, ring: Arc<crate::locality::HaloRing<T>>) {
        assert!(
            self.inner.halo_ring.set((rank, ring)).is_ok(),
            "dat '{}': already linked to a halo ring",
            self.inner.name
        );
    }

    /// `(rank, ring)` when this shard participates in implicit halo
    /// exchange.
    pub(crate) fn halo_ring(&self) -> Option<&(usize, Arc<crate::locality::HaloRing<T>>)> {
        self.inner.halo_ring.get()
    }

    pub(crate) fn inner_weak(&self) -> Weak<DatInner<T>> {
        Arc::downgrade(&self.inner)
    }

    pub(crate) fn from_inner(inner: Arc<DatInner<T>>) -> Dat<T> {
        Dat { inner }
    }

    // ---- dependency bookkeeping (dataflow backend) ----------------------

    /// The per-block dependency table.
    pub(crate) fn deps(&self) -> &DepTable {
        &self.inner.deps
    }

    /// Rows per dependency block.
    pub(crate) fn dep_block_size(&self) -> usize {
        self.inner.deps.block_size()
    }

    /// Whole-dat dependency collection (sequential / fork-join backends):
    /// writers wait for everything (write-after-write, write-after-read);
    /// readers only for the writers.
    pub(crate) fn collect_deps(&self, mutates: bool, out: &mut Vec<SharedFuture<()>>) {
        self.inner.deps.collect_all(mutates, out);
    }

    /// Whole-dat completion recording (sequential / fork-join backends).
    pub(crate) fn record_completion(&self, mutates: bool, gen: u64, done: &SharedFuture<()>) {
        self.inner.deps.record_all(mutates, gen, done);
    }

    /// Per-block epoch counters — the observable trace of writer
    /// generations, exposed for tests and diagnostics.
    #[doc(hidden)]
    pub fn __dep_epochs(&self) -> Vec<u64> {
        self.inner.deps.epochs()
    }

    fn wait_writers(&self) {
        for f in self.inner.deps.peek_all(false) {
            f.wait();
        }
    }

    fn wait_all(&self) {
        for f in self.inner.deps.peek_all(true) {
            f.wait();
        }
    }

    // ---- guard-based user access ----------------------------------------

    /// Waits for all pending writes, then returns a read view of the rows.
    ///
    /// # Panics
    ///
    /// If a write guard is live.
    pub fn read(&self) -> DatReadGuard<'_, T> {
        self.wait_writers();
        let prev = self.inner.borrow.fetch_add(1, Ordering::AcqRel);
        assert!(
            prev >= 0,
            "dat '{}': read() while a write guard is live",
            self.inner.name
        );
        let staged = match self.inner.layout {
            Layout::AoS => None,
            Layout::SoA => Some(self.to_canonical_vec()),
        };
        DatReadGuard { dat: self, staged }
    }

    /// Waits for all pending loops touching this dat, then returns an
    /// exclusive view (setup/initialization use).
    ///
    /// # Panics
    ///
    /// If any other guard is live.
    pub fn write(&self) -> DatWriteGuard<'_, T> {
        self.wait_all();
        let prev = self
            .inner
            .borrow
            .compare_exchange(0, -1, Ordering::AcqRel, Ordering::Acquire);
        assert!(
            prev.is_ok(),
            "dat '{}': write() while another guard is live",
            self.inner.name
        );
        let staged = match self.inner.layout {
            Layout::AoS => None,
            Layout::SoA => Some(self.to_canonical_vec()),
        };
        DatWriteGuard { dat: self, staged }
    }

    /// Waits for pending writes and clones the payload out.
    pub fn snapshot(&self) -> Vec<T> {
        self.read().to_vec()
    }

    /// Panics unless a new loop argument with the given mutability could
    /// run now without racing a live user guard.
    pub(crate) fn assert_borrowable(&self, mutates: bool) {
        let b = self.inner.borrow.load(Ordering::Acquire);
        if mutates {
            assert!(
                b == 0,
                "dat '{}': submitted as a mutable loop argument while a user guard is live",
                self.inner.name
            );
        } else {
            assert!(
                b >= 0,
                "dat '{}': submitted as a loop argument while a write guard is live",
                self.inner.name
            );
        }
    }
}

impl<T: OpType> std::fmt::Debug for Dat<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Dat")
            .field("name", &self.inner.name)
            .field("set", &self.inner.set.name())
            .field("dim", &self.inner.dim)
            .finish()
    }
}

/// Shared read view of a dat (see [`Dat::read`]). Always presents the
/// canonical row-major order regardless of the dat's [`Layout`]: an SoA
/// dat's planes are gathered into a staged copy at guard construction.
pub struct DatReadGuard<'a, T: OpType> {
    dat: &'a Dat<T>,
    /// Canonical row-major materialization (`Some` iff the dat is SoA).
    staged: Option<Vec<T>>,
}

impl<T: OpType> std::ops::Deref for DatReadGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        match &self.staged {
            Some(buf) => buf,
            // SAFETY: guard construction waited for writers and registered
            // in the borrow counter; conflicting loop submissions panic.
            None => unsafe { std::slice::from_raw_parts(self.dat.ptr(), self.dat.len()) },
        }
    }
}

impl<T: OpType> DatReadGuard<'_, T> {
    /// The `dim` scalars of row `e`.
    pub fn row(&self, e: usize) -> &[T] {
        let d = self.dat.dim();
        &self[e * d..(e + 1) * d]
    }
}

impl<T: OpType> Drop for DatReadGuard<'_, T> {
    fn drop(&mut self) {
        self.dat.inner.borrow.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Exclusive view of a dat (see [`Dat::write`]). Like the read guard it
/// always presents canonical row-major order; mutations to an SoA dat are
/// staged and scattered back into the planes when the guard drops.
pub struct DatWriteGuard<'a, T: OpType> {
    dat: &'a Dat<T>,
    /// Canonical row-major staging buffer (`Some` iff the dat is SoA).
    staged: Option<Vec<T>>,
}

impl<T: OpType> std::ops::Deref for DatWriteGuard<'_, T> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        match &self.staged {
            Some(buf) => buf,
            // SAFETY: exclusive per borrow counter.
            None => unsafe { std::slice::from_raw_parts(self.dat.ptr(), self.dat.len()) },
        }
    }
}

impl<T: OpType> std::ops::DerefMut for DatWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut [T] {
        match &mut self.staged {
            Some(buf) => buf,
            // SAFETY: exclusive per borrow counter.
            None => unsafe { std::slice::from_raw_parts_mut(self.dat.ptr(), self.dat.len()) },
        }
    }
}

impl<T: OpType> DatWriteGuard<'_, T> {
    /// Mutable view of the `dim` scalars of row `e`.
    pub fn row_mut(&mut self, e: usize) -> &mut [T] {
        let d = self.dat.dim();
        let start = e * d;
        &mut self[start..start + d]
    }
}

impl<T: OpType> Drop for DatWriteGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(buf) = self.staged.take() {
            // SAFETY: exclusive per borrow counter until the store below.
            unsafe { self.dat.scatter_rows_from(0, &buf) };
        }
        self.dat.inner.borrow.store(0, Ordering::Release);
    }
}

/// Transposes canonical row-major `data` (`rows x dim`) into `dim`
/// contiguous component planes of `rows` scalars each.
fn transpose_to_planes<T: OpType>(data: &[T], rows: usize, dim: usize) -> Vec<T> {
    let mut planes = Vec::with_capacity(data.len());
    for c in 0..dim {
        for e in 0..rows {
            planes.push(data[e * dim + c]);
        }
    }
    planes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::next_loop_gen;

    fn mk() -> Dat<f64> {
        let set = Set::new(4, "cells");
        Dat::new(&set, 2, "q", vec![0.0; 8])
    }

    #[test]
    fn rows_and_len() {
        let d = mk();
        assert_eq!(d.len(), 8);
        assert_eq!(d.dim(), 2);
        {
            let mut w = d.write();
            w.row_mut(2).copy_from_slice(&[1.0, 2.0]);
        }
        let r = d.read();
        assert_eq!(r.row(2), &[1.0, 2.0]);
        assert_eq!(r.row(0), &[0.0, 0.0]);
    }

    #[test]
    fn multiple_read_guards_allowed() {
        let d = mk();
        let a = d.read();
        let b = d.read();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    #[should_panic(expected = "write() while another guard is live")]
    fn write_conflicts_with_read_guard() {
        let d = mk();
        let _r = d.read();
        let _w = d.write();
    }

    #[test]
    #[should_panic(expected = "expected 8 values")]
    fn rejects_wrong_payload_length() {
        let set = Set::new(4, "cells");
        let _ = Dat::new(&set, 2, "q", vec![0.0; 7]);
    }

    #[test]
    fn dep_bookkeeping_orders_writers_after_readers() {
        let d = mk();
        let r1 = SharedFuture::ready(());
        d.record_completion(false, next_loop_gen(), &r1);
        let mut deps = Vec::new();
        d.collect_deps(true, &mut deps);
        assert_eq!(deps.len(), 1, "writer must wait for the reader");
        // Collection never drains: a second collecting writer node (same
        // loop, same dependency block) must see the reader too.
        let mut deps2 = Vec::new();
        d.collect_deps(true, &mut deps2);
        assert_eq!(deps2.len(), 1);
        // Recording the writer's completion supersedes the readers.
        let w = SharedFuture::ready(());
        d.record_completion(true, next_loop_gen(), &w);
        let mut deps3 = Vec::new();
        d.collect_deps(true, &mut deps3);
        assert_eq!(deps3.len(), 1, "only the new writer remains");
    }

    #[test]
    fn snapshot_clones() {
        let d = mk();
        let s = d.snapshot();
        assert_eq!(s, vec![0.0; 8]);
    }

    #[test]
    fn per_block_deps_are_independent() {
        let set = Set::new(8, "cells");
        let d: Dat<f64> = Dat::with_dep_block_size(&set, 1, "q", vec![0.0; 8], 4);
        let w = SharedFuture::ready(());
        // Write rows 0..4 only: block 0 gains a writer, block 1 stays free.
        d.deps().record_rows(&(0..4), true, next_loop_gen(), &w);
        let mut deps = Vec::new();
        d.deps().collect_rows(&(4..8), false, &mut deps);
        assert!(deps.is_empty(), "untouched block must have no deps");
        d.deps().collect_rows(&(0..4), false, &mut deps);
        assert_eq!(deps.len(), 1, "touched block must expose its writer");
        assert_eq!(d.__dep_epochs(), vec![1, 0]);
    }

    #[test]
    fn writer_generation_accumulates_within_one_loop() {
        let set = Set::new(4, "cells");
        let d: Dat<f64> = Dat::with_dep_block_size(&set, 1, "q", vec![0.0; 4], 4);
        let gen = next_loop_gen();
        let (w1, w2) = (SharedFuture::ready(()), SharedFuture::ready(()));
        // Two nodes of the same loop scatter into block 0: both futures
        // must be retained as the current writer set.
        d.deps().record_block(0, true, gen, &w1);
        d.deps().record_block(0, true, gen, &w2);
        let mut deps = Vec::new();
        d.deps().collect_block(0, false, &mut deps);
        assert_eq!(deps.len(), 2);
        // A later loop's writer supersedes the pair and bumps the epoch.
        d.deps().record_block(0, true, next_loop_gen(), &w1);
        let mut deps2 = Vec::new();
        d.deps().collect_block(0, false, &mut deps2);
        assert_eq!(deps2.len(), 1);
        assert_eq!(d.__dep_epochs(), vec![2]);
    }

    #[test]
    fn soa_guards_present_canonical_rows() {
        let set = Set::new(3, "cells");
        let data: Vec<f64> = (0..6).map(|v| v as f64).collect();
        let d = Dat::with_halo_layout(&set, 2, "q", data.clone(), 4, 0, Layout::SoA);
        assert_eq!(d.layout(), Layout::SoA);
        assert_eq!(d.component_stride(), 3);
        // Raw storage is transposed...
        let raw: Vec<f64> = unsafe { std::slice::from_raw_parts(d.ptr(), d.len()) }.to_vec();
        assert_eq!(raw, vec![0.0, 2.0, 4.0, 1.0, 3.0, 5.0]);
        // ...but guards and snapshots present canonical row order.
        assert_eq!(d.snapshot(), data);
        assert_eq!(d.read().row(1), &[2.0, 3.0]);
        {
            let mut w = d.write();
            w.row_mut(2).copy_from_slice(&[9.0, 10.0]);
        }
        assert_eq!(d.read().row(2), &[9.0, 10.0]);
        let raw: Vec<f64> = unsafe { std::slice::from_raw_parts(d.ptr(), d.len()) }.to_vec();
        assert_eq!(raw, vec![0.0, 2.0, 9.0, 1.0, 3.0, 10.0]);
    }

    #[test]
    fn soa_halo_rows_extend_the_planes() {
        let set = Set::new(2, "cells");
        // 2 owned + 2 halo rows, dim 2.
        let data: Vec<f64> = (0..8).map(|v| v as f64).collect();
        let d = Dat::with_halo_layout(&set, 2, "q", data.clone(), 4, 2, Layout::SoA);
        assert_eq!(d.component_stride(), 4);
        assert_eq!(d.snapshot(), data);
        // Scatter a halo row the way the exchange receive node does.
        unsafe { d.scatter_rows_from(3, &[42.0, 43.0]) };
        let mut row = Vec::new();
        unsafe { d.append_row_to(3, &mut row) };
        assert_eq!(row, vec![42.0, 43.0]);
        assert_eq!(d.snapshot()[6..8], [42.0, 43.0]);
    }

    #[test]
    fn empty_range_touches_no_blocks() {
        let d = mk();
        let w = SharedFuture::ready(());
        d.deps().record_rows(&(2..2), true, next_loop_gen(), &w);
        let mut deps = Vec::new();
        d.deps().collect_rows(&(0..4), true, &mut deps);
        assert!(deps.is_empty());
    }
}
