//! The parcelport layer: moving halo rows and reduction partials between
//! ranks, in-process or across OS processes.
//!
//! The locality layer (see [`crate::locality`]) schedules *who* talks to
//! whom and *when* (epoch-table dependencies, dirty bits, wait-sets); this
//! module owns *how* the bytes move. A [`Transport`] carries *messages* —
//! `(kind, src, dst, seq)`-addressed byte payloads in the canonical
//! row-major wire encoding — and hands receivers a [`Delivery`]: a
//! [`SharedFuture`] that completes when the payload is present, so receive
//! nodes stay reactive (they *gate on* arrival instead of blocking a
//! worker mid-body).
//!
//! Two implementations:
//!
//! * [`InProcessTransport`] — all ranks in one process. Delivery is a
//!   match-table handoff; an optional link delay is modelled by
//!   **rescheduling** delivery onto the shared [`hpx_rt::timing::defer`]
//!   timer thread, never by sleeping on a runtime worker (the pre-PR 7
//!   `thread::sleep` inside the gather node stole the very compute the
//!   overlap benches claimed to overlap).
//! * [`ProcessTransport`] — each rank (or group of ranks) is its own OS
//!   process; peers are connected over a full mesh of Unix-domain sockets
//!   established through a filesystem rendezvous directory. Latency is
//!   real wire latency; injected delays are ignored.
//!
//! # Message addressing and SPMD symmetry
//!
//! Messages are matched by `(kind, src, dst, seq)` where `seq` comes from
//! [`Transport::next_seq`], a per-`(kind, src → dst)` counter. There is no
//! header negotiation: both endpoints of a distributed pair run the same
//! program (SPMD), so the *k*-th halo exchange scheduled from `src` to
//! `dst` on the sender side is matched with the *k*-th receive posted on
//! the receiver side because both sides advanced the same counter at the
//! same program points. The locality layer guarantees this symmetry by
//! making its scheduling decisions (dirty-bit transitions, reachability
//! cuts) from process-local state *identically on every rank* whenever the
//! transport is not [`Transport::all_local`].
//!
//! # Abandonment
//!
//! A sender that panics (or whose upstream kernel panicked, skipping the
//! gather node) would leave the matching receive waiting forever. The
//! send path therefore travels under a [`SendGuard`]: if the guard is
//! dropped without sending, an *abandonment* marker is delivered (or a
//! flagged frame is sent) so the receiver's [`Delivery`] completes with no
//! payload and the receive node degrades to a diagnostic no-op — the
//! original panic, not a secondary "sender dropped" panic, is what
//! propagates to the fence. A socket peer that disappears entirely
//! (process death) abandons every outstanding and future delivery from
//! that rank.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::ops::Range;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use hpx_rt::SharedFuture;

// ---------------------------------------------------------------------------
// Wire scalars
// ---------------------------------------------------------------------------

/// A scalar with a fixed-width, endian-stable wire encoding — the
/// serialization contract every [`crate::types::OpType`] satisfies so dat
/// rows and reduction partials can cross process boundaries. All integers
/// and floats travel little-endian; `usize`/`isize` are widened to
/// 64 bits; `bool` is one byte (`0`/`1`).
pub trait WireScalar: Copy + Send + Sync + 'static {
    /// Encoded width in bytes (fixed per type, platform-independent).
    const WIRE_SIZE: usize;
    /// Appends the little-endian encoding of `self` to `out`.
    fn write_wire(self, out: &mut Vec<u8>);
    /// Decodes from the first [`Self::WIRE_SIZE`] bytes of `bytes`.
    fn read_wire(bytes: &[u8]) -> Self;
}

macro_rules! impl_wire_le {
    ($($t:ty),+) => {$(
        impl WireScalar for $t {
            const WIRE_SIZE: usize = std::mem::size_of::<$t>();
            #[inline]
            fn write_wire(self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_wire(bytes: &[u8]) -> Self {
                Self::from_le_bytes(bytes[..Self::WIRE_SIZE].try_into().unwrap())
            }
        }
    )+};
}
impl_wire_le!(f32, f64, i8, i16, i32, i64, u8, u16, u32, u64);

impl WireScalar for usize {
    const WIRE_SIZE: usize = 8;
    #[inline]
    fn write_wire(self, out: &mut Vec<u8>) {
        (self as u64).write_wire(out);
    }
    #[inline]
    fn read_wire(bytes: &[u8]) -> Self {
        let v = u64::read_wire(bytes);
        usize::try_from(v).expect("wire usize overflows the platform word")
    }
}

impl WireScalar for isize {
    const WIRE_SIZE: usize = 8;
    #[inline]
    fn write_wire(self, out: &mut Vec<u8>) {
        (self as i64).write_wire(out);
    }
    #[inline]
    fn read_wire(bytes: &[u8]) -> Self {
        let v = i64::read_wire(bytes);
        isize::try_from(v).expect("wire isize overflows the platform word")
    }
}

impl WireScalar for bool {
    const WIRE_SIZE: usize = 1;
    #[inline]
    fn write_wire(self, out: &mut Vec<u8>) {
        out.push(self as u8);
    }
    #[inline]
    fn read_wire(bytes: &[u8]) -> Self {
        bytes[0] != 0
    }
}

/// Encodes a scalar slice into the canonical wire byte stream.
pub fn encode_scalars<T: WireScalar>(vals: &[T]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * T::WIRE_SIZE);
    for &v in vals {
        v.write_wire(&mut out);
    }
    out
}

/// Decodes a canonical wire byte stream back into scalars.
///
/// # Panics
///
/// If `bytes` is not a whole number of encoded scalars.
pub fn decode_scalars<T: WireScalar>(bytes: &[u8]) -> Vec<T> {
    assert_eq!(
        bytes.len() % T::WIRE_SIZE,
        0,
        "wire payload of {} bytes is not a whole number of {}-byte scalars",
        bytes.len(),
        T::WIRE_SIZE
    );
    bytes.chunks_exact(T::WIRE_SIZE).map(T::read_wire).collect()
}

// ---------------------------------------------------------------------------
// Messages and deliveries
// ---------------------------------------------------------------------------

/// What a message carries — part of the match key, so halo traffic,
/// reduction partials and control messages between the same pair of ranks
/// never collide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MsgKind {
    /// Halo rows (canonical row-major dat rows).
    Halo = 0,
    /// Reduction partials (a `Global`'s value vector).
    Reduce = 1,
    /// Control traffic (barrier arrivals/releases).
    Ctrl = 2,
    /// Row migration during a live repartition (canonical row-major dat
    /// rows, like [`MsgKind::Halo`], but on a separate sequence stream so
    /// in-flight halo traffic and migration moves never collide).
    Migrate = 3,
}

impl MsgKind {
    fn from_u8(v: u8) -> MsgKind {
        match v {
            0 => MsgKind::Halo,
            1 => MsgKind::Reduce,
            2 => MsgKind::Ctrl,
            3 => MsgKind::Migrate,
            _ => panic!("transport: unknown message kind {v}"),
        }
    }
}

/// `(kind, src, dst, seq)` — the full match key of one message.
type Key = (MsgKind, u32, u32, u64);

/// One matched incoming message: a completion future plus the payload it
/// guards. `ready()` completes when the message arrived (or was
/// abandoned); `take()` then yields the payload — `None` means the sender
/// abandoned the exchange and the receiver should degrade gracefully.
pub struct Delivery {
    ready: SharedFuture<()>,
    payload: Arc<Mutex<Option<Vec<u8>>>>,
}

impl Delivery {
    /// Completes when the payload is present or the exchange was
    /// abandoned. Schedule receive nodes *after* this future; never block
    /// on it from inside a node body.
    pub fn ready(&self) -> &SharedFuture<()> {
        &self.ready
    }

    /// Takes the payload out (call only after [`Delivery::ready`] is
    /// done). `None` = abandoned exchange.
    pub fn take(&self) -> Option<Vec<u8>> {
        self.payload.lock().take()
    }
}

impl std::fmt::Debug for Delivery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Delivery")
            .field("ready", &self.ready.is_ready())
            .finish()
    }
}

/// The rendezvous table matching posted receives with arrived messages,
/// in either arrival order.
#[derive(Default)]
struct MatchTable {
    slots: Mutex<HashMap<Key, Slot>>,
    /// Ranks whose link died (socket EOF): all their messages, present and
    /// future, are abandoned.
    dead: Mutex<Vec<u32>>,
}

enum Slot {
    /// Message arrived before the receive was posted. `None` = abandoned.
    Arrived(Option<Vec<u8>>),
    /// Receive posted before the message arrived.
    Expected(hpx_rt::Promise<()>, Arc<Mutex<Option<Vec<u8>>>>),
}

impl MatchTable {
    /// An incoming message (payload `None` = abandonment marker).
    fn deliver(&self, key: Key, payload: Option<Vec<u8>>) {
        let matched = {
            let mut slots = self.slots.lock();
            match slots.remove(&key) {
                None => {
                    slots.insert(key, Slot::Arrived(payload));
                    None
                }
                Some(Slot::Expected(promise, cell)) => {
                    *cell.lock() = payload;
                    Some(promise)
                }
                Some(Slot::Arrived(_)) => {
                    panic!("transport: duplicate message for {key:?} — sequence counters desynced")
                }
            }
        };
        // Fulfill outside the table lock: completion callbacks may re-enter
        // the transport (e.g. a dependent node posting the next receive).
        if let Some(promise) = matched {
            promise.set_value(());
        }
    }

    /// Posts a receive for `key`.
    fn expect(&self, key: Key) -> Delivery {
        let mut slots = self.slots.lock();
        match slots.remove(&key) {
            Some(Slot::Arrived(payload)) => Delivery {
                ready: SharedFuture::ready(()),
                payload: Arc::new(Mutex::new(payload)),
            },
            Some(Slot::Expected(..)) => {
                panic!("transport: duplicate receive for {key:?} — sequence counters desynced")
            }
            None => {
                if self.dead.lock().contains(&key.1) {
                    return Delivery {
                        ready: SharedFuture::ready(()),
                        payload: Arc::new(Mutex::new(None)),
                    };
                }
                let (promise, future) = hpx_rt::channel::<()>();
                let cell = Arc::new(Mutex::new(None));
                slots.insert(key, Slot::Expected(promise, Arc::clone(&cell)));
                Delivery {
                    ready: future.share(),
                    payload: cell,
                }
            }
        }
    }

    /// The link to `src` died: complete every outstanding receive from it
    /// as abandoned, and abandon all future ones.
    fn fail_peer(&self, src: u32) {
        self.dead.lock().push(src);
        let drained: Vec<Slot> = {
            let mut slots = self.slots.lock();
            let keys: Vec<Key> = slots
                .keys()
                .filter(|k| k.1 == src && matches!(slots[k], Slot::Expected(..)))
                .copied()
                .collect();
            keys.into_iter().filter_map(|k| slots.remove(&k)).collect()
        };
        for slot in drained {
            if let Slot::Expected(promise, _cell) = slot {
                promise.set_value(());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The Transport trait
// ---------------------------------------------------------------------------

/// How bytes move between ranks — the parcelport under the locality
/// layer. Implementations must be fully asynchronous on the receive side
/// ([`Transport::recv`] returns immediately; arrival is signalled through
/// the [`Delivery`]'s future) and must not occupy a runtime worker while
/// modelling or incurring latency on the send side.
pub trait Transport: Send + Sync + 'static {
    /// Total number of ranks in the job (across all processes).
    fn nranks(&self) -> usize;

    /// The contiguous range of global rank ids hosted by *this* process.
    fn local_ranks(&self) -> Range<usize>;

    /// Next sequence number of the `(kind, src → dst)` stream. Both
    /// endpoints must advance this at the same program points (see module
    /// docs on SPMD symmetry).
    fn next_seq(&self, kind: MsgKind, src: usize, dst: usize) -> u64;

    /// Sends `payload` as message `(kind, src, dst, seq)`. `delay` is an
    /// *injected* link latency for latency-modelling transports; real
    /// transports ignore it. Must not block a runtime worker for the
    /// delay.
    fn send(
        &self,
        kind: MsgKind,
        src: usize,
        dst: usize,
        seq: u64,
        delay: Option<Duration>,
        payload: Vec<u8>,
    );

    /// Marks message `(kind, src, dst, seq)` as abandoned: the receiver's
    /// [`Delivery`] completes with no payload (see module docs).
    fn send_abandoned(&self, kind: MsgKind, src: usize, dst: usize, seq: u64);

    /// Posts a receive for message `(kind, src, dst, seq)`; `dst` must be
    /// a local rank.
    fn recv(&self, kind: MsgKind, src: usize, dst: usize, seq: u64) -> Delivery;

    /// True when every rank lives in this process — the locality layer
    /// uses process-global shortcuts (map-reachability cuts, shared
    /// collect trees) only then.
    fn all_local(&self) -> bool {
        self.local_ranks() == (0..self.nranks())
    }
}

/// Per-`(kind, src → dst)` stream counters (shared helper of both
/// implementations).
#[derive(Default)]
struct SeqCounters {
    next: Mutex<HashMap<(MsgKind, u32, u32), u64>>,
}

impl SeqCounters {
    fn next(&self, kind: MsgKind, src: usize, dst: usize) -> u64 {
        let mut map = self.next.lock();
        let c = map.entry((kind, src as u32, dst as u32)).or_insert(0);
        let v = *c;
        *c += 1;
        v
    }
}

/// Arms abandonment for one outgoing message: create it when the message
/// is *scheduled*, move it into the send node, and consume it with
/// [`SendGuard::send`] when the payload is ready. If the node is skipped
/// (upstream panic) or dies before sending, the guard's drop delivers the
/// abandonment marker so the matching receive completes as a no-op instead
/// of waiting forever or double-panicking.
pub struct SendGuard {
    transport: Arc<dyn Transport>,
    kind: MsgKind,
    src: usize,
    dst: usize,
    seq: u64,
    armed: bool,
}

impl SendGuard {
    /// Arms a guard for message `(kind, src, dst, seq)`.
    pub fn new(
        transport: Arc<dyn Transport>,
        kind: MsgKind,
        src: usize,
        dst: usize,
        seq: u64,
    ) -> Self {
        SendGuard {
            transport,
            kind,
            src,
            dst,
            seq,
            armed: true,
        }
    }

    /// Sends the payload and disarms the guard.
    pub fn send(mut self, delay: Option<Duration>, payload: Vec<u8>) {
        self.armed = false;
        hpx_rt::static_counter!("op2.transport.msgs_sent").fetch_add(1, Ordering::Relaxed);
        hpx_rt::static_counter!("op2.transport.bytes_sent")
            .fetch_add(payload.len() as u64, Ordering::Relaxed);
        self.transport
            .send(self.kind, self.src, self.dst, self.seq, delay, payload);
    }
}

impl Drop for SendGuard {
    fn drop(&mut self) {
        if self.armed {
            hpx_rt::static_counter!("op2.transport.sends_abandoned")
                .fetch_add(1, Ordering::Relaxed);
            self.transport
                .send_abandoned(self.kind, self.src, self.dst, self.seq);
        }
    }
}

// ---------------------------------------------------------------------------
// In-process transport
// ---------------------------------------------------------------------------

/// All ranks in one process: delivery is a match-table handoff on the
/// sending thread, and an injected link delay *reschedules* delivery onto
/// the shared timer thread ([`hpx_rt::timing::defer`]) — no runtime worker
/// sleeps, so overlap measurements under injected latency no longer lose a
/// worker per in-flight message.
pub struct InProcessTransport {
    nranks: usize,
    /// Baseline injected latency for every message (per-message `delay`
    /// overrides it).
    delay: Option<Duration>,
    table: Arc<MatchTable>,
    seqs: SeqCounters,
}

impl InProcessTransport {
    /// A zero-latency in-process transport between `nranks` ranks.
    pub fn new(nranks: usize) -> Self {
        Self::with_delay(nranks, None)
    }

    /// An in-process transport injecting `delay` on every message that
    /// does not carry its own.
    pub fn with_delay(nranks: usize, delay: Option<Duration>) -> Self {
        assert!(nranks >= 1, "a transport needs at least one rank");
        InProcessTransport {
            nranks,
            delay,
            table: Arc::new(MatchTable::default()),
            seqs: SeqCounters::default(),
        }
    }
}

impl Transport for InProcessTransport {
    fn nranks(&self) -> usize {
        self.nranks
    }

    fn local_ranks(&self) -> Range<usize> {
        0..self.nranks
    }

    fn next_seq(&self, kind: MsgKind, src: usize, dst: usize) -> u64 {
        self.seqs.next(kind, src, dst)
    }

    fn send(
        &self,
        kind: MsgKind,
        src: usize,
        dst: usize,
        seq: u64,
        delay: Option<Duration>,
        payload: Vec<u8>,
    ) {
        let key = (kind, src as u32, dst as u32, seq);
        match delay.or(self.delay) {
            Some(d) => {
                let table = Arc::clone(&self.table);
                hpx_rt::timing::defer(d, move || table.deliver(key, Some(payload)));
            }
            None => self.table.deliver(key, Some(payload)),
        }
    }

    fn send_abandoned(&self, kind: MsgKind, src: usize, dst: usize, seq: u64) {
        // Abandonment skips the injected delay: it exists to unblock the
        // receiver promptly on a failure path.
        self.table
            .deliver((kind, src as u32, dst as u32, seq), None);
    }

    fn recv(&self, kind: MsgKind, src: usize, dst: usize, seq: u64) -> Delivery {
        assert!(dst < self.nranks, "recv for out-of-range rank {dst}");
        self.table.expect((kind, src as u32, dst as u32, seq))
    }
}

impl std::fmt::Debug for InProcessTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InProcessTransport")
            .field("nranks", &self.nranks)
            .field("delay", &self.delay)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Multi-process transport over Unix-domain sockets
// ---------------------------------------------------------------------------

/// Frame magic: `"OP2H"`.
const FRAME_MAGIC: u32 = 0x4F50_3248;
/// Flag bit: the frame is an abandonment marker (no payload follows).
const FLAG_ABANDONED: u8 = 1;
/// Frame header size: magic(4) kind(1) flags(1) pad(2) src(4) dst(4)
/// seq(8) len(8).
const FRAME_HEADER: usize = 32;

fn encode_frame(kind: MsgKind, flags: u8, src: u32, dst: u32, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(FRAME_HEADER + payload.len());
    f.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
    f.push(kind as u8);
    f.push(flags);
    f.extend_from_slice(&[0u8; 2]);
    f.extend_from_slice(&src.to_le_bytes());
    f.extend_from_slice(&dst.to_le_bytes());
    f.extend_from_slice(&seq.to_le_bytes());
    f.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    f.extend_from_slice(payload);
    f
}

/// Each rank its own OS process, full mesh of Unix-domain sockets.
///
/// Rendezvous: every process binds `rank{r}.sock` in a shared directory,
/// *connects* to every lower rank (retrying while the peer's socket
/// appears — rank 0's socket is the first every process dials) and
/// *accepts* from every higher rank, which identifies itself with a hello
/// frame. One reader thread per peer drains frames into the match table;
/// sends are frame writes under a per-peer lock (payloads are halo-sized,
/// well under the socket buffer). A peer whose stream hits EOF is failed:
/// its outstanding and future deliveries complete as abandoned.
pub struct ProcessTransport {
    nranks: usize,
    rank: usize,
    table: Arc<MatchTable>,
    peers: Vec<Option<Mutex<UnixStream>>>,
    seqs: SeqCounters,
    /// Rendezvous socket path, unlinked on drop.
    sock_path: PathBuf,
}

fn retry_connect(path: &Path, timeout: Duration) -> std::io::Result<UnixStream> {
    let deadline = std::time::Instant::now() + timeout;
    loop {
        match UnixStream::connect(path) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if std::time::Instant::now() >= deadline {
                    return Err(std::io::Error::new(
                        e.kind(),
                        format!("rendezvous with {} timed out: {e}", path.display()),
                    ));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
}

impl ProcessTransport {
    /// Joins the job as `rank` of `nranks`, rendezvousing through `dir`
    /// (created if missing). Blocks until the full peer mesh is up; every
    /// participating process must call this with the same `dir` and
    /// `nranks`.
    pub fn connect_unix(dir: &Path, rank: usize, nranks: usize) -> std::io::Result<Self> {
        assert!(rank < nranks, "rank {rank} out of range for {nranks} ranks");
        std::fs::create_dir_all(dir)?;
        let sock_path = dir.join(format!("rank{rank}.sock"));
        let _ = std::fs::remove_file(&sock_path);
        let listener = UnixListener::bind(&sock_path)?;

        let mut streams: Vec<Option<UnixStream>> = (0..nranks).map(|_| None).collect();
        // Dial every lower rank (their listeners bind before they dial
        // upward, so retrying on "not yet bound" cannot deadlock).
        for (peer, slot) in streams.iter_mut().enumerate().take(rank) {
            let mut s = retry_connect(
                &dir.join(format!("rank{peer}.sock")),
                Duration::from_secs(30),
            )?;
            let mut hello = Vec::with_capacity(8);
            hello.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
            hello.extend_from_slice(&(rank as u32).to_le_bytes());
            s.write_all(&hello)?;
            *slot = Some(s);
        }
        // Accept every higher rank; the hello frame says who dialed.
        for _ in rank + 1..nranks {
            let (mut s, _) = listener.accept()?;
            let mut hello = [0u8; 8];
            s.read_exact(&mut hello)?;
            let magic = u32::from_le_bytes(hello[0..4].try_into().unwrap());
            let peer = u32::from_le_bytes(hello[4..8].try_into().unwrap()) as usize;
            if magic != FRAME_MAGIC || peer <= rank || peer >= nranks || streams[peer].is_some() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("bad hello from peer (magic {magic:#x}, claimed rank {peer})"),
                ));
            }
            streams[peer] = Some(s);
        }
        drop(listener);

        let table = Arc::new(MatchTable::default());
        for (peer, s) in streams.iter().enumerate() {
            if let Some(s) = s {
                let reader = s.try_clone()?;
                let table = Arc::clone(&table);
                std::thread::Builder::new()
                    .name(format!("op2-net-r{rank}p{peer}"))
                    .spawn(move || reader_loop(reader, peer as u32, rank as u32, table))
                    .expect("spawn transport reader thread");
            }
        }
        Ok(ProcessTransport {
            nranks,
            rank,
            table,
            peers: streams.into_iter().map(|s| s.map(Mutex::new)).collect(),
            seqs: SeqCounters::default(),
            sock_path,
        })
    }

    /// This process's global rank id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    fn write_frame(&self, dst: usize, frame: &[u8]) {
        if dst == self.rank {
            return; // self-sends short-circuit through the table
        }
        let stream = self.peers[dst]
            .as_ref()
            .unwrap_or_else(|| panic!("no link from rank {} to rank {dst}", self.rank));
        if let Err(e) = stream.lock().write_all(frame) {
            // The peer is gone; its reader thread will fail the inbound
            // side. Dropping the payload mirrors a dead network peer.
            eprintln!(
                "op2-transport: rank {} -> {dst} send failed: {e}",
                self.rank
            );
        }
    }
}

fn reader_loop(mut stream: UnixStream, peer: u32, my_rank: u32, table: Arc<MatchTable>) {
    loop {
        let mut hdr = [0u8; FRAME_HEADER];
        if stream.read_exact(&mut hdr).is_err() {
            break; // EOF or error: the peer is gone
        }
        let magic = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
        assert_eq!(magic, FRAME_MAGIC, "transport: corrupt frame from {peer}");
        let kind = MsgKind::from_u8(hdr[4]);
        let flags = hdr[5];
        let src = u32::from_le_bytes(hdr[8..12].try_into().unwrap());
        let dst = u32::from_le_bytes(hdr[12..16].try_into().unwrap());
        let seq = u64::from_le_bytes(hdr[16..24].try_into().unwrap());
        let len = u64::from_le_bytes(hdr[24..32].try_into().unwrap()) as usize;
        assert_eq!(src, peer, "transport: frame src {src} on link to {peer}");
        assert_eq!(dst, my_rank, "transport: misrouted frame for {dst}");
        let payload = if flags & FLAG_ABANDONED != 0 {
            None
        } else {
            let mut buf = vec![0u8; len];
            if stream.read_exact(&mut buf).is_err() {
                break;
            }
            Some(buf)
        };
        table.deliver((kind, src, dst, seq), payload);
    }
    table.fail_peer(peer);
}

impl Transport for ProcessTransport {
    fn nranks(&self) -> usize {
        self.nranks
    }

    fn local_ranks(&self) -> Range<usize> {
        self.rank..self.rank + 1
    }

    fn next_seq(&self, kind: MsgKind, src: usize, dst: usize) -> u64 {
        self.seqs.next(kind, src, dst)
    }

    fn send(
        &self,
        kind: MsgKind,
        src: usize,
        dst: usize,
        seq: u64,
        _delay: Option<Duration>,
        payload: Vec<u8>,
    ) {
        assert_eq!(src, self.rank, "send from non-local rank {src}");
        if dst == self.rank {
            self.table
                .deliver((kind, src as u32, dst as u32, seq), Some(payload));
            return;
        }
        let frame = encode_frame(kind, 0, src as u32, dst as u32, seq, &payload);
        self.write_frame(dst, &frame);
    }

    fn send_abandoned(&self, kind: MsgKind, src: usize, dst: usize, seq: u64) {
        if dst == self.rank {
            self.table
                .deliver((kind, src as u32, dst as u32, seq), None);
            return;
        }
        let frame = encode_frame(kind, FLAG_ABANDONED, src as u32, dst as u32, seq, &[]);
        self.write_frame(dst, &frame);
    }

    fn recv(&self, kind: MsgKind, src: usize, dst: usize, seq: u64) -> Delivery {
        assert_eq!(dst, self.rank, "recv for non-local rank {dst}");
        self.table.expect((kind, src as u32, dst as u32, seq))
    }
}

impl Drop for ProcessTransport {
    fn drop(&mut self) {
        // Shut the write sides down so peer readers see EOF promptly.
        for s in self.peers.iter().flatten() {
            let _ = s.lock().shutdown(std::net::Shutdown::Both);
        }
        let _ = std::fs::remove_file(&self.sock_path);
    }
}

impl std::fmt::Debug for ProcessTransport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProcessTransport")
            .field("rank", &self.rank)
            .field("nranks", &self.nranks)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Collective helpers
// ---------------------------------------------------------------------------

/// A whole-job rendezvous: returns once every rank of the job has entered
/// the barrier. All-local transports return immediately (the caller holds
/// every rank already); distributed ones run an arrive/release star
/// through rank 0 over [`MsgKind::Ctrl`] messages. Call from a
/// non-worker thread (it blocks).
pub fn barrier(transport: &Arc<dyn Transport>) {
    if transport.all_local() {
        return;
    }
    let n = transport.nranks();
    let local = transport.local_ranks();
    for r in local.clone() {
        if r != 0 {
            let seq = transport.next_seq(MsgKind::Ctrl, r, 0);
            transport.send(MsgKind::Ctrl, r, 0, seq, None, Vec::new());
        }
    }
    if local.contains(&0) {
        for s in 1..n {
            let seq = transport.next_seq(MsgKind::Ctrl, s, 0);
            transport.recv(MsgKind::Ctrl, s, 0, seq).ready().wait();
        }
        for s in 1..n {
            let seq = transport.next_seq(MsgKind::Ctrl, 0, s);
            transport.send(MsgKind::Ctrl, 0, s, seq, None, Vec::new());
        }
    }
    for r in local {
        if r != 0 {
            let seq = transport.next_seq(MsgKind::Ctrl, 0, r);
            transport.recv(MsgKind::Ctrl, 0, r, seq).ready().wait();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_scalars_round_trip() {
        assert_eq!(
            decode_scalars::<f64>(&encode_scalars(&[1.5f64, -2.25])),
            [1.5, -2.25]
        );
        assert_eq!(
            decode_scalars::<bool>(&encode_scalars(&[true, false])),
            [true, false]
        );
        assert_eq!(decode_scalars::<usize>(&encode_scalars(&[7usize])), [7]);
        assert_eq!(
            encode_scalars(&[7usize]).len(),
            8,
            "usize is widened to 64 bits on the wire"
        );
        assert_eq!(decode_scalars::<i8>(&encode_scalars(&[-3i8, 5])), [-3, 5]);
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn decode_rejects_ragged_payloads() {
        let _ = decode_scalars::<f64>(&[0u8; 12]);
    }

    #[test]
    fn in_process_matches_either_order() {
        let t = InProcessTransport::new(2);
        // Send before recv.
        t.send(MsgKind::Halo, 0, 1, 0, None, vec![1, 2, 3]);
        let d = t.recv(MsgKind::Halo, 0, 1, 0);
        assert!(d.ready().is_ready());
        assert_eq!(d.take(), Some(vec![1, 2, 3]));
        // Recv before send.
        let d = t.recv(MsgKind::Halo, 0, 1, 1);
        assert!(!d.ready().is_ready());
        t.send(MsgKind::Halo, 0, 1, 1, None, vec![9]);
        d.ready().wait();
        assert_eq!(d.take(), Some(vec![9]));
    }

    #[test]
    fn in_process_delay_defers_off_thread() {
        let t = InProcessTransport::with_delay(2, Some(Duration::from_millis(15)));
        let t0 = std::time::Instant::now();
        t.send(MsgKind::Halo, 0, 1, 0, None, vec![4]);
        // The send returned immediately; delivery lands later via the
        // timer thread.
        assert!(t0.elapsed() < Duration::from_millis(15));
        let d = t.recv(MsgKind::Halo, 0, 1, 0);
        d.ready().wait();
        assert!(t0.elapsed() >= Duration::from_millis(15));
        assert_eq!(d.take(), Some(vec![4]));
    }

    #[test]
    fn dropped_send_guard_abandons_the_exchange() {
        let t: Arc<dyn Transport> = Arc::new(InProcessTransport::new(2));
        let d = t.recv(MsgKind::Halo, 0, 1, 0);
        drop(SendGuard::new(Arc::clone(&t), MsgKind::Halo, 0, 1, 0));
        d.ready().wait();
        assert_eq!(d.take(), None, "abandoned delivery carries no payload");
    }

    #[test]
    fn seq_counters_are_per_stream() {
        let t = InProcessTransport::new(3);
        assert_eq!(t.next_seq(MsgKind::Halo, 0, 1), 0);
        assert_eq!(t.next_seq(MsgKind::Halo, 0, 1), 1);
        assert_eq!(t.next_seq(MsgKind::Halo, 1, 0), 0);
        assert_eq!(t.next_seq(MsgKind::Reduce, 0, 1), 0);
    }

    #[test]
    fn socket_transport_full_mesh_round_trip() {
        let dir = std::env::temp_dir().join(format!("op2-tp-test-{}", std::process::id()));
        let n = 3;
        std::thread::scope(|s| {
            for rank in 0..n {
                let dir = dir.clone();
                s.spawn(move || {
                    let t = ProcessTransport::connect_unix(&dir, rank, n).unwrap();
                    // Everyone sends its rank id to every peer...
                    for dst in 0..n {
                        if dst != rank {
                            let seq = t.next_seq(MsgKind::Halo, rank, dst);
                            t.send(MsgKind::Halo, rank, dst, seq, None, vec![rank as u8]);
                        }
                    }
                    // ...and checks what arrives.
                    for src in 0..n {
                        if src != rank {
                            let seq = t.next_seq(MsgKind::Halo, src, rank);
                            let d = t.recv(MsgKind::Halo, src, rank, seq);
                            d.ready().wait();
                            assert_eq!(d.take(), Some(vec![src as u8]));
                        }
                    }
                    let t: Arc<dyn Transport> = Arc::new(t);
                    barrier(&t);
                });
            }
        });
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dead_socket_peer_abandons_outstanding_receives() {
        let dir = std::env::temp_dir().join(format!("op2-tp-dead-{}", std::process::id()));
        std::thread::scope(|s| {
            let h0 = s.spawn({
                let dir = dir.clone();
                move || {
                    let t = ProcessTransport::connect_unix(&dir, 0, 2).unwrap();
                    let d = t.recv(MsgKind::Halo, 1, 0, 0);
                    // Peer 1 exits without sending: the delivery must
                    // complete as abandoned, not hang.
                    d.ready().wait();
                    assert_eq!(d.take(), None);
                    // Future receives from the dead peer are abandoned too.
                    let d2 = t.recv(MsgKind::Halo, 1, 0, 1);
                    assert!(d2.ready().is_ready());
                    assert_eq!(d2.take(), None);
                }
            });
            s.spawn({
                let dir = dir.clone();
                move || {
                    let t = ProcessTransport::connect_unix(&dir, 1, 2).unwrap();
                    drop(t);
                }
            });
            h0.join().unwrap();
        });
        let _ = std::fs::remove_dir_all(&dir);
    }
}
